// ABL-HASH — substrate microbenchmarks (google-benchmark): SHA-256,
// HMAC-SHA256, SipHash-2-4, HMAC-DRBG. The SHA-256 64-byte number is the
// "per-hash cost" that calibrates the latency model's hash_cost_us on a
// given machine (solver inputs are one or two compression blocks).

#include <benchmark/benchmark.h>

#include "common/bytes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/siphash.hpp"

namespace {

using namespace powai;

common::Bytes make_input(std::size_t n) {
  common::Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  return data;
}

void BM_Sha256(benchmark::State& state) {
  const common::Bytes data = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

void BM_Sha256SolverShape(benchmark::State& state) {
  // The solver's exact call pattern: fixed ~100-byte prefix + 8-byte nonce.
  const common::Bytes prefix = make_input(100);
  common::Bytes nonce(8, 0);
  std::uint64_t n = 0;
  for (auto _ : state) {
    ++n;
    nonce[0] = static_cast<std::uint8_t>(n);
    benchmark::DoNotOptimize(crypto::Sha256::hash2(prefix, nonce));
  }
}
BENCHMARK(BM_Sha256SolverShape);

void BM_HmacSha256(benchmark::State& state) {
  const common::Bytes key = common::bytes_of("bench-key");
  const common::Bytes data = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_SipHash24(benchmark::State& state) {
  crypto::SipKey key{};
  for (std::uint8_t i = 0; i < 16; ++i) key[i] = i;
  const common::Bytes data = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::siphash24(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SipHash24)->Arg(16)->Arg(64)->Arg(1024);

void BM_HmacDrbgGenerate(benchmark::State& state) {
  crypto::HmacDrbg drbg(common::bytes_of("bench-entropy"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(drbg.generate(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_HmacDrbgGenerate)->Arg(32)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
