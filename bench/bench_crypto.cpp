// ABL-HASH — substrate microbenchmarks (google-benchmark): SHA-256,
// HMAC-SHA256, SipHash-2-4, HMAC-DRBG, plus the hot-path forms this
// system actually runs (midstate finish_with_suffix, hash_many lanes).
// The SHA-256 64-byte number is the "per-hash cost" that calibrates the
// latency model's hash_cost_us on a given machine (solver inputs are
// one or two compression blocks).
//
// A trailing `json=path` argument (stripped before google-benchmark
// sees the flags) additionally runs a hand-timed hashes/sec sweep over
// every supported dispatch backend and writes a bench_diff.py-ready
// artifact: rows keyed by "case" ("<mode>/<backend>") with a
// "hashes_per_s" metric. "solver_scalar/generic" is the pre-midstate
// per-attempt cost; "solver_midstate/<backend>" is the single-probe
// midstate finish; "solver_sweep/<backend>" is the lane-parallel
// finish_many_with_suffix sweep the solver runs on multi-buffer
// backends — sweep/midstate on avx2/avx512 is the lane speedup.

#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/json.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/siphash.hpp"

namespace {

using namespace powai;

common::Bytes make_input(std::size_t n) {
  common::Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  return data;
}

void BM_Sha256(benchmark::State& state) {
  const common::Bytes data = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

void BM_Sha256SolverShape(benchmark::State& state) {
  // The solver's pre-midstate call pattern: fixed ~100-byte prefix +
  // 8-byte nonce, fully re-hashed per attempt.
  const common::Bytes prefix = make_input(100);
  common::Bytes nonce(8, 0);
  std::uint64_t n = 0;
  for (auto _ : state) {
    ++n;
    nonce[0] = static_cast<std::uint8_t>(n);
    benchmark::DoNotOptimize(crypto::Sha256::hash2(prefix, nonce));
  }
}
BENCHMARK(BM_Sha256SolverShape);

void BM_Sha256MidstateSolverShape(benchmark::State& state) {
  // The solver's current call pattern: the prefix's full blocks are
  // absorbed once, each attempt compresses only the final block.
  const common::Bytes prefix = make_input(100);
  const crypto::Sha256Midstate midstate = crypto::Sha256::precompute(prefix);
  const common::BytesView tail(
      prefix.data() + midstate.absorbed,
      prefix.size() - static_cast<std::size_t>(midstate.absorbed));
  std::uint8_t nonce[8] = {};
  std::uint64_t n = 0;
  for (auto _ : state) {
    common::store_u64be(nonce, ++n);
    benchmark::DoNotOptimize(crypto::Sha256::finish_with_suffix(
        midstate, tail, common::BytesView(nonce, 8)));
  }
}
BENCHMARK(BM_Sha256MidstateSolverShape);

void BM_Sha256HashMany(benchmark::State& state) {
  // BatchVerifier's shape: a batch of equal-length (prefix || nonce)
  // messages digested in one sweep.
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<common::Bytes> messages;
  messages.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    common::Bytes m = make_input(100);
    common::append_u64be(m, i);
    messages.push_back(std::move(m));
  }
  std::vector<common::BytesView> views(messages.begin(), messages.end());
  std::vector<crypto::Digest> out(batch);
  for (auto _ : state) {
    crypto::Sha256::hash_many(views, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_Sha256HashMany)->Arg(8)->Arg(64)->Arg(256);

void BM_Sha256FinishManySolverShape(benchmark::State& state) {
  // The lane-sweep solver's shape: one shared midstate, a batch of
  // 8-byte nonce suffixes finished lane_width() at a time.
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const common::Bytes prefix = make_input(100);
  const crypto::Sha256Midstate midstate = crypto::Sha256::precompute(prefix);
  const common::BytesView tail(
      prefix.data() + midstate.absorbed,
      prefix.size() - static_cast<std::size_t>(midstate.absorbed));
  std::vector<std::array<std::uint8_t, 8>> nonces(batch);
  std::vector<common::BytesView> suffixes;
  suffixes.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    common::store_u64be(nonces[i].data(), i);
    suffixes.emplace_back(nonces[i].data(), nonces[i].size());
  }
  std::vector<crypto::Digest> out(batch);
  for (auto _ : state) {
    crypto::Sha256::finish_many_with_suffix(midstate, tail, suffixes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_Sha256FinishManySolverShape)->Arg(16)->Arg(256);

void BM_HmacSha256(benchmark::State& state) {
  const common::Bytes key = common::bytes_of("bench-key");
  const common::Bytes data = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_SipHash24(benchmark::State& state) {
  crypto::SipKey key{};
  for (std::uint8_t i = 0; i < 16; ++i) key[i] = i;
  const common::Bytes data = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::siphash24(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SipHash24)->Arg(16)->Arg(64)->Arg(1024);

void BM_HmacDrbgGenerate(benchmark::State& state) {
  crypto::HmacDrbg drbg(common::bytes_of("bench-entropy"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(drbg.generate(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_HmacDrbgGenerate)->Arg(32)->Arg(256);

// ---------------------------------------------------------------------------
// json= artifact: hashes/sec per (mode, backend), hand-timed so the
// numbers feed scripts/bench_diff.py without google-benchmark's output
// format in between.
// ---------------------------------------------------------------------------

struct HashrateRow {
  std::string case_name;  // "<mode>/<backend>"
  double hashes_per_s = 0.0;
};

template <typename Fn>
double hashes_per_second(Fn&& attempt) {
  // Calibrate a ~100 ms run, then time it.
  using clock = std::chrono::steady_clock;
  std::uint64_t iters = 2048;
  for (;;) {
    const auto t0 = clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) attempt(i);
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= 0.1 || iters >= (1ULL << 26)) {
      return static_cast<double>(iters) / s;
    }
    iters *= 4;
  }
}

int write_hashrate_json(const std::string& json_path) {
  const common::Bytes prefix = make_input(100);
  const crypto::Sha256Midstate midstate = crypto::Sha256::precompute(prefix);
  const common::BytesView tail(
      prefix.data() + midstate.absorbed,
      prefix.size() - static_cast<std::size_t>(midstate.absorbed));

  constexpr std::size_t kBatch = 256;
  std::vector<common::Bytes> messages;
  messages.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    common::Bytes m = prefix;
    common::append_u64be(m, i);
    messages.push_back(std::move(m));
  }
  std::vector<common::BytesView> views(messages.begin(), messages.end());
  std::vector<crypto::Digest> digests(kBatch);

  std::vector<std::array<std::uint8_t, 8>> nonces(kBatch);
  std::vector<common::BytesView> suffixes;
  suffixes.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    common::store_u64be(nonces[i].data(), i);
    suffixes.emplace_back(nonces[i].data(), nonces[i].size());
  }

  const crypto::Sha256Backend previous = crypto::Sha256::backend();
  std::vector<HashrateRow> rows;
  for (crypto::Sha256Backend b : crypto::Sha256::supported_backends()) {
    if (!crypto::Sha256::set_backend(b)) continue;
    const std::string backend(crypto::Sha256::backend_name(b));
    common::Bytes nonce_vec(8, 0);
    rows.push_back(
        {"solver_scalar/" + backend, hashes_per_second([&](std::uint64_t i) {
           common::store_u64be(nonce_vec.data(), i);
           benchmark::DoNotOptimize(
               crypto::Sha256::hash2(prefix, nonce_vec));
         })});
    std::uint8_t nonce[8];
    rows.push_back(
        {"solver_midstate/" + backend, hashes_per_second([&](std::uint64_t i) {
           common::store_u64be(nonce, i);
           benchmark::DoNotOptimize(crypto::Sha256::finish_with_suffix(
               midstate, tail, common::BytesView(nonce, 8)));
         })});
    const double sweeps = hashes_per_second([&](std::uint64_t) {
      crypto::Sha256::hash_many(views, digests);
      benchmark::DoNotOptimize(digests.data());
    });
    rows.push_back(
        {"hash_many_256/" + backend, sweeps * static_cast<double>(kBatch)});
    const double finish_sweeps = hashes_per_second([&](std::uint64_t) {
      crypto::Sha256::finish_many_with_suffix(midstate, tail, suffixes,
                                              digests);
      benchmark::DoNotOptimize(digests.data());
    });
    rows.push_back({"solver_sweep/" + backend,
                    finish_sweeps * static_cast<double>(kBatch)});
  }
  crypto::Sha256::set_backend(previous);

  std::printf("\nhashes/sec by case (json artifact):\n");
  for (const HashrateRow& row : rows) {
    std::printf("  %-28s %14.0f\n", row.case_name.c_str(), row.hashes_per_s);
  }

  common::JsonWriter w;
  w.begin_object();
  w.field_str("bench", "crypto");
  w.field_str("default_backend", std::string(crypto::Sha256::backend_name(
                                     crypto::Sha256::backend())));
  w.begin_array("rows");
  for (const HashrateRow& row : rows) {
    w.begin_object();
    w.field_str("case", row.case_name);
    w.field_f64("hashes_per_s", row.hashes_per_s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  if (!common::write_json_file(json_path, w)) {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("json written: %s\n", json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our json=path knob before google-benchmark parses flags.
  std::string json_path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "json=", 5) == 0) {
      json_path = argv[i] + 5;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!json_path.empty()) return write_hashrate_json(json_path);
  return 0;
}
