// THROTTLE — the headline claim (abstract/§I): "our approach effectively
// throttles untrustworthy traffic". Event-driven flood simulation, run
// once without the framework and once with it, at the realistic
// (80%-accuracy) class overlap.
//
// Usage:   ./build/bench/bench_throttling [benign=90] [attackers=10]
//          [duration_s=20] [overlap=0.58] [seed=7]

#include <cstdio>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "policy/error_range_policy.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/throttling.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);

  sim::ThrottlingConfig cfg;
  cfg.workload.benign_clients =
      static_cast<std::size_t>(args.get_u64("benign", 90));
  cfg.workload.attackers =
      static_cast<std::size_t>(args.get_u64("attackers", 10));
  cfg.workload.traffic.class_overlap = args.get_f64("overlap", 0.58);
  cfg.duration_s = args.get_f64("duration_s", 20.0);
  cfg.seed = args.get_u64("seed", 7);
  cfg.real_hashing = false;  // timing-model mode scales to this population

  common::Rng rng(cfg.seed ^ 0xbeefULL);
  reputation::DabrModel model;
  model.fit(sim::make_training_set(cfg.workload, 1000, 1000, rng));

  std::printf("THROTTLE: %zu benign + %zu attackers, %.0f s, DAbR eps=%.2f\n",
              cfg.workload.benign_clients, cfg.workload.attackers,
              cfg.duration_s, model.error_epsilon());

  struct Scenario {
    const char* label;
    bool pow;
    const policy::IPolicy* policy;
  };
  const policy::LinearPolicy policy2 = policy::LinearPolicy::policy2();
  const policy::ErrorRangePolicy policy3(model.error_epsilon());
  const Scenario scenarios[] = {
      {"no defense (baseline)", false, &policy2},
      {"pow + policy2", true, &policy2},
      {"pow + policy3 (model-matched eps)", true, &policy3},
  };

  double baseline_attacker_goodput = 0.0;
  for (const Scenario& s : scenarios) {
    cfg.pow_enabled = s.pow;
    const sim::ThrottlingReport report =
        sim::run_throttling(cfg, model, *s.policy);
    std::printf("\n--- %s ---  server utilization %.0f%%\n%s",
                s.label, 100.0 * report.server_utilization,
                report.to_table().to_text().c_str());
    if (!s.pow) {
      baseline_attacker_goodput = report.attacker.goodput_rps;
    } else if (report.attacker.goodput_rps > 0.0) {
      std::printf("attacker goodput throttled %.1fx vs baseline\n",
                  baseline_attacker_goodput / report.attacker.goodput_rps);
    }
  }
  return 0;
}
