// ABL-VARIANCE — variance-reduced puzzles: the same expected work split
// into k subpuzzles tightens the solve-time distribution by ~sqrt(k),
// letting a policy hit its latency target instead of a wide band around
// it. Prints mean/median/p90 attempts and the relative spread per fanout.
//
// Usage:   ./build/bench/bench_variance [d=12] [trials=60]

#include <cmath>
#include <cstdio>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "pow/generator.hpp"
#include "pow/multi_puzzle.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const unsigned d = static_cast<unsigned>(args.get_u64("d", 12));
  const int trials = static_cast<int>(args.get_i64("trials", 60));

  common::ManualClock clock;
  pow::PuzzleGenerator generator(clock, common::bytes_of("variance-bench"));

  common::Table table({"fanout", "sub_difficulty", "mean_attempts",
                       "median_attempts", "p90_attempts", "stddev/mean",
                       "theory_stddev/mean"});

  for (unsigned fanout : {1u, 2u, 4u, 8u, 16u}) {
    if (static_cast<unsigned>(std::log2(fanout)) >= d) break;
    common::Samples attempts;
    for (int t = 0; t < trials; ++t) {
      const pow::MultiPuzzle m =
          pow::split_puzzle(generator.issue("198.51.100.4", d), fanout);
      const pow::MultiSolveResult r = pow::solve_multi(m);
      if (!r.found) {
        std::fprintf(stderr, "unexpected unsolved multi-puzzle\n");
        return 1;
      }
      attempts.add(static_cast<double>(r.attempts));
    }
    table.add_row({std::to_string(fanout),
                   std::to_string(d - static_cast<unsigned>(std::log2(fanout))),
                   common::fmt_f(attempts.mean(), 0),
                   common::fmt_f(attempts.median(), 0),
                   common::fmt_f(attempts.quantile(0.9), 0),
                   common::fmt_f(attempts.stddev() / attempts.mean(), 3),
                   common::fmt_f(1.0 / std::sqrt(fanout), 3)});
  }

  std::printf("ABL-VARIANCE: fanout-k subpuzzles at constant expected work "
              "2^%u (%d trials per row)\n\n%s\n",
              d, trials, table.to_text().c_str());
  std::printf("stddev/mean should track 1/sqrt(k): the policy's assigned "
              "latency becomes a tight target rather than a wide band.\n");
  return 0;
}
