// CLAIM-80PCT — reproduces §II.1's model claim: DAbR "generates a
// reputation score for an IP with an accuracy of 80%". Trains all four
// models on synthetic traffic at the calibrated class overlap, evaluates
// on a held-out split, and times per-request scoring (the AI model sits
// on the request path, so its latency matters too).
//
// Usage:   ./build/bench/bench_reputation_models [rows=3000] [overlap=0.58]
//          [seed=9]

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "features/synthetic.hpp"
#include "reputation/dabr.hpp"
#include "reputation/ensemble.hpp"
#include "reputation/evaluator.hpp"
#include "reputation/knn.hpp"
#include "reputation/logistic.hpp"
#include "reputation/naive_bayes.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const auto rows = static_cast<std::size_t>(args.get_u64("rows", 3000));
  features::SyntheticConfig traffic_cfg;
  traffic_cfg.class_overlap = args.get_f64("overlap", 0.58);

  const features::SyntheticTraceGenerator traffic(traffic_cfg);
  common::Rng rng(args.get_u64("seed", 9));
  features::Dataset data = traffic.generate(rows / 2, rows / 2, rng);
  data.shuffle(rng);
  const auto [train, test] = data.split(0.7);

  std::vector<std::unique_ptr<reputation::IReputationModel>> models;
  models.push_back(std::make_unique<reputation::DabrModel>());
  models.push_back(std::make_unique<reputation::KnnModel>());
  models.push_back(std::make_unique<reputation::LogisticModel>());
  models.push_back(std::make_unique<reputation::NaiveBayesModel>());
  models.push_back(reputation::make_default_ensemble());

  common::Table table({"model", "accuracy", "precision", "recall", "f1",
                       "auc", "epsilon", "score_us"});
  for (auto& model : models) {
    const auto fit0 = std::chrono::steady_clock::now();
    model->fit(train);
    const auto fit1 = std::chrono::steady_clock::now();
    (void)fit0;
    (void)fit1;
    const reputation::EvaluationReport r = reputation::evaluate(*model, test);

    // Scoring latency: mean over the test set.
    const auto s0 = std::chrono::steady_clock::now();
    double sink = 0.0;
    for (const auto& row : test.rows()) sink += model->score(row.features);
    const auto s1 = std::chrono::steady_clock::now();
    const double score_us =
        std::chrono::duration<double, std::micro>(s1 - s0).count() /
        static_cast<double>(test.size());
    (void)sink;

    table.add_row({std::string(model->name()), common::fmt_f(r.accuracy, 3),
                   common::fmt_f(r.precision, 3), common::fmt_f(r.recall, 3),
                   common::fmt_f(r.f1, 3), common::fmt_f(r.roc_auc, 3),
                   common::fmt_f(model->error_epsilon(), 2),
                   common::fmt_f(score_us, 2)});
  }

  std::printf("CLAIM-80PCT: reputation models on held-out traffic "
              "(%zu train / %zu test, overlap=%.2f)\n\n%s\n",
              train.size(), test.size(), traffic_cfg.class_overlap,
              table.to_text().c_str());
  std::printf("paper anchor: DAbR accuracy ~ 0.80 (the synthetic overlap is "
              "calibrated to land DAbR near it; see DESIGN.md)\n");
  return 0;
}
