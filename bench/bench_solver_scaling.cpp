// ABL-SOLVER — solver scaling: wall-clock speedup of the multithreaded
// nonce search. Relevant to the framework's threat model: an attacker
// with k cores cuts solve latency ~k-fold, so the policy's difficulty
// slope must account for adversarial hardware.
//
// Usage:   ./build/bench/bench_solver_scaling [trials=10] [d=17]

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "pow/generator.hpp"
#include "pow/solver.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const int trials = static_cast<int>(args.get_i64("trials", 10));
  const unsigned d = static_cast<unsigned>(args.get_u64("d", 17));

  common::ManualClock clock;
  pow::PuzzleGenerator generator(clock, common::bytes_of("scaling-secret"));
  const pow::Solver solver;

  // Same puzzle set for every thread count, so the comparison is paired.
  std::vector<pow::Puzzle> puzzles;
  for (int t = 0; t < trials; ++t) {
    puzzles.push_back(generator.issue("198.51.100.3", d));
  }

  common::Table table({"threads", "mean_ms", "median_ms", "speedup"});
  double baseline_ms = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    common::Samples wall_ms;
    for (const pow::Puzzle& puzzle : puzzles) {
      pow::SolveOptions options;
      options.threads = threads;
      const auto t0 = std::chrono::steady_clock::now();
      const pow::SolveResult r = solver.solve(puzzle, options);
      const auto t1 = std::chrono::steady_clock::now();
      if (!r.found) {
        std::fprintf(stderr, "unexpected unsolved puzzle\n");
        return 1;
      }
      wall_ms.add(std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    if (threads == 1) baseline_ms = wall_ms.mean();
    table.add_row({std::to_string(threads), common::fmt_f(wall_ms.mean(), 2),
                   common::fmt_f(wall_ms.median(), 2),
                   common::fmt_f(baseline_ms / wall_ms.mean(), 2)});
  }

  std::printf("ABL-SOLVER: multithreaded nonce search at difficulty %u "
              "(%d paired trials)\n\n%s\n",
              d, trials, table.to_text().c_str());
  std::printf("hardware threads on this machine: %u "
              "(speedup is bounded by physical cores)\n",
              std::thread::hardware_concurrency());
  return 0;
}
