// CLAIM-31MS — reproduces §III.A's calibration sentence: "It takes 31 ms
// on average to solve a 1-difficult puzzle, and this time increases with
// difficulty."
//
// Two views per difficulty 1..16:
//   * the calibrated DES model (what Figure 2 is built on), and
//   * real wall-clock SHA-256 solving on this machine (raw CPU cost —
//     absolute numbers differ from the paper's testbed; the doubling
//     shape is what must hold).
//
// The wall columns double as the solver-throughput headline: the
// single-thread hashes/sec column (attempts / wall) is what the
// midstate + dispatch work speeds up, and `json=path` writes it per
// difficulty as a bench_diff.py artifact ("solve_time", metric
// hashes_per_s). POWAI_SHA256_BACKEND=generic re-runs the same sweep on
// the scalar reference for before/after comparisons on one machine.
//
// `sweep_json=path` writes a second artifact ("solver_sweep"): for every
// supported backend, single-probe (PuzzleContext::check) vs lane-sweep
// (PuzzleContext::check_many) solver throughput on an unsolvable
// context — "sweep/avx2 over single/avx2" is the lane-parallelism
// speedup, isolated from dispatch and midstate effects.
//
// Usage:   ./build/bench/bench_solve_time [trials=30] [max_d=16]
//              [json=path] [sweep_json=path]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/json.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "crypto/sha256.hpp"
#include "pow/difficulty.hpp"
#include "pow/generator.hpp"
#include "pow/solver.hpp"
#include "sim/latency_model.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const int trials = static_cast<int>(args.get_i64("trials", 30));
  const unsigned max_d = static_cast<unsigned>(args.get_u64("max_d", 16));
  const std::string json_path = args.get_string("json", "");

  common::ManualClock clock;
  pow::PuzzleGenerator generator(clock, common::bytes_of("solve-time-secret"));
  const pow::Solver solver;
  const sim::LatencyModel model;
  common::Rng rng(42);

  common::Table table({"difficulty", "expected_hashes", "model_mean_ms",
                       "model_median_ms", "wall_mean_ms", "wall_median_ms",
                       "mean_attempts", "hashes_per_s"});

  struct Row {
    unsigned difficulty = 0;
    double wall_mean_ms = 0.0;
    double mean_attempts = 0.0;
    double hashes_per_s = 0.0;
  };
  std::vector<Row> rows;

  for (unsigned d = 1; d <= max_d; ++d) {
    common::Samples wall_ms;
    common::Samples modeled_ms;
    common::RunningStats attempts;
    double total_s = 0.0;
    double total_attempts = 0.0;
    for (int t = 0; t < trials; ++t) {
      const pow::Puzzle puzzle = generator.issue("198.51.100.1", d);
      const auto t0 = std::chrono::steady_clock::now();
      const pow::SolveResult r = solver.solve(puzzle);
      const auto t1 = std::chrono::steady_clock::now();
      const double s = std::chrono::duration<double>(t1 - t0).count();
      wall_ms.add(s * 1e3);
      total_s += s;
      total_attempts += static_cast<double>(r.attempts);
      modeled_ms.add(model.end_to_end_ms(r.attempts, rng));
      attempts.add(static_cast<double>(r.attempts));
    }
    const double hashes_per_s = total_s > 0.0 ? total_attempts / total_s : 0.0;
    rows.push_back({d, wall_ms.mean(), attempts.mean(), hashes_per_s});
    table.add_row({std::to_string(d),
                   common::fmt_f(pow::expected_hashes(d), 0),
                   common::fmt_f(modeled_ms.mean(), 2),
                   common::fmt_f(modeled_ms.median(), 2),
                   common::fmt_f(wall_ms.mean(), 3),
                   common::fmt_f(wall_ms.median(), 3),
                   common::fmt_f(attempts.mean(), 1),
                   common::fmt_f(hashes_per_s, 0)});
  }

  std::printf("CLAIM-31MS: solve time vs difficulty, %d trials each "
              "(sha256 backend: %s)\n\n%s\n",
              trials,
              std::string(crypto::Sha256::backend_name(
                              crypto::Sha256::backend())).c_str(),
              table.to_text().c_str());
  std::printf("paper anchor: 1-difficult puzzle ~ 31 ms average (their "
              "testbed, incl. round trip);\n"
              "model column reproduces that anchor; wall columns show this "
              "machine's raw hash cost.\n");

  if (!json_path.empty()) {
    common::JsonWriter w;
    w.begin_object();
    w.field_str("bench", "solve_time");
    w.field_u64("trials", static_cast<std::uint64_t>(trials));
    w.field_str("sha256_backend", std::string(crypto::Sha256::backend_name(
                                      crypto::Sha256::backend())));
    w.begin_array("rows");
    for (const Row& row : rows) {
      w.begin_object();
      w.field_u64("difficulty", row.difficulty);
      w.field_f64("wall_mean_ms", row.wall_mean_ms);
      w.field_f64("mean_attempts", row.mean_attempts);
      w.field_f64("hashes_per_s", row.hashes_per_s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!common::write_json_file(json_path, w)) {
      std::fprintf(stderr, "could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json written: %s\n", json_path.c_str());
  }

  const std::string sweep_json_path = args.get_string("sweep_json", "");
  if (!sweep_json_path.empty()) {
    // Difficulty 40 is unsolvable within any benchmark run, so every
    // probe costs exactly one finish and the scan never terminates
    // early — pure throughput, no luck.
    const pow::Puzzle hard = generator.issue("198.51.100.1", 40);
    const pow::PuzzleContext context(hard);

    // Calibrate each case to a ~100 ms run, then report probes/sec.
    const auto rate = [](auto&& block, std::uint64_t probes_per_block) {
      std::uint64_t blocks = 1024;
      for (;;) {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < blocks; ++i) block(i);
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        if (s >= 0.1 || blocks >= (1ULL << 24)) {
          return static_cast<double>(blocks * probes_per_block) / s;
        }
        blocks *= 4;
      }
    };

    struct SweepRow {
      std::string case_name;  // "single/<backend>" or "sweep/<backend>"
      double hashes_per_s = 0.0;
    };
    std::vector<SweepRow> sweep_rows;
    bool sink = false;  // keeps the probe results observable
    const crypto::Sha256Backend previous = crypto::Sha256::backend();
    for (crypto::Sha256Backend b : crypto::Sha256::supported_backends()) {
      if (!crypto::Sha256::set_backend(b)) continue;
      const std::string backend(crypto::Sha256::backend_name(b));
      sweep_rows.push_back({"single/" + backend,
                            rate([&](std::uint64_t i) { sink ^= context.check(i); },
                                 1)});
      // A few lane groups per call so per-call overhead is amortized the
      // way the solver amortizes it; single-stream backends still go
      // through check_many's sequential path.
      const std::uint64_t batch =
          std::max<std::uint64_t>(crypto::Sha256::lane_width(b) * 4, 16);
      sweep_rows.push_back(
          {"sweep/" + backend, rate(
                                   [&](std::uint64_t i) {
                                     sink ^= context.check_many(
                                                 i * batch, 1,
                                                 static_cast<std::size_t>(
                                                     batch)) != batch;
                                   },
                                   batch)});
    }
    crypto::Sha256::set_backend(previous);

    std::printf("\nsolver probes/sec, single vs lane sweep (sink=%d):\n",
                static_cast<int>(sink));
    for (const SweepRow& row : sweep_rows) {
      std::printf("  %-18s %14.0f\n", row.case_name.c_str(), row.hashes_per_s);
    }

    common::JsonWriter w;
    w.begin_object();
    w.field_str("bench", "solver_sweep");
    w.field_str("default_backend", std::string(crypto::Sha256::backend_name(
                                       crypto::Sha256::backend())));
    w.begin_array("rows");
    for (const SweepRow& row : sweep_rows) {
      w.begin_object();
      w.field_str("case", row.case_name);
      w.field_f64("hashes_per_s", row.hashes_per_s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!common::write_json_file(sweep_json_path, w)) {
      std::fprintf(stderr, "could not write %s\n", sweep_json_path.c_str());
      return 1;
    }
    std::printf("json written: %s\n", sweep_json_path.c_str());
  }
  return 0;
}
