// CLAIM-31MS — reproduces §III.A's calibration sentence: "It takes 31 ms
// on average to solve a 1-difficult puzzle, and this time increases with
// difficulty."
//
// Two views per difficulty 1..16:
//   * the calibrated DES model (what Figure 2 is built on), and
//   * real wall-clock SHA-256 solving on this machine (raw CPU cost —
//     absolute numbers differ from the paper's testbed; the doubling
//     shape is what must hold).
//
// Usage:   ./build/bench/bench_solve_time [trials=30] [max_d=16]

#include <chrono>
#include <cstdio>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "pow/difficulty.hpp"
#include "pow/generator.hpp"
#include "pow/solver.hpp"
#include "sim/latency_model.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const int trials = static_cast<int>(args.get_i64("trials", 30));
  const unsigned max_d = static_cast<unsigned>(args.get_u64("max_d", 16));

  common::ManualClock clock;
  pow::PuzzleGenerator generator(clock, common::bytes_of("solve-time-secret"));
  const pow::Solver solver;
  const sim::LatencyModel model;
  common::Rng rng(42);

  common::Table table({"difficulty", "expected_hashes", "model_mean_ms",
                       "model_median_ms", "wall_mean_ms", "wall_median_ms",
                       "mean_attempts"});

  for (unsigned d = 1; d <= max_d; ++d) {
    common::Samples wall_ms;
    common::Samples modeled_ms;
    common::RunningStats attempts;
    for (int t = 0; t < trials; ++t) {
      const pow::Puzzle puzzle = generator.issue("198.51.100.1", d);
      const auto t0 = std::chrono::steady_clock::now();
      const pow::SolveResult r = solver.solve(puzzle);
      const auto t1 = std::chrono::steady_clock::now();
      wall_ms.add(std::chrono::duration<double, std::milli>(t1 - t0).count());
      modeled_ms.add(model.end_to_end_ms(r.attempts, rng));
      attempts.add(static_cast<double>(r.attempts));
    }
    table.add_row({std::to_string(d),
                   common::fmt_f(pow::expected_hashes(d), 0),
                   common::fmt_f(modeled_ms.mean(), 2),
                   common::fmt_f(modeled_ms.median(), 2),
                   common::fmt_f(wall_ms.mean(), 3),
                   common::fmt_f(wall_ms.median(), 3),
                   common::fmt_f(attempts.mean(), 1)});
  }

  std::printf("CLAIM-31MS: solve time vs difficulty, %d trials each\n\n%s\n",
              trials, table.to_text().c_str());
  std::printf("paper anchor: 1-difficult puzzle ~ 31 ms average (their "
              "testbed, incl. round trip);\n"
              "model column reproduces that anchor; wall columns show this "
              "machine's raw hash cost.\n");
  return 0;
}
