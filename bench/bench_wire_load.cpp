// WIRE-LOAD — end-to-end throughput of the full protocol as bytes over
// the simulated network: request → challenge → solve → submit →
// response, through the synchronous ServerEndpoint shim (row "sync")
// and through the AsyncFrontEnd batch bridge at several server pool
// sizes (rows "async/T"). The interesting column is wall-clock, not
// simulated time: simulated time is identical by construction (the
// async pump freezes the clock while batches are in flight), so wall
// time isolates what the queue + batch + post machinery costs or saves.
// On a single-core container async ≈ sync; the async rows pull ahead
// with hardware threads because solving happens on the loop thread but
// scoring/issuing/verifying fans out over the server pool.
//
// Scale mode (pace=1): the closed loop is paced by a heavy-tailed
// ClientPopulation arrival process, the artifact is named
// "wire_load_scale", and the bytes/client columns become the headline —
// the per-layer memory the million-client refactor holds at O(1) per
// client. This is what CI's scale-smoke job runs at clients=100000.
//
// Overload mode (overload=1): arms the full overload-control loop —
// request deadlines, the degradation ladder, client retry/timeout/
// backoff, and the drain watchdog — and the artifact is named
// "wire_load_overload". The sojourn p50/p99 columns and the per-stage
// shed counters (deadline / queue-pop / degraded) become the headline:
// what admission control costs and what it refuses under pressure.
//
// Usage: ./build/bench/bench_wire_load [clients=8] [requests=16]
//        [max_threads=4] [train=400] [seed=42] [json=path]
//        [pace=0] [arrivals=poisson|diurnal|pareto|flash]
//        [mean_gap_ms=1000] [weight_alpha=0] [pop_seed=1]
//        [drain_shards=1] [queue_capacity=1024] [pin=0] [overload=0]
//
// json=path writes the rows as a JSON artifact (CI uploads one per run;
// docs/ARCHITECTURE.md describes how to compare them across commits).

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "features/synthetic.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/load_harness.hpp"

namespace {

struct Row {
  std::string mode;
  powai::sim::WireLoadReport report;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const auto clients = static_cast<std::size_t>(args.get_u64("clients", 8));
  const auto requests = static_cast<std::size_t>(args.get_u64("requests", 16));
  const auto max_threads =
      static_cast<std::size_t>(args.get_u64("max_threads", 4));
  const auto train = static_cast<std::size_t>(args.get_u64("train", 400));
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::string json_path = args.get_string("json", "");
  const bool pace = args.get_bool("pace", false);
  const std::string arrivals_name = args.get_string("arrivals", "poisson");
  const double mean_gap_ms = args.get_f64("mean_gap_ms", 1000.0);
  const double weight_alpha = args.get_f64("weight_alpha", 0.0);
  const std::uint64_t pop_seed = args.get_u64("pop_seed", 1);
  const auto drain_shards =
      static_cast<std::size_t>(args.get_u64("drain_shards", 1));
  const auto queue_capacity =
      static_cast<std::size_t>(args.get_u64("queue_capacity", 1024));
  const bool pin = args.get_bool("pin", false);
  const bool overload = args.get_bool("overload", false);

  if (clients == 0 || requests == 0 || max_threads == 0) {
    std::fprintf(stderr, "clients, requests, max_threads must be positive\n");
    return 1;
  }
  sim::ArrivalConfig arrivals;
  if (!sim::parse_arrival_process(arrivals_name, arrivals.process)) {
    std::fprintf(stderr, "unknown arrivals '%s'\n", arrivals_name.c_str());
    return 1;
  }
  arrivals.mean_interarrival_ms = mean_gap_ms;

  common::Rng rng(seed);
  const features::SyntheticTraceGenerator gen;
  reputation::DabrModel model;
  model.fit(gen.generate(train, train, rng));
  const policy::LinearPolicy policy = policy::LinearPolicy::policy2();

  std::vector<features::FeatureVector> client_features;
  for (int i = 0; i < 8; ++i) client_features.push_back(gen.sample(false, rng));

  const auto run_mode = [&](bool async, std::size_t threads) {
    framework::ServerConfig cfg;
    cfg.master_secret = common::bytes_of("wire-load-bench-secret");
    cfg.verify_threads = threads;
    cfg.pin_verify_threads = pin;
    sim::WireLoadConfig wc;
    wc.clients = clients;
    wc.requests_per_client = requests;
    wc.async = async;
    wc.front_end.drain_shards = drain_shards;
    wc.front_end.queue_capacity = queue_capacity;
    wc.front_end.pin_drains = pin;
    wc.pace_arrivals = pace;
    wc.arrivals = arrivals;
    wc.weight_alpha = weight_alpha;
    wc.population_seed = pop_seed;
    if (overload) {
      // Full overload-control loop. The arrival reference sits below the
      // closed loop's natural rate so the ladder actually rides and the
      // shed columns are non-trivial.
      cfg.default_deadline = std::chrono::seconds(2);
      cfg.degrade.enabled = true;
      cfg.degrade.arrival_ref_per_s = 25.0;
      cfg.degrade.sojourn_ref_ms = 5.0;
      cfg.degrade.l1_difficulty_floor = 12;
      cfg.degrade.l1_ttl = std::chrono::seconds(5);
      wc.front_end.watchdog_stall = std::chrono::milliseconds(250);
      wc.retry.enabled = true;
      wc.retry.timeout = std::chrono::seconds(2);
      wc.retry.max_attempts = 3;
      wc.retry.backoff_base = std::chrono::milliseconds(50);
      wc.retry.backoff_cap = std::chrono::seconds(1);
      wc.retry.jitter_seed = seed;
      wc.retry.request_deadline = std::chrono::seconds(2);
    }
    return sim::run_wire_load(model, policy, cfg, client_features, wc);
  };

  std::vector<Row> rows;
  rows.push_back({"sync", run_mode(false, 1)});
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    rows.push_back({"async/" + std::to_string(threads),
                    run_mode(true, threads)});
  }

  common::Table table({"mode", "answered", "served", "wall-ms", "sim-ms",
                       "ans/s", "batches", "max-batch", "soj-p50", "soj-p99",
                       "shed d/q/g", "srv-B/cl", "sim-B/cl"});
  for (const Row& row : rows) {
    const auto& r = row.report;
    const auto& s = r.server_delta;
    table.add_row({row.mode, std::to_string(r.answered),
                   std::to_string(r.served),
                   common::fmt_f(r.wall_s * 1e3, 1),
                   common::fmt_f(common::to_millis_f(r.sim_elapsed), 1),
                   common::fmt_f(r.answered_per_wall_s(), 0),
                   std::to_string(r.front_end.batches),
                   std::to_string(r.front_end.largest_batch),
                   common::fmt_f(r.front_end.sojourn.percentile_ms(0.5), 3),
                   common::fmt_f(r.front_end.sojourn.percentile_ms(0.99), 3),
                   std::to_string(s.shed_deadline_requests +
                                  s.shed_deadline_submissions) +
                       "/" +
                       std::to_string(s.shed_queue_requests +
                                      s.shed_queue_submissions) +
                       "/" +
                       std::to_string(s.shed_degraded_requests +
                                      s.shed_degraded_submissions),
                   common::fmt_f(r.server_bytes_per_client(), 1),
                   common::fmt_f(r.sim_bytes_per_client(), 1)});
  }

  std::printf("WIRE-LOAD%s: full protocol over netsim, %zu clients x %zu "
              "requests%s\n\n%s\n",
              pace ? " (scale)" : (overload ? " (overload)" : ""), clients,
              requests,
              pace ? (", " + arrivals_name + " arrivals").c_str() : "",
              table.to_text().c_str());
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  // Cross-transport invariant, checked here too so CI's informational
  // run fails loudly if the bridge ever loses or duplicates a message.
  const auto& sync_r = rows.front().report;
  for (const Row& row : rows) {
    const auto& r = row.report;
    if (r.served != sync_r.served || r.answered != sync_r.answered ||
        r.server_delta.challenges_issued !=
            sync_r.server_delta.challenges_issued) {
      std::fprintf(stderr, "MISMATCH: %s totals diverge from sync\n",
                   row.mode.c_str());
      return 1;
    }
  }

  if (!json_path.empty()) {
    common::JsonWriter w;
    w.begin_object();
    // Scale and overload runs are different workload shapes (paced
    // arrivals / admission control armed); distinct bench names keep
    // bench_diff.py from comparing them against the plain closed-loop
    // baselines.
    w.field_str("bench", pace ? "wire_load_scale"
                              : (overload ? "wire_load_overload"
                                          : "wire_load"));
    w.field_u64("clients", clients);
    w.field_u64("requests_per_client", requests);
    if (pace) {
      w.field_str("arrivals", arrivals_name);
      w.field_f64("mean_gap_ms", mean_gap_ms);
      w.field_f64("weight_alpha", weight_alpha);
    }
    w.field_u64("hardware_threads", std::thread::hardware_concurrency());
    w.begin_array("rows");
    for (const Row& row : rows) {
      const auto& r = row.report;
      w.begin_object();
      w.field_str("mode", row.mode);
      w.field_u64("answered", r.answered);
      w.field_u64("served", r.served);
      w.field_u64("overloaded", r.overloaded);
      w.field_f64("wall_s", r.wall_s);
      w.field_f64("sim_ms", common::to_millis_f(r.sim_elapsed));
      w.field_f64("answered_per_wall_s", r.answered_per_wall_s());
      w.field_u64("batches", r.front_end.batches);
      w.field_u64("largest_batch", r.front_end.largest_batch);
      w.field_f64("sojourn_p50_ms", r.front_end.sojourn.percentile_ms(0.5));
      w.field_f64("sojourn_p99_ms", r.front_end.sojourn.percentile_ms(0.99));
      w.field_u64("expired_dropped", r.front_end.expired_dropped);
      w.field_u64("shed_deadline", r.server_delta.shed_deadline_requests +
                                       r.server_delta.shed_deadline_submissions);
      w.field_u64("shed_queue", r.server_delta.shed_queue_requests +
                                    r.server_delta.shed_queue_submissions);
      w.field_u64("shed_degraded",
                  r.server_delta.shed_degraded_requests +
                      r.server_delta.shed_degraded_submissions);
      w.field_u64("watchdog_stalls", r.watchdog_stalls);
      w.field_u64("challenges_issued", r.server_delta.challenges_issued);
      w.field_u64("server_memory_bytes", r.server_memory_bytes);
      w.field_f64("server_bytes_per_client", r.server_bytes_per_client());
      w.field_f64("sim_bytes_per_client", r.sim_bytes_per_client());
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!common::write_json_file(json_path, w)) {
      std::fprintf(stderr, "could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json written: %s\n", json_path.c_str());
  }
  return 0;
}
