// BATCH-VERIFY — throughput of the thread-pool BatchVerifier vs
// sequential verification on the same shared, shard-striped Verifier.
// Verification is one HMAC + one SHA-256 per solution (§II.5), so it
// parallelizes with almost no shared state: the only cross-thread
// contention is the replay-cache shard lock.
//
// The batch is solved offline at difficulty 12 (the paper's mid band);
// each timed pass re-verifies it against a fresh Verifier so the replay
// cache never rejects.
//
// Usage:   ./build/bench/bench_batch_verifier [batch=2048] [passes=5]
//          [difficulty=12] [max_threads=8]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "pow/batch_verifier.hpp"
#include "pow/generator.hpp"
#include "pow/solver.hpp"
#include "pow/verifier.hpp"

namespace {

double run_passes(const std::vector<powai::pow::VerificationJob>& jobs,
                  int passes, std::size_t threads, bool sequential,
                  const powai::common::Clock& clock,
                  const powai::common::Bytes& secret) {
  using namespace powai;
  double best_ops = 0.0;
  for (int pass = 0; pass < passes; ++pass) {
    pow::Verifier verifier(clock, secret);
    pow::BatchVerifier batch(verifier, threads);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<common::Status> results =
        sequential ? batch.verify_sequential(jobs) : batch.verify_batch(jobs);
    const auto t1 = std::chrono::steady_clock::now();
    for (const auto& st : results) {
      if (!st.ok()) {
        std::fprintf(stderr, "unexpected verify failure: %s\n",
                     st.error().to_string().c_str());
        std::exit(1);
      }
    }
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    best_ops = std::max(
        best_ops, static_cast<double>(jobs.size()) / std::max(secs, 1e-12));
  }
  return best_ops;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const auto batch_size = static_cast<std::size_t>(args.get_u64("batch", 2048));
  const int passes = static_cast<int>(args.get_i64("passes", 5));
  const unsigned difficulty =
      static_cast<unsigned>(args.get_u64("difficulty", 12));
  const auto max_threads =
      static_cast<std::size_t>(args.get_u64("max_threads", 8));

  if (batch_size == 0 || passes <= 0) {
    std::fprintf(stderr, "batch and passes must be positive\n");
    return 1;
  }

  common::ManualClock clock;
  const common::Bytes secret = common::bytes_of("batch-bench-secret");
  pow::PuzzleGenerator generator(clock, secret);
  const pow::Solver solver;

  std::printf("solving %zu puzzles at difficulty %u (offline, one-time)...\n",
              batch_size, difficulty);
  std::vector<std::pair<pow::Puzzle, pow::Solution>> solved;
  solved.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    const pow::Puzzle p = generator.issue("198.51.100.7", difficulty);
    const pow::SolveResult r = solver.solve(p);
    if (!r.found) {
      std::fprintf(stderr, "solver failed unexpectedly\n");
      return 1;
    }
    solved.emplace_back(p, r.solution);
  }
  // Jobs are non-owning; build them only after `solved` stops growing.
  std::vector<pow::VerificationJob> jobs;
  jobs.reserve(batch_size);
  for (const auto& [puzzle, solution] : solved) {
    jobs.push_back({&puzzle, &solution, nullptr});
  }

  const double seq_ops =
      run_passes(jobs, passes, 1, /*sequential=*/true, clock, secret);

  common::Table table({"mode", "threads", "kops/s", "speedup"});
  table.add_row({"sequential", "1", common::fmt_f(seq_ops / 1e3, 1), "1.00"});

  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    const double ops =
        run_passes(jobs, passes, threads, /*sequential=*/false, clock, secret);
    table.add_row({"batch", std::to_string(threads),
                   common::fmt_f(ops / 1e3, 1),
                   common::fmt_f(ops / seq_ops, 2)});
  }

  std::printf("\nBATCH-VERIFY: parallel verification throughput, batch=%zu "
              "difficulty=%u (best of %d passes)\n\n%s\n",
              batch_size, difficulty, passes, table.to_text().c_str());
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  return 0;
}
