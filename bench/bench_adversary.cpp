// ABL-ADVERSARY — security table: every bypass strategy against the full
// server pipeline, with its success rate and the hash work it had to
// invest. Regenerates the security table in EXPERIMENTS.md.
//
// Usage:   ./build/bench/bench_adversary [attempts=25] [seed=99]

#include <cstdio>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/adversary.hpp"
#include "sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  sim::AdversaryConfig cfg;
  cfg.attempts_per_strategy = args.get_u64("attempts", 25);
  cfg.seed = args.get_u64("seed", 99);

  sim::WorkloadConfig wl;  // default (realistic) overlap
  common::Rng rng(cfg.seed ^ 0xadULL);
  reputation::DabrModel model;
  model.fit(sim::make_training_set(wl, 800, 800, rng));
  const policy::LinearPolicy policy = policy::LinearPolicy::policy2();

  const auto reports = sim::run_adversaries(cfg, model, policy);
  std::printf("ABL-ADVERSARY: bypass strategies vs the full pipeline "
              "(%llu attempts each, policy2, DAbR eps=%.2f)\n\n%s\n",
              static_cast<unsigned long long>(cfg.attempts_per_strategy),
              model.error_epsilon(),
              sim::adversary_table(reports).to_text().c_str());
  std::printf("every bypass fails closed; only honest hash work (sybil row) "
              "obtains service, at full per-request price.\n");
  return 0;
}
