// ABL-VERIFY — §II.5 calls verification a "light weight block". This
// bench quantifies the asymmetry: verifying a solution is O(1) (one HMAC
// + one SHA-256) while solving is O(2^d); the table reports the measured
// ratio per difficulty.
//
// Usage:   ./build/bench/bench_verifier [trials=20] [max_d=14]

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "pow/generator.hpp"
#include "pow/solver.hpp"
#include "pow/verifier.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const int trials = static_cast<int>(args.get_i64("trials", 20));
  const unsigned max_d = static_cast<unsigned>(args.get_u64("max_d", 14));

  common::ManualClock clock;
  const common::Bytes secret = common::bytes_of("verify-bench-secret");
  pow::PuzzleGenerator generator(clock, secret);
  const pow::Solver solver;

  common::Table table({"difficulty", "solve_ms_mean", "verify_us_mean",
                       "solve/verify"});

  for (unsigned d = 2; d <= max_d; d += 2) {
    common::Samples solve_ms;
    common::Samples verify_us;
    for (int t = 0; t < trials; ++t) {
      const pow::Puzzle puzzle = generator.issue("198.51.100.2", d);
      const auto s0 = std::chrono::steady_clock::now();
      const pow::SolveResult r = solver.solve(puzzle);
      const auto s1 = std::chrono::steady_clock::now();
      solve_ms.add(std::chrono::duration<double, std::milli>(s1 - s0).count());

      // Fresh verifier per trial so the replay cache never rejects.
      pow::Verifier verifier(clock, secret);
      const auto v0 = std::chrono::steady_clock::now();
      const common::Status ok = verifier.verify(puzzle, r.solution);
      const auto v1 = std::chrono::steady_clock::now();
      if (!ok.ok()) {
        std::fprintf(stderr, "unexpected verify failure: %s\n",
                     ok.error().to_string().c_str());
        return 1;
      }
      verify_us.add(std::chrono::duration<double, std::micro>(v1 - v0).count());
    }
    const double ratio =
        solve_ms.mean() * 1000.0 / std::max(verify_us.mean(), 1e-9);
    table.add_row({std::to_string(d), common::fmt_f(solve_ms.mean(), 3),
                   common::fmt_f(verify_us.mean(), 2),
                   common::fmt_f(ratio, 0)});
  }

  std::printf("ABL-VERIFY: verification stays flat while solving doubles "
              "per difficulty step (%d trials each)\n\n%s\n",
              trials, table.to_text().c_str());
  std::printf("paper anchor (SII.5): \"Puzzle verification is light weight\" "
              "- the ratio column is the quantitative form.\n");
  return 0;
}
