// ABL-POLICY — the extension policies on the Figure 2 axis. The paper
// frames the policy module as the administrator's knob; this ablation
// shows what each built-in mapping buys on the same latency scale.
//
// Usage:   ./build/bench/bench_policy_ablation [trials=30] [seed=5]

#include <cstdio>
#include <memory>

#include "common/config.hpp"
#include "policy/dsl.hpp"
#include "policy/error_range_policy.hpp"
#include "policy/extensions.hpp"
#include "policy/linear_policy.hpp"
#include "sim/fig2.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);

  sim::Fig2Config cfg;
  cfg.trials = static_cast<int>(args.get_i64("trials", 30));
  cfg.seed = args.get_u64("seed", 5);
  // Analytic attempts by default: the exponential/DSL curves reach
  // difficulties where real solving would take minutes per trial.
  cfg.use_real_solver = args.get_bool("real_solver", false);

  const policy::LinearPolicy linear = policy::LinearPolicy::policy1();
  const policy::StepPolicy step({{3.0, 2}, {7.0, 8}, {10.0, 15}});
  const policy::ExponentialPolicy exponential(1.0, 1.3);
  const policy::TargetLatencyPolicy target(31.0, 900.0,
                                           cfg.latency.hash_cost_us);
  const policy::DslPolicy dsl(
      "when score < 3:        difficulty = 2\n"
      "when score in [3, 7):  difficulty = ceil(score) + 2\n"
      "default:               difficulty = min(ceil(pow(1.32, score)), 18)\n");

  std::printf("ABL-POLICY: extension policies on the Figure 2 axis "
              "(%d trials/point)\n", cfg.trials);
  for (const policy::IPolicy* p :
       std::initializer_list<const policy::IPolicy*>{&linear, &step,
                                                     &exponential, &target,
                                                     &dsl}) {
    std::printf("  %-16s %s\n", std::string(p->name()).c_str(),
                p->describe().c_str());
  }
  std::printf("\n");

  const sim::Fig2Result result =
      run_fig2({&linear, &step, &exponential, &target, &dsl}, cfg);
  std::printf("%s", result.to_table().to_text().c_str());

  std::printf("\nmean assigned difficulty per score:\n");
  common::Table dtable({"reputation_score", "linear", "step", "exponential",
                        "target_latency", "dsl"});
  for (int r = 0; r <= 10; ++r) {
    std::vector<std::string> row = {std::to_string(r)};
    for (const auto& s : result.series) {
      row.push_back(common::fmt_f(s.mean_difficulty[static_cast<std::size_t>(r)], 1));
    }
    dtable.add_row(std::move(row));
  }
  std::printf("%s", dtable.to_text().c_str());
  return 0;
}
