// FIG2 — reproduces the paper's Figure 2: median end-to-end latency (ms)
// versus reputation score 0..10 for Policies 1, 2, and 3, median of 30
// trials per point. Real SHA-256 solving; latency via the calibrated
// model (EXPERIMENTS.md).
//
// Usage:   ./build/bench/bench_fig2_policies [trials=30] [epsilon=1.5]
//          [seed=2022] [real_solver=true] [csv=false]

#include <cstdio>

#include "common/config.hpp"
#include "policy/error_range_policy.hpp"
#include "policy/linear_policy.hpp"
#include "sim/fig2.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);

  sim::Fig2Config cfg;
  cfg.trials = static_cast<int>(args.get_i64("trials", 30));
  cfg.seed = args.get_u64("seed", 2022);
  cfg.use_real_solver = args.get_bool("real_solver", true);
  const double epsilon = args.get_f64("epsilon", 1.5);

  const policy::LinearPolicy policy1 = policy::LinearPolicy::policy1();
  const policy::LinearPolicy policy2 = policy::LinearPolicy::policy2();
  const policy::ErrorRangePolicy policy3(epsilon);

  std::printf("FIG2: median latency vs reputation score, %d trials/point\n",
              cfg.trials);
  std::printf("policy1: %s\n", policy1.describe().c_str());
  std::printf("policy2: %s\n", policy2.describe().c_str());
  std::printf("policy3: %s\n", policy3.describe().c_str());
  std::printf("latency model: 4x%.1fms legs + %.1fms proc + %.1fus/hash, %s\n\n",
              cfg.latency.one_way_ms, cfg.latency.server_proc_ms,
              cfg.latency.hash_cost_us,
              cfg.use_real_solver ? "real solver" : "analytic attempts");

  sim::Fig2Result result = run_fig2({&policy1, &policy2, &policy3}, cfg);
  // Label the series the way the paper does.
  result.series[0].policy_name = "policy1";
  result.series[1].policy_name = "policy2";
  result.series[2].policy_name = "policy3";

  const common::Table table = result.to_table();
  if (args.get_bool("csv", false)) {
    std::printf("%s", table.to_csv().c_str());
  } else {
    std::printf("%s", table.to_text().c_str());
  }

  // The qualitative checks the paper's Figure 2 makes visually.
  const auto& s1 = result.series[0].median_ms;
  const auto& s2 = result.series[1].median_ms;
  const auto& s3 = result.series[2].median_ms;
  std::printf("\nshape checks (paper, Fig. 2):\n");
  std::printf("  policy1 grows but not significantly: %.0f ms -> %.0f ms\n",
              s1[0], s1[10]);
  std::printf("  policy2 grows significantly:         %.0f ms -> %.0f ms\n",
              s2[0], s2[10]);
  std::printf("  policy3 between 1 and 2 at R=10:     %.0f between %.0f and %.0f: %s\n",
              s3[10], s1[10], s2[10],
              (s3[10] > s1[10] && s3[10] < s2[10]) ? "yes" : "no (sampling noise)");
  std::printf("  31 ms anchor at d=1 (policy1, R=0):  %.1f ms\n", s1[0]);

  // Medians of 30 heavy-tailed samples are noisy (the paper's own
  // protocol); confirm the asymptotic ordering with a cheap
  // high-precision pass (analytic attempts, 2000 trials/point).
  sim::Fig2Config precise = cfg;
  precise.trials = 2000;
  precise.use_real_solver = false;
  sim::Fig2Result hp = run_fig2({&policy1, &policy2, &policy3}, precise);
  const auto& h1 = hp.series[0].median_ms;
  const auto& h2 = hp.series[1].median_ms;
  const auto& h3 = hp.series[2].median_ms;
  std::printf("\nhigh-precision check (2000 trials/point, analytic attempts):\n");
  std::printf("  R=10 medians: policy1 %.0f ms < policy3 %.0f ms < policy2 %.0f ms: %s\n",
              h1[10], h3[10], h2[10],
              (h3[10] > h1[10] && h3[10] < h2[10]) ? "yes" : "no");
  return 0;
}
