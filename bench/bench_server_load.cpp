// SERVER-LOAD — end-to-end throughput of one PowServer under N
// closed-loop client threads driving the full Fig. 1 exchange:
// request → score → policy → issue → solve → submit → verify → serve.
// The first whole-pipeline scalability benchmark: it exercises the
// atomic stats block, the mutex-striped rate limiter and caches, the
// locked policy rng, the atomic puzzle-id sequence, and the striped
// replay cache together, which is where issuance-path contention (the
// attacker's preferred hotspot per rate_limiter.hpp) would show up.
//
// A fresh server is built per row so each thread count starts from the
// same cold caches. Mostly-benign features keep difficulties in the
// paper's low band, so the numbers measure the server, not the solver.
//
// Usage: ./build/bench/bench_server_load [max_clients=8] [requests=64]
//        [train=400] [seed=42] [rate_limit=0] [json=path]
//
// json=path writes the rows as a JSON artifact (CI uploads one per run;
// docs/ARCHITECTURE.md describes how to compare them across commits).

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "features/synthetic.hpp"
#include "framework/server.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/load_harness.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const auto max_clients =
      static_cast<std::size_t>(args.get_u64("max_clients", 8));
  const auto requests = static_cast<std::size_t>(args.get_u64("requests", 64));
  const auto train = static_cast<std::size_t>(args.get_u64("train", 400));
  const std::uint64_t seed = args.get_u64("seed", 42);
  const bool rate_limit = args.get_u64("rate_limit", 0) != 0;
  const std::string json_path = args.get_string("json", "");

  if (max_clients == 0 || requests == 0) {
    std::fprintf(stderr, "max_clients and requests must be positive\n");
    return 1;
  }

  common::Rng rng(seed);
  const features::SyntheticTraceGenerator gen;
  reputation::DabrModel model;
  model.fit(gen.generate(train, train, rng));
  const policy::LinearPolicy policy = policy::LinearPolicy::policy2();

  std::vector<features::FeatureVector> client_features;
  for (int i = 0; i < 8; ++i) client_features.push_back(gen.sample(false, rng));

  // Powers of two up to max_clients, plus max_clients itself when it is
  // not one — the top requested count must always get a row.
  std::vector<std::size_t> client_counts;
  for (std::size_t clients = 1; clients < max_clients; clients *= 2) {
    client_counts.push_back(clients);
  }
  client_counts.push_back(max_clients);

  common::Table table({"clients", "round-trips", "served", "rate-limited",
                       "issued/s", "served/s", "hashes/s", "mean-d",
                       "srv-B/cl"});
  std::vector<std::pair<std::size_t, sim::LoadReport>> rows;
  for (const std::size_t clients : client_counts) {
    framework::ServerConfig cfg;
    cfg.master_secret = common::bytes_of("server-load-bench-secret");
    if (rate_limit) {
      cfg.rate_limiter_enabled = true;
      cfg.rate_limiter.tokens_per_second = 50.0;
      cfg.rate_limiter.burst = 100.0;
    }
    framework::PowServer server(common::WallClock::instance(), model, policy,
                                cfg);

    sim::LoadHarnessConfig lc;
    lc.client_threads = clients;
    lc.requests_per_client = requests;
    sim::LoadHarness harness(server, lc);
    const sim::LoadReport report = harness.run(client_features);

    table.add_row({std::to_string(clients), std::to_string(report.round_trips),
                   std::to_string(report.served),
                   std::to_string(report.rate_limited),
                   common::fmt_f(report.issued_per_s(), 0),
                   common::fmt_f(report.served_per_s(), 0),
                   common::fmt_f(report.hashes_per_s(), 0),
                   common::fmt_f(report.server_delta.mean_difficulty(), 2),
                   common::fmt_f(report.server_bytes_per_client(), 1)});
    rows.emplace_back(clients, report);
  }

  std::printf("SERVER-LOAD: closed-loop request→solve→submit throughput, "
              "%zu requests per client\n\n%s\n",
              requests, table.to_text().c_str());
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  if (!json_path.empty()) {
    common::JsonWriter w;
    w.begin_object();
    w.field_str("bench", "server_load");
    w.field_u64("requests_per_client", requests);
    w.field_bool("rate_limit", rate_limit);
    w.field_u64("hardware_threads", std::thread::hardware_concurrency());
    w.begin_array("rows");
    for (const auto& [clients, report] : rows) {
      w.begin_object();
      w.field_u64("clients", clients);
      w.field_u64("round_trips", report.round_trips);
      w.field_u64("served", report.served);
      w.field_u64("rate_limited", report.rate_limited);
      w.field_f64("wall_s", report.wall_s);
      w.field_f64("issued_per_s", report.issued_per_s());
      w.field_f64("served_per_s", report.served_per_s());
      w.field_f64("hashes_per_s", report.hashes_per_s());
      w.field_f64("mean_difficulty", report.server_delta.mean_difficulty());
      w.field_u64("server_memory_bytes", report.server_memory_bytes);
      w.field_f64("server_bytes_per_client", report.server_bytes_per_client());
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!common::write_json_file(json_path, w)) {
      std::fprintf(stderr, "could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json written: %s\n", json_path.c_str());
  }
  return 0;
}
