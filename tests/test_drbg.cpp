// Tests for HMAC-DRBG: determinism, reseeding, stream quality basics.

#include "crypto/drbg.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"

namespace powai::crypto {
namespace {

using common::Bytes;
using common::bytes_of;

TEST(HmacDrbg, DeterministicFromSeed) {
  HmacDrbg a(bytes_of("entropy-input"));
  HmacDrbg b(bytes_of("entropy-input"));
  EXPECT_EQ(a.generate(64), b.generate(64));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(HmacDrbg, PersonalizationSeparatesStreams) {
  HmacDrbg a(bytes_of("seed"), bytes_of("issuer"));
  HmacDrbg b(bytes_of("seed"), bytes_of("verifier"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, DifferentSeedsDifferentStreams) {
  HmacDrbg a(bytes_of("seed-1"));
  HmacDrbg b(bytes_of("seed-2"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, SequentialCallsAdvanceState) {
  HmacDrbg drbg(bytes_of("seed"));
  const Bytes first = drbg.generate(32);
  const Bytes second = drbg.generate(32);
  EXPECT_NE(first, second);
}

TEST(HmacDrbg, GenerateExactLengths) {
  HmacDrbg drbg(bytes_of("seed"));
  EXPECT_EQ(drbg.generate(1).size(), 1u);
  EXPECT_EQ(drbg.generate(32).size(), 32u);
  EXPECT_EQ(drbg.generate(33).size(), 33u);
  EXPECT_EQ(drbg.generate(100).size(), 100u);
  EXPECT_TRUE(drbg.generate(0).empty());
}

TEST(HmacDrbg, ReseedChangesStream) {
  HmacDrbg a(bytes_of("seed"));
  HmacDrbg b(bytes_of("seed"));
  b.reseed(bytes_of("fresh-entropy"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, ReseedIsDeterministicToo) {
  HmacDrbg a(bytes_of("seed"));
  HmacDrbg b(bytes_of("seed"));
  a.reseed(bytes_of("x"));
  b.reseed(bytes_of("x"));
  EXPECT_EQ(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, NextU64ProducesDistinctValues) {
  HmacDrbg drbg(bytes_of("seed"));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(drbg.next_u64());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HmacDrbg, ByteDistributionRoughlyUniform) {
  HmacDrbg drbg(bytes_of("distribution-check"));
  const Bytes stream = drbg.generate(256 * 64);
  std::array<int, 256> counts{};
  for (std::uint8_t b : stream) ++counts[b];
  // Chi-square against uniform; 99.9th percentile of chi2(255) ~ 340.
  double chi2 = 0.0;
  const double expected = static_cast<double>(stream.size()) / 256.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 340.0);
}

TEST(DerivedDrbg, PureFunctionOfKeyAndId) {
  const DerivedDrbg family(bytes_of("derived-key"), bytes_of("test-family"));
  // Same id → same bytes, however many times and in whatever order.
  const Bytes a = family.generate(42, 32);
  (void)family.generate(7, 32);
  (void)family.generate(1, 8);
  EXPECT_EQ(family.generate(42, 32), a);
  // A second instance with the same material reproduces the stream.
  const DerivedDrbg again(bytes_of("derived-key"), bytes_of("test-family"));
  EXPECT_EQ(again.generate(42, 32), a);
}

TEST(DerivedDrbg, DistinctIdsKeysAndPersonalizationsDiverge) {
  const DerivedDrbg family(bytes_of("derived-key"), bytes_of("test-family"));
  std::set<std::string> streams;
  for (std::uint64_t id = 0; id < 64; ++id) {
    streams.insert(common::to_hex(family.generate(id, 32)));
  }
  EXPECT_EQ(streams.size(), 64u);

  const DerivedDrbg other_key(bytes_of("other-key"), bytes_of("test-family"));
  EXPECT_NE(other_key.generate(42, 32), family.generate(42, 32));
  const DerivedDrbg other_family(bytes_of("derived-key"), bytes_of("b"));
  EXPECT_NE(other_family.generate(42, 32), family.generate(42, 32));
}

TEST(DerivedDrbg, StreamChainsLikeAnOrdinaryDrbg) {
  // stream(id) hands back a chained HmacDrbg whose first draw matches
  // the one-shot generate().
  const DerivedDrbg family(bytes_of("derived-key"));
  HmacDrbg stream = family.stream(9);
  EXPECT_EQ(stream.generate(16), family.generate(9, 16));
  // Further draws continue the chain rather than repeating.
  EXPECT_NE(stream.generate(16), family.generate(9, 16));
}

TEST(DerivedDrbg, RejectsEmptyKey) {
  EXPECT_THROW(DerivedDrbg({}, bytes_of("x")), std::invalid_argument);
}

TEST(OsEntropy, ProducesRequestedLength) {
  EXPECT_EQ(os_entropy(16).size(), 16u);
  EXPECT_EQ(os_entropy(0).size(), 0u);
  EXPECT_EQ(os_entropy(33).size(), 33u);
}

TEST(OsEntropy, TwoCallsDiffer) {
  // 16 bytes colliding would mean a broken random_device.
  EXPECT_NE(os_entropy(16), os_entropy(16));
}

}  // namespace
}  // namespace powai::crypto
