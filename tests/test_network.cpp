// Tests for link models and the message-level network simulator.

#include "netsim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace powai::netsim {
namespace {

using namespace std::chrono_literals;

TEST(LinkModel, ValidateRejectsMalformedModels) {
  LinkModel bad;
  bad.base_latency = -1ms;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.jitter = -1ms;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.loss_rate = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.bandwidth_bytes_per_sec = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(LinkModel{}.validate());
}

TEST(LinkModel, DelayForIsNoexceptHotPath) {
  // Validation moved to attach time (Network::set_link); the per-packet
  // path must not re-validate — it is declared noexcept and callable on
  // any already-validated model.
  common::Rng rng(1);
  LinkModel link;
  static_assert(noexcept(link.delay_for(0, rng)));
  EXPECT_TRUE(link.delay_for(0, rng).has_value());
}

TEST(Network, RejectsMalformedLinksAtAttachTime) {
  EventLoop loop;
  common::Rng rng(1);
  Network net(loop, rng);
  net.add_host("a", [](const std::string&, common::BytesView) {});
  net.add_host("b", [](const std::string&, common::BytesView) {});
  LinkModel bad;
  bad.loss_rate = 2.0;
  EXPECT_THROW(net.set_link("a", "b", bad), std::invalid_argument);
  EXPECT_THROW(net.set_default_link(bad), std::invalid_argument);
  // The rejected model must not have been installed.
  EXPECT_TRUE(net.send("a", "b", common::bytes_of("x")));
}

TEST(LinkModel, BaseLatencyWithoutJitterIsExact) {
  common::Rng rng(2);
  LinkModel link;
  link.base_latency = 10ms;
  link.jitter = 0ms;
  const auto d = link.delay_for(100, rng);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 10ms);
}

TEST(LinkModel, JitterStaysWithinBound) {
  common::Rng rng(3);
  LinkModel link;
  link.base_latency = 10ms;
  link.jitter = 5ms;
  for (int i = 0; i < 500; ++i) {
    const auto d = link.delay_for(0, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, 10ms);
    EXPECT_LE(*d, 15ms);
  }
}

TEST(LinkModel, JitterBoundIsInclusiveAndReachable) {
  // U[0, jitter] with both bounds attainable. With a 3-tick jitter the
  // support is {0, 1, 2, 3} ns on top of the base; 200 draws must hit
  // both endpoints (P(miss) < 1e-24 per endpoint).
  common::Rng rng(12);
  LinkModel link;
  link.base_latency = common::Duration(10);
  link.jitter = common::Duration(3);
  common::Duration lo = common::Duration::max();
  common::Duration hi = common::Duration::min();
  for (int i = 0; i < 200; ++i) {
    const auto d = link.delay_for(0, rng);
    ASSERT_TRUE(d.has_value());
    lo = std::min(lo, *d);
    hi = std::max(hi, *d);
  }
  EXPECT_EQ(lo, common::Duration(10));
  EXPECT_EQ(hi, common::Duration(13));  // base + jitter, inclusive
}

TEST(LinkModel, BandwidthAddsSerializationDelay) {
  common::Rng rng(4);
  LinkModel link;
  link.base_latency = 0ms;
  link.jitter = 0ms;
  link.bandwidth_bytes_per_sec = 1000.0;  // 1 KB/s
  const auto d = link.delay_for(500, rng);  // 500 B -> 0.5 s
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 500ms);
}

TEST(LinkModel, LossRateDropsRoughlyThatFraction) {
  common::Rng rng(5);
  LinkModel link;
  link.loss_rate = 0.3;
  int dropped = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (!link.delay_for(0, rng)) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.3, 0.02);
}

TEST(Network, DeliversToHandlerWithSourceAndPayload) {
  EventLoop loop;
  common::Rng rng(6);
  Network net(loop, rng);
  std::string got_from;
  std::string got_payload;
  net.add_host("client", [](const std::string&, common::BytesView) {});
  net.add_host("server", [&](const std::string& from, common::BytesView p) {
    got_from = from;
    got_payload = common::string_of(p);
  });
  EXPECT_TRUE(net.send("client", "server", common::bytes_of("hello")));
  loop.run();
  EXPECT_EQ(got_from, "client");
  EXPECT_EQ(got_payload, "hello");
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), 5u);
}

TEST(Network, DeliveryIsDelayedByLink) {
  EventLoop loop;
  common::Rng rng(7);
  Network net(loop, rng);
  LinkModel link;
  link.base_latency = 42ms;
  link.jitter = 0ms;
  common::TimePoint delivered_at{};
  net.add_host("a", [](const std::string&, common::BytesView) {});
  net.add_host("b", [&](const std::string&, common::BytesView) {
    delivered_at = loop.now();
  });
  net.set_link("a", "b", link);
  net.send("a", "b", common::bytes_of("x"));
  loop.run();
  EXPECT_EQ(delivered_at.time_since_epoch(), 42ms);
}

TEST(Network, DirectedLinksAreIndependent) {
  EventLoop loop;
  common::Rng rng(8);
  Network net(loop, rng);
  LinkModel slow;
  slow.base_latency = 100ms;
  slow.jitter = 0ms;
  LinkModel fast;
  fast.base_latency = 1ms;
  fast.jitter = 0ms;
  std::vector<std::pair<std::string, common::Duration>> deliveries;
  net.add_host("a", [&](const std::string&, common::BytesView) {
    deliveries.emplace_back("at-a", loop.now().time_since_epoch());
  });
  net.add_host("b", [&](const std::string&, common::BytesView) {
    deliveries.emplace_back("at-b", loop.now().time_since_epoch());
  });
  net.set_link("a", "b", slow);
  net.set_link("b", "a", fast);
  net.send("a", "b", common::bytes_of("x"));
  net.send("b", "a", common::bytes_of("y"));
  loop.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].first, "at-a");  // fast link delivers first
  EXPECT_EQ(deliveries[0].second, 1ms);
  EXPECT_EQ(deliveries[1].second, 100ms);
}

TEST(Network, DropCountsAndReturnsFalse) {
  EventLoop loop;
  common::Rng rng(9);
  Network net(loop, rng);
  LinkModel lossy;
  lossy.loss_rate = 1.0;
  net.add_host("a", [](const std::string&, common::BytesView) {});
  net.add_host("b", [](const std::string&, common::BytesView) {});
  net.set_link("a", "b", lossy);
  EXPECT_FALSE(net.send("a", "b", common::bytes_of("x")));
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.messages_sent(), 0u);
  loop.run();
}

TEST(Network, UnknownHostsThrow) {
  EventLoop loop;
  common::Rng rng(10);
  Network net(loop, rng);
  net.add_host("a", [](const std::string&, common::BytesView) {});
  EXPECT_THROW((void)net.send("a", "ghost", {}), std::invalid_argument);
  EXPECT_THROW((void)net.send("ghost", "a", {}), std::invalid_argument);
}

TEST(Network, DuplicateHostOrEmptyHandlerThrow) {
  EventLoop loop;
  common::Rng rng(11);
  Network net(loop, rng);
  net.add_host("a", [](const std::string&, common::BytesView) {});
  EXPECT_THROW(net.add_host("a", [](const std::string&, common::BytesView) {}),
               std::invalid_argument);
  EXPECT_THROW(net.add_host("b", nullptr), std::invalid_argument);
  EXPECT_TRUE(net.has_host("a"));
  EXPECT_FALSE(net.has_host("b"));
}

TEST(NetworkFault, OverlayDropIsCountedSeparately) {
  EventLoop loop;
  common::Rng rng(20);
  Network net(loop, rng);
  net.add_host("a", [](const std::string&, common::BytesView) {});
  net.add_host("b", [](const std::string&, common::BytesView) {});
  LinkModel lossless;
  lossless.loss_rate = 0.0;
  lossless.jitter = 0ms;
  net.set_default_link(lossless);

  LinkFault fault;
  fault.extra_loss = 1.0;
  net.set_fault(fault);
  EXPECT_TRUE(net.fault().active());
  EXPECT_FALSE(net.send("a", "b", common::bytes_of("x")));
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.fault_dropped(), 1u);

  net.clear_fault();
  EXPECT_FALSE(net.fault().active());
  EXPECT_TRUE(net.send("a", "b", common::bytes_of("x")));
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.fault_dropped(), 1u);
  loop.run();
}

TEST(NetworkFault, DropPatternIsAPureFunctionOfTheFaultSeed) {
  // Overlay draws come from per-pair counter streams keyed by the fault
  // seed, so two networks with the same seed agree message-for-message
  // regardless of their shared-Rng state.
  const auto pattern = [](std::uint64_t fault_seed, std::uint64_t rng_seed) {
    EventLoop loop;
    common::Rng rng(rng_seed);
    Network net(loop, rng);
    net.add_host("a", [](const std::string&, common::BytesView) {});
    net.add_host("b", [](const std::string&, common::BytesView) {});
    net.set_fault_stream_seed(fault_seed);
    LinkFault fault;
    fault.extra_loss = 0.5;
    net.set_fault(fault);
    std::vector<bool> delivered;
    for (int i = 0; i < 64; ++i) {
      delivered.push_back(net.send("a", "b", common::bytes_of("x")));
    }
    loop.run();
    return delivered;
  };
  // Same fault seed, different shared-Rng seeds: identical pattern.
  EXPECT_EQ(pattern(99, 1), pattern(99, 2));
  // A different fault seed changes the pattern (64 coin flips).
  EXPECT_NE(pattern(99, 1), pattern(100, 1));
}

TEST(NetworkFault, OverlayDoesNotPerturbBaseLinkDraws) {
  // The base link's jittered delays must be byte-identical with and
  // without an active overlay: the overlay draws from its own streams,
  // never the shared Rng. extra_latency shifts every delivery by a
  // constant, so faulted[i] - plain[i] == extra_latency exactly.
  const auto delivery_times = [](bool with_fault) {
    EventLoop loop;
    common::Rng rng(21);
    Network net(loop, rng);
    std::vector<common::Duration> times;
    net.add_host("a", [](const std::string&, common::BytesView) {});
    net.add_host("b", [&](const std::string&, common::BytesView) {
      times.push_back(loop.now().time_since_epoch());
    });
    LinkModel jittery;
    jittery.base_latency = 10ms;
    jittery.jitter = 5ms;
    net.set_link("a", "b", jittery);
    if (with_fault) {
      LinkFault fault;
      fault.extra_latency = 100ms;
      net.set_fault(fault);
    }
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE(net.send("a", "b", common::bytes_of("x")));
    }
    loop.run();
    return times;
  };
  const auto plain = delivery_times(false);
  const auto faulted = delivery_times(true);
  ASSERT_EQ(plain.size(), 32u);
  ASSERT_EQ(faulted.size(), 32u);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(faulted[i] - plain[i], 100ms) << "message " << i;
  }
}

TEST(NetworkGroup, OneRegistrationCoversTheWholeRange) {
  EventLoop loop;
  common::Rng rng(3);
  Network net(loop, rng);
  net.add_host("server", [](const std::string&, common::BytesView) {});

  std::vector<std::pair<std::string, std::string>> delivered;
  net.add_host_group("10.0.0.0", 1'000'000,
                     [&](const std::string& member, const std::string& from,
                         common::BytesView) {
                       delivered.emplace_back(member, from);
                     });

  EXPECT_TRUE(net.has_host("10.0.0.0"));
  EXPECT_TRUE(net.has_host("10.0.0.255"));
  EXPECT_TRUE(net.has_host("10.15.66.63"));  // base + 999'999
  EXPECT_FALSE(net.has_host("10.15.66.64"));  // base + 1'000'000
  EXPECT_FALSE(net.has_host("9.255.255.255"));

  // Group members both receive and send.
  ASSERT_TRUE(net.send("server", "10.3.1.4", common::bytes_of("hi")));
  ASSERT_TRUE(net.send("10.3.1.4", "server", common::bytes_of("yo")));
  loop.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first, "10.3.1.4");
  EXPECT_EQ(delivered[0].second, "server");
}

TEST(NetworkGroup, ExplicitHostShadowsGroupMember) {
  EventLoop loop;
  common::Rng rng(4);
  Network net(loop, rng);
  net.add_host("server", [](const std::string&, common::BytesView) {});
  int direct = 0;
  int grouped = 0;
  net.add_host("10.0.0.7",
               [&](const std::string&, common::BytesView) { ++direct; });
  net.add_host_group("10.0.0.0", 256,
                     [&](const std::string&, const std::string&,
                         common::BytesView) { ++grouped; });
  ASSERT_TRUE(net.send("server", "10.0.0.7", common::bytes_of("x")));
  loop.run();
  EXPECT_EQ(direct, 1);
  EXPECT_EQ(grouped, 0);
}

TEST(NetworkGroup, RejectsMalformedAndOverlappingRanges) {
  EventLoop loop;
  common::Rng rng(5);
  Network net(loop, rng);
  const auto handler = [](const std::string&, const std::string&,
                          common::BytesView) {};
  EXPECT_THROW(net.add_host_group("not-an-ip", 4, handler),
               std::invalid_argument);
  EXPECT_THROW(net.add_host_group("10.0.0.0", 0, handler),
               std::invalid_argument);
  EXPECT_THROW(net.add_host_group("255.255.255.250", 100, handler),
               std::invalid_argument);  // wraps
  net.add_host_group("10.0.0.0", 256, handler);
  EXPECT_THROW(net.add_host_group("10.0.0.128", 256, handler),
               std::invalid_argument);  // overlaps
  net.add_host_group("10.0.1.0", 256, handler);  // adjacent is fine
}

TEST(NetworkLinkClass, ResolverPicksSharedProfiles) {
  EventLoop loop;
  common::Rng rng(6);
  Network net(loop, rng);
  net.add_host("server", [](const std::string&, common::BytesView) {});
  net.add_host_group("10.0.0.0", 1 << 16,
                     [](const std::string&, const std::string&,
                        common::BytesView) {});

  // Class 0: fast LAN; class 1: lossy uplink. Even-octet clients are
  // "near", odd are "far" — one resolver, zero per-pair state.
  LinkModel fast;
  fast.base_latency = 1ms;
  fast.jitter = 0ms;
  const std::size_t fast_class = net.add_link_class(fast);
  LinkModel lossy;
  lossy.loss_rate = 1.0;  // always drops: observable without stats
  const std::size_t lossy_class = net.add_link_class(lossy);
  net.set_link_class_resolver(
      [fast_class, lossy_class](const std::string& from, const std::string&)
          -> std::optional<std::size_t> {
        const auto ip = features::IpAddress::parse(from);
        if (!ip) return std::nullopt;  // server → clients: default link
        return ip->value() % 2 == 0 ? fast_class : lossy_class;
      });

  EXPECT_TRUE(net.send("10.0.0.2", "server", common::bytes_of("a")));
  EXPECT_FALSE(net.send("10.0.0.3", "server", common::bytes_of("b")));

  // An explicit pair link overrides the resolver.
  LinkModel clean;
  net.set_link("10.0.0.3", "server", clean);
  EXPECT_TRUE(net.send("10.0.0.3", "server", common::bytes_of("c")));
  loop.run();
}

TEST(NetworkLinkClass, ResolverReturningUnknownClassThrows) {
  EventLoop loop;
  common::Rng rng(7);
  Network net(loop, rng);
  net.add_host("a", [](const std::string&, common::BytesView) {});
  net.add_host("b", [](const std::string&, common::BytesView) {});
  net.set_link_class_resolver(
      [](const std::string&, const std::string&) -> std::optional<std::size_t> {
        return 42;  // no such class
      });
  EXPECT_THROW((void)net.send("a", "b", common::bytes_of("x")),
               std::out_of_range);
}

TEST(NetworkGroup, MemoryStaysFlatAcrossGroupSize) {
  // The point of groups: network-side state must not scale with member
  // count. A million-member group costs the same bytes as a 256-member
  // one.
  EventLoop loop;
  common::Rng rng(8);
  Network small_net(loop, rng);
  small_net.add_host_group("10.0.0.0", 256,
                           [](const std::string&, const std::string&,
                              common::BytesView) {});
  Network big_net(loop, rng);
  big_net.add_host_group("10.0.0.0", 1'000'000,
                         [](const std::string&, const std::string&,
                            common::BytesView) {});
  EXPECT_EQ(small_net.memory_bytes(), big_net.memory_bytes());
}

TEST(NetworkFault, GroupPairsKeepPureFaultStreams) {
  // The hashed per-pair counters must preserve the LinkFault contract
  // for group members: the drop pattern for a given (member, server)
  // pair is a pure function of the fault seed — identical across two
  // independent runs even when other pairs' sends interleave
  // differently.
  const auto run = [](bool interleave) {
    EventLoop loop;
    common::Rng rng(9);
    Network net(loop, rng);
    net.add_host("server", [](const std::string&, common::BytesView) {});
    net.add_host_group("10.0.0.0", 1024,
                       [](const std::string&, const std::string&,
                          common::BytesView) {});
    LinkModel lossless;
    lossless.jitter = 0ms;
    net.set_default_link(lossless);
    net.set_fault_stream_seed(0xfa417);
    LinkFault fault;
    fault.extra_loss = 0.5;
    net.set_fault(fault);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      if (interleave) {
        (void)net.send("10.0.3.7", "server", common::bytes_of("noise"));
      }
      pattern.push_back(net.send("10.0.0.1", "server", common::bytes_of("m")));
    }
    loop.run();
    return pattern;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(DefaultExperimentLink, IsLossless) {
  const LinkModel link = default_experiment_link();
  EXPECT_DOUBLE_EQ(link.loss_rate, 0.0);
  EXPECT_GT(link.base_latency, 0ms);
}

}  // namespace
}  // namespace powai::netsim
