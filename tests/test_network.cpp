// Tests for link models and the message-level network simulator.

#include "netsim/network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/stats.hpp"

namespace powai::netsim {
namespace {

using namespace std::chrono_literals;

TEST(LinkModel, ValidatesParameters) {
  common::Rng rng(1);
  LinkModel bad;
  bad.base_latency = -1ms;
  EXPECT_THROW((void)bad.delay_for(0, rng), std::invalid_argument);
  bad = {};
  bad.jitter = -1ms;
  EXPECT_THROW((void)bad.delay_for(0, rng), std::invalid_argument);
  bad = {};
  bad.loss_rate = 1.5;
  EXPECT_THROW((void)bad.delay_for(0, rng), std::invalid_argument);
  bad = {};
  bad.bandwidth_bytes_per_sec = -1.0;
  EXPECT_THROW((void)bad.delay_for(0, rng), std::invalid_argument);
}

TEST(LinkModel, BaseLatencyWithoutJitterIsExact) {
  common::Rng rng(2);
  LinkModel link;
  link.base_latency = 10ms;
  link.jitter = 0ms;
  const auto d = link.delay_for(100, rng);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 10ms);
}

TEST(LinkModel, JitterStaysWithinBound) {
  common::Rng rng(3);
  LinkModel link;
  link.base_latency = 10ms;
  link.jitter = 5ms;
  for (int i = 0; i < 500; ++i) {
    const auto d = link.delay_for(0, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, 10ms);
    EXPECT_LT(*d, 15ms);
  }
}

TEST(LinkModel, BandwidthAddsSerializationDelay) {
  common::Rng rng(4);
  LinkModel link;
  link.base_latency = 0ms;
  link.jitter = 0ms;
  link.bandwidth_bytes_per_sec = 1000.0;  // 1 KB/s
  const auto d = link.delay_for(500, rng);  // 500 B -> 0.5 s
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 500ms);
}

TEST(LinkModel, LossRateDropsRoughlyThatFraction) {
  common::Rng rng(5);
  LinkModel link;
  link.loss_rate = 0.3;
  int dropped = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (!link.delay_for(0, rng)) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.3, 0.02);
}

TEST(Network, DeliversToHandlerWithSourceAndPayload) {
  EventLoop loop;
  common::Rng rng(6);
  Network net(loop, rng);
  std::string got_from;
  std::string got_payload;
  net.add_host("client", [](const std::string&, common::BytesView) {});
  net.add_host("server", [&](const std::string& from, common::BytesView p) {
    got_from = from;
    got_payload = common::string_of(p);
  });
  EXPECT_TRUE(net.send("client", "server", common::bytes_of("hello")));
  loop.run();
  EXPECT_EQ(got_from, "client");
  EXPECT_EQ(got_payload, "hello");
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), 5u);
}

TEST(Network, DeliveryIsDelayedByLink) {
  EventLoop loop;
  common::Rng rng(7);
  Network net(loop, rng);
  LinkModel link;
  link.base_latency = 42ms;
  link.jitter = 0ms;
  common::TimePoint delivered_at{};
  net.add_host("a", [](const std::string&, common::BytesView) {});
  net.add_host("b", [&](const std::string&, common::BytesView) {
    delivered_at = loop.now();
  });
  net.set_link("a", "b", link);
  net.send("a", "b", common::bytes_of("x"));
  loop.run();
  EXPECT_EQ(delivered_at.time_since_epoch(), 42ms);
}

TEST(Network, DirectedLinksAreIndependent) {
  EventLoop loop;
  common::Rng rng(8);
  Network net(loop, rng);
  LinkModel slow;
  slow.base_latency = 100ms;
  slow.jitter = 0ms;
  LinkModel fast;
  fast.base_latency = 1ms;
  fast.jitter = 0ms;
  std::vector<std::pair<std::string, common::Duration>> deliveries;
  net.add_host("a", [&](const std::string&, common::BytesView) {
    deliveries.emplace_back("at-a", loop.now().time_since_epoch());
  });
  net.add_host("b", [&](const std::string&, common::BytesView) {
    deliveries.emplace_back("at-b", loop.now().time_since_epoch());
  });
  net.set_link("a", "b", slow);
  net.set_link("b", "a", fast);
  net.send("a", "b", common::bytes_of("x"));
  net.send("b", "a", common::bytes_of("y"));
  loop.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].first, "at-a");  // fast link delivers first
  EXPECT_EQ(deliveries[0].second, 1ms);
  EXPECT_EQ(deliveries[1].second, 100ms);
}

TEST(Network, DropCountsAndReturnsFalse) {
  EventLoop loop;
  common::Rng rng(9);
  Network net(loop, rng);
  LinkModel lossy;
  lossy.loss_rate = 1.0;
  net.add_host("a", [](const std::string&, common::BytesView) {});
  net.add_host("b", [](const std::string&, common::BytesView) {});
  net.set_link("a", "b", lossy);
  EXPECT_FALSE(net.send("a", "b", common::bytes_of("x")));
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.messages_sent(), 0u);
  loop.run();
}

TEST(Network, UnknownHostsThrow) {
  EventLoop loop;
  common::Rng rng(10);
  Network net(loop, rng);
  net.add_host("a", [](const std::string&, common::BytesView) {});
  EXPECT_THROW((void)net.send("a", "ghost", {}), std::invalid_argument);
  EXPECT_THROW((void)net.send("ghost", "a", {}), std::invalid_argument);
}

TEST(Network, DuplicateHostOrEmptyHandlerThrow) {
  EventLoop loop;
  common::Rng rng(11);
  Network net(loop, rng);
  net.add_host("a", [](const std::string&, common::BytesView) {});
  EXPECT_THROW(net.add_host("a", [](const std::string&, common::BytesView) {}),
               std::invalid_argument);
  EXPECT_THROW(net.add_host("b", nullptr), std::invalid_argument);
  EXPECT_TRUE(net.has_host("a"));
  EXPECT_FALSE(net.has_host("b"));
}

TEST(DefaultExperimentLink, IsLossless) {
  const LinkModel link = default_experiment_link();
  EXPECT_DOUBLE_EQ(link.loss_rate, 0.0);
  EXPECT_GT(link.base_latency, 0ms);
}

}  // namespace
}  // namespace powai::netsim
