// Tests for the discrete-event loop: ordering, determinism, cancellation,
// clock coupling.

#include "netsim/event_loop.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace powai::netsim {
namespace {

using namespace std::chrono_literals;

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_in(30ms, [&] { order.push_back(3); });
  loop.schedule_in(10ms, [&] { order.push_back(1); });
  loop.schedule_in(20ms, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, FifoTieBreakAtSameTimestamp) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_in(10ms, [&] { order.push_back(1); });
  loop.schedule_in(10ms, [&] { order.push_back(2); });
  loop.schedule_in(10ms, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, ClockAdvancesToEventTime) {
  EventLoop loop;
  common::TimePoint seen{};
  loop.schedule_in(250ms, [&] { seen = loop.now(); });
  loop.run();
  EXPECT_EQ(seen.time_since_epoch(), 250ms);
  EXPECT_EQ(loop.now().time_since_epoch(), 250ms);
}

TEST(EventLoop, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) loop.schedule_in(10ms, chain);
  };
  loop.schedule_in(10ms, chain);
  EXPECT_EQ(loop.run(), 5u);
  EXPECT_EQ(loop.now().time_since_epoch(), 50ms);
}

TEST(EventLoop, RunUntilStopsAtDeadlineAndAdvancesClock) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_in(10ms, [&] { ++fired; });
  loop.schedule_in(100ms, [&] { ++fired; });
  const std::size_t executed =
      loop.run_until(common::TimePoint{} + 50ms);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now().time_since_epoch(), 50ms);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, RunUntilExecutesEventExactlyAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_in(50ms, [&] { ++fired; });
  loop.run_until(common::TimePoint{} + 50ms);
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  int fired = 0;
  const EventId id = loop.schedule_in(10ms, [&] { ++fired; });
  loop.schedule_in(20ms, [&] { ++fired; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, CancelReturnsFalseForUnknownOrDoubleCancel) {
  EventLoop loop;
  const EventId id = loop.schedule_in(10ms, [] {});
  EXPECT_FALSE(loop.cancel(9999));
  EXPECT_FALSE(loop.cancel(0));
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));
}

TEST(EventLoop, PendingCountsUncancelledOnly) {
  EventLoop loop;
  loop.schedule_in(10ms, [] {});
  const EventId id = loop.schedule_in(20ms, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, StepExecutesSingleEvent) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_in(10ms, [&] { ++fired; });
  loop.schedule_in(20ms, [&] { ++fired; });
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.step());
  EXPECT_FALSE(loop.step());
}

TEST(EventLoop, RejectsPastOrInvalidSchedules) {
  EventLoop loop(common::TimePoint{} + 100ms);
  EXPECT_THROW(loop.schedule_at(common::TimePoint{} + 50ms, [] {}),
               std::invalid_argument);
  EXPECT_THROW(loop.schedule_in(-1ms, [] {}), std::invalid_argument);
  EXPECT_THROW(loop.schedule_in(1ms, nullptr), std::invalid_argument);
}

TEST(EventLoop, ZeroDelayRunsAtCurrentTime) {
  EventLoop loop;
  bool fired = false;
  loop.schedule_in(0ms, [&] { fired = true; });
  loop.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.now().time_since_epoch(), 0ms);
}

TEST(EventLoop, PostedCallbacksRunAtCurrentTimeInFifoOrder) {
  EventLoop loop;
  loop.schedule_in(10ms, [] {});
  loop.run();  // advance the clock to 10ms first
  std::vector<int> order;
  common::TimePoint seen{};
  loop.post([&] {
    order.push_back(1);
    seen = loop.now();
  });
  loop.post([&] { order.push_back(2); });
  EXPECT_TRUE(loop.has_posted());
  EXPECT_EQ(loop.run(), 2u);
  EXPECT_FALSE(loop.has_posted());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // Posts attach to the loop's current instant, not a new one.
  EXPECT_EQ(seen.time_since_epoch(), 10ms);
  EXPECT_EQ(loop.now().time_since_epoch(), 10ms);
}

TEST(EventLoop, PostedCallbackRunsBeforeLaterScheduledEvents) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_in(5ms, [&] { order.push_back(2); });
  loop.post([&] { order.push_back(1); });  // due "now" (t=0)
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, PostRejectsEmptyFn) {
  EventLoop loop;
  EXPECT_THROW(loop.post(nullptr), std::invalid_argument);
}

TEST(EventLoop, NextEventTimeSkipsCancelledAndSeesPosts) {
  EventLoop loop;
  const EventId id = loop.schedule_in(10ms, [] {});
  loop.schedule_in(20ms, [] {});
  ASSERT_TRUE(loop.next_event_time().has_value());
  EXPECT_EQ(loop.next_event_time()->time_since_epoch(), 10ms);
  loop.cancel(id);
  EXPECT_EQ(loop.next_event_time()->time_since_epoch(), 20ms);
  loop.post([] {});  // due immediately → becomes the earliest event
  EXPECT_EQ(loop.next_event_time()->time_since_epoch(), 0ms);
  loop.run();
  EXPECT_FALSE(loop.next_event_time().has_value());
}

TEST(EventLoop, PostsFromManyThreadsAllRun) {
  // The cross-thread injection path the async front end relies on;
  // exercised under TSan via the `concurrency` label.
  EventLoop loop;
  constexpr int kThreads = 4;
  constexpr int kPostsPerThread = 250;
  std::atomic<int> ran{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPostsPerThread; ++i) {
        loop.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : posters) t.join();
  loop.run();
  EXPECT_EQ(ran.load(), kThreads * kPostsPerThread);
  EXPECT_FALSE(loop.has_posted());
}

}  // namespace
}  // namespace powai::netsim
