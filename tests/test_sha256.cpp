// Tests for SHA-256 against FIPS/NIST vectors, plus the difficulty
// helpers the PoW layer is built on. The KAT suite is parameterized
// over every compression backend this CPU supports (generic scalar,
// SHA-NI, AVX2) so a dispatch bug can never hide behind the default
// selection; midstate and hash_many cross-checks live in
// test_sha256_dispatch.cpp.

#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace powai::crypto {
namespace {

using common::Bytes;
using common::bytes_of;
using common::to_hex;

std::string hex_digest(const Digest& d) {
  return to_hex(common::BytesView(d.data(), d.size()));
}

// ---------------------------------------------------------------------------
// Known-answer tests, forced onto each supported backend in turn.
// ---------------------------------------------------------------------------

class Sha256Kat : public ::testing::TestWithParam<Sha256Backend> {
 protected:
  void SetUp() override {
    previous_ = Sha256::backend();
    ASSERT_TRUE(Sha256::set_backend(GetParam()))
        << "supported_backends() offered an unusable backend";
  }
  void TearDown() override { ASSERT_TRUE(Sha256::set_backend(previous_)); }

 private:
  Sha256Backend previous_ = Sha256Backend::kGeneric;
};

TEST_P(Sha256Kat, EmptyMessage) {
  EXPECT_EQ(hex_digest(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST_P(Sha256Kat, Abc) {
  EXPECT_EQ(hex_digest(Sha256::hash(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST_P(Sha256Kat, TwoBlockMessage) {
  EXPECT_EQ(
      hex_digest(Sha256::hash(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST_P(Sha256Kat, FourBlockMessage) {
  // FIPS 180-4 / NIST CAVP 896-bit message.
  EXPECT_EQ(
      hex_digest(Sha256::hash(bytes_of(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
          "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST_P(Sha256Kat, NistOneByte) {
  // NIST SHA-256 example vector: the single byte 0xbd.
  const Bytes msg{0xbd};
  EXPECT_EQ(hex_digest(Sha256::hash(msg)),
            "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b");
}

TEST_P(Sha256Kat, NistFourBytes) {
  // NIST SHA-256 example vector: the 4-byte message 0xc98c8e55.
  const Bytes msg{0xc9, 0x8c, 0x8e, 0x55};
  EXPECT_EQ(hex_digest(Sha256::hash(msg)),
            "7abc22c0ae5af26ce93dbb94433a0e0b2e119d014f8e7f65bd56c61ccccd9504");
}

TEST_P(Sha256Kat, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_digest(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST_P(Sha256Kat, ExactlyOneBlock) {
  // 64 bytes: padding must spill into a second block.
  const Bytes data(64, 0x61);
  EXPECT_EQ(hex_digest(Sha256::hash(data)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST_P(Sha256Kat, FiftyFiveAndFiftySixBytes) {
  // 55 bytes is the largest message whose padding fits in one block.
  const Bytes b55(55, 'a');
  const Bytes b56(56, 'a');
  EXPECT_EQ(hex_digest(Sha256::hash(b55)),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(hex_digest(Sha256::hash(b56)),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST_P(Sha256Kat, IncrementalMatchesOneShotAtEverySplit) {
  const Bytes msg = bytes_of("the quick brown fox jumps over the lazy dog!!");
  const Digest expected = Sha256::hash(msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(common::BytesView(msg.data(), split));
    h.update(common::BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), expected) << "split=" << split;
  }
}

TEST_P(Sha256Kat, Hash2MatchesConcatenation) {
  common::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes a(rng.uniform_u64(0, 100));
    Bytes b(rng.uniform_u64(0, 100));
    for (auto& x : a) x = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    Bytes joined = a;
    common::append(joined, b);
    EXPECT_EQ(Sha256::hash2(a, b), Sha256::hash(joined));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, Sha256Kat,
    ::testing::ValuesIn(Sha256::supported_backends()),
    [](const ::testing::TestParamInfo<Sha256Backend>& info) {
      return std::string(Sha256::backend_name(info.param));
    });

// ---------------------------------------------------------------------------
// Backend-independent behavior (runs under the default selection).
// ---------------------------------------------------------------------------

TEST(Sha256, UpdateAfterFinishThrows) {
  Sha256 h;
  h.update(bytes_of("x"));
  (void)h.finish();
  EXPECT_THROW(h.update(bytes_of("y")), std::logic_error);
  EXPECT_THROW((void)h.finish(), std::logic_error);
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(bytes_of("abc"));
  const Digest first = h.finish();
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(h.finish(), first);
}

TEST(Sha256, GenericBackendAlwaysSupported) {
  const auto backends = Sha256::supported_backends();
  EXPECT_NE(std::find(backends.begin(), backends.end(),
                      Sha256Backend::kGeneric),
            backends.end());
  // The active backend is always one of the supported set.
  EXPECT_NE(std::find(backends.begin(), backends.end(), Sha256::backend()),
            backends.end());
}

TEST(Sha256, BackendNamesAreStable) {
  EXPECT_EQ(Sha256::backend_name(Sha256Backend::kGeneric), "generic");
  EXPECT_EQ(Sha256::backend_name(Sha256Backend::kShaNi), "shani");
  EXPECT_EQ(Sha256::backend_name(Sha256Backend::kAvx2), "avx2");
}

TEST(LeadingZeroBits, AllZeroDigestIs256) {
  Digest d{};
  EXPECT_EQ(leading_zero_bits(d), 256u);
}

TEST(LeadingZeroBits, TopBitSetIsZero) {
  Digest d{};
  d[0] = 0x80;
  EXPECT_EQ(leading_zero_bits(d), 0u);
}

TEST(LeadingZeroBits, CountsWithinFirstByte) {
  Digest d{};
  d[0] = 0x01;  // 7 leading zeros then a one
  EXPECT_EQ(leading_zero_bits(d), 7u);
  d[0] = 0x10;
  EXPECT_EQ(leading_zero_bits(d), 3u);
}

TEST(LeadingZeroBits, CountsAcrossBytes) {
  Digest d{};
  d[0] = 0x00;
  d[1] = 0x40;  // 8 + 1 leading zeros
  EXPECT_EQ(leading_zero_bits(d), 9u);
  d[1] = 0x00;
  d[2] = 0xff;
  EXPECT_EQ(leading_zero_bits(d), 16u);
}

TEST(MeetsDifficulty, ThresholdSemantics) {
  Digest d{};
  d[0] = 0x0f;  // exactly 4 leading zero bits
  EXPECT_TRUE(meets_difficulty(d, 0));
  EXPECT_TRUE(meets_difficulty(d, 4));
  EXPECT_FALSE(meets_difficulty(d, 5));
}

TEST(ConstantTimeEqual, Basics) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes shorter = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, shorter));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

// Property: flipping any single input bit changes the digest (collision
// would be astronomically unlikely).
TEST(Sha256, AvalancheOnSingleBitFlips) {
  const Bytes base = bytes_of("avalanche-property-input");
  const Digest base_digest = Sha256::hash(base);
  for (std::size_t byte = 0; byte < base.size(); ++byte) {
    Bytes mutated = base;
    mutated[byte] ^= 0x01;
    EXPECT_NE(Sha256::hash(mutated), base_digest) << "byte=" << byte;
  }
}

}  // namespace
}  // namespace powai::crypto
