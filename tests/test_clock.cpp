// Tests for the virtual clock layer.

#include "common/clock.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace powai::common {
namespace {

using namespace std::chrono_literals;

TEST(ManualClock, StartsAtGivenTime) {
  const ManualClock clock(TimePoint{} + 100ns);
  EXPECT_EQ(clock.now().time_since_epoch(), 100ns);
}

TEST(ManualClock, AdvanceMovesForward) {
  ManualClock clock;
  clock.advance(1500ms);
  EXPECT_EQ(clock.now().time_since_epoch(), 1500ms);
  clock.advance(500us);
  EXPECT_EQ(clock.now().time_since_epoch(), 1500ms + 500us);
}

TEST(ManualClock, AdvanceZeroIsNoop) {
  ManualClock clock;
  clock.advance(0ns);
  EXPECT_EQ(clock.now().time_since_epoch(), 0ns);
}

TEST(ManualClock, RejectsNegativeAdvance) {
  ManualClock clock;
  EXPECT_THROW(clock.advance(-1ns), std::invalid_argument);
}

TEST(ManualClock, SetJumpsForwardOnly) {
  ManualClock clock;
  clock.set(TimePoint{} + 10s);
  EXPECT_EQ(clock.now().time_since_epoch(), 10s);
  EXPECT_THROW(clock.set(TimePoint{} + 5s), std::invalid_argument);
}

TEST(WallClock, MonotoneEnough) {
  const WallClock& clock = WallClock::instance();
  const TimePoint a = clock.now();
  const TimePoint b = clock.now();
  EXPECT_LE(a, b);
}

TEST(WallClock, TracksSystemClock) {
  const auto sys = std::chrono::time_point_cast<Duration>(
      std::chrono::system_clock::now());
  const TimePoint ours = WallClock::instance().now();
  // Within 5 seconds of each other (they are the same clock).
  EXPECT_LT(std::chrono::abs(ours - sys), 5s);
}

TEST(TimeHelpers, ToMillis) {
  const TimePoint t = TimePoint{} + 1500ms;
  EXPECT_EQ(to_millis(t), 1500);
  EXPECT_DOUBLE_EQ(to_millis_f(2500us), 2.5);
}

}  // namespace
}  // namespace powai::common
