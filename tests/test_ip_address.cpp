// Tests for IPv4 address and subnet types.

#include "features/ip_address.hpp"

#include <gtest/gtest.h>

namespace powai::features {
namespace {

TEST(IpAddress, ParsesValidDottedQuad) {
  const auto ip = IpAddress::parse("192.168.1.10");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "192.168.1.10");
  EXPECT_EQ(ip->octet(0), 192);
  EXPECT_EQ(ip->octet(1), 168);
  EXPECT_EQ(ip->octet(2), 1);
  EXPECT_EQ(ip->octet(3), 10);
}

TEST(IpAddress, ParsesBoundaryAddresses) {
  EXPECT_EQ(IpAddress::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(IpAddress::parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(IpAddress, RejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IpAddress::parse("256.0.0.1").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.x").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.-4").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(IpAddress::parse("1..3.4").has_value());
}

TEST(IpAddress, RejectsLeadingZeros) {
  EXPECT_FALSE(IpAddress::parse("01.2.3.4").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.007").has_value());
  EXPECT_TRUE(IpAddress::parse("0.2.3.4").has_value());  // bare zero is fine
}

TEST(IpAddress, OctetConstructorMatchesParse) {
  EXPECT_EQ(IpAddress(10, 20, 30, 40), IpAddress::parse("10.20.30.40"));
}

TEST(IpAddress, ComparesByNumericValue) {
  EXPECT_LT(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2));
  EXPECT_LT(IpAddress(9, 255, 255, 255), IpAddress(10, 0, 0, 0));
}

TEST(IpAddress, RoundTripsThroughString) {
  const IpAddress ip(203, 0, 113, 7);
  EXPECT_EQ(IpAddress::parse(ip.to_string()), ip);
}

TEST(Subnet, MasksHostBits) {
  const Subnet net(IpAddress(192, 168, 77, 200), 16);
  EXPECT_EQ(net.base().to_string(), "192.168.0.0");
  EXPECT_EQ(net.to_string(), "192.168.0.0/16");
}

TEST(Subnet, ContainsMembershipTest) {
  const Subnet net(IpAddress(10, 0, 0, 0), 8);
  EXPECT_TRUE(net.contains(IpAddress(10, 255, 1, 2)));
  EXPECT_FALSE(net.contains(IpAddress(11, 0, 0, 1)));
}

TEST(Subnet, SlashZeroContainsEverything) {
  const Subnet net(IpAddress(1, 2, 3, 4), 0);
  EXPECT_TRUE(net.contains(IpAddress(255, 255, 255, 255)));
  EXPECT_TRUE(net.contains(IpAddress(0, 0, 0, 0)));
  EXPECT_EQ(net.size(), 1ULL << 32);
}

TEST(Subnet, SlashThirtyTwoIsSingleHost) {
  const Subnet net(IpAddress(8, 8, 8, 8), 32);
  EXPECT_TRUE(net.contains(IpAddress(8, 8, 8, 8)));
  EXPECT_FALSE(net.contains(IpAddress(8, 8, 8, 9)));
  EXPECT_EQ(net.size(), 1u);
}

TEST(Subnet, AtEnumeratesAddresses) {
  const Subnet net(IpAddress(10, 0, 0, 0), 24);
  EXPECT_EQ(net.at(0).to_string(), "10.0.0.0");
  EXPECT_EQ(net.at(255).to_string(), "10.0.0.255");
  EXPECT_THROW((void)net.at(256), std::out_of_range);
}

TEST(Subnet, ParseAcceptsCidr) {
  const auto net = Subnet::parse("172.16.0.0/12");
  ASSERT_TRUE(net.has_value());
  EXPECT_EQ(net->prefix_len(), 12);
  EXPECT_TRUE(net->contains(IpAddress(172, 20, 1, 1)));
}

TEST(Subnet, ParseRejectsMalformed) {
  EXPECT_FALSE(Subnet::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Subnet::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Subnet::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Subnet::parse("bad/8").has_value());
}

TEST(Subnet, ConstructorRejectsBadPrefix) {
  EXPECT_THROW(Subnet(IpAddress(1, 2, 3, 4), 33), std::invalid_argument);
  EXPECT_THROW(Subnet(IpAddress(1, 2, 3, 4), -1), std::invalid_argument);
}

}  // namespace
}  // namespace powai::features
