// Tests for the compact million-client population: key derivation
// determinism, arrival-process shapes, heavy-tailed weights, and the
// O(1)-per-client memory contract.

#include "sim/population.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace powai::sim {
namespace {

PopulationConfig small_config() {
  PopulationConfig cfg;
  cfg.clients = 1024;
  cfg.base_ip = "10.0.0.0";
  cfg.seed = 42;
  return cfg;
}

TEST(ClientPopulation, AddressesAreContiguousAndInvertible) {
  ClientPopulation pop(small_config());
  EXPECT_EQ(pop.size(), 1024u);
  EXPECT_EQ(pop.ip_of(0), "10.0.0.0");
  EXPECT_EQ(pop.ip_of(255), "10.0.0.255");
  EXPECT_EQ(pop.ip_of(256), "10.0.1.0");
  for (const std::size_t i : {0u, 1u, 255u, 256u, 1023u}) {
    EXPECT_EQ(pop.index_of(pop.address_of(i)), i);
  }
  EXPECT_EQ(pop.index_of(features::IpAddress(10, 0, 4, 0)), // base + 1024
            ClientPopulation::npos);
  EXPECT_EQ(pop.index_of(features::IpAddress(9, 255, 255, 255)),
            ClientPopulation::npos);
  EXPECT_THROW((void)pop.ip_of(1024), std::out_of_range);
}

TEST(ClientPopulation, SameSeedSamePopulationDifferentSeedDifferent) {
  ClientPopulation a(small_config());
  ClientPopulation b(small_config());
  auto other = small_config();
  other.seed = 43;
  ClientPopulation c(other);
  int differs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.gap_before(i, 0, 0.0), b.gap_before(i, 0, 0.0));
    EXPECT_DOUBLE_EQ(a.weight_of(i), b.weight_of(i));
    if (a.gap_before(i, 0, 0.0) != c.gap_before(i, 0, 0.0)) ++differs;
  }
  EXPECT_GT(differs, 1000);  // nearly every client re-keyed by the seed
}

TEST(ClientPopulation, GapsArePureFunctionsOfClientAndOrdinal) {
  // Call-order independence: asking out of order, repeatedly, from a
  // fresh object — always the same answer. This is what makes histories
  // bit-identical across serial/pooled/sharded harness shapes.
  ClientPopulation pop(small_config());
  const auto g_5_7 = pop.gap_before(5, 7, 0.0);
  const auto g_5_0 = pop.gap_before(5, 0, 0.0);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(pop.gap_before(5, 7, 0.0), g_5_7);
    EXPECT_EQ(pop.gap_before(5, 0, 0.0), g_5_0);
  }
  EXPECT_NE(pop.gap_before(5, 7, 0.0), pop.gap_before(6, 7, 0.0));
}

TEST(ClientPopulation, PoissonGapsMatchTheConfiguredMean) {
  auto cfg = small_config();
  cfg.clients = 4096;
  cfg.arrivals.mean_interarrival_ms = 250.0;
  ClientPopulation pop(cfg);
  double sum_ms = 0.0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    sum_ms += common::to_millis_f(pop.gap_before(i, 0, 0.0));
  }
  // Mean of 4096 Exp(1/250) draws: SE ~ 250/64 ≈ 4 ms.
  EXPECT_NEAR(sum_ms / static_cast<double>(pop.size()), 250.0, 20.0);
}

TEST(ClientPopulation, ParetoGapsAreHeavyTailed) {
  auto cfg = small_config();
  cfg.clients = 8192;
  cfg.arrivals.process = ArrivalProcess::kPareto;
  cfg.arrivals.mean_interarrival_ms = 100.0;
  cfg.arrivals.pareto_alpha = 1.5;
  ClientPopulation pop(cfg);
  std::vector<double> gaps;
  gaps.reserve(pop.size());
  for (std::size_t i = 0; i < pop.size(); ++i) {
    gaps.push_back(common::to_millis_f(pop.gap_before(i, 0, 0.0)));
  }
  // Every draw sits at or above the scale xm = mean*(a-1)/a = 100/3.
  const double xm = 100.0 * (1.5 - 1.0) / 1.5;
  for (const double g : gaps) ASSERT_GE(g, xm * 0.999);
  // Heavy tail: the max dwarfs the median by far more than an
  // exponential's ~10x would allow at this sample size.
  std::sort(gaps.begin(), gaps.end());
  const double median = gaps[gaps.size() / 2];
  EXPECT_GT(gaps.back() / median, 50.0);
}

TEST(ClientPopulation, DiurnalRateRisesAtThePeak) {
  auto cfg = small_config();
  cfg.clients = 4096;
  cfg.arrivals.process = ArrivalProcess::kDiurnal;
  cfg.arrivals.mean_interarrival_ms = 100.0;
  cfg.arrivals.diurnal_period_ms = 1000.0;
  cfg.arrivals.diurnal_depth = 0.9;
  ClientPopulation pop(cfg);
  // Peak of sin at t = period/4; trough at 3*period/4. The same (i, n)
  // draws, re-timed, must yield gaps ~19x apart ((1+.9)/(1-.9)).
  double peak_sum = 0.0;
  double trough_sum = 0.0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    peak_sum += common::to_millis_f(pop.gap_before(i, 0, 250.0));
    trough_sum += common::to_millis_f(pop.gap_before(i, 0, 750.0));
  }
  EXPECT_NEAR(trough_sum / peak_sum, 19.0, 1.0);
}

TEST(ClientPopulation, FlashCrowdStepsTheRateUp) {
  auto cfg = small_config();
  cfg.clients = 4096;
  cfg.arrivals.process = ArrivalProcess::kFlashCrowd;
  cfg.arrivals.mean_interarrival_ms = 100.0;
  cfg.arrivals.flash_at_ms = 5000.0;
  cfg.arrivals.flash_factor = 10.0;
  ClientPopulation pop(cfg);
  double before_sum = 0.0;
  double after_sum = 0.0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    before_sum += common::to_millis_f(pop.gap_before(i, 0, 4999.0));
    after_sum += common::to_millis_f(pop.gap_before(i, 0, 5000.0));
  }
  EXPECT_NEAR(before_sum / after_sum, 10.0, 0.5);
}

TEST(ClientPopulation, HeavyTailedWeightsSkewActivity) {
  auto cfg = small_config();
  cfg.clients = 8192;
  cfg.weight_alpha = 1.2;
  ClientPopulation pop(cfg);
  std::vector<double> weights;
  weights.reserve(pop.size());
  double total = 0.0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    weights.push_back(pop.weight_of(i));
    total += weights.back();
  }
  std::sort(weights.begin(), weights.end(), std::greater<>());
  // Top 1% of clients carries a disproportionate share of the activity.
  double top_share = 0.0;
  for (std::size_t i = 0; i < weights.size() / 100; ++i) {
    top_share += weights[i];
  }
  EXPECT_GT(top_share / total, 0.10);
  // Uniform mode: exactly 1.0 everywhere.
  auto uniform_cfg = small_config();
  ClientPopulation uniform(uniform_cfg);
  EXPECT_DOUBLE_EQ(uniform.weight_of(0), 1.0);
  EXPECT_DOUBLE_EQ(uniform.weight_of(uniform.size() - 1), 1.0);
}

TEST(ClientPopulation, MemoryIsEightBytesPerClient) {
  auto cfg = small_config();
  cfg.clients = 100'000;
  ClientPopulation pop(cfg);
  const double per_client = static_cast<double>(pop.memory_bytes()) /
                            static_cast<double>(pop.size());
  EXPECT_LT(per_client, 9.0);  // 8 B key + amortized object header
}

TEST(ClientPopulation, RejectsMalformedConfigs) {
  auto cfg = small_config();
  cfg.clients = 0;
  EXPECT_THROW(ClientPopulation{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.base_ip = "bogus";
  EXPECT_THROW(ClientPopulation{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.base_ip = "255.255.255.0";
  cfg.clients = 1024;  // wraps
  EXPECT_THROW(ClientPopulation{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.weight_alpha = 0.5;  // infinite-mean weights
  EXPECT_THROW(ClientPopulation{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.arrivals.mean_interarrival_ms = 0.0;
  EXPECT_THROW(ClientPopulation{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.arrivals.process = ArrivalProcess::kPareto;
  cfg.arrivals.pareto_alpha = 1.0;
  EXPECT_THROW(ClientPopulation{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.arrivals.process = ArrivalProcess::kDiurnal;
  cfg.arrivals.diurnal_depth = 1.0;
  EXPECT_THROW(ClientPopulation{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.arrivals.process = ArrivalProcess::kFlashCrowd;
  cfg.arrivals.flash_factor = 0.5;
  EXPECT_THROW(ClientPopulation{cfg}, std::invalid_argument);
}

TEST(ClientPopulation, ArrivalProcessNamesRoundTrip) {
  for (const auto p :
       {ArrivalProcess::kPoisson, ArrivalProcess::kDiurnal,
        ArrivalProcess::kPareto, ArrivalProcess::kFlashCrowd}) {
    ArrivalProcess parsed{};
    ASSERT_TRUE(parse_arrival_process(arrival_process_name(p), parsed));
    EXPECT_EQ(parsed, p);
  }
  ArrivalProcess out{};
  EXPECT_FALSE(parse_arrival_process("constant", out));
}

}  // namespace
}  // namespace powai::sim
