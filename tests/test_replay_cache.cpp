// Tests for the shard-striped replay cache: atomic redeem-once
// semantics, per-shard FIFO eviction, and race behavior under
// concurrent redemption of the same id.

#include "pow/replay_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace powai::pow {
namespace {

TEST(ShardedReplayCache, RedeemsEachIdExactlyOnce) {
  ShardedReplayCache cache(1024, 8);
  EXPECT_TRUE(cache.try_redeem(7));
  EXPECT_FALSE(cache.try_redeem(7));
  EXPECT_TRUE(cache.try_redeem(8));
  EXPECT_TRUE(cache.contains(7));
  EXPECT_TRUE(cache.contains(8));
  EXPECT_FALSE(cache.contains(9));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedReplayCache, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedReplayCache(16, 1).shard_count(), 1u);
  EXPECT_EQ(ShardedReplayCache(16, 3).shard_count(), 4u);
  EXPECT_EQ(ShardedReplayCache(16, 16).shard_count(), 16u);
  // Clamped: 32 stripes over a 16-entry budget would leave zero-budget
  // shards that re-admit replayed ids.
  EXPECT_EQ(ShardedReplayCache(16, 17).shard_count(), 16u);
  EXPECT_EQ(ShardedReplayCache(3, 16).shard_count(), 2u);
}

TEST(ShardedReplayCache, CapacityIsDistributedExactly) {
  // 67 = 8*8 + 3: rounding each shard's slice up would admit 72 ids.
  ShardedReplayCache cache(67, 8);
  EXPECT_EQ(cache.shard_count(), 8u);
  EXPECT_EQ(cache.capacity(), 67u);
  for (std::uint64_t id = 0; id < 50'000; ++id) {
    (void)cache.try_redeem(id);
  }
  EXPECT_LE(cache.size(), cache.capacity());
  // Uniform id mixing keeps every shard populated, so the resident total
  // sits at (not merely below) the global budget.
  EXPECT_EQ(cache.size(), 67u);
}

TEST(ShardedReplayCache, RejectsZeroCapacity) {
  EXPECT_THROW(ShardedReplayCache(0, 4), std::invalid_argument);
}

TEST(ShardedReplayCache, SingleShardEvictsGlobalFifo) {
  ShardedReplayCache cache(2, 1);
  EXPECT_TRUE(cache.try_redeem(1));
  EXPECT_TRUE(cache.try_redeem(2));
  EXPECT_TRUE(cache.try_redeem(3));  // evicts 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  // The forgotten id can be redeemed again — the documented cost of a
  // bounded cache.
  EXPECT_TRUE(cache.try_redeem(1));
}

TEST(ShardedReplayCache, CapacityBoundsTotalEntries) {
  ShardedReplayCache cache(64, 8);
  for (std::uint64_t id = 0; id < 10'000; ++id) {
    (void)cache.try_redeem(id);
  }
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.size(), 0u);
}

TEST(ShardedReplayCache, ConcurrentRedeemOfSameIdAcceptsExactlyOnce) {
  // The race the striped design must win: N threads submit the same
  // solution simultaneously; the cache must admit exactly one.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kRounds = 200;
  ShardedReplayCache cache(1 << 16, 16);

  for (std::uint64_t round = 0; round < kRounds; ++round) {
    const std::uint64_t id = 0x1000 + round;
    std::atomic<int> winners{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        if (cache.try_redeem(id)) winners.fetch_add(1);
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    ASSERT_EQ(winners.load(), 1) << "round " << round;
  }
}

TEST(ShardedReplayCache, ConcurrentDistinctIdsAllSucceed) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2'000;
  ShardedReplayCache cache(1 << 20, 16);

  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t id =
            (static_cast<std::uint64_t>(t) << 32) | i;
        if (cache.try_redeem(id)) accepted.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(accepted.load(), kThreads * kPerThread);
  EXPECT_EQ(cache.size(), kThreads * kPerThread);
}

}  // namespace
}  // namespace powai::pow
