// Tests for the shard-striped replay cache: atomic redeem-once
// semantics, per-shard FIFO eviction, and race behavior under
// concurrent redemption of the same id.

#include "pow/replay_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/hashing.hpp"

namespace powai::pow {
namespace {

/// First \p count ids that the cache's own hash routes to \p shard (of
/// \p shards) — the tool for constructing shard-skewed insert streams.
std::vector<std::uint64_t> ids_for_shard(std::uint64_t shard,
                                         std::uint64_t shards,
                                         std::size_t count,
                                         std::uint64_t start = 0) {
  std::vector<std::uint64_t> ids;
  ids.reserve(count);
  for (std::uint64_t id = start; ids.size() < count; ++id) {
    if ((common::mix64(id) & (shards - 1)) == shard) ids.push_back(id);
  }
  return ids;
}

TEST(ShardedReplayCache, RedeemsEachIdExactlyOnce) {
  ShardedReplayCache cache(1024, 8);
  EXPECT_TRUE(cache.try_redeem(7));
  EXPECT_FALSE(cache.try_redeem(7));
  EXPECT_TRUE(cache.try_redeem(8));
  EXPECT_TRUE(cache.contains(7));
  EXPECT_TRUE(cache.contains(8));
  EXPECT_FALSE(cache.contains(9));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedReplayCache, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedReplayCache(16, 1).shard_count(), 1u);
  EXPECT_EQ(ShardedReplayCache(16, 3).shard_count(), 4u);
  EXPECT_EQ(ShardedReplayCache(16, 16).shard_count(), 16u);
  // Clamped: 32 stripes over a 16-entry budget would leave zero-budget
  // shards that re-admit replayed ids.
  EXPECT_EQ(ShardedReplayCache(16, 17).shard_count(), 16u);
  EXPECT_EQ(ShardedReplayCache(3, 16).shard_count(), 2u);
}

TEST(ShardedReplayCache, CapacityIsDistributedExactly) {
  // 67 = 8*8 + 3: rounding each shard's slice up would admit 72 ids.
  ShardedReplayCache cache(67, 8);
  EXPECT_EQ(cache.shard_count(), 8u);
  EXPECT_EQ(cache.capacity(), 67u);
  for (std::uint64_t id = 0; id < 50'000; ++id) {
    (void)cache.try_redeem(id);
  }
  EXPECT_LE(cache.size(), cache.capacity());
  // Uniform id mixing keeps every shard populated, so the resident total
  // sits at (not merely below) the global budget.
  EXPECT_EQ(cache.size(), 67u);
}

TEST(ShardedReplayCache, RejectsZeroCapacity) {
  EXPECT_THROW(ShardedReplayCache(0, 4), std::invalid_argument);
}

TEST(ShardedReplayCache, SingleShardEvictsGlobalFifo) {
  ShardedReplayCache cache(2, 1);
  EXPECT_TRUE(cache.try_redeem(1));
  EXPECT_TRUE(cache.try_redeem(2));
  EXPECT_TRUE(cache.try_redeem(3));  // evicts 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  // The forgotten id can be redeemed again — the documented cost of a
  // bounded cache.
  EXPECT_TRUE(cache.try_redeem(1));
}

TEST(ShardedReplayCache, CapacityBoundsTotalEntries) {
  ShardedReplayCache cache(64, 8);
  for (std::uint64_t id = 0; id < 10'000; ++id) {
    (void)cache.try_redeem(id);
  }
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.size(), 0u);
}

TEST(ShardedReplayCache, ConcurrentRedeemOfSameIdAcceptsExactlyOnce) {
  // The race the striped design must win: N threads submit the same
  // solution simultaneously; the cache must admit exactly one.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kRounds = 200;
  ShardedReplayCache cache(1 << 16, 16);

  for (std::uint64_t round = 0; round < kRounds; ++round) {
    const std::uint64_t id = 0x1000 + round;
    std::atomic<int> winners{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        if (cache.try_redeem(id)) winners.fetch_add(1);
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    ASSERT_EQ(winners.load(), 1) << "round " << round;
  }
}

TEST(ShardedReplayCache, ConcurrentDistinctIdsAllSucceed) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2'000;
  ShardedReplayCache cache(1 << 20, 16);

  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t id =
            (static_cast<std::uint64_t>(t) << 32) | i;
        if (cache.try_redeem(id)) accepted.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(accepted.load(), kThreads * kPerThread);
  EXPECT_EQ(cache.size(), kThreads * kPerThread);
}

TEST(ShardedReplayCache, SkewedShardBorrowsTheFullGlobalBudget) {
  // All keys route to one shard of eight. Under the old exact per-shard
  // split the hot shard would cap at capacity/8 = 8 entries; with
  // borrowing it absorbs the whole idle budget.
  constexpr std::size_t kCapacity = 64;
  ShardedReplayCache cache(kCapacity, 8);
  ASSERT_EQ(cache.shard_count(), 8u);
  const auto skewed = ids_for_shard(0, 8, kCapacity);
  for (const auto id : skewed) ASSERT_TRUE(cache.try_redeem(id));
  EXPECT_EQ(cache.size(), kCapacity);
  for (const auto id : skewed) {
    EXPECT_TRUE(cache.contains(id)) << "id " << id;
    EXPECT_FALSE(cache.try_redeem(id)) << "id " << id;
  }
}

TEST(ShardedReplayCache, BorrowedCapacityStretchesTheReRedemptionWindow) {
  // Pins the documented cost of borrowing: under a fully skewed stream
  // an id is forgotten — and becomes redeemable again — only after
  // `capacity` same-shard inserts, not capacity/shards. The window IS
  // the global budget.
  constexpr std::size_t kCapacity = 32;
  ShardedReplayCache cache(kCapacity, 4);
  ASSERT_EQ(cache.shard_count(), 4u);
  const auto skewed = ids_for_shard(0, 4, kCapacity + 1);

  ASSERT_TRUE(cache.try_redeem(skewed[0]));
  // capacity-1 further same-shard inserts: the victim-to-be survives all
  // of them (window not yet exhausted)...
  for (std::size_t i = 1; i < kCapacity; ++i) {
    ASSERT_TRUE(cache.try_redeem(skewed[i]));
    ASSERT_TRUE(cache.contains(skewed[0])) << "evicted after only " << i
                                           << " same-shard inserts";
  }
  // ...and exactly the capacity-th insert pushes it out.
  ASSERT_TRUE(cache.try_redeem(skewed[kCapacity]));
  EXPECT_FALSE(cache.contains(skewed[0]));
  EXPECT_TRUE(cache.try_redeem(skewed[0]));  // re-redeemable: window passed
  EXPECT_EQ(cache.size(), kCapacity);
}

TEST(ShardedReplayCache, ExactCapacityBoundaryAdmitsAllWithoutEviction) {
  // Filling to exactly the budget — concurrently, with shard-skewed
  // keys — must evict nothing: eviction triggers strictly beyond
  // capacity, not at it.
  constexpr std::size_t kCapacity = 4096;
  constexpr int kThreads = 8;
  ShardedReplayCache cache(kCapacity, 8);
  // Every thread hammers one of two shards (4 threads each).
  const auto shard0 = ids_for_shard(0, 8, kCapacity / 2);
  const auto shard1 = ids_for_shard(1, 8, kCapacity / 2);
  std::atomic<std::size_t> accepted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto& ids = (t % 2 == 0) ? shard0 : shard1;
      const std::size_t chunk = ids.size() / (kThreads / 2);
      const std::size_t begin = static_cast<std::size_t>(t / 2) * chunk;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = begin; i < begin + chunk; ++i) {
        if (cache.try_redeem(ids[i])) accepted.fetch_add(1);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(accepted.load(), kCapacity);
  EXPECT_EQ(cache.size(), kCapacity);
  for (const auto id : shard0) EXPECT_TRUE(cache.contains(id));
  for (const auto id : shard1) EXPECT_TRUE(cache.contains(id));
}

TEST(ShardedReplayCache, ConcurrentSkewedOverflowHoldsTheGlobalBound) {
  // Past the budget, concurrent skewed inserts must keep the resident
  // total at capacity — with at most shards-1 transient overshoot from
  // inserts that found their shard empty while the budget was full
  // (each non-empty shard retains at least one entry by design).
  constexpr std::size_t kCapacity = 1024;
  constexpr int kThreads = 8;
  constexpr std::size_t kPerThread = 2048;
  ShardedReplayCache cache(kCapacity, 8);
  std::vector<std::vector<std::uint64_t>> streams;
  streams.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // Threads pair up on shards 0-3: skew plus same-shard contention.
    streams.push_back(ids_for_shard(static_cast<std::uint64_t>(t % 4), 8,
                                    kPerThread,
                                    static_cast<std::uint64_t>(t) << 40));
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (const auto id : streams[static_cast<std::size_t>(t)]) {
        (void)cache.try_redeem(id);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), kCapacity + cache.shard_count() - 1);
  EXPECT_GE(cache.size(), kCapacity / 2);  // borrowing keeps it well fed
  EXPECT_GT(cache.memory_bytes(), cache.size() * sizeof(std::uint64_t));
}

}  // namespace
}  // namespace powai::pow
