// Tests for the wire protocol: round trips, tag dispatch, and fuzzing of
// malformed buffers.

#include "framework/protocol.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "pow/generator.hpp"

namespace powai::framework {
namespace {

pow::Puzzle sample_puzzle() {
  static common::ManualClock clock;
  static pow::PuzzleGenerator gen(clock, common::bytes_of("proto-secret"));
  return gen.issue("203.0.113.5", 6);
}

features::FeatureVector sample_features() {
  features::FeatureVector v;
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    v[i] = 0.25 * static_cast<double>(i) - 1.0;
  }
  return v;
}

TEST(Protocol, RequestRoundTrip) {
  Request r;
  r.client_ip = "203.0.113.5";
  r.path = "/index.html";
  r.features = sample_features();
  r.request_id = 77;
  const auto decoded = decode(r.serialize());
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Request>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->client_ip, r.client_ip);
  EXPECT_EQ(back->path, r.path);
  EXPECT_EQ(back->features, r.features);
  EXPECT_EQ(back->request_id, 77u);
}

TEST(Protocol, FeatureDoublesSurviveExactly) {
  Request r;
  r.client_ip = "1.2.3.4";
  r.features[0] = 0.1;  // not exactly representable
  r.features[1] = -1e300;
  r.features[2] = 3.14159265358979;
  const auto decoded = decode(r.serialize());
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<Request>(*decoded);
  EXPECT_EQ(back.features, r.features);  // bit-exact
}

TEST(Protocol, ChallengeRoundTrip) {
  Challenge c;
  c.request_id = 9;
  c.puzzle = sample_puzzle();
  const auto decoded = decode(c.serialize());
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<Challenge>(*decoded);
  EXPECT_EQ(back.puzzle, c.puzzle);
  EXPECT_EQ(back.request_id, 9u);
}

TEST(Protocol, SubmissionRoundTrip) {
  Submission s;
  s.request_id = 10;
  s.puzzle = sample_puzzle();
  s.solution = {s.puzzle.puzzle_id, 0xabcdef12345ULL};
  const auto decoded = decode(s.serialize());
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<Submission>(*decoded);
  EXPECT_EQ(back.puzzle, s.puzzle);
  EXPECT_EQ(back.solution, s.solution);
}

TEST(Protocol, ResponseRoundTrip) {
  Response r;
  r.request_id = 11;
  r.status = common::ErrorCode::kReplay;
  r.body = "puzzle already redeemed";
  const auto decoded = decode(r.serialize());
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<Response>(*decoded);
  EXPECT_EQ(back.status, common::ErrorCode::kReplay);
  EXPECT_EQ(back.body, r.body);
}

TEST(Protocol, DeadlineAndRetryHintFieldsSurviveTheWire) {
  // The overload-control fields: the request/submission deadline is
  // what every server stage sheds against, and the response's
  // retry_after hint is what shed clients back off by — losing either
  // in transit would silently disable the control loop end to end.
  Request req;
  req.client_ip = "203.0.113.5";
  req.features = sample_features();
  req.deadline_ms = 123'456'789;
  ASSERT_TRUE(decode(req.serialize()).has_value());
  EXPECT_EQ(std::get<Request>(*decode(req.serialize())).deadline_ms,
            123'456'789);

  Submission sub;
  sub.request_id = 12;
  sub.puzzle = sample_puzzle();
  sub.solution = {sub.puzzle.puzzle_id, 99};
  sub.deadline_ms = -1;  // signed: skewed clocks can stamp the past
  ASSERT_TRUE(decode(sub.serialize()).has_value());
  EXPECT_EQ(std::get<Submission>(*decode(sub.serialize())).deadline_ms, -1);

  Response resp;
  resp.request_id = 13;
  resp.status = common::ErrorCode::kUnavailable;
  resp.retry_after_ms = 2000;
  ASSERT_TRUE(decode(resp.serialize()).has_value());
  EXPECT_EQ(std::get<Response>(*decode(resp.serialize())).retry_after_ms,
            2000u);

  // Zero (= unset) round-trips too: the server substitutes its default
  // only for a genuine zero, so an encode that dropped or invented the
  // field would change admission behaviour.
  Request bare;
  bare.client_ip = "203.0.113.6";
  EXPECT_EQ(std::get<Request>(*decode(bare.serialize())).deadline_ms, 0);
}

TEST(Protocol, PeekTypeReadsTag) {
  Request r;
  r.client_ip = "1.2.3.4";
  EXPECT_EQ(peek_type(r.serialize()), MessageType::kRequest);
  Response resp;
  EXPECT_EQ(peek_type(resp.serialize()), MessageType::kResponse);
  EXPECT_FALSE(peek_type({}).has_value());
  const common::Bytes junk = {0x09};
  EXPECT_FALSE(peek_type(junk).has_value());
}

TEST(Protocol, DecodeRejectsUnknownTag) {
  common::Bytes wire = {0x00, 0x01, 0x02};
  EXPECT_FALSE(decode(wire).has_value());
  wire[0] = 0x05;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Protocol, DecodeRejectsEveryTruncation) {
  Submission s;
  s.request_id = 1;
  s.puzzle = sample_puzzle();
  s.solution = {s.puzzle.puzzle_id, 42};
  const common::Bytes wire = s.serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        decode(common::BytesView(wire.data(), len)).has_value())
        << "len=" << len;
  }
}

TEST(Protocol, DecodeRejectsTrailingGarbage) {
  Response r;
  common::Bytes wire = r.serialize();
  wire.push_back(0xff);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Protocol, DecodeRejectsOversizedLengthClaims) {
  // A Request whose ip length field claims 1 MiB.
  common::Bytes wire;
  wire.push_back(static_cast<std::uint8_t>(MessageType::kRequest));
  common::append_u64be(wire, 1);          // request id
  common::append_u32be(wire, 1 << 20);    // absurd ip length
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Protocol, DecodeSurvivesRandomBytes) {
  // Fuzz: random buffers must never crash and (almost always) fail to
  // parse cleanly.
  common::Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    common::Bytes buf(rng.uniform_u64(0, 128));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    (void)decode(buf);  // must not throw or crash
  }
}

TEST(Protocol, DecodeSurvivesBitFlippedValidMessages) {
  Challenge c;
  c.request_id = 5;
  c.puzzle = sample_puzzle();
  const common::Bytes wire = c.serialize();
  common::Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    common::Bytes mutated = wire;
    const std::size_t byte = rng.uniform_u64(0, mutated.size() - 1);
    mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_u64(0, 7));
    (void)decode(mutated);  // must not throw or crash
  }
}

TEST(Protocol, ResponseStatusRangeEnforced) {
  Response r;
  r.status = common::ErrorCode::kTimeout;  // 10, the max wire value
  EXPECT_TRUE(decode(r.serialize()).has_value());
  common::Bytes wire = r.serialize();
  // Patch the status field (bytes 9-10 after tag+id) to 11: invalid.
  wire[9] = 0;
  wire[10] = 11;
  EXPECT_FALSE(decode(wire).has_value());
}

}  // namespace
}  // namespace powai::framework
