// Parameterized property sweeps across the system's core invariants:
// solve/verify round trips per difficulty, tamper rejection per field,
// policy monotonicity per policy, protocol round trips per payload shape,
// and multi-puzzle work conservation per fanout.

#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "framework/protocol.hpp"
#include "policy/factory.hpp"
#include "pow/generator.hpp"
#include "pow/multi_puzzle.hpp"
#include "pow/solver.hpp"
#include "pow/verifier.hpp"

namespace powai {
namespace {

// ---------------------------------------------------------------------------
// Property: for every difficulty, solve → verify round-trips, and the
// solution meets exactly the difficulty semantics.
// ---------------------------------------------------------------------------

class DifficultySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DifficultySweep, SolveVerifyRoundTrip) {
  const unsigned d = GetParam();
  common::ManualClock clock;
  pow::PuzzleGenerator generator(clock, common::bytes_of("sweep-secret"));
  pow::Verifier verifier(clock, common::bytes_of("sweep-secret"));
  const pow::Puzzle puzzle = generator.issue("192.0.2.1", d);
  const pow::SolveResult solved = pow::Solver{}.solve(puzzle);
  ASSERT_TRUE(solved.found);
  EXPECT_GE(crypto::leading_zero_bits(
                pow::solution_digest(puzzle, solved.solution.nonce)),
            d);
  EXPECT_TRUE(verifier.verify(puzzle, solved.solution, "192.0.2.1").ok());
}

TEST_P(DifficultySweep, EarlierNoncesDoNotSolve) {
  // The solver returns the *first* solving nonce: every nonce before it
  // must fail the difficulty check (definition of the search).
  const unsigned d = GetParam();
  if (d > 10) GTEST_SKIP() << "bounded exhaustive check only for small d";
  common::ManualClock clock;
  pow::PuzzleGenerator generator(clock, common::bytes_of("sweep-secret-2"));
  const pow::Puzzle puzzle = generator.issue("192.0.2.1", d);
  const pow::SolveResult solved = pow::Solver{}.solve(puzzle);
  ASSERT_TRUE(solved.found);
  for (std::uint64_t n = 0; n < solved.solution.nonce; ++n) {
    ASSERT_FALSE(pow::is_valid_solution(puzzle, n)) << "nonce " << n;
  }
}

TEST_P(DifficultySweep, AttemptCountEqualsNoncePlusOne) {
  // start_nonce=0, stride 1: attempts == winning nonce + 1.
  const unsigned d = GetParam();
  common::ManualClock clock;
  pow::PuzzleGenerator generator(clock, common::bytes_of("sweep-secret-3"));
  const pow::Puzzle puzzle = generator.issue("192.0.2.1", d);
  const pow::SolveResult solved = pow::Solver{}.solve(puzzle);
  ASSERT_TRUE(solved.found);
  EXPECT_EQ(solved.attempts, solved.solution.nonce + 1);
}

INSTANTIATE_TEST_SUITE_P(AllDifficulties, DifficultySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 8u, 10u,
                                           12u, 14u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Property: flipping any single serialized-puzzle field breaks
// verification (the MAC covers everything).
// ---------------------------------------------------------------------------

enum class Tamper { kSeed, kTimestamp, kDifficulty, kBinding, kId, kAuth };

class TamperSweep : public ::testing::TestWithParam<Tamper> {};

TEST_P(TamperSweep, AnyFieldChangeIsRejected) {
  common::ManualClock clock;
  pow::PuzzleGenerator generator(clock, common::bytes_of("tamper-secret"));
  pow::Verifier verifier(clock, common::bytes_of("tamper-secret"));
  const pow::Puzzle original = generator.issue("192.0.2.1", 6);
  pow::Puzzle tampered = original;
  switch (GetParam()) {
    case Tamper::kSeed: tampered.seed[0] ^= 1; break;
    case Tamper::kTimestamp: tampered.issued_at_ms += 1; break;
    case Tamper::kDifficulty: tampered.difficulty -= 1; break;
    case Tamper::kBinding: tampered.client_binding = "192.0.2.2"; break;
    case Tamper::kId: tampered.puzzle_id += 1; break;
    case Tamper::kAuth: tampered.auth[0] ^= 1; break;
  }
  const pow::SolveResult solved = pow::Solver{}.solve(tampered);
  ASSERT_TRUE(solved.found);
  EXPECT_FALSE(verifier.verify(tampered, solved.solution).ok());
  // And the untampered puzzle still works (no state was corrupted).
  const pow::SolveResult honest = pow::Solver{}.solve(original);
  EXPECT_TRUE(verifier.verify(original, honest.solution).ok());
}

INSTANTIATE_TEST_SUITE_P(AllFields, TamperSweep,
                         ::testing::Values(Tamper::kSeed, Tamper::kTimestamp,
                                           Tamper::kDifficulty,
                                           Tamper::kBinding, Tamper::kId,
                                           Tamper::kAuth),
                         [](const auto& info) {
                           switch (info.param) {
                             case Tamper::kSeed: return "seed";
                             case Tamper::kTimestamp: return "timestamp";
                             case Tamper::kDifficulty: return "difficulty";
                             case Tamper::kBinding: return "binding";
                             case Tamper::kId: return "id";
                             case Tamper::kAuth: return "auth";
                           }
                           return "unknown";
                         });

// ---------------------------------------------------------------------------
// Property: every factory-constructible policy is monotone (in
// expectation for the randomized one) and stays inside the difficulty
// band across the whole score range.
// ---------------------------------------------------------------------------

class PolicySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicySweep, OutputAlwaysInSupportedBand) {
  const auto policy =
      policy::make_policy(common::Config::parse(GetParam()));
  common::Rng rng(1);
  for (double s = -2.0; s <= 12.0; s += 0.25) {
    const policy::Difficulty d = policy->difficulty(s, rng);
    ASSERT_GE(d, policy::kMinSupportedDifficulty);
    ASSERT_LE(d, policy::kMaxSupportedDifficulty);
  }
}

TEST_P(PolicySweep, MeanDifficultyIsNonDecreasingInScore) {
  const auto policy =
      policy::make_policy(common::Config::parse(GetParam()));
  common::Rng rng(2);
  double prev_mean = 0.0;
  for (int r = 0; r <= 10; ++r) {
    double mean = 0.0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      mean += static_cast<double>(
                  policy->difficulty(static_cast<double>(r), rng)) /
              trials;
    }
    ASSERT_GE(mean, prev_mean - 0.25) << "score " << r;  // sampling slack
    prev_mean = mean;
  }
}

TEST_P(PolicySweep, DeterministicPoliciesIgnoreRngState) {
  const std::string spec = GetParam();
  if (spec.find("error_range") != std::string::npos) {
    GTEST_SKIP() << "policy 3 is randomized by design";
  }
  const auto policy = policy::make_policy(common::Config::parse(spec));
  common::Rng rng_a(3);
  common::Rng rng_b(4444);
  for (int r = 0; r <= 10; ++r) {
    EXPECT_EQ(policy->difficulty(r, rng_a), policy->difficulty(r, rng_b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values("policy=policy1", "policy=policy2",
                      "policy=linear offset=3 slope=0.5",
                      "policy=error_range epsilon=1.5",
                      "policy=error_range epsilon=3.0",
                      "policy=step tiers=3:2,7:8,10:15",
                      "policy=exponential base=1.0 growth=1.3",
                      "policy=target_latency l0_ms=30 l1_ms=900 hash_us=0.5"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Property: protocol messages round-trip for randomized payloads.
// ---------------------------------------------------------------------------

class ProtocolSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolSweep, RandomizedRequestRoundTrips) {
  common::Rng rng(GetParam());
  framework::Request r;
  r.client_ip = std::to_string(rng.uniform_u64(0, 255)) + "." +
                std::to_string(rng.uniform_u64(0, 255)) + ".0.1";
  r.path.assign(rng.uniform_u64(0, 64), 'p');
  r.request_id = rng();
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    r.features[i] = rng.normal(0.0, 1e6);
  }
  const auto decoded = framework::decode(r.serialize());
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<framework::Request>(*decoded);
  EXPECT_EQ(back.client_ip, r.client_ip);
  EXPECT_EQ(back.path, r.path);
  EXPECT_EQ(back.features, r.features);
  EXPECT_EQ(back.request_id, r.request_id);
}

TEST_P(ProtocolSweep, RandomizedSubmissionRoundTrips) {
  common::Rng rng(GetParam() ^ 0xfeedULL);
  common::ManualClock clock;
  pow::PuzzleGenerator gen(clock, common::bytes_of("proto-sweep"));
  framework::Submission s;
  s.request_id = rng();
  s.puzzle = gen.issue("10.1.2.3",
                       static_cast<unsigned>(rng.uniform_u64(1, 30)));
  s.solution = {s.puzzle.puzzle_id, rng()};
  const auto decoded = framework::decode(s.serialize());
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<framework::Submission>(*decoded);
  EXPECT_EQ(back.puzzle, s.puzzle);
  EXPECT_EQ(back.solution, s.solution);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Property: multi-puzzle fanouts conserve expected work and verify.
// ---------------------------------------------------------------------------

class FanoutSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FanoutSweep, SolvesVerifiesAndConservesWork) {
  const unsigned fanout = GetParam();
  common::ManualClock clock;
  pow::PuzzleGenerator gen(clock, common::bytes_of("fanout-sweep"));
  const unsigned d = 10;
  const pow::MultiPuzzle m = pow::split_puzzle(gen.issue("10.0.0.1", d), fanout);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(fanout) * std::pow(2.0, m.sub_difficulty),
      std::pow(2.0, d));
  const pow::MultiSolveResult r = pow::solve_multi(m);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(pow::is_valid_multi_solution(m, r.solution));
  // Cross-fanout isolation: a solution for fanout k never validates
  // against a different split of the same base puzzle.
  if (fanout > 1) {
    const pow::MultiPuzzle other = pow::split_puzzle(m.base, fanout / 2);
    EXPECT_FALSE(pow::is_valid_multi_solution(other, r.solution));
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, FanoutSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace powai
