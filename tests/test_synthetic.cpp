// Tests for the synthetic trace generator (the data substitution for the
// proprietary threat feed — see DESIGN.md §2).

#include "features/synthetic.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace powai::features {
namespace {

TEST(Profiles, BenignAndMaliciousDifferMarkedly) {
  const ClassProfile benign = benign_profile();
  const ClassProfile malicious = malicious_profile();
  // The raw (pre-overlap) profiles must be strongly separated on the
  // rate/ports/syn features that define flooding behaviour.
  EXPECT_GT(malicious.mean.get(Feature::kRequestRate),
            10.0 * benign.mean.get(Feature::kRequestRate));
  EXPECT_GT(malicious.mean.get(Feature::kSynRatio),
            benign.mean.get(Feature::kSynRatio));
  EXPECT_GT(malicious.mean.get(Feature::kUniquePorts),
            benign.mean.get(Feature::kUniquePorts));
}

TEST(Generator, RejectsBadConfig) {
  SyntheticConfig bad_overlap;
  bad_overlap.class_overlap = 1.0;
  EXPECT_THROW(SyntheticTraceGenerator{bad_overlap}, std::invalid_argument);
  bad_overlap.class_overlap = -0.1;
  EXPECT_THROW(SyntheticTraceGenerator{bad_overlap}, std::invalid_argument);

  SyntheticConfig bad_noise;
  bad_noise.label_noise = 0.6;
  EXPECT_THROW(SyntheticTraceGenerator{bad_noise}, std::invalid_argument);
}

TEST(Generator, OverlapPullsMaliciousTowardBenign) {
  SyntheticConfig none;
  none.class_overlap = 0.0;
  SyntheticConfig heavy;
  heavy.class_overlap = 0.8;
  const SyntheticTraceGenerator g_none(none);
  const SyntheticTraceGenerator g_heavy(heavy);
  const double rate_none = g_none.malicious().mean.get(Feature::kRequestRate);
  const double rate_heavy = g_heavy.malicious().mean.get(Feature::kRequestRate);
  const double rate_benign = g_none.benign().mean.get(Feature::kRequestRate);
  EXPECT_GT(rate_none, rate_heavy);
  EXPECT_GT(rate_heavy, rate_benign);
}

TEST(Generator, ZeroOverlapKeepsRawProfile) {
  SyntheticConfig cfg;
  cfg.class_overlap = 0.0;
  const SyntheticTraceGenerator gen(cfg);
  EXPECT_EQ(gen.malicious().mean, malicious_profile().mean);
}

TEST(Generator, SamplesRespectPhysicalDomains) {
  const SyntheticTraceGenerator gen;
  common::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const FeatureVector v = gen.sample(i % 2 == 0, rng);
    for (std::size_t f = 0; f < kFeatureCount; ++f) {
      EXPECT_GE(v[f], 0.0) << "feature " << f;
    }
    EXPECT_LE(v.get(Feature::kSynRatio), 1.0);
    EXPECT_LE(v.get(Feature::kErrorRatio), 1.0);
    EXPECT_LE(v.get(Feature::kGeoRisk), 1.0);
  }
}

TEST(Generator, SampleMeansTrackProfiles) {
  const SyntheticTraceGenerator gen;
  common::Rng rng(2);
  common::RunningStats benign_rate;
  common::RunningStats malicious_rate;
  for (int i = 0; i < 5000; ++i) {
    benign_rate.add(gen.sample(false, rng).get(Feature::kRequestRate));
    malicious_rate.add(gen.sample(true, rng).get(Feature::kRequestRate));
  }
  EXPECT_NEAR(benign_rate.mean(), gen.benign().mean.get(Feature::kRequestRate),
              0.5);
  // Clamping at zero biases the malicious mean slightly upward of the
  // profile; just require clear separation.
  EXPECT_GT(malicious_rate.mean(), 3.0 * benign_rate.mean());
}

TEST(Generator, GeneratesRequestedClassSizes) {
  const SyntheticTraceGenerator gen;
  common::Rng rng(3);
  const Dataset d = gen.generate(120, 40, rng);
  EXPECT_EQ(d.size(), 160u);
  EXPECT_EQ(d.malicious_count(), 40u);
  EXPECT_EQ(d.benign_count(), 120u);
}

TEST(Generator, AssignsIpsFromClassSubnets) {
  SyntheticConfig cfg;
  const SyntheticTraceGenerator gen(cfg);
  common::Rng rng(4);
  const Dataset d = gen.generate(50, 50, rng);
  for (const auto& row : d.rows()) {
    if (row.malicious) {
      EXPECT_TRUE(cfg.malicious_subnet.contains(row.ip));
    } else {
      EXPECT_TRUE(cfg.benign_subnet.contains(row.ip));
    }
  }
}

TEST(Generator, DeterministicGivenSeed) {
  const SyntheticTraceGenerator gen;
  common::Rng rng1(9);
  common::Rng rng2(9);
  const Dataset a = gen.generate(30, 30, rng1);
  const Dataset b = gen.generate(30, 30, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].features, b[i].features);
    EXPECT_EQ(a[i].ip, b[i].ip);
  }
}

TEST(Generator, LabelNoiseFlipsRoughlyTheConfiguredFraction) {
  SyntheticConfig cfg;
  cfg.label_noise = 0.2;
  const SyntheticTraceGenerator gen(cfg);
  common::Rng rng(10);
  const Dataset d = gen.generate(2000, 2000, rng);
  // With 20% flips, the *labels* in each subnet deviate from the subnet's
  // true class about 20% of the time.
  std::size_t flipped = 0;
  for (const auto& row : d.rows()) {
    const bool true_class = cfg.malicious_subnet.contains(row.ip);
    if (row.malicious != true_class) ++flipped;
  }
  const double rate = static_cast<double>(flipped) / static_cast<double>(d.size());
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(Generator, ThrowsWhenPopulationExceedsSubnet) {
  SyntheticConfig cfg;
  cfg.benign_subnet = Subnet(IpAddress(10, 0, 0, 0), 30);  // 4 hosts
  const SyntheticTraceGenerator gen(cfg);
  common::Rng rng(11);
  EXPECT_THROW((void)gen.generate(5, 1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace powai::features
