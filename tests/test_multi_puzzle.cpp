// Tests for variance-reduced multi-puzzles: splitting, work equivalence,
// verification, and the variance-reduction property itself.

#include "pow/multi_puzzle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "pow/generator.hpp"

namespace powai::pow {
namespace {

Puzzle make_base(unsigned difficulty) {
  static common::ManualClock clock;
  static PuzzleGenerator gen(clock, common::bytes_of("multi-secret"));
  return gen.issue("192.0.2.9", difficulty);
}

TEST(SplitPuzzle, ComputesSubDifficulty) {
  const MultiPuzzle m = split_puzzle(make_base(10), 4);
  EXPECT_EQ(m.fanout, 4u);
  EXPECT_EQ(m.sub_difficulty, 8u);  // 10 - log2(4)
}

TEST(SplitPuzzle, FanoutOneIsDegenerate) {
  const Puzzle base = make_base(6);
  const MultiPuzzle m = split_puzzle(base, 1);
  EXPECT_EQ(m.sub_difficulty, 6u);
  EXPECT_EQ(m.fanout, 1u);
}

TEST(SplitPuzzle, RejectsBadFanout) {
  const Puzzle base = make_base(10);
  EXPECT_THROW((void)split_puzzle(base, 0), std::invalid_argument);
  EXPECT_THROW((void)split_puzzle(base, 3), std::invalid_argument);
  EXPECT_THROW((void)split_puzzle(base, 6), std::invalid_argument);
  // log2(fanout) must stay below the difficulty.
  EXPECT_THROW((void)split_puzzle(base, 1024), std::invalid_argument);
  EXPECT_NO_THROW((void)split_puzzle(base, 512));
}

TEST(SplitPuzzle, ExpectedWorkIsPreserved) {
  const Puzzle base = make_base(12);
  for (unsigned fanout : {1u, 2u, 4u, 8u}) {
    const MultiPuzzle m = split_puzzle(base, fanout);
    const double expected_work =
        static_cast<double>(fanout) * std::pow(2.0, m.sub_difficulty);
    EXPECT_DOUBLE_EQ(expected_work, std::pow(2.0, base.difficulty));
  }
}

TEST(SubDigest, DiffersAcrossIndices) {
  const MultiPuzzle m = split_puzzle(make_base(8), 4);
  EXPECT_NE(sub_digest(m, 0, 7), sub_digest(m, 1, 7));
  EXPECT_NE(sub_digest(m, 0, 7), sub_digest(m, 0, 8));
}

TEST(SubDigest, DiffersFromPlainDigest) {
  // A nonce solving the plain puzzle must not transfer to subpuzzle 0.
  const Puzzle base = make_base(8);
  const MultiPuzzle m = split_puzzle(base, 2);
  EXPECT_NE(sub_digest(m, 0, 42), solution_digest(base, 42));
}

TEST(SolveMulti, SolvesAndVerifies) {
  for (unsigned fanout : {1u, 2u, 4u, 8u}) {
    const MultiPuzzle m = split_puzzle(make_base(10), fanout);
    const MultiSolveResult r = solve_multi(m);
    ASSERT_TRUE(r.found) << "fanout=" << fanout;
    EXPECT_EQ(r.solution.nonces.size(), fanout);
    EXPECT_TRUE(is_valid_multi_solution(m, r.solution));
  }
}

TEST(SolveMulti, RespectsBudget) {
  const MultiPuzzle m = split_puzzle(make_base(30), 2);  // ~2^29 per sub
  SolveOptions opts;
  opts.max_attempts = 500;
  const MultiSolveResult r = solve_multi(m, opts);
  EXPECT_FALSE(r.found);
  EXPECT_LE(r.attempts, 500u);
}

TEST(SolveMulti, CancellationStops) {
  const MultiPuzzle m = split_puzzle(make_base(30), 2);
  std::atomic<bool> cancel{true};  // pre-cancelled
  SolveOptions opts;
  opts.cancel = &cancel;
  const MultiSolveResult r = solve_multi(m, opts);
  EXPECT_FALSE(r.found);
  EXPECT_LT(r.attempts, 512u);
}

TEST(VerifyMulti, RejectsTampering) {
  const MultiPuzzle m = split_puzzle(make_base(8), 4);
  const MultiSolveResult r = solve_multi(m);
  ASSERT_TRUE(r.found);

  MultiSolution wrong_id = r.solution;
  wrong_id.puzzle_id += 1;
  EXPECT_FALSE(is_valid_multi_solution(m, wrong_id));

  MultiSolution short_list = r.solution;
  short_list.nonces.pop_back();
  EXPECT_FALSE(is_valid_multi_solution(m, short_list));

  MultiSolution bad_nonce = r.solution;
  bad_nonce.nonces[2] ^= 1;
  EXPECT_FALSE(is_valid_multi_solution(m, bad_nonce));

  // Reordering nonces breaks index binding (unless coincidentally valid).
  if (r.solution.nonces[0] != r.solution.nonces[1]) {
    MultiSolution swapped = r.solution;
    std::swap(swapped.nonces[0], swapped.nonces[1]);
    const bool still_valid = is_valid_multi_solution(m, swapped);
    // Overwhelmingly false; tolerate the 2^-d coincidence.
    if (still_valid) {
      EXPECT_TRUE(is_valid_sub_solution(m, 0, swapped.nonces[0]));
    }
  }
}

TEST(VarianceReduction, FanoutTightensSolveTimeSpread) {
  // The design goal: same mean work, ~sqrt(k) smaller relative spread.
  const unsigned d = 10;
  const int trials = 120;
  auto relative_spread = [&](unsigned fanout) {
    common::RunningStats attempts;
    common::ManualClock clock;
    PuzzleGenerator gen(clock, common::bytes_of("variance-secret"));
    for (int t = 0; t < trials; ++t) {
      const MultiPuzzle m = split_puzzle(gen.issue("192.0.2.1", d), fanout);
      const MultiSolveResult r = solve_multi(m);
      EXPECT_TRUE(r.found);
      attempts.add(static_cast<double>(r.attempts));
    }
    return attempts.stddev() / attempts.mean();
  };

  const double spread1 = relative_spread(1);
  const double spread8 = relative_spread(8);
  // Theory: 1.0 vs 1/sqrt(8) ~ 0.35. Generous sampling margin.
  EXPECT_GT(spread1, 0.6);
  EXPECT_LT(spread8, 0.65 * spread1);
}

TEST(VarianceReduction, MeanWorkUnchangedByFanout) {
  const unsigned d = 9;
  const int trials = 150;
  auto mean_attempts = [&](unsigned fanout) {
    common::RunningStats attempts;
    common::ManualClock clock;
    PuzzleGenerator gen(clock, common::bytes_of("mean-secret"));
    for (int t = 0; t < trials; ++t) {
      const MultiPuzzle m = split_puzzle(gen.issue("192.0.2.1", d), fanout);
      attempts.add(static_cast<double>(solve_multi(m).attempts));
    }
    return attempts.mean();
  };
  const double m1 = mean_attempts(1);
  const double m4 = mean_attempts(4);
  // Both estimate 2^9 = 512; allow generous sampling noise.
  EXPECT_NEAR(m1, 512.0, 150.0);
  EXPECT_NEAR(m4, 512.0, 80.0);
}

}  // namespace
}  // namespace powai::pow
