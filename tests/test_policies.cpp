// Tests for the paper's three policies and the extension policies.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "common/rng.hpp"
#include "policy/error_range_policy.hpp"
#include "policy/extensions.hpp"
#include "policy/linear_policy.hpp"
#include "policy/policy.hpp"

namespace powai::policy {
namespace {

TEST(ClampDifficulty, Band) {
  EXPECT_EQ(clamp_difficulty(0.0), kMinSupportedDifficulty);
  EXPECT_EQ(clamp_difficulty(-5.0), kMinSupportedDifficulty);
  EXPECT_EQ(clamp_difficulty(1e9), kMaxSupportedDifficulty);
  EXPECT_EQ(clamp_difficulty(7.0), 7u);
  EXPECT_EQ(clamp_difficulty(std::nan("")), kMinSupportedDifficulty);
}

// ---------------------------------------------------------------------------
// Policy 1 / Policy 2 — the paper's exact integer mappings (§III.A).
// ---------------------------------------------------------------------------

TEST(Policy1, MatchesPaperTable) {
  // "we map a 1-difficult puzzle to a client with a reputation score 0, a
  // 2-difficult puzzle to a client with a reputation score of 1, and so on"
  const LinearPolicy p = LinearPolicy::policy1();
  common::Rng rng(1);
  for (int r = 0; r <= 10; ++r) {
    EXPECT_EQ(p.difficulty(static_cast<double>(r), rng),
              static_cast<Difficulty>(r + 1))
        << "R=" << r;
  }
}

TEST(Policy2, MatchesPaperTable) {
  // "we map a 5-difficult puzzle to the client with reputation score 0, a
  // 6-difficult puzzle to a client with a reputation score of 1, and so on"
  const LinearPolicy p = LinearPolicy::policy2();
  common::Rng rng(1);
  for (int r = 0; r <= 10; ++r) {
    EXPECT_EQ(p.difficulty(static_cast<double>(r), rng),
              static_cast<Difficulty>(r + 5))
        << "R=" << r;
  }
}

TEST(LinearPolicy, FractionalScoresRoundUp) {
  const LinearPolicy p(1);
  common::Rng rng(1);
  EXPECT_EQ(p.difficulty(0.1, rng), 2u);  // ceil(0.1) + 1
  EXPECT_EQ(p.difficulty(3.9, rng), 5u);  // ceil(3.9) + 1
}

TEST(LinearPolicy, ClampsOutOfRangeScores) {
  const LinearPolicy p(1);
  common::Rng rng(1);
  EXPECT_EQ(p.difficulty(-3.0, rng), p.difficulty(0.0, rng));
  EXPECT_EQ(p.difficulty(42.0, rng), p.difficulty(10.0, rng));
}

TEST(LinearPolicy, SlopeScalesMapping) {
  const LinearPolicy p(0, 2.0);
  common::Rng rng(1);
  EXPECT_EQ(p.difficulty(3.0, rng), 6u);
  EXPECT_EQ(p.difficulty(10.0, rng), 20u);
}

TEST(LinearPolicy, RejectsNonPositiveSlope) {
  EXPECT_THROW(LinearPolicy(1, 0.0), std::invalid_argument);
  EXPECT_THROW(LinearPolicy(1, -1.0), std::invalid_argument);
}

TEST(LinearPolicy, IsMonotone) {
  const LinearPolicy p = LinearPolicy::policy2();
  common::Rng rng(1);
  Difficulty prev = 0;
  for (double s = 0.0; s <= 10.0; s += 0.25) {
    const Difficulty d = p.difficulty(s, rng);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(LinearPolicy, DescribeMentionsParameters) {
  EXPECT_NE(LinearPolicy(5).describe().find("5"), std::string::npos);
  EXPECT_EQ(LinearPolicy(1).name(), "linear");
}

// ---------------------------------------------------------------------------
// Policy 3 — error-range mapping (§III.B).
// ---------------------------------------------------------------------------

TEST(ErrorRangePolicy, RejectsNegativeEpsilon) {
  EXPECT_THROW(ErrorRangePolicy(-0.1), std::invalid_argument);
  EXPECT_THROW(ErrorRangePolicy(std::nan("")), std::invalid_argument);
}

TEST(ErrorRangePolicy, ZeroEpsilonIsDeterministicCeilPlusOne) {
  // With ε = 0 the interval collapses to dᵢ = ⌈sᵢ + 1⌉ exactly.
  const ErrorRangePolicy p(0.0);
  common::Rng rng(2);
  for (int r = 0; r <= 10; ++r) {
    EXPECT_EQ(p.difficulty(static_cast<double>(r), rng),
              static_cast<Difficulty>(r + 1))
        << "R=" << r;
  }
}

TEST(ErrorRangePolicy, IntervalMatchesPaperFormula) {
  const ErrorRangePolicy p(1.5);
  // s = 4: d = ceil(4 + 1) = 5; interval [ceil(3.5), ceil(6.5)] = [4, 7].
  const auto [lo, hi] = p.interval(4.0);
  EXPECT_EQ(lo, 4u);
  EXPECT_EQ(hi, 7u);
}

TEST(ErrorRangePolicy, DrawsStayInsideInterval) {
  const ErrorRangePolicy p(2.0);
  common::Rng rng(3);
  for (int r = 0; r <= 10; ++r) {
    const auto [lo, hi] = p.interval(static_cast<double>(r));
    for (int trial = 0; trial < 200; ++trial) {
      const Difficulty d = p.difficulty(static_cast<double>(r), rng);
      EXPECT_GE(d, lo);
      EXPECT_LE(d, hi);
    }
  }
}

TEST(ErrorRangePolicy, CoversWholeInterval) {
  const ErrorRangePolicy p(2.0);
  common::Rng rng(4);
  const auto [lo, hi] = p.interval(5.0);
  std::map<Difficulty, int> seen;
  for (int trial = 0; trial < 2000; ++trial) {
    ++seen[p.difficulty(5.0, rng)];
  }
  for (Difficulty d = lo; d <= hi; ++d) {
    EXPECT_GT(seen[d], 0) << "difficulty " << d << " never drawn";
  }
  EXPECT_EQ(seen.size(), hi - lo + 1);
}

TEST(ErrorRangePolicy, IntervalClampedAtLowEnd) {
  // s = 0, ε = 5: raw interval would start below the minimum difficulty.
  const ErrorRangePolicy p(5.0);
  const auto [lo, hi] = p.interval(0.0);
  EXPECT_EQ(lo, kMinSupportedDifficulty);
  EXPECT_EQ(hi, 6u);  // ceil(1 + 5)
}

TEST(ErrorRangePolicy, MeanDifficultyBetweenPolicies1And2) {
  // The paper's Figure 2 shows Policy 3's latency growth between the two
  // linear policies; difficulty-wise, its mean at high scores must exceed
  // Policy 1's and stay below Policy 2's.
  const ErrorRangePolicy p3(1.5);
  const LinearPolicy p1 = LinearPolicy::policy1();
  const LinearPolicy p2 = LinearPolicy::policy2();
  common::Rng rng(5);
  for (int r = 6; r <= 10; ++r) {
    double mean3 = 0.0;
    const int trials = 500;
    for (int t = 0; t < trials; ++t) {
      mean3 += static_cast<double>(p3.difficulty(r, rng)) / trials;
    }
    const auto d1 = static_cast<double>(p1.difficulty(r, rng));
    const auto d2 = static_cast<double>(p2.difficulty(r, rng));
    EXPECT_GE(mean3, d1 - 0.3) << "R=" << r;
    EXPECT_LT(mean3, d2) << "R=" << r;
  }
}

// ---------------------------------------------------------------------------
// StepPolicy
// ---------------------------------------------------------------------------

TEST(StepPolicy, TierLookup) {
  const StepPolicy p({{3.0, 2}, {7.0, 8}, {10.0, 15}});
  common::Rng rng(6);
  EXPECT_EQ(p.difficulty(0.0, rng), 2u);
  EXPECT_EQ(p.difficulty(3.0, rng), 2u);   // inclusive bound
  EXPECT_EQ(p.difficulty(3.01, rng), 8u);
  EXPECT_EQ(p.difficulty(7.0, rng), 8u);
  EXPECT_EQ(p.difficulty(9.9, rng), 15u);
  EXPECT_EQ(p.difficulty(10.0, rng), 15u);
}

TEST(StepPolicy, RejectsBadTierLists) {
  EXPECT_THROW(StepPolicy({}), std::invalid_argument);
  EXPECT_THROW(StepPolicy({{5.0, 2}, {5.0, 3}, {10.0, 4}}),
               std::invalid_argument);
  EXPECT_THROW(StepPolicy({{7.0, 2}, {3.0, 3}, {10.0, 4}}),
               std::invalid_argument);
  EXPECT_THROW(StepPolicy({{3.0, 2}, {9.0, 3}}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ExponentialPolicy
// ---------------------------------------------------------------------------

TEST(ExponentialPolicy, GrowsGeometrically) {
  const ExponentialPolicy p(1.0, 1.3);
  common::Rng rng(7);
  EXPECT_EQ(p.difficulty(0.0, rng), 1u);
  // 1.3^10 = 13.78... -> ceil = 14
  EXPECT_EQ(p.difficulty(10.0, rng), 14u);
  // Monotone in between.
  Difficulty prev = 0;
  for (double s = 0.0; s <= 10.0; s += 0.5) {
    const Difficulty d = p.difficulty(s, rng);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(ExponentialPolicy, RejectsBadParameters) {
  EXPECT_THROW(ExponentialPolicy(0.5, 1.3), std::invalid_argument);
  EXPECT_THROW(ExponentialPolicy(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ExponentialPolicy(1.0, 0.9), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// TargetLatencyPolicy
// ---------------------------------------------------------------------------

TEST(TargetLatencyPolicy, InterpolatesTargetsLogarithmically) {
  const TargetLatencyPolicy p(30.0, 900.0, 0.5);
  EXPECT_DOUBLE_EQ(p.target_latency_ms(0.0), 30.0);
  EXPECT_DOUBLE_EQ(p.target_latency_ms(10.0), 900.0);
  // Midpoint in log space: sqrt(30 * 900).
  EXPECT_NEAR(p.target_latency_ms(5.0), std::sqrt(30.0 * 900.0), 1e-9);
}

TEST(TargetLatencyPolicy, InvertsExpectedWorkModel) {
  const double hash_us = 0.5;
  const TargetLatencyPolicy p(30.0, 900.0, hash_us);
  common::Rng rng(8);
  for (double s = 0.0; s <= 10.0; s += 1.0) {
    const Difficulty d = p.difficulty(s, rng);
    // 2^d expected hashes should bracket the target within one difficulty
    // step (factor of two) in each direction.
    const double achieved_us = std::pow(2.0, d) * hash_us;
    const double target_us = p.target_latency_ms(s) * 1000.0;
    EXPECT_GT(achieved_us, target_us / 2.1) << "s=" << s;
    EXPECT_LT(achieved_us, target_us * 2.1) << "s=" << s;
  }
}

TEST(TargetLatencyPolicy, RejectsBadParameters) {
  EXPECT_THROW(TargetLatencyPolicy(0.0, 900.0, 0.5), std::invalid_argument);
  EXPECT_THROW(TargetLatencyPolicy(900.0, 30.0, 0.5), std::invalid_argument);
  EXPECT_THROW(TargetLatencyPolicy(30.0, 900.0, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// AdaptiveLoadPolicy / ClampPolicy
// ---------------------------------------------------------------------------

TEST(AdaptiveLoadPolicy, AddsSurchargeProportionalToLoad) {
  auto inner = std::make_unique<LinearPolicy>(1);
  AdaptiveLoadPolicy p(std::move(inner), 6);
  common::Rng rng(9);
  EXPECT_EQ(p.difficulty(4.0, rng), 5u);  // load 0: passthrough
  p.set_load(0.5);
  EXPECT_EQ(p.difficulty(4.0, rng), 8u);  // +ceil(6*0.5)=3
  p.set_load(1.0);
  EXPECT_EQ(p.difficulty(4.0, rng), 11u);  // +6
}

TEST(AdaptiveLoadPolicy, LoadIsClamped) {
  AdaptiveLoadPolicy p(std::make_unique<LinearPolicy>(1), 4);
  p.set_load(7.0);
  EXPECT_DOUBLE_EQ(p.load(), 1.0);
  p.set_load(-1.0);
  EXPECT_DOUBLE_EQ(p.load(), 0.0);
}

TEST(AdaptiveLoadPolicy, RejectsNullInner) {
  EXPECT_THROW(AdaptiveLoadPolicy(nullptr, 4), std::invalid_argument);
}

TEST(ClampPolicy, RestrictsRange) {
  ClampPolicy p(std::make_unique<LinearPolicy>(5), 6, 9);
  common::Rng rng(10);
  EXPECT_EQ(p.difficulty(0.0, rng), 6u);   // raw 5 clamped up
  EXPECT_EQ(p.difficulty(10.0, rng), 9u);  // raw 15 clamped down
  EXPECT_EQ(p.difficulty(2.0, rng), 7u);   // raw 7 untouched
}

TEST(ClampPolicy, RejectsBadBoundsAndNull) {
  EXPECT_THROW(ClampPolicy(std::make_unique<LinearPolicy>(1), 9, 6),
               std::invalid_argument);
  EXPECT_THROW(ClampPolicy(nullptr, 1, 2), std::invalid_argument);
}

TEST(Describe, AllPoliciesProduceNonEmptyDescriptions) {
  common::Rng rng(11);
  EXPECT_FALSE(LinearPolicy(1).describe().empty());
  EXPECT_FALSE(ErrorRangePolicy(1.5).describe().empty());
  EXPECT_FALSE(StepPolicy({{10.0, 3}}).describe().empty());
  EXPECT_FALSE(ExponentialPolicy().describe().empty());
  EXPECT_FALSE(TargetLatencyPolicy(30, 900, 0.5).describe().empty());
  EXPECT_FALSE(
      AdaptiveLoadPolicy(std::make_unique<LinearPolicy>(1), 3).describe().empty());
  EXPECT_FALSE(
      ClampPolicy(std::make_unique<LinearPolicy>(1), 1, 5).describe().empty());
}

}  // namespace
}  // namespace powai::policy
