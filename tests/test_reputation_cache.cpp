// Tests for the per-IP reputation cache (TTL + EWMA semantics).

#include "reputation/cache.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "features/ip_address.hpp"

namespace powai::reputation {
namespace {

using namespace std::chrono_literals;
using features::IpAddress;

TEST(ReputationCache, MissOnEmpty) {
  common::ManualClock clock;
  ReputationCache cache(clock);
  EXPECT_FALSE(cache.lookup(IpAddress(1, 2, 3, 4)).has_value());
}

TEST(ReputationCache, InsertThenHit) {
  common::ManualClock clock;
  ReputationCache cache(clock);
  cache.update(IpAddress(1, 2, 3, 4), 7.5);
  const auto hit = cache.lookup(IpAddress(1, 2, 3, 4));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 7.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReputationCache, ExpiresAfterTtl) {
  common::ManualClock clock;
  CacheConfig cfg;
  cfg.ttl = 10s;
  ReputationCache cache(clock, cfg);
  cache.update(IpAddress(1, 2, 3, 4), 3.0);
  clock.advance(10s);
  EXPECT_TRUE(cache.lookup(IpAddress(1, 2, 3, 4)).has_value());  // exactly ttl
  clock.advance(1ms);
  EXPECT_FALSE(cache.lookup(IpAddress(1, 2, 3, 4)).has_value());
}

TEST(ReputationCache, EwmaSmoothsUpdates) {
  common::ManualClock clock;
  CacheConfig cfg;
  cfg.alpha = 0.5;
  ReputationCache cache(clock, cfg);
  cache.update(IpAddress(1, 1, 1, 1), 10.0);
  const double merged = cache.update(IpAddress(1, 1, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(merged, 5.0);
  EXPECT_DOUBLE_EQ(*cache.lookup(IpAddress(1, 1, 1, 1)), 5.0);
}

TEST(ReputationCache, ExpiredEntryIsReplacedNotMerged) {
  common::ManualClock clock;
  CacheConfig cfg;
  cfg.ttl = 5s;
  cfg.alpha = 0.5;
  ReputationCache cache(clock, cfg);
  cache.update(IpAddress(1, 1, 1, 1), 10.0);
  clock.advance(6s);
  const double stored = cache.update(IpAddress(1, 1, 1, 1), 2.0);
  EXPECT_DOUBLE_EQ(stored, 2.0);  // no smoothing against stale state
}

TEST(ReputationCache, UpdateRefreshesTtl) {
  common::ManualClock clock;
  CacheConfig cfg;
  cfg.ttl = 10s;
  ReputationCache cache(clock, cfg);
  cache.update(IpAddress(9, 9, 9, 9), 4.0);
  clock.advance(8s);
  cache.update(IpAddress(9, 9, 9, 9), 4.0);
  clock.advance(8s);
  EXPECT_TRUE(cache.lookup(IpAddress(9, 9, 9, 9)).has_value());
}

TEST(ReputationCache, EvictsStalestAtCapacity) {
  common::ManualClock clock;
  CacheConfig cfg;
  cfg.max_entries = 2;
  ReputationCache cache(clock, cfg);
  cache.update(IpAddress(0, 0, 0, 1), 1.0);
  clock.advance(1s);
  cache.update(IpAddress(0, 0, 0, 2), 2.0);
  clock.advance(1s);
  cache.update(IpAddress(0, 0, 0, 3), 3.0);  // evicts .1 (stalest)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(IpAddress(0, 0, 0, 1)).has_value());
  EXPECT_TRUE(cache.lookup(IpAddress(0, 0, 0, 2)).has_value());
  EXPECT_TRUE(cache.lookup(IpAddress(0, 0, 0, 3)).has_value());
}

TEST(ReputationCache, PurgeExpiredRemovesOnlyStale) {
  common::ManualClock clock;
  CacheConfig cfg;
  cfg.ttl = 10s;
  ReputationCache cache(clock, cfg);
  cache.update(IpAddress(0, 0, 0, 1), 1.0);
  clock.advance(11s);
  cache.update(IpAddress(0, 0, 0, 2), 2.0);
  EXPECT_EQ(cache.purge_expired(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.lookup(IpAddress(0, 0, 0, 2)).has_value());
}

TEST(ReputationCache, EraseRemovesEntry) {
  common::ManualClock clock;
  ReputationCache cache(clock);
  cache.update(IpAddress(0, 0, 0, 1), 1.0);
  cache.erase(IpAddress(0, 0, 0, 1));
  EXPECT_FALSE(cache.lookup(IpAddress(0, 0, 0, 1)).has_value());
  cache.erase(IpAddress(0, 0, 0, 1));  // no-op, must not throw
}

TEST(ReputationCache, RejectsBadConfig) {
  common::ManualClock clock;
  CacheConfig bad;
  bad.alpha = 0.0;
  EXPECT_THROW(ReputationCache(clock, bad), std::invalid_argument);
  bad = {};
  bad.alpha = 1.1;
  EXPECT_THROW(ReputationCache(clock, bad), std::invalid_argument);
  bad = {};
  bad.max_entries = 0;
  EXPECT_THROW(ReputationCache(clock, bad), std::invalid_argument);
  bad = {};
  bad.ttl = 0s;
  EXPECT_THROW(ReputationCache(clock, bad), std::invalid_argument);
}

TEST(ReputationCache, DistinctIpsAreIndependent) {
  common::ManualClock clock;
  ReputationCache cache(clock);
  cache.update(IpAddress(1, 0, 0, 1), 2.0);
  cache.update(IpAddress(1, 0, 0, 2), 8.0);
  EXPECT_DOUBLE_EQ(*cache.lookup(IpAddress(1, 0, 0, 1)), 2.0);
  EXPECT_DOUBLE_EQ(*cache.lookup(IpAddress(1, 0, 0, 2)), 8.0);
}

}  // namespace
}  // namespace powai::reputation
