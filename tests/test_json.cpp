// Tests for the minimal JSON emitter behind the bench artifacts.

#include "common/json.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

namespace powai::common {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("abc xyz 123"), "abc xyz 123");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, FlatObjectWithEveryFieldType) {
  JsonWriter w;
  w.begin_object();
  w.field_str("name", "wire_load");
  w.field_u64("count", 42);
  w.field_f64("rate", 1.5);
  w.field_bool("ok", true);
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"wire_load","count":42,"rate":1.5,"ok":true})");
}

TEST(JsonWriter, NestedArraysOfObjects) {
  JsonWriter w;
  w.begin_object();
  w.begin_array("rows");
  w.begin_object().field_u64("clients", 1).end_object();
  w.begin_object().field_u64("clients", 2).end_object();
  w.end_array();
  w.begin_object("meta").field_str("host", "ci").end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"rows":[{"clients":1},{"clients":2}],"meta":{"host":"ci"}})");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.begin_array("rows").end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"rows":[]})");
}

TEST(JsonWriter, WriteJsonFileRoundTripsAndReportsFailure) {
  JsonWriter w;
  w.begin_object();
  w.field_u64("n", 7);
  w.end_object();
  const std::string path = ::testing::TempDir() + "powai_json_test.json";
  ASSERT_TRUE(write_json_file(path, w));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, R"({"n":7})");
  EXPECT_FALSE(write_json_file("/nonexistent-dir/x.json", w));
  JsonWriter open_writer;
  open_writer.begin_object();
  EXPECT_THROW((void)write_json_file(path, open_writer), std::logic_error);
}

TEST(JsonWriter, MisnestingThrows) {
  {
    JsonWriter w;
    EXPECT_THROW(w.end_object(), std::logic_error);
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.field_u64("k", 1), std::logic_error);  // no open object
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), std::logic_error);  // still open
  }
}

}  // namespace
}  // namespace powai::common
