// Tests for the key=value Config loader.

#include "common/config.hpp"

#include <gtest/gtest.h>

namespace powai::common {
namespace {

TEST(Config, ParsesSimplePairs) {
  const Config cfg = Config::parse("policy=linear offset=5");
  EXPECT_EQ(cfg.get_string("policy", ""), "linear");
  EXPECT_EQ(cfg.get_i64("offset", -1), 5);
}

TEST(Config, ParsesMultilineWithComments) {
  const Config cfg = Config::parse(
      "# experiment configuration\n"
      "epsilon=1.5\n"
      "\n"
      "trials=30 seed=7\n");
  EXPECT_DOUBLE_EQ(cfg.get_f64("epsilon", 0.0), 1.5);
  EXPECT_EQ(cfg.get_i64("trials", 0), 30);
  EXPECT_EQ(cfg.get_i64("seed", 0), 7);
}

TEST(Config, LaterDuplicateWins) {
  const Config cfg = Config::parse("a=1 a=2");
  EXPECT_EQ(cfg.get_i64("a", 0), 2);
}

TEST(Config, ThrowsOnTokenWithoutEquals) {
  EXPECT_THROW(Config::parse("loose-token"), std::invalid_argument);
}

TEST(Config, MissingKeyReturnsFallback) {
  const Config cfg = Config::parse("x=1");
  EXPECT_EQ(cfg.get_string("y", "def"), "def");
  EXPECT_EQ(cfg.get_i64("y", 9), 9);
  EXPECT_DOUBLE_EQ(cfg.get_f64("y", 0.5), 0.5);
  EXPECT_TRUE(cfg.get_bool("y", true));
  EXPECT_FALSE(cfg.has("y"));
}

TEST(Config, UnparsableValueReturnsFallback) {
  const Config cfg = Config::parse("n=abc");
  EXPECT_EQ(cfg.get_i64("n", 3), 3);
  EXPECT_DOUBLE_EQ(cfg.get_f64("n", 2.5), 2.5);
}

TEST(Config, BoolSpellings) {
  const Config cfg =
      Config::parse("a=true b=1 c=YES d=on e=false f=0 g=No h=OFF");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_TRUE(cfg.get_bool("d", false));
  EXPECT_FALSE(cfg.get_bool("e", true));
  EXPECT_FALSE(cfg.get_bool("f", true));
  EXPECT_FALSE(cfg.get_bool("g", true));
  EXPECT_FALSE(cfg.get_bool("h", true));
}

TEST(Config, RequireThrowsWithKeyName) {
  const Config cfg = Config::parse("x=notanumber");
  try {
    (void)cfg.require_string("missing");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
  EXPECT_THROW((void)cfg.require_i64("x"), std::invalid_argument);
  EXPECT_THROW((void)cfg.require_f64("x"), std::invalid_argument);
  EXPECT_EQ(cfg.require_string("x"), "notanumber");
}

TEST(Config, FromArgs) {
  const char* argv[] = {"prog", "trials=30", "policy=error_range"};
  const Config cfg = Config::from_args(3, argv);
  EXPECT_EQ(cfg.get_i64("trials", 0), 30);
  EXPECT_EQ(cfg.get_string("policy", ""), "error_range");
}

TEST(Config, FromArgsRejectsBareToken) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Config::from_args(2, argv), std::invalid_argument);
}

TEST(Config, SetAndEntries) {
  Config cfg;
  cfg.set("k", "v");
  EXPECT_EQ(cfg.entries().size(), 1u);
  EXPECT_THROW(cfg.set("", "v"), std::invalid_argument);
}

}  // namespace
}  // namespace powai::common
