// Golden determinism tests: the tentpole invariant of the keyed-
// derivation refactor. A serial run, a pooled (`verify_threads=N`) run,
// and an async sharded-drain (`drain_shards=M`) run of the same seeded
// workload must produce *bit-identical* per-client histories — puzzle
// ids, 32-byte seeds, difficulties (including the randomized Policy 3
// draws), timestamps, and outcome sequences — because every random draw
// is a pure function of stable identity, never of arrival order.
// Runs under TSan via the `concurrency` label: the parallel legs race
// for real, and the assertion is that racing changes nothing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "framework/client.hpp"
#include "framework/server.hpp"
#include "policy/error_range_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/load_harness.hpp"

namespace powai::sim {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(1234);
    const features::SyntheticTraceGenerator gen;
    model_.fit(gen.generate(250, 250, rng));
    // A mixed population so scores (and difficulties) actually vary.
    for (int i = 0; i < 6; ++i) {
      features_.push_back(gen.sample(i % 3 == 0, rng));
    }
  }

  framework::ServerConfig server_config() const {
    framework::ServerConfig cfg;
    cfg.master_secret = common::bytes_of("determinism-golden-secret");
    cfg.policy_seed = 0xfeed'beef'd00d'cafeULL;
    return cfg;
  }

  static void expect_identical(const std::vector<ClientHistory>& got,
                               const std::vector<ClientHistory>& want,
                               const char* label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t c = 0; c < want.size(); ++c) {
      ASSERT_EQ(got[c].size(), want[c].size()) << label << " client " << c;
      for (std::size_t i = 0; i < want[c].size(); ++i) {
        const IssueRecord& g = got[c][i];
        const IssueRecord& w = want[c][i];
        EXPECT_EQ(g, w) << label << " client " << c << " record " << i
                        << ": puzzle_id " << g.puzzle_id << " vs "
                        << w.puzzle_id << ", difficulty " << g.difficulty
                        << " vs " << w.difficulty;
      }
    }
  }

  reputation::DabrModel model_;
  // Policy 3: randomized — the draw itself must be order-independent.
  policy::ErrorRangePolicy policy_{1.5};
  std::vector<features::FeatureVector> features_;
};

TEST_F(DeterminismTest, ThreadedHarnessMatchesHandRolledSerialRun) {
  // Ground truth: client 0 completes all its round trips, then client 1,
  // and so on — fully sequential, one thread, frozen manual clock.
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 6;
  common::ManualClock clock;

  std::vector<ClientHistory> serial(kClients);
  {
    framework::PowServer server(clock, model_, policy_, server_config());
    for (std::size_t c = 0; c < kClients; ++c) {
      framework::PowClient client(load_client_ip(c));
      for (std::size_t i = 0; i < kPerClient; ++i) {
        serial[c].push_back(make_issue_record(
            client.run(server, "/", features_[c % features_.size()])));
      }
    }
  }

  // The same workload with one real thread per client, twice — the
  // interleaving differs run to run, the histories must not.
  const auto threaded = [&] {
    framework::PowServer server(clock, model_, policy_, server_config());
    LoadHarnessConfig lc;
    lc.client_threads = kClients;
    lc.requests_per_client = kPerClient;
    lc.capture_history = true;
    return LoadHarness(server, lc).run(features_);
  };
  const LoadReport first = threaded();
  const LoadReport second = threaded();

  expect_identical(first.histories, serial, "threaded vs serial");
  expect_identical(second.histories, serial, "threaded(2nd) vs serial");
  // Sanity: the workload actually issued varied, solved puzzles.
  EXPECT_EQ(first.server_delta.challenges_issued, kClients * kPerClient);
  EXPECT_GT(first.server_delta.difficulty_sum, kClients * kPerClient);
}

TEST_F(DeterminismTest, WireHistoriesIdenticalAcrossTransportAndShards) {
  // The acceptance criterion: serial (synchronous endpoint), pooled
  // (verify_threads=3, one drain), and sharded (drain_shards=3,
  // verify_threads=2) runs of the same seeded wire workload produce
  // byte-identical per-client puzzle seeds, difficulties, and outcome
  // sequences.
  const auto run = [&](bool async, std::size_t verify_threads,
                       std::size_t drain_shards, std::size_t max_batch) {
    framework::ServerConfig cfg = server_config();
    cfg.verify_threads = verify_threads;
    WireLoadConfig wc;
    wc.clients = 6;
    wc.requests_per_client = 5;
    wc.async = async;
    wc.front_end.max_batch = max_batch;
    wc.front_end.drain_shards = drain_shards;
    wc.capture_history = true;
    return run_wire_load(model_, policy_, cfg, features_, wc);
  };

  const WireLoadReport serial = run(false, 1, 1, 64);
  const WireLoadReport pooled = run(true, 3, 1, 4);
  const WireLoadReport sharded = run(true, 2, 3, 2);

  ASSERT_EQ(serial.answered, 30u);
  expect_identical(pooled.histories, serial.histories, "pooled vs serial");
  expect_identical(sharded.histories, serial.histories, "sharded vs serial");

  // Every challenged record carries a real 32-byte seed — the byte-level
  // payload the comparison above is really about.
  std::size_t challenged = 0;
  for (const ClientHistory& history : serial.histories) {
    for (const IssueRecord& record : history) {
      if (record.challenged) {
        ++challenged;
        EXPECT_EQ(record.seed.size(), 32u);
      }
    }
  }
  EXPECT_EQ(challenged, serial.server_delta.challenges_issued);

  // And the simulated timeline agrees exactly, not only per-client data.
  EXPECT_EQ(pooled.sim_elapsed, serial.sim_elapsed);
  EXPECT_EQ(sharded.sim_elapsed, serial.sim_elapsed);
}

TEST_F(DeterminismTest, FingerprintsFoldExactlyWhatHistoriesRecord) {
  // The scale-friendly form of the golden contract: per-client 64-bit
  // fingerprints must (a) equal history_fingerprint() over the captured
  // histories, and (b) be bit-identical across serial, pooled, and
  // sharded shapes — with and without heavy-tailed arrival pacing.
  const auto run = [&](bool async, std::size_t verify_threads,
                       std::size_t drain_shards, bool paced) {
    framework::ServerConfig cfg = server_config();
    cfg.verify_threads = verify_threads;
    WireLoadConfig wc;
    wc.clients = 6;
    wc.requests_per_client = 5;
    wc.async = async;
    wc.front_end.max_batch = 3;
    wc.front_end.drain_shards = drain_shards;
    wc.capture_history = true;
    wc.capture_fingerprints = true;
    wc.pace_arrivals = paced;
    wc.arrivals.process = ArrivalProcess::kPareto;
    wc.arrivals.mean_interarrival_ms = 40.0;
    wc.weight_alpha = 1.3;
    return run_wire_load(model_, policy_, cfg, features_, wc);
  };

  for (const bool paced : {false, true}) {
    const WireLoadReport serial = run(false, 1, 1, paced);
    const WireLoadReport pooled = run(true, 3, 1, paced);
    const WireLoadReport sharded = run(true, 2, 3, paced);

    ASSERT_EQ(serial.history_fingerprints.size(), 6u);
    for (std::size_t c = 0; c < serial.histories.size(); ++c) {
      EXPECT_EQ(serial.history_fingerprints[c],
                history_fingerprint(serial.histories[c]))
          << "paced=" << paced << " client " << c;
    }
    EXPECT_EQ(pooled.history_fingerprints, serial.history_fingerprints)
        << "paced=" << paced;
    EXPECT_EQ(sharded.history_fingerprints, serial.history_fingerprints)
        << "paced=" << paced;
    EXPECT_EQ(pooled.sim_elapsed, serial.sim_elapsed) << "paced=" << paced;
    EXPECT_EQ(sharded.sim_elapsed, serial.sim_elapsed) << "paced=" << paced;
  }

  // An empty history folds to the seed, and folding is order-sensitive.
  EXPECT_EQ(history_fingerprint({}), kFingerprintSeed);
  IssueRecord a;
  a.request_id = 1;
  IssueRecord b;
  b.request_id = 2;
  EXPECT_NE(history_fingerprint({a, b}), history_fingerprint({b, a}));
}

TEST_F(DeterminismTest, PolicySeedSelectsADifferentButEqualRandomHistory) {
  // The randomized policy draw is keyed by (policy_seed, puzzle_id):
  // changing the seed changes difficulties (it is really random), while
  // reusing the seed reproduces them exactly.
  const auto run = [&](std::uint64_t policy_seed) {
    framework::ServerConfig cfg = server_config();
    cfg.policy_seed = policy_seed;
    WireLoadConfig wc;
    wc.clients = 4;
    wc.requests_per_client = 4;
    wc.async = false;
    wc.capture_history = true;
    return run_wire_load(model_, policy_, cfg, features_, wc);
  };

  const WireLoadReport a1 = run(7);
  const WireLoadReport a2 = run(7);
  const WireLoadReport b = run(8);
  expect_identical(a2.histories, a1.histories, "same policy seed");
  EXPECT_NE(b.server_delta.difficulty_sum, a1.server_delta.difficulty_sum)
      << "different policy seeds should draw different difficulties "
         "(astronomically unlikely to collide across 16 draws)";
}

}  // namespace
}  // namespace powai::sim
