// Tests for DAbR's dynamic updates (observe) and persistence (save/load).

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "reputation/dabr.hpp"
#include "reputation/evaluator.hpp"

namespace powai::reputation {
namespace {

using features::Dataset;
using features::FeatureVector;
using features::SyntheticConfig;
using features::SyntheticTraceGenerator;

Dataset make_data(std::size_t per_class, std::uint64_t seed = 1,
                  double overlap = 0.58) {
  SyntheticConfig cfg;
  cfg.class_overlap = overlap;
  const SyntheticTraceGenerator gen(cfg);
  common::Rng rng(seed);
  return gen.generate(per_class, per_class, rng);
}

// ---------------------------------------------------------------------------
// observe()
// ---------------------------------------------------------------------------

TEST(DabrObserve, RequiresFitAndValidAlpha) {
  DabrModel model;
  EXPECT_THROW(model.observe(FeatureVector{}, true), std::logic_error);
  model.fit(make_data(100));
  EXPECT_THROW(model.observe(FeatureVector{}, true, 0.0), std::invalid_argument);
  EXPECT_THROW(model.observe(FeatureVector{}, true, 1.1), std::invalid_argument);
  EXPECT_NO_THROW(model.observe(FeatureVector{}, true, 1.0));
}

TEST(DabrObserve, CountsObservations) {
  DabrModel model;
  model.fit(make_data(100));
  EXPECT_EQ(model.observed_count(), 0u);
  SyntheticTraceGenerator gen;
  common::Rng rng(2);
  for (int i = 0; i < 5; ++i) model.observe(gen.sample(true, rng), true);
  EXPECT_EQ(model.observed_count(), 5u);
}

TEST(DabrObserve, MaliciousObservationPullsCentroidCloser) {
  DabrModel model;
  model.fit(make_data(200));
  SyntheticTraceGenerator gen;
  common::Rng rng(3);
  const FeatureVector fresh_malicious = gen.sample(true, rng);
  const double before = model.centroid_distance(fresh_malicious);
  for (int i = 0; i < 50; ++i) {
    model.observe(fresh_malicious, true, 0.1);
  }
  const double after = model.centroid_distance(fresh_malicious);
  EXPECT_LT(after, before);
}

TEST(DabrObserve, AdaptsToDriftedAttackProfile) {
  // The core "dynamic" property: an attacker population that shifts its
  // behaviour gets re-learned from confirmed observations.
  DabrModel model;
  model.fit(make_data(300, /*seed=*/4));

  // Drifted malicious traffic: halfway toward benign (overlap 0.85).
  SyntheticConfig drift_cfg;
  drift_cfg.class_overlap = 0.85;
  const SyntheticTraceGenerator drifted(drift_cfg);
  common::Rng rng(5);

  double score_before = 0.0;
  const int probes = 200;
  for (int i = 0; i < probes; ++i) {
    score_before += model.score(drifted.sample(true, rng)) / probes;
  }
  // Feed confirmed observations of the drifted campaign.
  for (int i = 0; i < 400; ++i) {
    model.observe(drifted.sample(true, rng), true, 0.05);
  }
  double score_after = 0.0;
  for (int i = 0; i < probes; ++i) {
    score_after += model.score(drifted.sample(true, rng)) / probes;
  }
  EXPECT_GT(score_after, score_before + 1.0);
}

TEST(DabrObserve, BenignObservationsAdjustAnchorNotCentroid) {
  DabrModel model;
  model.fit(make_data(200, /*seed=*/6));
  SyntheticTraceGenerator gen;
  common::Rng rng(7);
  const FeatureVector probe = gen.sample(true, rng);
  const double centroid_before = model.centroid_distance(probe);
  for (int i = 0; i < 30; ++i) {
    model.observe(gen.sample(false, rng), false, 0.1);
  }
  // Benign observations never move the malicious centroid.
  EXPECT_DOUBLE_EQ(model.centroid_distance(probe), centroid_before);
}

TEST(DabrObserve, KeepsScoresInRangeUnderHeavyUpdates) {
  DabrModel model;
  model.fit(make_data(100, /*seed=*/8));
  SyntheticTraceGenerator gen;
  common::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    model.observe(gen.sample(i % 2 == 0, rng), i % 2 == 0, 0.3);
    const double s = model.score(gen.sample(i % 3 == 0, rng));
    ASSERT_GE(s, kMinScore);
    ASSERT_LE(s, kMaxScore);
  }
}

// ---------------------------------------------------------------------------
// save() / load()
// ---------------------------------------------------------------------------

TEST(DabrPersistence, SaveRequiresFit) {
  const DabrModel model;
  EXPECT_THROW((void)model.save(), std::logic_error);
}

TEST(DabrPersistence, RoundTripPreservesScoresExactly) {
  DabrModel original;
  original.fit(make_data(300, /*seed=*/10));
  const auto restored = DabrModel::load(original.save());
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->fitted());
  EXPECT_DOUBLE_EQ(restored->error_epsilon(), original.error_epsilon());

  SyntheticTraceGenerator gen;
  common::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const FeatureVector x = gen.sample(i % 2 == 0, rng);
    EXPECT_DOUBLE_EQ(restored->score(x), original.score(x));
  }
}

TEST(DabrPersistence, RoundTripPreservesEvaluationMetrics) {
  DabrModel original;
  original.fit(make_data(500, /*seed=*/12));
  const Dataset test = make_data(200, /*seed=*/13);
  const auto restored = DabrModel::load(original.save());
  ASSERT_TRUE(restored.has_value());
  const EvaluationReport a = evaluate(original, test);
  const EvaluationReport b = evaluate(*restored, test);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.roc_auc, b.roc_auc);
}

TEST(DabrPersistence, LoadRejectsMalformedInput) {
  EXPECT_FALSE(DabrModel::load("").has_value());
  EXPECT_FALSE(DabrModel::load("format=unknown\n").has_value());
  EXPECT_FALSE(DabrModel::load("format=dabr-v1\n").has_value());  // missing keys
  EXPECT_FALSE(DabrModel::load("not even = parseable ===").has_value());
}

TEST(DabrPersistence, LoadRejectsTamperedFields) {
  DabrModel original;
  original.fit(make_data(100, /*seed=*/14));
  const std::string saved = original.save();

  // Drop one required key.
  std::string missing = saved;
  const auto pos = missing.find("d_benign=");
  ASSERT_NE(pos, std::string::npos);
  missing.erase(pos, missing.find('\n', pos) - pos + 1);
  EXPECT_FALSE(DabrModel::load(missing).has_value());

  // Inverted anchors (d_benign <= d_malicious) must be rejected.
  std::string inverted = saved;
  const auto bpos = inverted.find("d_benign=");
  ASSERT_NE(bpos, std::string::npos);
  inverted.replace(bpos, inverted.find('\n', bpos) - bpos, "d_benign=0");
  EXPECT_FALSE(DabrModel::load(inverted).has_value());

  // Unparsable number.
  std::string garbled = saved;
  const auto epos = garbled.find("epsilon=");
  ASSERT_NE(epos, std::string::npos);
  garbled.replace(epos, garbled.find('\n', epos) - epos, "epsilon=oops");
  EXPECT_FALSE(DabrModel::load(garbled).has_value());
}

TEST(DabrPersistence, ObservedUpdatesSurviveSaveLoad) {
  DabrModel model;
  model.fit(make_data(200, /*seed=*/15));
  SyntheticTraceGenerator gen;
  common::Rng rng(16);
  for (int i = 0; i < 50; ++i) model.observe(gen.sample(true, rng), true, 0.1);

  const auto restored = DabrModel::load(model.save());
  ASSERT_TRUE(restored.has_value());
  for (int i = 0; i < 50; ++i) {
    const FeatureVector x = gen.sample(i % 2 == 0, rng);
    EXPECT_DOUBLE_EQ(restored->score(x), model.score(x));
  }
}

}  // namespace
}  // namespace powai::reputation
