// Tests for the graduated overload degradation ladder: pressure folding
// per window, immediate step-up on threshold crossings, hysteresis on
// the way down (calm_windows consecutive calm windows per level), the
// long-gap fast-forward, and the level-scaled retry_after hint. All
// single-threaded — cross-thread behaviour is covered by the server and
// campaign suites; here the window arithmetic itself is the subject.

#include "framework/degrade.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace powai::framework {
namespace {

// ewma_alpha = 1 makes the EWMA equal the last folded window, so each
// test's pressure is plain arithmetic: arrivals * 1000 / window_ms /
// arrival_ref_per_s (and likewise mean sojourn / sojourn_ref_ms).
DegradeLadderConfig arrival_config() {
  DegradeLadderConfig cfg;
  cfg.enabled = true;
  cfg.window = std::chrono::milliseconds(100);
  cfg.ewma_alpha = 1.0;
  cfg.sojourn_ref_ms = 0.0;       // arrival term only
  cfg.arrival_ref_per_s = 100.0;  // 10 arrivals per window saturate
  return cfg;
}

void record_n(DegradeLadder& ladder, std::int64_t window_start_ms,
              int arrivals) {
  for (int i = 0; i < arrivals; ++i) ladder.record_arrival(window_start_ms);
}

TEST(DegradeLadder, DisabledLadderIsPinnedAtZero) {
  DegradeLadderConfig cfg = arrival_config();
  cfg.enabled = false;
  DegradeLadder ladder(cfg);
  record_n(ladder, 0, 1000);
  ladder.poll(10'000);
  EXPECT_EQ(ladder.level(), 0);
  EXPECT_EQ(ladder.stats().max_level, 0);
  EXPECT_EQ(ladder.stats().transitions, 0u);
}

TEST(DegradeLadder, PressureStepsTheLadderUpThroughEveryLevel) {
  DegradeLadder ladder(arrival_config());

  record_n(ladder, 0, 5);  // 50/s vs ref 100/s -> pressure 0.5 = up_l1
  ladder.poll(100);
  EXPECT_EQ(ladder.level(), 1);
  EXPECT_DOUBLE_EQ(ladder.stats().pressure, 0.5);

  record_n(ladder, 100, 10);  // pressure 1.0 = up_l2
  ladder.poll(200);
  EXPECT_EQ(ladder.level(), 2);

  record_n(ladder, 200, 20);  // pressure 2.0 = up_l3
  ladder.poll(300);
  EXPECT_EQ(ladder.level(), 3);
  EXPECT_EQ(ladder.stats().max_level, 3);
  EXPECT_EQ(ladder.stats().transitions, 3u);
}

TEST(DegradeLadder, StepUpSkipsLevelsWhenPressureSpikes) {
  DegradeLadder ladder(arrival_config());
  record_n(ladder, 0, 30);  // pressure 3.0 >= up_l3 straight from L0
  ladder.poll(100);
  EXPECT_EQ(ladder.level(), 3);
  EXPECT_EQ(ladder.stats().transitions, 1u);
}

TEST(DegradeLadder, RecoveryNeedsConsecutiveCalmWindowsPerLevel) {
  DegradeLadder ladder(arrival_config());
  record_n(ladder, 0, 10);
  ladder.poll(100);
  ASSERT_EQ(ladder.level(), 2);

  // calm_windows = 3 (default): two calm windows are not enough...
  ladder.poll(300);
  EXPECT_EQ(ladder.level(), 2);
  // ...the third steps down exactly one level, not to zero.
  ladder.poll(400);
  EXPECT_EQ(ladder.level(), 1);
  // Three more calm windows clear the last level.
  ladder.poll(700);
  EXPECT_EQ(ladder.level(), 0);
}

TEST(DegradeLadder, NonCalmWindowResetsTheCalmStreak) {
  DegradeLadderConfig cfg = arrival_config();
  DegradeLadder ladder(cfg);
  record_n(ladder, 0, 5);
  ladder.poll(100);
  ASSERT_EQ(ladder.level(), 1);

  // Two calm windows, then one at pressure 0.4 — above calm_below
  // (0.35) but below up_l1, so the streak restarts.
  record_n(ladder, 300, 4);
  ladder.poll(400);
  EXPECT_EQ(ladder.level(), 1);
  // Two more calm windows: still only two consecutive, no step-down.
  ladder.poll(600);
  EXPECT_EQ(ladder.level(), 1);
  ladder.poll(700);
  EXPECT_EQ(ladder.level(), 0);
}

TEST(DegradeLadder, SojournSignalDrivesPressureToo) {
  DegradeLadderConfig cfg;
  cfg.enabled = true;
  cfg.window = std::chrono::milliseconds(100);
  cfg.ewma_alpha = 1.0;
  cfg.sojourn_ref_ms = 50.0;
  cfg.arrival_ref_per_s = 0.0;  // sojourn term only
  DegradeLadder ladder(cfg);

  ladder.record_sojourn(0, 80.0);
  ladder.record_sojourn(0, 120.0);  // mean 100ms / ref 50ms -> pressure 2.0
  ladder.poll(100);
  EXPECT_EQ(ladder.level(), 3);
  EXPECT_DOUBLE_EQ(ladder.stats().pressure, 2.0);
}

TEST(DegradeLadder, LongIdleGapFastForwardsToFullyRecovered) {
  DegradeLadder ladder(arrival_config());
  record_n(ladder, 0, 30);
  ladder.poll(100);
  ASSERT_EQ(ladder.level(), 3);

  // A gap of 200k windows takes the shortcut path instead of folding
  // one window at a time; the outcome is the same fully calm state.
  ladder.poll(200'000 * 100);
  EXPECT_EQ(ladder.level(), 0);
  EXPECT_DOUBLE_EQ(ladder.stats().pressure, 0.0);
  EXPECT_EQ(ladder.stats().max_level, 3);  // high-water mark survives
}

TEST(DegradeLadder, RetryAfterHintDoublesPerLevel) {
  DegradeLadder ladder(arrival_config());
  EXPECT_EQ(ladder.retry_after_ms(), 250u);

  record_n(ladder, 0, 10);
  ladder.poll(100);
  ASSERT_EQ(ladder.level(), 2);
  EXPECT_EQ(ladder.retry_after_ms(), 1000u);  // 250 << 2

  record_n(ladder, 100, 20);
  ladder.poll(200);
  ASSERT_EQ(ladder.level(), 3);
  EXPECT_EQ(ladder.retry_after_ms(), 2000u);
}

TEST(DegradeLadder, ConstructorRejectsBadTuning) {
  DegradeLadderConfig cfg = arrival_config();
  cfg.window = common::Duration::zero();
  EXPECT_THROW(DegradeLadder{cfg}, std::invalid_argument);

  cfg = arrival_config();
  cfg.ewma_alpha = 0.0;
  EXPECT_THROW(DegradeLadder{cfg}, std::invalid_argument);
  cfg.ewma_alpha = 1.5;
  EXPECT_THROW(DegradeLadder{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace powai::framework
