// Tests for the simulation layer: latency model, workload generation, the
// Figure 2 experiment shape, and the throttling experiment's headline
// properties.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "policy/error_range_policy.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/fig2.hpp"
#include "sim/latency_model.hpp"
#include "sim/throttling.hpp"
#include "sim/workload.hpp"

namespace powai::sim {
namespace {

TEST(LatencyModel, ValidatesParameters) {
  LatencyModel bad;
  bad.hash_cost_us = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.one_way_ms = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(LatencyModel, ExpectedFormIsLinearInAttempts) {
  LatencyModel m;
  m.jitter_ms = 0.0;
  const double base = m.end_to_end_ms_expected(0);
  EXPECT_DOUBLE_EQ(base, 4.0 * m.one_way_ms + m.server_proc_ms);
  EXPECT_DOUBLE_EQ(m.end_to_end_ms_expected(1000) - base,
                   1000.0 * m.hash_cost_us / 1000.0);
}

TEST(LatencyModel, CalibrationHitsThePapersAnchors) {
  // DESIGN.md §2: d=1 (2 expected attempts) ≈ 31 ms; d=15 median
  // (2^15·ln2 attempts) lands in the paper's 800-1000 ms band.
  const LatencyModel m;
  const double at_d1 = m.end_to_end_ms_expected(2.0);
  EXPECT_NEAR(at_d1, 31.0, 2.5);
  const double at_d15 = m.end_to_end_ms_expected(32768.0 * std::numbers::ln2);
  EXPECT_GT(at_d15, 750.0);
  EXPECT_LT(at_d15, 1050.0);
}

TEST(LatencyModel, SampledValuesBracketExpected) {
  LatencyModel m;
  common::Rng rng(1);
  common::RunningStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(m.end_to_end_ms(100, rng));
  EXPECT_NEAR(stats.mean(), m.end_to_end_ms_expected(100), 0.1);
}

TEST(SampleAttempts, MatchesGeometricMean) {
  common::Rng rng(2);
  const unsigned d = 6;  // mean 64
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(sample_attempts(d, rng));
  }
  EXPECT_NEAR(total / n, 64.0, 2.5);
}

TEST(SampleAttempts, AlwaysAtLeastOne) {
  common::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(sample_attempts(0, rng), 1u);
    EXPECT_GE(sample_attempts(1, rng), 1u);
  }
  EXPECT_THROW((void)sample_attempts(63, rng), std::invalid_argument);
}

TEST(Workload, PopulationHasRequestedShape) {
  WorkloadConfig cfg;
  cfg.benign_clients = 20;
  cfg.attackers = 5;
  common::Rng rng(4);
  const auto population = make_population(cfg, rng);
  ASSERT_EQ(population.size(), 25u);
  std::size_t malicious = 0;
  for (const auto& c : population) {
    malicious += c.malicious ? 1 : 0;
    if (c.malicious) {
      EXPECT_TRUE(cfg.traffic.malicious_subnet.contains(c.ip));
      EXPECT_DOUBLE_EQ(c.mean_interarrival_ms,
                       cfg.attacker_mean_interarrival_ms);
    } else {
      EXPECT_TRUE(cfg.traffic.benign_subnet.contains(c.ip));
    }
  }
  EXPECT_EQ(malicious, 5u);
}

TEST(Workload, DistinctIpsAcrossPopulation) {
  WorkloadConfig cfg;
  common::Rng rng(5);
  const auto population = make_population(cfg, rng);
  std::set<std::uint32_t> ips;
  for (const auto& c : population) ips.insert(c.ip.value());
  EXPECT_EQ(ips.size(), population.size());
}

TEST(Workload, RejectsBadInterarrival) {
  WorkloadConfig cfg;
  cfg.benign_mean_interarrival_ms = 0.0;
  common::Rng rng(6);
  EXPECT_THROW((void)make_population(cfg, rng), std::invalid_argument);
}

TEST(Workload, TrainingSetHasBothClasses) {
  WorkloadConfig cfg;
  common::Rng rng(7);
  const auto data = make_training_set(cfg, 100, 50, rng);
  EXPECT_EQ(data.benign_count(), 100u);
  EXPECT_EQ(data.malicious_count(), 50u);
}

// ---------------------------------------------------------------------------
// Figure 2 experiment
// ---------------------------------------------------------------------------

class Fig2Test : public ::testing::Test {
 protected:
  Fig2Config fast_config() {
    Fig2Config cfg;
    cfg.trials = 15;
    cfg.use_real_solver = false;  // analytic attempts: fast and exact-shape
    cfg.latency.jitter_ms = 0.0;
    return cfg;
  }
};

TEST_F(Fig2Test, RejectsBadInput) {
  EXPECT_THROW((void)run_fig2({}, {}), std::invalid_argument);
  const policy::LinearPolicy p1 = policy::LinearPolicy::policy1();
  Fig2Config cfg;
  cfg.trials = 0;
  EXPECT_THROW((void)run_fig2({&p1}, cfg), std::invalid_argument);
  EXPECT_THROW((void)run_fig2({nullptr}, {}), std::invalid_argument);
}

TEST_F(Fig2Test, ProducesElevenScoresPerPolicy) {
  const policy::LinearPolicy p1 = policy::LinearPolicy::policy1();
  const Fig2Result result = run_fig2({&p1}, fast_config());
  ASSERT_EQ(result.series.size(), 1u);
  EXPECT_EQ(result.series[0].median_ms.size(), 11u);
  EXPECT_EQ(result.series[0].mean_difficulty.size(), 11u);
}

TEST_F(Fig2Test, Policy2DominatesPolicy1) {
  // The core qualitative content of Figure 2.
  const policy::LinearPolicy p1 = policy::LinearPolicy::policy1();
  const policy::LinearPolicy p2 = policy::LinearPolicy::policy2();
  Fig2Config cfg = fast_config();
  cfg.trials = 30;
  const Fig2Result result = run_fig2({&p1, &p2}, cfg);
  const auto& s1 = result.series[0];
  const auto& s2 = result.series[1];
  for (int r = 0; r <= 10; ++r) {
    EXPECT_GT(s2.median_ms[r], s1.median_ms[r]) << "R=" << r;
  }
  // And the gap widens with the score (latency "grows significantly").
  EXPECT_GT(s2.median_ms[10] - s1.median_ms[10],
            5.0 * (s2.median_ms[0] - s1.median_ms[0]));
}

TEST_F(Fig2Test, Policy3FallsBetweenAtHighScores) {
  const policy::LinearPolicy p1 = policy::LinearPolicy::policy1();
  const policy::LinearPolicy p2 = policy::LinearPolicy::policy2();
  const policy::ErrorRangePolicy p3(1.5);
  Fig2Config cfg = fast_config();
  // Medians of heavy-tailed geometric samples are noisy; analytic mode is
  // cheap, so buy enough trials that the ordering assertion is ~4 sigma.
  cfg.trials = 1000;
  const Fig2Result result = run_fig2({&p1, &p2, &p3}, cfg);
  const auto& s1 = result.series[0];
  const auto& s2 = result.series[1];
  const auto& s3 = result.series[2];
  // Figure 2: "the rate of increase in the latency for Policy 3 is
  // between our two previous policies" — compare at the top scores.
  for (int r = 9; r <= 10; ++r) {
    EXPECT_GT(s3.median_ms[r], s1.median_ms[r]) << "R=" << r;
    EXPECT_LT(s3.median_ms[r], s2.median_ms[r]) << "R=" << r;
  }
}

TEST_F(Fig2Test, MedianLatencyIsMonotoneIshInScore) {
  // Deterministic policies + analytic medians: allow small sampling
  // wiggle but require clear growth overall.
  const policy::LinearPolicy p2 = policy::LinearPolicy::policy2();
  Fig2Config cfg = fast_config();
  cfg.trials = 40;
  const Fig2Result result = run_fig2({&p2}, cfg);
  const auto& medians = result.series[0].median_ms;
  EXPECT_GT(medians[10], 8.0 * medians[0]);
  EXPECT_GT(medians[5], medians[0]);
}

TEST_F(Fig2Test, RealSolverAgreesWithAnalyticWithinFactor) {
  const policy::LinearPolicy p1 = policy::LinearPolicy::policy1();
  Fig2Config analytic = fast_config();
  analytic.trials = 40;
  Fig2Config real = analytic;
  real.use_real_solver = true;
  const Fig2Result a = run_fig2({&p1}, analytic);
  const Fig2Result b = run_fig2({&p1}, real);
  // Same calibrated model, same distribution family: medians at the top
  // score agree within a factor of 2.5 despite independent sampling.
  const double ratio = b.series[0].median_ms[10] / a.series[0].median_ms[10];
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

TEST_F(Fig2Test, TableHasRowPerScore) {
  const policy::LinearPolicy p1 = policy::LinearPolicy::policy1();
  const Fig2Result result = run_fig2({&p1}, fast_config());
  const common::Table table = result.to_table();
  EXPECT_EQ(table.rows(), 11u);
  EXPECT_EQ(table.columns(), 2u);
}

TEST_F(Fig2Test, DeterministicGivenSeed) {
  const policy::ErrorRangePolicy p3(1.5);
  const Fig2Result a = run_fig2({&p3}, fast_config());
  const Fig2Result b = run_fig2({&p3}, fast_config());
  EXPECT_EQ(a.series[0].median_ms, b.series[0].median_ms);
}

// ---------------------------------------------------------------------------
// Throttling experiment
// ---------------------------------------------------------------------------

class ThrottlingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(11);
    WorkloadConfig wl = small_config().workload;
    model_.fit(make_training_set(wl, 400, 400, rng));
  }

  static ThrottlingConfig small_config() {
    ThrottlingConfig cfg;
    cfg.workload.benign_clients = 20;
    cfg.workload.attackers = 5;
    cfg.workload.attacker_mean_interarrival_ms = 10.0;  // 100 rps per bot
    // Cleanly separated classes for the unit tests: with only 5 bots, the
    // default overlap (calibrated to DAbR's published 80% accuracy) makes
    // outcomes hinge on whether an individual bot is misclassified. The
    // bench runs the realistic-overlap version.
    cfg.workload.traffic.class_overlap = 0.35;
    cfg.duration_s = 10.0;
    cfg.real_hashing = false;  // analytic mode in tests (fast)
    return cfg;
  }

  reputation::DabrModel model_;
  policy::LinearPolicy policy_ = policy::LinearPolicy::policy2();
};

TEST_F(ThrottlingTest, BaselineFloodDegradesBenignService) {
  ThrottlingConfig cfg = small_config();
  cfg.pow_enabled = false;
  const ThrottlingReport report = run_throttling(cfg, model_, policy_);
  // 5 bots × 100 rps × 2 ms service = saturation: utilization ~ 1.
  EXPECT_GT(report.server_utilization, 0.9);
  // Attackers get the lion's share of goodput.
  EXPECT_GT(report.attacker.goodput_rps, report.benign.goodput_rps);
}

TEST_F(ThrottlingTest, PowThrottlesAttackerGoodput) {
  ThrottlingConfig baseline = small_config();
  baseline.pow_enabled = false;
  ThrottlingConfig defended = small_config();
  defended.pow_enabled = true;
  const ThrottlingReport off = run_throttling(baseline, model_, policy_);
  const ThrottlingReport on = run_throttling(defended, model_, policy_);

  // The paper's claim: untrustworthy traffic is throttled...
  EXPECT_LT(on.attacker.goodput_rps, off.attacker.goodput_rps / 3.0);
  // ...while benign clients keep being served.
  EXPECT_GT(on.benign.served, 0u);
  // And the server leaves saturation.
  EXPECT_LT(on.server_utilization, off.server_utilization);
}

TEST_F(ThrottlingTest, AttackersReceiveHarderPuzzlesAndHigherLatency) {
  const ThrottlingReport report =
      run_throttling(small_config(), model_, policy_);
  EXPECT_GT(report.attacker.mean_difficulty, report.benign.mean_difficulty + 2.0);
  ASSERT_FALSE(report.benign.latency_ms.empty());
  if (!report.attacker.latency_ms.empty()) {
    EXPECT_GT(report.attacker.median_latency_ms(),
              report.benign.median_latency_ms());
  }
}

TEST_F(ThrottlingTest, ReportTableHasTwoClassRows) {
  const ThrottlingReport report =
      run_throttling(small_config(), model_, policy_);
  const common::Table table = report.to_table();
  EXPECT_EQ(table.rows(), 2u);
}

TEST_F(ThrottlingTest, DeterministicGivenSeed) {
  const ThrottlingReport a = run_throttling(small_config(), model_, policy_);
  const ThrottlingReport b = run_throttling(small_config(), model_, policy_);
  EXPECT_EQ(a.benign.served, b.benign.served);
  EXPECT_EQ(a.attacker.served, b.attacker.served);
  EXPECT_EQ(a.benign.requests, b.benign.requests);
}

TEST_F(ThrottlingTest, RealHashingSmokeTest) {
  // Tiny scenario with genuine SHA-256 solving and verification.
  ThrottlingConfig cfg = small_config();
  cfg.workload.benign_clients = 3;
  cfg.workload.attackers = 1;
  cfg.duration_s = 2.0;
  cfg.real_hashing = true;
  const ThrottlingReport report = run_throttling(cfg, model_, policy_);
  EXPECT_GT(report.benign.requests, 0u);
  EXPECT_GT(report.benign.served, 0u);  // real solutions verified OK
}

}  // namespace
}  // namespace powai::sim
