// Tests for puzzle structure, canonical hashing input, and wire encoding.

#include "pow/puzzle.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/clock.hpp"
#include "crypto/sha256.hpp"
#include "pow/generator.hpp"

namespace powai::pow {
namespace {

Puzzle sample_puzzle(unsigned difficulty = 4) {
  common::ManualClock clock(common::TimePoint{} + std::chrono::seconds(100));
  PuzzleGenerator gen(clock, common::bytes_of("secret"));
  return gen.issue("192.168.1.10", difficulty);
}

TEST(Puzzle, PrefixContainsAllRequestData) {
  const Puzzle p = sample_puzzle();
  const std::string prefix = common::string_of(p.prefix_bytes());
  EXPECT_NE(prefix.find("POWAI1|"), std::string::npos);
  EXPECT_NE(prefix.find(common::to_hex(p.seed)), std::string::npos);
  EXPECT_NE(prefix.find(std::to_string(p.issued_at_ms)), std::string::npos);
  EXPECT_NE(prefix.find("|4|"), std::string::npos);
  EXPECT_NE(prefix.find("192.168.1.10"), std::string::npos);
}

TEST(Puzzle, DistinctFieldsGiveDistinctPrefixes) {
  Puzzle a = sample_puzzle();
  Puzzle b = a;
  b.difficulty += 1;
  EXPECT_NE(a.prefix_bytes(), b.prefix_bytes());
  Puzzle c = a;
  c.client_binding = "10.0.0.1";
  EXPECT_NE(a.prefix_bytes(), c.prefix_bytes());
  Puzzle d = a;
  d.issued_at_ms += 1;
  EXPECT_NE(a.prefix_bytes(), d.prefix_bytes());
}

TEST(Puzzle, MacInputIncludesPuzzleId) {
  Puzzle a = sample_puzzle();
  Puzzle b = a;
  b.puzzle_id += 1;
  EXPECT_EQ(a.prefix_bytes(), b.prefix_bytes());  // id not in solve prefix
  EXPECT_NE(a.mac_input(), b.mac_input());        // but covered by the MAC
}

TEST(Puzzle, SerializeRoundTrips) {
  const Puzzle p = sample_puzzle(7);
  const auto restored = Puzzle::deserialize(p.serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, p);
}

TEST(Puzzle, DeserializeRejectsTruncation) {
  const common::Bytes wire = sample_puzzle().serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        Puzzle::deserialize(common::BytesView(wire.data(), len)).has_value())
        << "len=" << len;
  }
}

TEST(Puzzle, DeserializeRejectsTrailingGarbage) {
  common::Bytes wire = sample_puzzle().serialize();
  wire.push_back(0x00);
  EXPECT_FALSE(Puzzle::deserialize(wire).has_value());
}

TEST(Puzzle, DeserializeRejectsOversizedFields) {
  // Seed length field claiming 1 MiB must be rejected before allocation.
  common::Bytes wire;
  common::append_u64be(wire, 1);           // puzzle_id
  common::append_u32be(wire, 1 << 20);     // absurd seed length
  EXPECT_FALSE(Puzzle::deserialize(wire).has_value());
}

TEST(Solution, SerializeRoundTrips) {
  const Solution s{42, 0xdeadbeefcafef00dULL};
  const auto restored = Solution::deserialize(s.serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, s);
}

TEST(Solution, DeserializeRejectsBadSizes) {
  const Solution s{1, 2};
  common::Bytes wire = s.serialize();
  wire.pop_back();
  EXPECT_FALSE(Solution::deserialize(wire).has_value());
  wire = s.serialize();
  wire.push_back(0);
  EXPECT_FALSE(Solution::deserialize(wire).has_value());
}

TEST(SolutionDigest, DependsOnNonce) {
  const Puzzle p = sample_puzzle();
  EXPECT_NE(solution_digest(p, 0), solution_digest(p, 1));
}

TEST(SolutionDigest, DeterministicPerPuzzle) {
  const Puzzle p = sample_puzzle();
  EXPECT_EQ(solution_digest(p, 7), solution_digest(p, 7));
}

TEST(IsValidSolution, DifficultyZeroAcceptsAnything) {
  Puzzle p = sample_puzzle(0);
  EXPECT_TRUE(is_valid_solution(p, 0));
  EXPECT_TRUE(is_valid_solution(p, 12345));
}

TEST(IsValidSolution, MatchesManualDigestCheck) {
  const Puzzle p = sample_puzzle(2);
  for (std::uint64_t nonce = 0; nonce < 64; ++nonce) {
    const bool valid = is_valid_solution(p, nonce);
    const bool manual =
        crypto::leading_zero_bits(solution_digest(p, nonce)) >= 2;
    EXPECT_EQ(valid, manual) << "nonce=" << nonce;
  }
}

TEST(PuzzleContext, DigestMatchesHashOfPrefixPlusNonce) {
  // The midstate fast path must be bit-identical to the definitional
  // digest: SHA-256(prefix_bytes() || u64be(nonce)).
  const Puzzle p = sample_puzzle(3);
  const PuzzleContext context(p);
  EXPECT_EQ(context.prefix(), p.prefix_bytes());
  EXPECT_EQ(context.puzzle_id(), p.puzzle_id);
  EXPECT_EQ(context.difficulty(), p.difficulty);
  for (std::uint64_t nonce : {std::uint64_t{0}, std::uint64_t{1},
                              std::uint64_t{255}, std::uint64_t{1} << 33,
                              ~std::uint64_t{0}}) {
    common::Bytes message = p.prefix_bytes();
    common::append_u64be(message, nonce);
    EXPECT_EQ(context.digest_for(nonce), crypto::Sha256::hash(message));
    EXPECT_EQ(context.digest_for(nonce), solution_digest(p, nonce));
    EXPECT_EQ(context.check(nonce), is_valid_solution(p, nonce));
  }
}

TEST(PuzzleContext, SharedAcrossCallsGivesStableAnswers) {
  // One context, many probes — the solver's usage pattern. Probing must
  // not mutate the context.
  const Puzzle p = sample_puzzle(1);
  const PuzzleContext context(p);
  std::vector<crypto::Digest> first;
  for (std::uint64_t nonce = 0; nonce < 32; ++nonce) {
    first.push_back(context.digest_for(nonce));
  }
  for (std::uint64_t nonce = 0; nonce < 32; ++nonce) {
    EXPECT_EQ(context.digest_for(nonce), first[nonce]);
  }
}

}  // namespace
}  // namespace powai::pow
