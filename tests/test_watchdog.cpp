// Tests for the wall-clock stall watchdog. The poll_once() seam drives
// the monitor synchronously so the stall rule (busy + no heartbeat for
// stall_after) is tested without sleeping a real monitor thread; one
// test then runs the actual monitor thread against an injected stall.
// Runs under the `concurrency` label for that thread.

#include "framework/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace powai::framework {
namespace {

using std::chrono::milliseconds;

WatchdogConfig quick() {
  WatchdogConfig cfg;
  cfg.stall_after = milliseconds(40);
  cfg.poll_every = milliseconds(5);
  return cfg;
}

TEST(Watchdog, BusyWithoutHeartbeatsFlagsExactlyOneEpisode) {
  Watchdog dog(quick());
  const std::size_t src = dog.register_source("drain-0");
  dog.set_busy_probe([] { return true; });

  // First poll observes a beat and anchors last_progress at "now".
  dog.beat(src);
  dog.poll_once();
  ASSERT_FALSE(dog.stats().stalled_now);

  // Busy, silent, past stall_after: one stall — and only one, however
  // often the monitor polls inside the same episode.
  std::this_thread::sleep_for(milliseconds(60));
  dog.poll_once();
  dog.poll_once();
  EXPECT_TRUE(dog.stats().stalled_now);
  EXPECT_EQ(dog.stats().stalls, 1u);

  // A heartbeat ends the episode; the count is cumulative.
  dog.beat(src);
  dog.poll_once();
  EXPECT_FALSE(dog.stats().stalled_now);
  EXPECT_EQ(dog.stats().stalls, 1u);
}

TEST(Watchdog, IdleSilenceIsNotAStall) {
  Watchdog dog(quick());
  const std::size_t src = dog.register_source("drain-0");
  dog.set_busy_probe([] { return false; });  // nothing owed
  dog.beat(src);
  dog.poll_once();
  std::this_thread::sleep_for(milliseconds(60));
  dog.poll_once();
  EXPECT_FALSE(dog.stats().stalled_now);
  EXPECT_EQ(dog.stats().stalls, 0u);
}

TEST(Watchdog, AnySourceBeatingCountsAsProgress) {
  Watchdog dog(quick());
  const std::size_t a = dog.register_source("drain-0");
  const std::size_t b = dog.register_source("drain-1");
  dog.set_busy_probe([] { return true; });
  dog.beat(a);
  dog.poll_once();

  // Only shard b makes progress; the system as a whole is alive.
  std::this_thread::sleep_for(milliseconds(60));
  dog.beat(b);
  dog.poll_once();
  EXPECT_FALSE(dog.stats().stalled_now);
  EXPECT_EQ(dog.stats().stalls, 0u);
  EXPECT_EQ(dog.stats().heartbeats, 2u);
}

TEST(Watchdog, MonitorThreadCatchesAnInjectedStall) {
  Watchdog dog(quick());
  dog.register_source("drain-0");
  std::atomic<bool> busy{true};
  dog.set_busy_probe([&busy] { return busy.load(); });

  dog.start();
  // Busy and silent for several stall_after periods: the monitor thread
  // must flag at least one episode on its own.
  std::this_thread::sleep_for(milliseconds(150));
  dog.stop();

  const WatchdogStats stats = dog.stats();
  EXPECT_GE(stats.stalls, 1u);
  EXPECT_GT(stats.polls, 0u);
}

TEST(Watchdog, RegisterAfterStartAndBadConfigAreRejected) {
  Watchdog dog(quick());
  dog.register_source("drain-0");
  dog.set_busy_probe([] { return false; });
  dog.start();
  EXPECT_THROW(dog.register_source("late"), std::logic_error);
  dog.stop();

  WatchdogConfig bad = quick();
  bad.stall_after = common::Duration::zero();
  EXPECT_THROW(Watchdog{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace powai::framework
