// Cross-backend solver equivalence: the lane-parallel nonce sweep must
// be observably identical to the scalar probe loop on every SHA-256
// backend this CPU supports. Same puzzle, start_nonce, stride, and
// max_attempts => identical (found, nonce, attempts) everywhere —
// including the lane-boundary cases (solution in the first lane, the
// last lane of a full sweep, and inside a budget-clipped partial
// sweep), where an implementation that scans lanes out of probe order
// or counts whole batches would diverge.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "pow/generator.hpp"
#include "pow/solver.hpp"

namespace powai::pow {
namespace {

using crypto::Sha256;
using crypto::Sha256Backend;

Puzzle make_puzzle(unsigned difficulty, const std::string& ip = "5.6.7.8") {
  static common::ManualClock clock;
  static PuzzleGenerator gen(clock, common::bytes_of("solver-backend-secret"));
  return gen.issue(ip, difficulty);
}

/// Runs one single-threaded scan under a forced backend, restoring the
/// previous backend afterwards.
ScanResult scan_with(Sha256Backend backend, const PuzzleContext& context,
                     std::uint64_t start, std::uint64_t stride,
                     std::uint64_t max_attempts) {
  const Sha256Backend previous = Sha256::backend();
  EXPECT_TRUE(Sha256::set_backend(backend));
  const ScanResult r = Solver::scan(context, start, stride, max_attempts);
  EXPECT_TRUE(Sha256::set_backend(previous));
  return r;
}

class SolverBackends : public ::testing::TestWithParam<Sha256Backend> {};

TEST_P(SolverBackends, ScanMatchesGenericOnSolvablePuzzles) {
  // Unbounded scans over easy puzzles: every backend must land on the
  // same nonce with the same attempt count as the scalar reference.
  for (unsigned d : {1u, 4u, 8u, 10u}) {
    const Puzzle p = make_puzzle(d);
    const PuzzleContext context(p);
    const ScanResult reference =
        scan_with(Sha256Backend::kGeneric, context, 0, 1, 0);
    ASSERT_TRUE(reference.found) << "d=" << d;
    const ScanResult r = scan_with(GetParam(), context, 0, 1, 0);
    ASSERT_TRUE(r.found) << "d=" << d;
    EXPECT_EQ(r.nonce, reference.nonce) << "d=" << d;
    EXPECT_EQ(r.attempts, reference.attempts) << "d=" << d;
  }
}

TEST_P(SolverBackends, ScanMatchesGenericOnStridedSearches)  {
  // Strides > 1 (the multithreaded sharding pattern): the sweep must
  // build its nonce batches along the stride, not contiguously.
  const Puzzle p = make_puzzle(8);
  const PuzzleContext context(p);
  for (std::uint64_t stride : {2ull, 3ull, 7ull}) {
    for (std::uint64_t start = 0; start < stride; ++start) {
      const ScanResult reference =
          scan_with(Sha256Backend::kGeneric, context, start, stride, 200'000);
      const ScanResult r =
          scan_with(GetParam(), context, start, stride, 200'000);
      EXPECT_EQ(r.found, reference.found)
          << "start=" << start << " stride=" << stride;
      EXPECT_EQ(r.nonce, reference.nonce)
          << "start=" << start << " stride=" << stride;
      EXPECT_EQ(r.attempts, reference.attempts)
          << "start=" << start << " stride=" << stride;
    }
  }
}

TEST_P(SolverBackends, ScanHitsSolutionAtEveryLaneBoundary) {
  // Place the known solution exactly k probes into the scan, for k
  // around every lane boundary of every sweep width (8 and 16): first
  // lane, last lane of a full sweep, first lane of the second sweep,
  // and mid-sweep positions. attempts must equal k + 1 exactly.
  const Puzzle p = make_puzzle(6);
  const PuzzleContext context(p);
  const ScanResult reference =
      scan_with(Sha256Backend::kGeneric, context, 0, 1, 0);
  ASSERT_TRUE(reference.found);
  const std::uint64_t solution = reference.nonce;

  for (std::uint64_t k : {0ull, 1ull, 7ull, 8ull, 9ull, 15ull, 16ull, 17ull,
                          31ull, 32ull}) {
    if (k > solution) continue;  // can't start before nonce 0
    const std::uint64_t start = solution - k;
    const ScanResult r = scan_with(GetParam(), context, start, 1, 0);
    ASSERT_TRUE(r.found) << "k=" << k;
    EXPECT_EQ(r.nonce, solution) << "k=" << k;
    EXPECT_EQ(r.attempts, k + 1) << "k=" << k;
  }
}

TEST_P(SolverBackends, BudgetClipsTheFinalSweepExactly) {
  // A budget that ends one probe before the solution must miss it and
  // report exactly max_attempts attempts; a budget that ends on it must
  // find it — even when the cut lands inside a lane group.
  const Puzzle p = make_puzzle(6);
  const PuzzleContext context(p);
  const ScanResult reference =
      scan_with(Sha256Backend::kGeneric, context, 0, 1, 0);
  ASSERT_TRUE(reference.found);
  const std::uint64_t solution = reference.nonce;

  for (std::uint64_t k : {0ull, 3ull, 7ull, 8ull, 12ull, 15ull, 16ull, 21ull}) {
    if (k > solution) continue;
    const std::uint64_t start = solution - k;

    const ScanResult hit = scan_with(GetParam(), context, start, 1, k + 1);
    ASSERT_TRUE(hit.found) << "k=" << k;
    EXPECT_EQ(hit.nonce, solution) << "k=" << k;
    EXPECT_EQ(hit.attempts, k + 1) << "k=" << k;

    if (k == 0) continue;
    const ScanResult miss = scan_with(GetParam(), context, start, 1, k);
    EXPECT_FALSE(miss.found) << "k=" << k;
    EXPECT_EQ(miss.attempts, k) << "k=" << k;
  }
}

TEST_P(SolverBackends, CheckManyAgreesWithSequentialCheck) {
  // check_many over a window containing the solution must return the
  // same index a scalar check loop finds, at window sizes below, at,
  // and above every lane width.
  const Puzzle p = make_puzzle(6);
  const PuzzleContext context(p);
  const ScanResult reference =
      scan_with(Sha256Backend::kGeneric, context, 0, 1, 0);
  ASSERT_TRUE(reference.found);
  const std::uint64_t solution = reference.nonce;
  const std::uint64_t start = solution >= 20 ? solution - 20 : 0;

  const Sha256Backend previous = Sha256::backend();
  ASSERT_TRUE(Sha256::set_backend(GetParam()));
  for (std::size_t count : {std::size_t{1}, std::size_t{5}, std::size_t{8},
                            std::size_t{13}, std::size_t{16}, std::size_t{40},
                            std::size_t{64}}) {
    std::size_t expected = count;
    for (std::size_t i = 0; i < count; ++i) {
      if (context.check(start + i)) {
        expected = i;
        break;
      }
    }
    EXPECT_EQ(context.check_many(start, 1, count), expected)
        << "count=" << count;
  }
  ASSERT_TRUE(Sha256::set_backend(previous));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SolverBackends,
    ::testing::ValuesIn(Sha256::supported_backends()),
    [](const ::testing::TestParamInfo<Sha256Backend>& info) {
      return std::string(Sha256::backend_name(info.param));
    });

}  // namespace
}  // namespace powai::pow
