// Tests for the config-driven policy factory.

#include "policy/factory.hpp"

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/rng.hpp"

namespace powai::policy {
namespace {

using common::Config;

common::Rng& rng() {
  static common::Rng instance(1);
  return instance;
}

TEST(Factory, DefaultIsPolicy1) {
  const auto p = make_policy(Config{});
  EXPECT_EQ(p->difficulty(0.0, rng()), 1u);
  EXPECT_EQ(p->difficulty(10.0, rng()), 11u);
}

TEST(Factory, Policy1AndPolicy2Aliases) {
  const auto p1 = make_policy(Config::parse("policy=policy1"));
  const auto p2 = make_policy(Config::parse("policy=policy2"));
  EXPECT_EQ(p1->difficulty(3.0, rng()), 4u);
  EXPECT_EQ(p2->difficulty(3.0, rng()), 8u);
}

TEST(Factory, LinearWithParameters) {
  const auto p = make_policy(Config::parse("policy=linear offset=2 slope=2.0"));
  EXPECT_EQ(p->difficulty(3.0, rng()), 8u);  // ceil(6) + 2
}

TEST(Factory, ErrorRangeAndPolicy3Alias) {
  const auto p = make_policy(Config::parse("policy=error_range epsilon=0"));
  EXPECT_EQ(p->difficulty(4.0, rng()), 5u);
  const auto alias = make_policy(Config::parse("policy=policy3 epsilon=0"));
  EXPECT_EQ(alias->difficulty(4.0, rng()), 5u);
  EXPECT_EQ(p->name(), "error_range");
}

TEST(Factory, StepWithTierString) {
  const auto p =
      make_policy(Config::parse("policy=step tiers=2:1,6:4,10:12"));
  EXPECT_EQ(p->difficulty(1.0, rng()), 1u);
  EXPECT_EQ(p->difficulty(5.0, rng()), 4u);
  EXPECT_EQ(p->difficulty(9.0, rng()), 12u);
}

TEST(Factory, StepRejectsMalformedTiers) {
  EXPECT_THROW(make_policy(Config::parse("policy=step tiers=oops")),
               std::invalid_argument);
  EXPECT_THROW(make_policy(Config::parse("policy=step tiers=3:x,10:2")),
               std::invalid_argument);
}

TEST(Factory, Exponential) {
  const auto p =
      make_policy(Config::parse("policy=exponential base=1.0 growth=1.3"));
  EXPECT_EQ(p->difficulty(0.0, rng()), 1u);
  EXPECT_EQ(p->difficulty(10.0, rng()), 14u);
}

TEST(Factory, TargetLatency) {
  const auto p = make_policy(
      Config::parse("policy=target_latency l0_ms=30 l1_ms=900 hash_us=0.5"));
  EXPECT_GE(p->difficulty(10.0, rng()), p->difficulty(0.0, rng()));
}

TEST(Factory, DslProgramViaConfig) {
  Config cfg;
  cfg.set("policy", "dsl");
  cfg.set("dsl", "when score < 5: difficulty = 2;default: difficulty = 9");
  const auto p = make_policy(cfg);
  EXPECT_EQ(p->difficulty(1.0, rng()), 2u);
  EXPECT_EQ(p->difficulty(8.0, rng()), 9u);
}

TEST(Factory, DslRequiresProgramText) {
  EXPECT_THROW(make_policy(Config::parse("policy=dsl")),
               std::invalid_argument);
}

TEST(Factory, UnknownPolicyThrows) {
  EXPECT_THROW(make_policy(Config::parse("policy=quantum")),
               std::invalid_argument);
}

}  // namespace
}  // namespace powai::policy
