// Tests for SipHash-2-4 against the reference vectors from the SipHash
// paper (Aumasson & Bernstein, appendix A).

#include "crypto/siphash.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace powai::crypto {
namespace {

using common::Bytes;

SipKey test_key() {
  SipKey key{};
  for (std::uint8_t i = 0; i < 16; ++i) key[i] = i;
  return key;
}

// First entries of the official vectors_sip64 table from the reference
// implementation: input is 0x00, 0x0001, 0x000102, ... under key
// 000102...0f.
TEST(SipHash, ReferenceVectors) {
  const SipKey key = test_key();
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
  };
  Bytes input;
  for (std::size_t len = 0; len < std::size(expected); ++len) {
    EXPECT_EQ(siphash24(key, input), expected[len]) << "len=" << len;
    input.push_back(static_cast<std::uint8_t>(len));
  }
}

TEST(SipHash, CrossesWordBoundaries) {
  // Longer inputs from the same official table (lengths 8 and 9 cover the
  // full-word + tail logic).
  const SipKey key = test_key();
  Bytes input;
  for (std::uint8_t i = 0; i < 8; ++i) input.push_back(i);
  EXPECT_EQ(siphash24(key, input), 0x93f5f5799a932462ULL);
  input.push_back(8);
  EXPECT_EQ(siphash24(key, input), 0x9e0082df0ba9e4b0ULL);
}

TEST(SipHash, EveryTailLengthAfterFullWord) {
  // Official vectors for lengths 10-15: one full 8-byte word plus every
  // tail size from 2 to 7, pinning the little-endian tail assembly.
  const SipKey key = test_key();
  const std::uint64_t expected[] = {
      0x7a5dbbc594ddb9f3ULL,  // len 10
      0xf4b32f46226bada7ULL,  // len 11
      0x751e8fbc860ee5fbULL,  // len 12
      0x14ea5627c0843d90ULL,  // len 13
      0xf723ca908e7af2eeULL,  // len 14
      0xa129ca6149be45e5ULL,  // len 15
  };
  Bytes input;
  for (std::uint8_t i = 0; i < 10; ++i) input.push_back(i);
  for (std::size_t k = 0; k < std::size(expected); ++k) {
    EXPECT_EQ(siphash24(key, input), expected[k])
        << "len=" << input.size();
    input.push_back(static_cast<std::uint8_t>(10 + k));
  }
}

TEST(SipHash, KeySensitivity) {
  const Bytes msg = common::bytes_of("replay-cache-entry");
  SipKey k1{};
  SipKey k2{};
  k2[0] = 1;
  EXPECT_NE(siphash24(k1, msg), siphash24(k2, msg));
}

TEST(SipHash, MessageSensitivity) {
  const SipKey key = test_key();
  EXPECT_NE(siphash24(key, common::bytes_of("a")),
            siphash24(key, common::bytes_of("b")));
}

TEST(SipHash, EmptyMessageIsDefined) {
  const SipKey key = test_key();
  EXPECT_EQ(siphash24(key, {}), 0x726fdb47dd0e0e31ULL);
}

}  // namespace
}  // namespace powai::crypto
