// Tests for seed-derived fault schedules: pure derivation, canonical
// ordering, and the subset/kept algebra the schedule minimizer relies on.

#include "sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace powai::sim {
namespace {

TEST(FaultPlan, DerivationIsAPureFunctionOfTheSeed) {
  const FaultPlan a = FaultPlan::derive(42);
  const FaultPlan b = FaultPlan::derive(42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.seed, 42u);

  const FaultPlan c = FaultPlan::derive(43);
  EXPECT_NE(a.events, c.events);
}

TEST(FaultPlan, RespectsEventCountBoundsAndKindRestriction) {
  FaultPlanConfig cfg;
  cfg.min_events = 2;
  cfg.max_events = 4;
  cfg.kinds = {FaultKind::kClockSkew, FaultKind::kReplayFlood};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const FaultPlan plan = FaultPlan::derive(seed, cfg);
    EXPECT_GE(plan.events.size(), 2u) << "seed " << seed;
    EXPECT_LE(plan.events.size(), 4u) << "seed " << seed;
    for (const FaultEvent& event : plan.events) {
      EXPECT_TRUE(event.kind == FaultKind::kClockSkew ||
                  event.kind == FaultKind::kReplayFlood)
          << "seed " << seed;
      EXPECT_GE(event.at, common::Duration::zero());
      EXPECT_LT(event.at, cfg.horizon);
      EXPECT_GT(event.duration, common::Duration::zero());
      EXPECT_LE(event.duration, cfg.max_window);
    }
  }
}

TEST(FaultPlan, EventsAreSortedByActivationTime) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = FaultPlan::derive(seed);
    EXPECT_TRUE(std::is_sorted(
        plan.events.begin(), plan.events.end(),
        [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; }))
        << "seed " << seed;
  }
}

TEST(FaultPlan, SubsettingKeepsSurvivorsByteIdentical) {
  FaultPlanConfig cfg;
  cfg.min_events = 5;
  cfg.max_events = 8;
  const FaultPlan full = FaultPlan::derive(7, cfg);
  ASSERT_GE(full.events.size(), 5u);
  EXPECT_TRUE(full.is_full());

  const FaultPlan sub = full.subset({1, 3, 4});
  ASSERT_EQ(sub.events.size(), 3u);
  EXPECT_EQ(sub.events[0], full.events[1]);
  EXPECT_EQ(sub.events[1], full.events[3]);
  EXPECT_EQ(sub.events[2], full.events[4]);
  EXPECT_EQ(sub.kept, (std::vector<std::size_t>{1, 3, 4}));
  EXPECT_EQ(sub.seed, full.seed);
  EXPECT_FALSE(sub.is_full());
}

TEST(FaultPlan, NestedSubsetsComposeKeptIndices) {
  FaultPlanConfig cfg;
  cfg.min_events = 5;
  cfg.max_events = 8;
  const FaultPlan full = FaultPlan::derive(11, cfg);
  const FaultPlan once = full.subset({0, 2, 4});
  const FaultPlan twice = once.subset({1, 2});
  // kept always refers to the *originally derived* indices, so a
  // twice-shrunk plan still replays from "seed S keep=i,j".
  EXPECT_EQ(twice.kept, (std::vector<std::size_t>{2, 4}));
  EXPECT_EQ(twice.events[0], full.events[2]);
  EXPECT_EQ(twice.events[1], full.events[4]);
  EXPECT_EQ(twice.keep_spec(), "2,4");
}

TEST(FaultPlan, PrefixSubsetIsNotMistakenForTheFullPlan) {
  // A minimized plan that happens to keep a prefix {0, 1} of the
  // derivation must still say keep=0,1 — otherwise its replay command
  // would re-derive and run the whole schedule.
  FaultPlanConfig cfg;
  cfg.min_events = 4;
  cfg.max_events = 8;
  const FaultPlan full = FaultPlan::derive(13, cfg);
  ASSERT_GE(full.events.size(), 4u);
  const FaultPlan prefix = full.subset({0, 1});
  EXPECT_FALSE(prefix.is_full());
  EXPECT_EQ(prefix.keep_spec(), "0,1");
  EXPECT_EQ(prefix.derived_events, full.events.size());
}

TEST(FaultPlan, SubsetOutOfRangeThrows) {
  const FaultPlan plan = FaultPlan::derive(3);
  EXPECT_THROW((void)plan.subset({plan.events.size()}), std::out_of_range);
}

TEST(FaultPlan, InvalidConfigThrows) {
  FaultPlanConfig no_kinds;
  no_kinds.kinds.clear();
  EXPECT_THROW((void)FaultPlan::derive(1, no_kinds), std::invalid_argument);

  FaultPlanConfig inverted;
  inverted.min_events = 5;
  inverted.max_events = 2;
  EXPECT_THROW((void)FaultPlan::derive(1, inverted), std::invalid_argument);
}

TEST(FaultPlan, SummaryListsEveryEventWithItsOriginalIndex) {
  const FaultPlan full = FaultPlan::derive(5);
  const std::string summary = full.subset({0, 1}).summary();
  EXPECT_NE(summary.find("seed=5"), std::string::npos);
  EXPECT_NE(summary.find("keep=0,1"), std::string::npos);
  EXPECT_NE(summary.find("[1]"), std::string::npos);
}

TEST(FaultKindNames, RoundTrip) {
  for (const FaultKind kind : kAllFaultKinds) {
    const auto back = fault_kind_from_name(fault_kind_name(kind));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(fault_kind_from_name("not_a_fault").has_value());
}

}  // namespace
}  // namespace powai::sim
