// Tests for the nonce-search solver: correctness, bounds, cancellation,
// multithreading, and statistical behaviour of the attempt count.

#include "pow/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numbers>
#include <thread>
#include <utility>

#include "common/clock.hpp"
#include "pow/difficulty.hpp"
#include "pow/generator.hpp"

namespace powai::pow {
namespace {

Puzzle make_puzzle(unsigned difficulty, const std::string& ip = "1.2.3.4") {
  static common::ManualClock clock;
  static PuzzleGenerator gen(clock, common::bytes_of("solver-test-secret"));
  return gen.issue(ip, difficulty);
}

TEST(Solver, SolvesEasyPuzzle) {
  const Puzzle p = make_puzzle(1);
  const SolveResult r = Solver{}.solve(p);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(is_valid_solution(p, r.solution.nonce));
  EXPECT_EQ(r.solution.puzzle_id, p.puzzle_id);
  EXPECT_GE(r.attempts, 1u);
}

TEST(Solver, SolvesModeratePuzzles) {
  for (unsigned d : {4u, 8u, 12u}) {
    const Puzzle p = make_puzzle(d);
    const SolveResult r = Solver{}.solve(p);
    ASSERT_TRUE(r.found) << "d=" << d;
    EXPECT_TRUE(is_valid_solution(p, r.solution.nonce));
  }
}

TEST(Solver, RespectsMaxAttempts) {
  const Puzzle p = make_puzzle(40);  // effectively unsolvable in budget
  SolveOptions opts;
  opts.max_attempts = 1000;
  const SolveResult r = Solver{}.solve(p, opts);
  EXPECT_FALSE(r.found);
  EXPECT_LE(r.attempts, 1000u);
  EXPECT_GE(r.attempts, 1000u);  // exhausted exactly
}

TEST(Solver, StartNonceMakesSearchDeterministic) {
  const Puzzle p = make_puzzle(6);
  const SolveResult a = Solver{}.solve(p);
  const SolveResult b = Solver{}.solve(p);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.solution.nonce, b.solution.nonce);
  EXPECT_EQ(a.attempts, b.attempts);
}

TEST(Solver, ResumeFromLaterNonceSkipsEarlierSolution) {
  const Puzzle p = make_puzzle(4);
  const SolveResult first = Solver{}.solve(p);
  ASSERT_TRUE(first.found);
  SolveOptions opts;
  opts.start_nonce = first.solution.nonce + 1;
  const SolveResult second = Solver{}.solve(p, opts);
  ASSERT_TRUE(second.found);
  EXPECT_GT(second.solution.nonce, first.solution.nonce);
  EXPECT_TRUE(is_valid_solution(p, second.solution.nonce));
}

TEST(Solver, MultithreadedFindsValidSolution) {
  for (unsigned threads : {2u, 4u}) {
    const Puzzle p = make_puzzle(10);
    SolveOptions opts;
    opts.threads = threads;
    const SolveResult r = Solver{}.solve(p, opts);
    ASSERT_TRUE(r.found) << "threads=" << threads;
    EXPECT_TRUE(is_valid_solution(p, r.solution.nonce));
  }
}

TEST(Solver, MultithreadedExhaustsExactBudget) {
  // The per-worker split must sum to exactly max_attempts — no ceil
  // overshoot — including totals that don't divide evenly and totals
  // smaller than the thread count (surplus workers simply don't run).
  const Puzzle p = make_puzzle(40);
  const std::pair<unsigned, std::uint64_t> cases[] = {
      {4u, 10'000}, {4u, 10'001}, {4u, 10'003}, {3u, 1}, {8u, 5}};
  for (const auto& [threads, budget] : cases) {
    SolveOptions opts;
    opts.threads = threads;
    opts.max_attempts = budget;
    const SolveResult r = Solver{}.solve(p, opts);
    EXPECT_FALSE(r.found) << "threads=" << threads << " budget=" << budget;
    EXPECT_EQ(r.attempts, budget)
        << "threads=" << threads << " budget=" << budget;
  }
}

TEST(Solver, ZeroThreadsThrows) {
  const Puzzle p = make_puzzle(1);
  SolveOptions opts;
  opts.threads = 0;
  EXPECT_THROW((void)Solver{}.solve(p, opts), std::invalid_argument);
}

TEST(Solver, CancellationStopsSearch) {
  const Puzzle p = make_puzzle(40);
  std::atomic<bool> cancel{false};
  SolveOptions opts;
  opts.cancel = &cancel;
  std::jthread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.store(true);
  });
  const SolveResult r = Solver{}.solve(p, opts);  // unbounded but cancellable
  EXPECT_FALSE(r.found);
  EXPECT_GT(r.attempts, 0u);
}

TEST(Solver, AttemptCountNearExpectedWork) {
  // Mean attempts over many d=8 puzzles should be near 2^8 = 256 (within
  // 4 sigma: sigma_mean = 256/sqrt(200) ~ 18).
  common::ManualClock clock;
  PuzzleGenerator gen(clock, common::bytes_of("stats-secret"));
  double total = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const Puzzle p = gen.issue("9.9.9.9", 8);
    const SolveResult r = Solver{}.solve(p);
    ASSERT_TRUE(r.found);
    total += static_cast<double>(r.attempts);
  }
  const double mean = total / trials;
  EXPECT_GT(mean, 256.0 - 4.0 * 18.0);
  EXPECT_LT(mean, 256.0 + 4.0 * 18.0);
}

TEST(Solver, HigherDifficultyTakesMoreAttemptsOnAverage) {
  common::ManualClock clock;
  PuzzleGenerator gen(clock, common::bytes_of("mono-secret"));
  double mean_low = 0.0;
  double mean_high = 0.0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    mean_low += static_cast<double>(
        Solver{}.solve(gen.issue("1.1.1.1", 4)).attempts);
    mean_high += static_cast<double>(
        Solver{}.solve(gen.issue("1.1.1.1", 9)).attempts);
  }
  EXPECT_GT(mean_high / trials, 4.0 * mean_low / trials);
}

TEST(Difficulty, ExpectedHashesDoublesPerStep) {
  EXPECT_DOUBLE_EQ(expected_hashes(0), 1.0);
  EXPECT_DOUBLE_EQ(expected_hashes(1), 2.0);
  EXPECT_DOUBLE_EQ(expected_hashes(10), 1024.0);
  EXPECT_DOUBLE_EQ(expected_hashes(11) / expected_hashes(10), 2.0);
  EXPECT_THROW((void)expected_hashes(300), std::invalid_argument);
}

TEST(Difficulty, SolveProbabilityBasics) {
  EXPECT_DOUBLE_EQ(solve_probability(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(solve_probability(0, 1), 1.0);  // d=0 always solves
  EXPECT_NEAR(solve_probability(1, 1), 0.5, 1e-12);
  // One expected-work's worth of attempts solves with ~63%.
  EXPECT_NEAR(solve_probability(10, 1024), 1.0 - std::exp(-1.0), 0.01);
}

TEST(Difficulty, SolveProbabilityMonotoneInAttempts) {
  double prev = 0.0;
  for (std::uint64_t n : {1u, 10u, 100u, 1000u, 10000u}) {
    const double p = solve_probability(8, n);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Difficulty, AttemptsForConfidenceInvertsProbability) {
  const double attempts = attempts_for_confidence(10, 0.99);
  const double p = solve_probability(
      10, static_cast<std::uint64_t>(std::ceil(attempts)));
  EXPECT_NEAR(p, 0.99, 0.002);
  EXPECT_THROW((void)attempts_for_confidence(10, 0.0), std::invalid_argument);
  EXPECT_THROW((void)attempts_for_confidence(10, 1.0), std::invalid_argument);
}

TEST(Difficulty, TimingHelpers) {
  // 1000 hashes/s, d=10 (1024 expected hashes) -> ~1024 ms expected.
  EXPECT_NEAR(expected_solve_ms(10, 1000.0), 1024.0, 1e-9);
  EXPECT_NEAR(median_solve_ms(10, 1000.0), 1024.0 * std::numbers::ln2, 1e-9);
  EXPECT_THROW((void)expected_solve_ms(10, 0.0), std::invalid_argument);
}

TEST(Difficulty, DifficultyForTargetRoundTrips) {
  const double hash_rate = 1e6;
  for (unsigned d : {5u, 10u, 15u, 20u}) {
    const double target = expected_solve_ms(d, hash_rate);
    EXPECT_EQ(difficulty_for_target_ms(target, hash_rate), d);
  }
  EXPECT_EQ(difficulty_for_target_ms(1e-9, hash_rate), 1u);  // clamps low
  EXPECT_THROW((void)difficulty_for_target_ms(0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace powai::pow
