// Concurrency tests for the full PowServer issuance path: N threads
// through on_request/on_submission must produce exactly the totals of
// the serial run of the same workload, rate-limiter token accounting
// must stay exact under races, and no challenge or submission may be
// double-counted. These run under ThreadSanitizer in CI (label
// "concurrency").

#include "framework/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "features/synthetic.hpp"
#include "framework/client.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/load_harness.hpp"

namespace powai::framework {
namespace {

using namespace std::chrono_literals;

/// Sum of every outcome counter — must always equal `requests` plus the
/// submission outcomes, since each call lands in exactly one bucket.
std::uint64_t request_outcomes(const ServerStats& s) {
  return s.challenges_issued + s.served_without_pow + s.rejected_malformed +
         s.rejected_rate_limited;
}

class ConcurrentServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(42);
    const features::SyntheticTraceGenerator gen;
    model_.fit(gen.generate(200, 200, rng));
    benign_ = gen.sample(false, rng);
    malicious_ = gen.sample(true, rng);
  }

  ServerConfig base_config() {
    ServerConfig cfg;
    cfg.master_secret = common::bytes_of("concurrent-server-secret");
    return cfg;
  }

  /// Runs the same deterministic request workload (kThreads ×
  /// kPerThread, one IP per lane, every 5th request malformed) either
  /// serially or with one thread per lane.
  void run_request_workload(PowServer& server, bool parallel) {
    auto lane = [&](int t) {
      for (int j = 0; j < kPerThread; ++j) {
        Request request;
        request.client_ip =
            (j % 5 == 4) ? "not-an-ip" : sim::load_client_ip(t);
        request.features = benign_;
        request.request_id = static_cast<std::uint64_t>(t) * 1000 + j;
        (void)server.on_request(request);
      }
    };
    if (!parallel) {
      for (int t = 0; t < kThreads; ++t) lane(t);
      return;
    }
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) threads.emplace_back(lane, t);
    for (auto& th : threads) th.join();
  }

  static constexpr int kThreads = 4;
  static constexpr int kPerThread = 100;

  common::ManualClock clock_;
  reputation::DabrModel model_;
  policy::LinearPolicy policy_ = policy::LinearPolicy::policy2();
  features::FeatureVector benign_;
  features::FeatureVector malicious_;
};

TEST_F(ConcurrentServerTest, NThreadStatsEqualSerialRun) {
  // Deterministic scoring (cache off, linear policy) makes the serial
  // totals the exact ground truth for the parallel run.
  ServerConfig cfg = base_config();
  cfg.reputation_cache_enabled = false;

  PowServer serial(clock_, model_, policy_, cfg);
  run_request_workload(serial, /*parallel=*/false);
  const ServerStats expected = serial.stats();

  PowServer concurrent(clock_, model_, policy_, cfg);
  run_request_workload(concurrent, /*parallel=*/true);
  const ServerStats got = concurrent.stats();

  EXPECT_EQ(got.requests, expected.requests);
  EXPECT_EQ(got.challenges_issued, expected.challenges_issued);
  EXPECT_EQ(got.rejected_malformed, expected.rejected_malformed);
  EXPECT_EQ(got.difficulty_sum, expected.difficulty_sum);
  EXPECT_EQ(request_outcomes(got), got.requests);
}

TEST_F(ConcurrentServerTest, ReputationCacheKeepsTotalsConserved) {
  // With the cache on, which thread scores first is racy, but every
  // request must still land in exactly one outcome bucket.
  PowServer server(clock_, model_, policy_, base_config());
  run_request_workload(server, /*parallel=*/true);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.requests,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(request_outcomes(s), s.requests);
}

TEST_F(ConcurrentServerTest, RateLimiterTokenAccountingExactUnderRaces) {
  // Frozen clock, one shared IP: out of kThreads*kPerThread racing
  // requests exactly `burst` may ever win a token.
  constexpr std::uint64_t kBurst = 32;
  ServerConfig cfg = base_config();
  cfg.rate_limiter_enabled = true;
  cfg.rate_limiter.tokens_per_second = 1.0;
  cfg.rate_limiter.burst = static_cast<double>(kBurst);
  PowServer server(clock_, model_, policy_, cfg);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int j = 0; j < kPerThread; ++j) {
        Request request;
        request.client_ip = "10.0.0.1";
        request.features = benign_;
        (void)server.on_request(request);
      }
    });
  }
  for (auto& th : threads) th.join();

  const ServerStats s = server.stats();
  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(s.requests, total);
  EXPECT_EQ(s.challenges_issued, kBurst);
  EXPECT_EQ(s.rejected_rate_limited, total - kBurst);
}

TEST(ConcurrentRateLimiter, AllowGrantsExactlyBurstUnderRaces) {
  common::ManualClock clock;
  RateLimiterConfig cfg;
  cfg.tokens_per_second = 1.0;
  cfg.burst = 17.0;  // not a multiple of the thread count
  RateLimiter limiter(clock, cfg);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> granted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int j = 0; j < kPerThread; ++j) {
        if (limiter.allow(features::IpAddress(10, 1, 2, 3))) {
          granted.fetch_add(1);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(granted.load(), 17);
  EXPECT_EQ(limiter.tracked_ips(), 1u);
  EXPECT_LT(limiter.tokens(features::IpAddress(10, 1, 2, 3)), 1.0);
}

TEST(ConcurrentRateLimiter, WideBurstGrantsExactlyBurstUnderRaces) {
  // Same exact-accounting contract as the packed path, on the wide
  // representation (burst > 65535): racing threads must collectively win
  // exactly `burst` tokens — via 128-bit CAS where the platform has it,
  // via the per-bucket lock otherwise (and always under TSan).
  common::ManualClock clock;
  RateLimiterConfig cfg;
  cfg.tokens_per_second = 1.0;
  cfg.burst = 65537.0;  // one past the packed-word ceiling
  RateLimiter limiter(clock, cfg);
  ASSERT_TRUE(limiter.wide());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 8200;  // 8 * 8200 = 65600 attempts > burst
  std::atomic<int> granted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int j = 0; j < kPerThread; ++j) {
        if (limiter.allow(features::IpAddress(10, 1, 2, 3))) {
          granted.fetch_add(1);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(granted.load(), 65537);
  EXPECT_EQ(limiter.tracked_ips(), 1u);
  EXPECT_LT(limiter.tokens(features::IpAddress(10, 1, 2, 3)), 1.0);
}

TEST_F(ConcurrentServerTest, ConcurrentSubmissionsCountedExactlyOnce) {
  // Every solved challenge is submitted by kSubmitters racing threads;
  // the replay cache must let exactly one win per puzzle.
  constexpr int kChallenges = 16;
  constexpr int kSubmitters = 4;
  PowServer server(clock_, model_, policy_, base_config());
  PowClient client("10.0.0.1");

  std::vector<Submission> submissions;
  submissions.reserve(kChallenges);
  for (int i = 0; i < kChallenges; ++i) {
    auto outcome = server.on_request(client.make_request("/", benign_));
    ASSERT_TRUE(std::holds_alternative<Challenge>(outcome));
    const auto solved = client.solve(std::get<Challenge>(outcome));
    ASSERT_TRUE(solved.solved);
    submissions.push_back(solved.submission);
  }

  std::atomic<int> ok_count{0};
  std::atomic<int> replay_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&] {
      for (const Submission& submission : submissions) {
        const Response response = server.on_submission(submission, "10.0.0.1");
        if (response.status == common::ErrorCode::kOk) {
          ok_count.fetch_add(1);
        } else if (response.status == common::ErrorCode::kReplay) {
          replay_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok_count.load(), kChallenges);
  EXPECT_EQ(replay_count.load(), kChallenges * (kSubmitters - 1));
  const ServerStats s = server.stats();
  EXPECT_EQ(s.served, static_cast<std::uint64_t>(kChallenges));
  EXPECT_EQ(s.rejected_replay,
            static_cast<std::uint64_t>(kChallenges) * (kSubmitters - 1));
}

TEST_F(ConcurrentServerTest, MixedEntryPointsStayConsistent) {
  // Request and submission traffic interleaved from different threads —
  // the usage pattern a real front-end produces.
  constexpr int kRounds = 24;
  PowServer server(clock_, model_, policy_, base_config());

  auto full_loop = [&](int lane) {
    PowClient client(sim::load_client_ip(static_cast<std::size_t>(lane)));
    for (int i = 0; i < kRounds; ++i) {
      const RoundTrip trip = client.run(server, "/", benign_);
      ASSERT_TRUE(trip.served);
    }
  };
  std::vector<std::thread> threads;
  for (int lane = 0; lane < 3; ++lane) threads.emplace_back(full_loop, lane);
  for (auto& th : threads) th.join();

  const ServerStats s = server.stats();
  EXPECT_EQ(s.requests, 3u * kRounds);
  EXPECT_EQ(s.challenges_issued, 3u * kRounds);
  EXPECT_EQ(s.served, 3u * kRounds);
}

TEST_F(ConcurrentServerTest, LoadHarnessBalancesClientAndServerTallies) {
  PowServer server(clock_, model_, policy_, base_config());
  sim::LoadHarnessConfig lc;
  lc.client_threads = 4;
  lc.requests_per_client = 8;
  sim::LoadHarness harness(server, lc);
  const sim::LoadReport report = harness.run({benign_});

  EXPECT_EQ(report.round_trips, 32u);
  EXPECT_EQ(report.served, 32u);
  EXPECT_EQ(report.solve_timeouts, 0u);
  EXPECT_EQ(report.server_delta.requests, 32u);
  EXPECT_EQ(report.server_delta.challenges_issued, 32u);
  EXPECT_EQ(report.server_delta.served, 32u);
  EXPECT_GT(report.solve_attempts, 0u);
}

TEST_F(ConcurrentServerTest, LoadHarnessRejectsBadConfig) {
  PowServer server(clock_, model_, policy_, base_config());
  sim::LoadHarnessConfig lc;
  lc.client_threads = 0;
  EXPECT_THROW(sim::LoadHarness(server, lc), std::invalid_argument);
  lc = {};
  lc.requests_per_client = 0;
  EXPECT_THROW(sim::LoadHarness(server, lc), std::invalid_argument);
  sim::LoadHarness ok(server, {});
  EXPECT_THROW((void)ok.run({}), std::invalid_argument);
}

TEST_F(ConcurrentServerTest, RequestBatchRunsWhileSubmissionsArrive) {
  // on_request_batch and on_submission_batch share one lazily-created
  // pool; exercise both concurrently (parallel_for is reentrant).
  constexpr int kBatch = 24;
  ServerConfig cfg = base_config();
  cfg.verify_threads = 2;
  PowServer server(clock_, model_, policy_, cfg);
  PowClient client("10.0.0.1");

  std::vector<Submission> submissions;
  std::vector<std::string> ips;
  for (int i = 0; i < kBatch; ++i) {
    auto outcome = server.on_request(client.make_request("/", benign_));
    const auto solved = client.solve(std::get<Challenge>(outcome));
    ASSERT_TRUE(solved.solved);
    submissions.push_back(solved.submission);
    ips.emplace_back("10.0.0.1");
  }

  std::vector<Request> requests;
  for (int i = 0; i < kBatch; ++i) {
    Request request;
    request.client_ip = sim::load_client_ip(static_cast<std::size_t>(i));
    request.features = benign_;
    request.request_id = 7000 + i;
    requests.push_back(std::move(request));
  }

  std::vector<Response> responses;
  std::vector<std::variant<Challenge, Response>> outcomes;
  std::thread submitter(
      [&] { responses = server.on_submission_batch(submissions, ips); });
  outcomes = server.on_request_batch(requests);
  submitter.join();

  ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(kBatch));
  for (int i = 0; i < kBatch; ++i) {
    ASSERT_TRUE(std::holds_alternative<Challenge>(outcomes[i]));
    EXPECT_EQ(std::get<Challenge>(outcomes[i]).request_id,
              requests[i].request_id);
  }
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kBatch));
  for (const Response& response : responses) {
    EXPECT_EQ(response.status, common::ErrorCode::kOk);
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.served, static_cast<std::uint64_t>(kBatch));
  EXPECT_EQ(s.challenges_issued, 2u * kBatch);
}

}  // namespace
}  // namespace powai::framework
