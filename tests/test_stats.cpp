// Tests for running statistics, exact quantiles, and histograms.

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace powai::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Samples, MedianOddCount) {
  Samples s;
  for (double x : {5.0, 1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Samples, MedianEvenCountInterpolates) {
  Samples s;
  for (double x : {1.0, 2.0, 3.0, 10.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Samples, QuantileEndpoints) {
  Samples s;
  for (double x : {4.0, 8.0, 15.0, 16.0, 23.0, 42.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 42.0);
}

TEST(Samples, QuantileThrowsOnEmptyOrBadQ) {
  Samples s;
  EXPECT_THROW((void)s.quantile(0.5), std::invalid_argument);
  s.add(1.0);
  EXPECT_THROW((void)s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)s.quantile(1.1), std::invalid_argument);
}

TEST(Samples, MedianOfThirtyTrialsMatchesSortedMiddle) {
  // Mirror of the paper's reporting: median of 30 samples = average of
  // the 15th and 16th order statistics.
  Samples s;
  for (int i = 30; i >= 1; --i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.median(), 15.5);
}

TEST(Samples, MeanAndStddev) {
  Samples s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Samples, MinMaxThrowOnEmpty) {
  Samples s;
  EXPECT_THROW((void)s.min(), std::invalid_argument);
  EXPECT_THROW((void)s.max(), std::invalid_argument);
}

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.99);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowOverflowSaturate) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);   // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 25.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 75.0);
}

TEST(Histogram, AsciiRenderingMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  const std::string art = h.to_ascii();
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
}

TEST(SamplesVsRunningStats, AgreeOnMoments) {
  Rng rng(9);
  Samples samples;
  RunningStats running;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.exponential(0.5);
    samples.add(x);
    running.add(x);
  }
  EXPECT_NEAR(samples.mean(), running.mean(), 1e-9);
  EXPECT_NEAR(samples.stddev(), running.stddev(), 1e-9);
}

}  // namespace
}  // namespace powai::common
