// Tests for Error / Result / Status.

#include "common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace powai::common {
namespace {

TEST(Error, NamesAreStable) {
  EXPECT_EQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_EQ(error_code_name(ErrorCode::kExpired), "expired");
  EXPECT_EQ(error_code_name(ErrorCode::kBadSolution), "bad_solution");
  EXPECT_EQ(error_code_name(ErrorCode::kReplay), "replay");
  EXPECT_EQ(error_code_name(ErrorCode::kRateLimited), "rate_limited");
}

TEST(Error, ToStringIncludesMessage) {
  const Error e = err(ErrorCode::kExpired, "puzzle ttl exceeded");
  EXPECT_EQ(e.to_string(), "expired: puzzle ttl exceeded");
}

TEST(Error, ToStringWithoutMessage) {
  const Error e = err(ErrorCode::kReplay, "");
  EXPECT_EQ(e.to_string(), "replay");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = err(ErrorCode::kNotFound, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, ValueOnErrorThrowsLogicError) {
  Result<int> r = err(ErrorCode::kInternal, "boom");
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, ErrorOnValueThrowsLogicError) {
  Result<int> r = 1;
  EXPECT_THROW((void)r.error(), std::logic_error);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(Status, DefaultIsSuccess) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.error().code, ErrorCode::kOk);
}

TEST(Status, CarriesError) {
  const Status s = err(ErrorCode::kRateLimited, "slow down");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kRateLimited);
  EXPECT_EQ(s.error().message, "slow down");
}

TEST(Status, SuccessFactory) { EXPECT_TRUE(Status::success().ok()); }

}  // namespace
}  // namespace powai::common
