// Tests for the policy rule DSL: lexing, parsing, rule semantics, error
// reporting, and the IPolicy adapter.

#include "policy/dsl.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace powai::policy {
namespace {

common::Rng& rng() {
  static common::Rng instance(1);
  return instance;
}

Difficulty run(std::string_view program, double score) {
  return DslPolicy(program).difficulty(score, rng());
}

// ---------------------------------------------------------------------------
// Happy paths
// ---------------------------------------------------------------------------

TEST(Dsl, DefaultOnlyProgram) {
  EXPECT_EQ(run("default: difficulty = 7", 0.0), 7u);
  EXPECT_EQ(run("default: difficulty = 7", 10.0), 7u);
}

TEST(Dsl, FirstMatchingRuleWins) {
  const std::string_view program =
      "when score < 5: difficulty = 2\n"
      "when score < 8: difficulty = 6\n"
      "default: difficulty = 12";
  EXPECT_EQ(run(program, 1.0), 2u);
  EXPECT_EQ(run(program, 6.0), 6u);
  EXPECT_EQ(run(program, 9.0), 12u);
}

TEST(Dsl, ComparisonOperators) {
  EXPECT_EQ(run("when score <= 3: difficulty = 2\ndefault: difficulty = 9", 3.0), 2u);
  EXPECT_EQ(run("when score < 3: difficulty = 2\ndefault: difficulty = 9", 3.0), 9u);
  EXPECT_EQ(run("when score > 7: difficulty = 8\ndefault: difficulty = 2", 7.5), 8u);
  EXPECT_EQ(run("when score >= 7: difficulty = 8\ndefault: difficulty = 2", 7.0), 8u);
  EXPECT_EQ(run("when score == 5: difficulty = 4\ndefault: difficulty = 2", 5.0), 4u);
  EXPECT_EQ(run("when score == 5: difficulty = 4\ndefault: difficulty = 2", 5.5), 2u);
}

TEST(Dsl, IntervalConditions) {
  const std::string_view program =
      "when score in [3, 7): difficulty = 5\n"
      "default: difficulty = 1";
  EXPECT_EQ(run(program, 3.0), 5u);   // closed low end
  EXPECT_EQ(run(program, 6.99), 5u);
  EXPECT_EQ(run(program, 7.0), 1u);   // open high end
  EXPECT_EQ(run(program, 2.99), 1u);
}

TEST(Dsl, IntervalAllFourBracketCombinations) {
  EXPECT_EQ(run("when score in (2, 4): difficulty = 9\ndefault: difficulty = 1", 2.0), 1u);
  EXPECT_EQ(run("when score in (2, 4): difficulty = 9\ndefault: difficulty = 1", 3.0), 9u);
  EXPECT_EQ(run("when score in [2, 4]: difficulty = 9\ndefault: difficulty = 1", 4.0), 9u);
  EXPECT_EQ(run("when score in (2, 4]: difficulty = 9\ndefault: difficulty = 1", 4.0), 9u);
}

TEST(Dsl, ArithmeticInDifficultyExpr) {
  EXPECT_EQ(run("default: difficulty = score + 2", 3.0), 5u);
  EXPECT_EQ(run("default: difficulty = 2 * score + 1", 4.0), 9u);
  EXPECT_EQ(run("default: difficulty = 20 - score", 4.0), 16u);
  EXPECT_EQ(run("default: difficulty = score / 2", 8.0), 4u);
  EXPECT_EQ(run("default: difficulty = (score + 1) * 2", 2.0), 6u);
}

TEST(Dsl, OperatorPrecedence) {
  // 2 + 3 * 2 = 8, not 10.
  EXPECT_EQ(run("default: difficulty = 2 + 3 * 2", 0.0), 8u);
  // (score) 6 / 2 + 1 = 4.
  EXPECT_EQ(run("default: difficulty = score / 2 + 1", 6.0), 4u);
}

TEST(Dsl, UnaryMinus) {
  EXPECT_EQ(run("default: difficulty = -score + 12", 2.0), 10u);
  // Negative result clamps to the minimum difficulty.
  EXPECT_EQ(run("default: difficulty = -5", 0.0), kMinSupportedDifficulty);
}

TEST(Dsl, Functions) {
  EXPECT_EQ(run("default: difficulty = ceil(score / 3)", 7.0), 3u);
  EXPECT_EQ(run("default: difficulty = floor(score / 3) + 1", 7.0), 3u);
  EXPECT_EQ(run("default: difficulty = round(score * 0.5)", 5.0), 3u);
  EXPECT_EQ(run("default: difficulty = sqrt(score) + 1", 9.0), 4u);
  EXPECT_EQ(run("default: difficulty = log2(8)", 0.0), 3u);
  EXPECT_EQ(run("default: difficulty = min(score, 4)", 9.0), 4u);
  EXPECT_EQ(run("default: difficulty = max(score, 4)", 9.0), 9u);
  EXPECT_EQ(run("default: difficulty = pow(2, 3)", 0.0), 8u);
}

TEST(Dsl, NestedFunctionCalls) {
  EXPECT_EQ(run("default: difficulty = max(ceil(score / 2), min(score, 3))", 9.0),
            5u);
}

TEST(Dsl, CommentsAndBlankLines) {
  const std::string_view program =
      "# header comment\n"
      "\n"
      "when score < 5: difficulty = 2   # trailing comment\n"
      "# middle comment\n"
      "default: difficulty = 9\n";
  EXPECT_EQ(run(program, 1.0), 2u);
  EXPECT_EQ(run(program, 6.0), 9u);
}

TEST(Dsl, PaperPoliciesExpressibleInDsl) {
  // Policy 1 and Policy 2 are one-liners in the DSL.
  const std::string_view policy1 = "default: difficulty = ceil(score) + 1";
  const std::string_view policy2 = "default: difficulty = ceil(score) + 5";
  for (int r = 0; r <= 10; ++r) {
    EXPECT_EQ(run(policy1, r), static_cast<Difficulty>(r + 1));
    EXPECT_EQ(run(policy2, r), static_cast<Difficulty>(r + 5));
  }
}

TEST(Dsl, ResultsAreClampedToSupportedBand) {
  EXPECT_EQ(run("default: difficulty = 1000", 0.0), kMaxSupportedDifficulty);
  EXPECT_EQ(run("default: difficulty = 0", 0.0), kMinSupportedDifficulty);
  // Division by zero -> inf -> max difficulty (documented failure mode).
  EXPECT_EQ(run("default: difficulty = 1 / 0", 0.0), kMaxSupportedDifficulty);
}

TEST(Dsl, ScoreInputClamped) {
  const DslPolicy p("default: difficulty = ceil(score) + 1");
  common::Rng r(2);
  EXPECT_EQ(p.difficulty(-5.0, r), 1u);   // score treated as 0 -> 0 + 1
  EXPECT_EQ(p.difficulty(99.0, r), 11u);  // treated as 10
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

TEST(DslErrors, MissingDefaultRule) {
  EXPECT_THROW(DslPolicy("when score < 5: difficulty = 2"), DslError);
}

TEST(DslErrors, RuleAfterDefault) {
  EXPECT_THROW(DslPolicy("default: difficulty = 2\n"
                         "when score < 5: difficulty = 3"),
               DslError);
}

TEST(DslErrors, UnknownFunction) {
  EXPECT_THROW(DslPolicy("default: difficulty = cube(score)"), DslError);
}

TEST(DslErrors, WrongArity) {
  EXPECT_THROW(DslPolicy("default: difficulty = ceil(1, 2)"), DslError);
  EXPECT_THROW(DslPolicy("default: difficulty = min(1)"), DslError);
}

TEST(DslErrors, MalformedCondition) {
  EXPECT_THROW(DslPolicy("when 5 < score: difficulty = 2\ndefault: difficulty = 3"),
               DslError);
  EXPECT_THROW(DslPolicy("when score ! 5: difficulty = 2\ndefault: difficulty = 3"),
               DslError);
}

TEST(DslErrors, IntervalBoundsOutOfOrder) {
  EXPECT_THROW(DslPolicy("when score in [7, 3): difficulty = 2\n"
                         "default: difficulty = 3"),
               DslError);
}

TEST(DslErrors, UnbalancedParens) {
  EXPECT_THROW(DslPolicy("default: difficulty = (score + 1"), DslError);
}

TEST(DslErrors, GarbageToken) {
  EXPECT_THROW(DslPolicy("default: difficulty = score @ 2"), DslError);
}

TEST(DslErrors, EmptyProgram) { EXPECT_THROW(DslPolicy(""), DslError); }

TEST(DslErrors, ReportsLineAndColumn) {
  try {
    DslPolicy(
        "when score < 5: difficulty = 2\n"
        "when score ? 5: difficulty = 3\n"
        "default: difficulty = 4");
    FAIL() << "expected DslError";
  } catch (const DslError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_GT(e.column(), 1u);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(DslErrors, MissingColonOrAssign) {
  EXPECT_THROW(DslPolicy("default difficulty = 4"), DslError);
  EXPECT_THROW(DslPolicy("default: difficulty 4"), DslError);
  EXPECT_THROW(DslPolicy("default: score = 4"), DslError);
}

TEST(DslPolicyAdapter, ExposesSourceAndName) {
  const DslPolicy p("default: difficulty = 3");
  EXPECT_EQ(p.name(), "dsl");
  EXPECT_EQ(p.source(), "default: difficulty = 3");
  EXPECT_NE(p.describe().find("1 rules"), std::string::npos);
}

}  // namespace
}  // namespace powai::policy
