// Tests for the worker pool the batch verifier fans out on: task
// execution, parallel_for coverage/balance, and exception propagation.

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace powai::common {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, PinnedWorkersStillCoverEveryIndex) {
  // Pinning is a performance knob — behavior must be identical. On
  // Linux the affinity call should take; elsewhere it degrades to an
  // unpinned (but fully functional) pool.
  ThreadPool pool(4, /*pin_workers=*/true);
#ifdef __linux__
  EXPECT_TRUE(pool.pinned());
#else
  EXPECT_FALSE(pool.pinned());
#endif
  constexpr std::size_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, UnpinnedByDefault) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.pinned());
}

TEST(ThreadPool, ParallelForEmptyRangeIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ParallelForWorksWithSingleWorker) {
  ThreadPool pool(1);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100u * 99u / 2u);
}

TEST(ThreadPool, ParallelForIsReusable) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(1000, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 1000);
  }
}

TEST(ThreadPool, ParallelForFromInsideAPoolTaskCompletes) {
  // Regression: the caller must be able to finish the range alone; a
  // single-worker pool whose worker itself calls parallel_for would
  // otherwise wait forever for helper tasks queued behind itself.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  std::atomic<bool> finished{false};
  pool.submit([&] {
    pool.parallel_for(500, [&](std::size_t) { count.fetch_add(1); });
    finished.store(true);
  });
  while (!finished.load()) std::this_thread::yield();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // A throw abandons the rest of its own chunk but no other chunk, so
  // nearly the whole range still ran.
  EXPECT_GE(completed.load(), 90);
  EXPECT_LE(completed.load(), 99);
}

}  // namespace
}  // namespace powai::common
