// Cross-checks for the SHA-256 hot-path API against the plain streaming
// interface, run with every compression backend this CPU supports
// forced in turn: midstate precompute/finish_with_suffix equivalence at
// random split points and lengths, and hash_many vs N scalar hashes
// (equal-length batches that fill AVX2 lanes, mixed-length batches that
// exercise the run grouping, and degenerate shapes). The KATs
// themselves live in test_sha256.cpp, likewise backend-parameterized.

#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace {

using namespace powai;
using crypto::Digest;
using crypto::Sha256;
using crypto::Sha256Backend;
using crypto::Sha256Midstate;

common::Bytes random_bytes(common::Rng& rng, std::size_t n) {
  common::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
  }
  return out;
}

class Sha256Dispatch : public ::testing::TestWithParam<Sha256Backend> {
 protected:
  void SetUp() override {
    previous_ = Sha256::backend();
    ASSERT_TRUE(Sha256::set_backend(GetParam()));
  }
  void TearDown() override { ASSERT_TRUE(Sha256::set_backend(previous_)); }

 private:
  Sha256Backend previous_ = Sha256Backend::kGeneric;
};

// ---------------------------------------------------------------------------
// Midstate API
// ---------------------------------------------------------------------------

TEST_P(Sha256Dispatch, MidstateMatchesOneShotAtEverySplit) {
  // One message, every (prefix, suffix) split: precompute(prefix) +
  // finish_with_suffix(tail, suffix) must equal hash(message). Length
  // 150 covers prefixes of zero, one, and two full blocks.
  common::Rng rng(7);
  const common::Bytes message = random_bytes(rng, 150);
  const Digest expected = Sha256::hash(message);
  for (std::size_t split = 0; split <= message.size(); ++split) {
    const common::BytesView prefix(message.data(), split);
    const Sha256Midstate midstate = Sha256::precompute(prefix);
    ASSERT_EQ(midstate.absorbed % Sha256::kBlockSize, 0u);
    ASSERT_LE(midstate.absorbed, split);
    const common::BytesView tail(
        message.data() + midstate.absorbed,
        split - static_cast<std::size_t>(midstate.absorbed));
    const common::BytesView suffix(message.data() + split,
                                   message.size() - split);
    EXPECT_EQ(Sha256::finish_with_suffix(midstate, tail, suffix), expected)
        << "split at " << split;
  }
}

TEST_P(Sha256Dispatch, MidstateMatchesStreamingOnRandomShapes) {
  // Random prefix/suffix lengths, including suffixes long enough to
  // force the general (incremental) remainder path.
  common::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const common::Bytes prefix = random_bytes(rng, rng.uniform_u64(0, 300));
    const common::Bytes suffix = random_bytes(rng, rng.uniform_u64(0, 260));
    const Sha256Midstate midstate = Sha256::precompute(prefix);
    const common::BytesView tail(
        prefix.data() + midstate.absorbed,
        prefix.size() - static_cast<std::size_t>(midstate.absorbed));
    Sha256 stream;
    stream.update(prefix);
    stream.update(suffix);
    EXPECT_EQ(Sha256::finish_with_suffix(midstate, tail, suffix),
              stream.finish())
        << "prefix " << prefix.size() << " suffix " << suffix.size();
  }
}

TEST_P(Sha256Dispatch, MidstateIsReusableAndThreadAgnostic) {
  // One precompute, many suffixes — the solver's exact usage. The
  // midstate must be read-only: digesting suffix B after suffix A gives
  // the same answer as digesting B first.
  const common::Bytes prefix = common::bytes_of(
      "POWAI1|0123456789abcdef0123456789abcdef|1700000000000|12|192.0.2.1|");
  const Sha256Midstate midstate = Sha256::precompute(prefix);
  const common::BytesView tail(
      prefix.data() + midstate.absorbed,
      prefix.size() - static_cast<std::size_t>(midstate.absorbed));
  std::vector<Digest> first;
  for (std::uint64_t nonce = 0; nonce < 32; ++nonce) {
    std::uint8_t nonce_be[8];
    common::store_u64be(nonce_be, nonce);
    first.push_back(Sha256::finish_with_suffix(
        midstate, tail, common::BytesView(nonce_be, 8)));
    common::Bytes message = prefix;
    common::append_u64be(message, nonce);
    EXPECT_EQ(first.back(), Sha256::hash(message));
  }
  for (std::uint64_t nonce = 0; nonce < 32; ++nonce) {
    std::uint8_t nonce_be[8];
    common::store_u64be(nonce_be, nonce);
    EXPECT_EQ(Sha256::finish_with_suffix(midstate, tail,
                                         common::BytesView(nonce_be, 8)),
              first[nonce]);
  }
}

// ---------------------------------------------------------------------------
// hash_many
// ---------------------------------------------------------------------------

TEST_P(Sha256Dispatch, HashManyEqualLengthsMatchesScalar) {
  // Equal lengths at several batch sizes: below the lane width, exactly
  // one lane sweep, a partial trailing group, and multiple sweeps.
  common::Rng rng(13);
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                        std::size_t{11}, std::size_t{64}}) {
    for (std::size_t len : {std::size_t{0}, std::size_t{55}, std::size_t{64},
                            std::size_t{108}, std::size_t{200}}) {
      std::vector<common::Bytes> messages;
      messages.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        messages.push_back(random_bytes(rng, len));
      }
      std::vector<common::BytesView> views(messages.begin(), messages.end());
      std::vector<Digest> out(n);
      Sha256::hash_many(views, out);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], Sha256::hash(views[i]))
            << "n=" << n << " len=" << len << " i=" << i;
      }
    }
  }
}

TEST_P(Sha256Dispatch, HashManyMixedLengthsMatchesScalar) {
  // Mixed lengths force the internal grouping-by-length; results must
  // land back at the caller's original indices.
  common::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = rng.uniform_u64(1, 40);
    std::vector<common::Bytes> messages;
    messages.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Skewed toward a few repeated lengths so equal-length runs form.
      const std::size_t len = 16 * rng.uniform_u64(0, 8);
      messages.push_back(random_bytes(rng, len));
    }
    std::vector<common::BytesView> views(messages.begin(), messages.end());
    std::vector<Digest> out(n);
    Sha256::hash_many(views, out);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], Sha256::hash(views[i])) << "trial " << trial;
    }
  }
}

TEST_P(Sha256Dispatch, HashManyEmptyBatchIsANoOp) {
  Sha256::hash_many({}, {});
}

TEST_P(Sha256Dispatch, HashManySizeMismatchThrows) {
  const common::Bytes message = common::bytes_of("x");
  const common::BytesView views[1] = {common::BytesView(message)};
  std::vector<Digest> out(2);
  EXPECT_THROW(Sha256::hash_many(views, out), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// finish_many_with_suffix
// ---------------------------------------------------------------------------

TEST_P(Sha256Dispatch, FinishManyMatchesScalarFinishOnSolverShapes) {
  // The solver's exact shape — short tail, 8-byte suffixes — at batch
  // sizes below, at, and straddling every lane width (8 and 16),
  // including partial trailing groups.
  common::Rng rng(29);
  const common::Bytes prefix = random_bytes(rng, 70);  // one block + tail
  const Sha256Midstate midstate = Sha256::precompute(prefix);
  const common::BytesView tail(
      prefix.data() + midstate.absorbed,
      prefix.size() - static_cast<std::size_t>(midstate.absorbed));
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                        std::size_t{8}, std::size_t{9}, std::size_t{15},
                        std::size_t{16}, std::size_t{17}, std::size_t{33}}) {
    std::vector<std::array<std::uint8_t, 8>> nonces(n);
    std::vector<common::BytesView> suffixes;
    suffixes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      common::store_u64be(nonces[i].data(), rng.uniform_u64(0, ~0ull));
      suffixes.emplace_back(nonces[i].data(), nonces[i].size());
    }
    std::vector<Digest> out(n);
    Sha256::finish_many_with_suffix(midstate, tail, suffixes, out);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], Sha256::finish_with_suffix(midstate, tail, suffixes[i]))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST_P(Sha256Dispatch, FinishManyMatchesScalarFinishOnRandomShapes) {
  // Random prefix/suffix lengths, including tails near block boundaries
  // (two pre-padded final blocks per lane) and suffixes long enough to
  // force the scalar fallback (tail + suffix + 9 > 128).
  common::Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    const common::Bytes prefix = random_bytes(rng, rng.uniform_u64(0, 200));
    const Sha256Midstate midstate = Sha256::precompute(prefix);
    const common::BytesView tail(
        prefix.data() + midstate.absorbed,
        prefix.size() - static_cast<std::size_t>(midstate.absorbed));
    const std::size_t slen = rng.uniform_u64(0, 140);
    const std::size_t n = rng.uniform_u64(1, 40);
    std::vector<common::Bytes> suffix_store;
    suffix_store.reserve(n);
    std::vector<common::BytesView> suffixes;
    suffixes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      suffix_store.push_back(random_bytes(rng, slen));
      suffixes.emplace_back(suffix_store.back());
    }
    std::vector<Digest> out(n);
    Sha256::finish_many_with_suffix(midstate, tail, suffixes, out);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], Sha256::finish_with_suffix(midstate, tail, suffixes[i]))
          << "trial " << trial << " slen=" << slen << " i=" << i;
    }
  }
}

TEST_P(Sha256Dispatch, FinishManyEmptyBatchIsANoOp) {
  const Sha256Midstate midstate = Sha256::precompute({});
  Sha256::finish_many_with_suffix(midstate, {}, {}, {});
}

TEST_P(Sha256Dispatch, FinishManyRejectsMalformedBatches) {
  const common::Bytes prefix = common::bytes_of("prefix|");
  const Sha256Midstate midstate = Sha256::precompute(prefix);
  const common::Bytes a = common::bytes_of("12345678");
  const common::Bytes b = common::bytes_of("1234");  // different length

  const common::BytesView mismatched[2] = {common::BytesView(a),
                                           common::BytesView(b)};
  std::vector<Digest> out2(2);
  EXPECT_THROW(
      Sha256::finish_many_with_suffix(midstate, prefix, mismatched, out2),
      std::invalid_argument);

  const common::BytesView equal[2] = {common::BytesView(a),
                                      common::BytesView(a)};
  std::vector<Digest> out3(3);
  EXPECT_THROW(Sha256::finish_many_with_suffix(midstate, prefix, equal, out3),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, Sha256Dispatch,
    ::testing::ValuesIn(Sha256::supported_backends()),
    [](const ::testing::TestParamInfo<Sha256Backend>& info) {
      return std::string(Sha256::backend_name(info.param));
    });

// ---------------------------------------------------------------------------
// lane_width
// ---------------------------------------------------------------------------

TEST(Sha256LaneWidth, MultiLaneBackendsReportTheirSweepWidth) {
  EXPECT_EQ(Sha256::lane_width(Sha256Backend::kGeneric), 1u);
  EXPECT_EQ(Sha256::lane_width(Sha256Backend::kShaNi), 1u);
  EXPECT_EQ(Sha256::lane_width(Sha256Backend::kArmv8), 1u);
  EXPECT_EQ(Sha256::lane_width(Sha256Backend::kAvx2), 8u);
  EXPECT_EQ(Sha256::lane_width(Sha256Backend::kAvx512), 16u);
}

// ---------------------------------------------------------------------------
// backend_from_name — the POWAI_SHA256_BACKEND resolution path
// ---------------------------------------------------------------------------

TEST(Sha256BackendFromName, AutoAndEmptyPickASupportedBackend) {
  const auto supported = Sha256::supported_backends();
  for (std::string_view name : {std::string_view{"auto"}, std::string_view{}}) {
    const Sha256Backend b = Sha256::backend_from_name(name);
    EXPECT_NE(std::find(supported.begin(), supported.end(), b),
              supported.end());
  }
}

TEST(Sha256BackendFromName, KnownNamesResolveOrThrowWhenUnsupported) {
  // Every stable name round-trips when this CPU supports the backend;
  // a known-but-unsupported name must fail loudly, not fall back.
  const auto supported = Sha256::supported_backends();
  for (Sha256Backend b :
       {Sha256Backend::kGeneric, Sha256Backend::kShaNi, Sha256Backend::kAvx2,
        Sha256Backend::kAvx512, Sha256Backend::kArmv8}) {
    const std::string_view name = Sha256::backend_name(b);
    const bool is_supported =
        std::find(supported.begin(), supported.end(), b) != supported.end();
    if (is_supported) {
      EXPECT_EQ(Sha256::backend_from_name(name), b) << name;
    } else {
      EXPECT_THROW((void)Sha256::backend_from_name(name), std::runtime_error)
          << name;
    }
  }
}

TEST(Sha256BackendFromName, UnknownNameThrowsNamingAcceptedValues) {
  for (std::string_view bogus : {"sse2", "AVX2", "fastest", "generic "}) {
    try {
      (void)Sha256::backend_from_name(bogus);
      FAIL() << "expected std::runtime_error for '" << bogus << "'";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("POWAI_SHA256_BACKEND"), std::string::npos) << what;
      EXPECT_NE(what.find("generic"), std::string::npos) << what;
      EXPECT_NE(what.find("armv8"), std::string::npos) << what;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-backend agreement (not parameterized: compares backends pairwise)
// ---------------------------------------------------------------------------

TEST(Sha256DispatchCross, AllBackendsAgreeOnRandomMessages) {
  const auto backends = Sha256::supported_backends();
  const Sha256Backend previous = Sha256::backend();
  common::Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const common::Bytes message = random_bytes(rng, rng.uniform_u64(0, 400));
    std::vector<Digest> digests;
    for (Sha256Backend b : backends) {
      ASSERT_TRUE(Sha256::set_backend(b));
      digests.push_back(Sha256::hash(message));
    }
    for (std::size_t i = 1; i < digests.size(); ++i) {
      EXPECT_EQ(digests[i], digests[0])
          << Sha256::backend_name(backends[i]) << " disagrees with "
          << Sha256::backend_name(backends[0]) << " on length "
          << message.size();
    }
  }
  ASSERT_TRUE(Sha256::set_backend(previous));
}

}  // namespace
