// Cross-checks for the SHA-256 hot-path API against the plain streaming
// interface, run with every compression backend this CPU supports
// forced in turn: midstate precompute/finish_with_suffix equivalence at
// random split points and lengths, and hash_many vs N scalar hashes
// (equal-length batches that fill AVX2 lanes, mixed-length batches that
// exercise the run grouping, and degenerate shapes). The KATs
// themselves live in test_sha256.cpp, likewise backend-parameterized.

#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace {

using namespace powai;
using crypto::Digest;
using crypto::Sha256;
using crypto::Sha256Backend;
using crypto::Sha256Midstate;

common::Bytes random_bytes(common::Rng& rng, std::size_t n) {
  common::Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
  }
  return out;
}

class Sha256Dispatch : public ::testing::TestWithParam<Sha256Backend> {
 protected:
  void SetUp() override {
    previous_ = Sha256::backend();
    ASSERT_TRUE(Sha256::set_backend(GetParam()));
  }
  void TearDown() override { ASSERT_TRUE(Sha256::set_backend(previous_)); }

 private:
  Sha256Backend previous_ = Sha256Backend::kGeneric;
};

// ---------------------------------------------------------------------------
// Midstate API
// ---------------------------------------------------------------------------

TEST_P(Sha256Dispatch, MidstateMatchesOneShotAtEverySplit) {
  // One message, every (prefix, suffix) split: precompute(prefix) +
  // finish_with_suffix(tail, suffix) must equal hash(message). Length
  // 150 covers prefixes of zero, one, and two full blocks.
  common::Rng rng(7);
  const common::Bytes message = random_bytes(rng, 150);
  const Digest expected = Sha256::hash(message);
  for (std::size_t split = 0; split <= message.size(); ++split) {
    const common::BytesView prefix(message.data(), split);
    const Sha256Midstate midstate = Sha256::precompute(prefix);
    ASSERT_EQ(midstate.absorbed % Sha256::kBlockSize, 0u);
    ASSERT_LE(midstate.absorbed, split);
    const common::BytesView tail(
        message.data() + midstate.absorbed,
        split - static_cast<std::size_t>(midstate.absorbed));
    const common::BytesView suffix(message.data() + split,
                                   message.size() - split);
    EXPECT_EQ(Sha256::finish_with_suffix(midstate, tail, suffix), expected)
        << "split at " << split;
  }
}

TEST_P(Sha256Dispatch, MidstateMatchesStreamingOnRandomShapes) {
  // Random prefix/suffix lengths, including suffixes long enough to
  // force the general (incremental) remainder path.
  common::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const common::Bytes prefix = random_bytes(rng, rng.uniform_u64(0, 300));
    const common::Bytes suffix = random_bytes(rng, rng.uniform_u64(0, 260));
    const Sha256Midstate midstate = Sha256::precompute(prefix);
    const common::BytesView tail(
        prefix.data() + midstate.absorbed,
        prefix.size() - static_cast<std::size_t>(midstate.absorbed));
    Sha256 stream;
    stream.update(prefix);
    stream.update(suffix);
    EXPECT_EQ(Sha256::finish_with_suffix(midstate, tail, suffix),
              stream.finish())
        << "prefix " << prefix.size() << " suffix " << suffix.size();
  }
}

TEST_P(Sha256Dispatch, MidstateIsReusableAndThreadAgnostic) {
  // One precompute, many suffixes — the solver's exact usage. The
  // midstate must be read-only: digesting suffix B after suffix A gives
  // the same answer as digesting B first.
  const common::Bytes prefix = common::bytes_of(
      "POWAI1|0123456789abcdef0123456789abcdef|1700000000000|12|192.0.2.1|");
  const Sha256Midstate midstate = Sha256::precompute(prefix);
  const common::BytesView tail(
      prefix.data() + midstate.absorbed,
      prefix.size() - static_cast<std::size_t>(midstate.absorbed));
  std::vector<Digest> first;
  for (std::uint64_t nonce = 0; nonce < 32; ++nonce) {
    std::uint8_t nonce_be[8];
    common::store_u64be(nonce_be, nonce);
    first.push_back(Sha256::finish_with_suffix(
        midstate, tail, common::BytesView(nonce_be, 8)));
    common::Bytes message = prefix;
    common::append_u64be(message, nonce);
    EXPECT_EQ(first.back(), Sha256::hash(message));
  }
  for (std::uint64_t nonce = 0; nonce < 32; ++nonce) {
    std::uint8_t nonce_be[8];
    common::store_u64be(nonce_be, nonce);
    EXPECT_EQ(Sha256::finish_with_suffix(midstate, tail,
                                         common::BytesView(nonce_be, 8)),
              first[nonce]);
  }
}

// ---------------------------------------------------------------------------
// hash_many
// ---------------------------------------------------------------------------

TEST_P(Sha256Dispatch, HashManyEqualLengthsMatchesScalar) {
  // Equal lengths at several batch sizes: below the lane width, exactly
  // one lane sweep, a partial trailing group, and multiple sweeps.
  common::Rng rng(13);
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                        std::size_t{11}, std::size_t{64}}) {
    for (std::size_t len : {std::size_t{0}, std::size_t{55}, std::size_t{64},
                            std::size_t{108}, std::size_t{200}}) {
      std::vector<common::Bytes> messages;
      messages.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        messages.push_back(random_bytes(rng, len));
      }
      std::vector<common::BytesView> views(messages.begin(), messages.end());
      std::vector<Digest> out(n);
      Sha256::hash_many(views, out);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], Sha256::hash(views[i]))
            << "n=" << n << " len=" << len << " i=" << i;
      }
    }
  }
}

TEST_P(Sha256Dispatch, HashManyMixedLengthsMatchesScalar) {
  // Mixed lengths force the internal grouping-by-length; results must
  // land back at the caller's original indices.
  common::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = rng.uniform_u64(1, 40);
    std::vector<common::Bytes> messages;
    messages.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Skewed toward a few repeated lengths so equal-length runs form.
      const std::size_t len = 16 * rng.uniform_u64(0, 8);
      messages.push_back(random_bytes(rng, len));
    }
    std::vector<common::BytesView> views(messages.begin(), messages.end());
    std::vector<Digest> out(n);
    Sha256::hash_many(views, out);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], Sha256::hash(views[i])) << "trial " << trial;
    }
  }
}

TEST_P(Sha256Dispatch, HashManyEmptyBatchIsANoOp) {
  Sha256::hash_many({}, {});
}

TEST_P(Sha256Dispatch, HashManySizeMismatchThrows) {
  const common::Bytes message = common::bytes_of("x");
  const common::BytesView views[1] = {common::BytesView(message)};
  std::vector<Digest> out(2);
  EXPECT_THROW(Sha256::hash_many(views, out), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, Sha256Dispatch,
    ::testing::ValuesIn(Sha256::supported_backends()),
    [](const ::testing::TestParamInfo<Sha256Backend>& info) {
      return std::string(Sha256::backend_name(info.param));
    });

// ---------------------------------------------------------------------------
// Cross-backend agreement (not parameterized: compares backends pairwise)
// ---------------------------------------------------------------------------

TEST(Sha256DispatchCross, AllBackendsAgreeOnRandomMessages) {
  const auto backends = Sha256::supported_backends();
  const Sha256Backend previous = Sha256::backend();
  common::Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const common::Bytes message = random_bytes(rng, rng.uniform_u64(0, 400));
    std::vector<Digest> digests;
    for (Sha256Backend b : backends) {
      ASSERT_TRUE(Sha256::set_backend(b));
      digests.push_back(Sha256::hash(message));
    }
    for (std::size_t i = 1; i < digests.size(); ++i) {
      EXPECT_EQ(digests[i], digests[0])
          << Sha256::backend_name(backends[i]) << " disagrees with "
          << Sha256::backend_name(backends[0]) << " on length "
          << message.size();
    }
  }
  ASSERT_TRUE(Sha256::set_backend(previous));
}

}  // namespace
