// Tests for common/strings parsing helpers.

#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace powai::common {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\tabc\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, PreservesInteriorWhitespace) { EXPECT_EQ(trim(" a b "), "a b"); }

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, TrailingSeparatorYieldsEmptyField) {
  const auto parts = split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(SplitWs, DropsAllWhitespaceRuns) {
  const auto parts = split_ws("  one \t two\nthree  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[1], "two");
  EXPECT_EQ(parts[2], "three");
}

TEST(SplitWs, EmptyInput) { EXPECT_TRUE(split_ws("   ").empty()); }

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("policy=linear", "policy"));
  EXPECT_FALSE(starts_with("pol", "policy"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(ToLower, AsciiOnly) { EXPECT_EQ(to_lower("AbC-12"), "abc-12"); }

TEST(ParseI64, AcceptsSignedIntegers) {
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("-7"), -7);
  EXPECT_EQ(parse_i64(" 13 "), 13);
  EXPECT_EQ(parse_i64("0"), 0);
}

TEST(ParseI64, RejectsGarbage) {
  EXPECT_FALSE(parse_i64("").has_value());
  EXPECT_FALSE(parse_i64("12x").has_value());
  EXPECT_FALSE(parse_i64("x12").has_value());
  EXPECT_FALSE(parse_i64("1 2").has_value());
  EXPECT_FALSE(parse_i64("999999999999999999999").has_value());  // overflow
}

TEST(ParseU64, RejectsNegative) {
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ULL);
}

TEST(ParseF64, AcceptsFloats) {
  EXPECT_DOUBLE_EQ(parse_f64("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(parse_f64("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(parse_f64("1e3").value(), 1000.0);
}

TEST(ParseF64, RejectsGarbage) {
  EXPECT_FALSE(parse_f64("").has_value());
  EXPECT_FALSE(parse_f64("1.5ms").has_value());
  EXPECT_FALSE(parse_f64("one").has_value());
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace powai::common
