// Tests for the deterministic PRNG: reproducibility, distribution sanity,
// and the statistical contracts the simulator depends on.

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace powai::common {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformU64CoversAllValuesInSmallRange) {
  Rng rng(43);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformU64DegenerateRange) {
  Rng rng(44);
  EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(Rng, UniformU64ThrowsOnInvertedBounds) {
  Rng rng(45);
  EXPECT_THROW((void)rng.uniform_u64(2, 1), std::invalid_argument);
}

TEST(Rng, UniformI64HandlesNegativeRanges) {
  Rng rng(46);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformI64FullRangeDoesNotCrash) {
  Rng rng(47);
  const std::int64_t v = rng.uniform_i64(INT64_MIN, INT64_MAX);
  (void)v;
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(48);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(49);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(50);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, NormalThrowsOnNegativeSigma) {
  Rng rng(51);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(52);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialThrowsOnBadRate) {
  Rng rng(53);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(54);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(55);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesDecorrelatedChild) {
  Rng parent(56);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(57);
  Rng b(57);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Splitmix64, KnownReferenceValues) {
  // Reference values from the public-domain splitmix64 test vector
  // (seed 1234567).
  std::uint64_t state = 1234567;
  EXPECT_EQ(splitmix64(state), 6457827717110365317ULL);
  EXPECT_EQ(splitmix64(state), 3203168211198807973ULL);
  EXPECT_EQ(splitmix64(state), 9817491932198370423ULL);
}

TEST(StreamRng, PureFunctionOfSeedAndStream) {
  Rng a = stream_rng(99, 1234);
  Rng b = stream_rng(99, 1234);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(StreamRng, DistinctStreamsAndSeedsDecorrelate) {
  // Adjacent stream ids (the common case: sequential puzzle ids) must
  // land on distinct first draws.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t stream = 0; stream < 256; ++stream) {
    firsts.insert(stream_rng(7, stream)());
  }
  EXPECT_EQ(firsts.size(), 256u);
  EXPECT_NE(stream_rng(7, 5)(), stream_rng(8, 5)());
  // Stream id 0 is not the plain seed (domain separation).
  EXPECT_NE(stream_rng(7, 0)(), Rng(7)());
}

TEST(Rng, ChiSquareUniformityOfLowBits) {
  // 256-bucket chi-square on the low byte; threshold is the 99.9th
  // percentile of chi2(255) ~ 340.
  Rng rng(58);
  std::vector<int> buckets(256, 0);
  const int n = 256 * 1000;
  for (int i = 0; i < n; ++i) ++buckets[rng() & 0xff];
  double chi2 = 0.0;
  const double expected = static_cast<double>(n) / 256.0;
  for (int count : buckets) {
    const double d = count - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 340.0);
}

}  // namespace
}  // namespace powai::common
