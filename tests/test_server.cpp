// Tests for the PowServer pipeline (Fig. 1 wiring) and PowClient round
// trips: the paper's end-to-end behaviour in-process.

#include "framework/server.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/clock.hpp"
#include "features/synthetic.hpp"
#include "framework/client.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"

namespace powai::framework {
namespace {

using namespace std::chrono_literals;

/// Fixture: a trained DAbR, a Policy-2 server, and feature samples.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(42);
    const features::SyntheticTraceGenerator gen;
    model_.fit(gen.generate(400, 400, rng));
    benign_features_ = gen.sample(false, rng);
    malicious_features_ = gen.sample(true, rng);
  }

  ServerConfig base_config() {
    ServerConfig cfg;
    cfg.master_secret = common::bytes_of("server-test-secret");
    return cfg;
  }

  common::ManualClock clock_;
  reputation::DabrModel model_;
  policy::LinearPolicy policy_ = policy::LinearPolicy::policy2();
  features::FeatureVector benign_features_;
  features::FeatureVector malicious_features_;
};

TEST_F(ServerTest, RequiresFittedModel) {
  reputation::DabrModel unfitted;
  EXPECT_THROW(PowServer(clock_, unfitted, policy_, base_config()),
               std::invalid_argument);
}

TEST_F(ServerTest, IssuesChallengeForValidRequest) {
  PowServer server(clock_, model_, policy_, base_config());
  PowClient client("10.0.0.1");
  const Request request = client.make_request("/", benign_features_);
  auto outcome = server.on_request(request);
  ASSERT_TRUE(std::holds_alternative<Challenge>(outcome));
  const auto& challenge = std::get<Challenge>(outcome);
  EXPECT_EQ(challenge.request_id, request.request_id);
  EXPECT_EQ(challenge.puzzle.client_binding, "10.0.0.1");
  EXPECT_GE(challenge.puzzle.difficulty, 5u);  // policy2 floor
  EXPECT_EQ(server.stats().challenges_issued, 1u);
}

TEST_F(ServerTest, MaliciousFeaturesGetHarderPuzzles) {
  ServerConfig cfg = base_config();
  cfg.reputation_cache_enabled = false;
  PowServer server(clock_, model_, policy_, cfg);
  PowClient benign("10.0.0.1");
  PowClient bot("203.0.0.1");

  auto c1 = server.on_request(benign.make_request("/", benign_features_));
  const unsigned d_benign = std::get<Challenge>(c1).puzzle.difficulty;
  auto c2 = server.on_request(bot.make_request("/", malicious_features_));
  const unsigned d_bot = std::get<Challenge>(c2).puzzle.difficulty;
  EXPECT_GT(d_bot, d_benign);
}

TEST_F(ServerTest, RejectsUnparsableIp) {
  PowServer server(clock_, model_, policy_, base_config());
  Request request;
  request.client_ip = "not-an-ip";
  request.features = benign_features_;
  auto outcome = server.on_request(request);
  ASSERT_TRUE(std::holds_alternative<Response>(outcome));
  EXPECT_EQ(std::get<Response>(outcome).status,
            common::ErrorCode::kInvalidArgument);
  EXPECT_EQ(server.stats().rejected_malformed, 1u);
}

TEST_F(ServerTest, PowDisabledServesImmediately) {
  ServerConfig cfg = base_config();
  cfg.pow_enabled = false;
  cfg.resource_body = "baseline";
  PowServer server(clock_, model_, policy_, cfg);
  PowClient client("10.0.0.1");
  auto outcome = server.on_request(client.make_request("/", benign_features_));
  ASSERT_TRUE(std::holds_alternative<Response>(outcome));
  const auto& response = std::get<Response>(outcome);
  EXPECT_EQ(response.status, common::ErrorCode::kOk);
  EXPECT_EQ(response.body, "baseline");
  EXPECT_EQ(server.stats().served_without_pow, 1u);
}

TEST_F(ServerTest, FullRoundTripServesResource) {
  PowServer server(clock_, model_, policy_, base_config());
  PowClient client("10.0.0.1");
  const RoundTrip trip = client.run(server, "/data", benign_features_);
  EXPECT_TRUE(trip.served);
  EXPECT_EQ(trip.response.status, common::ErrorCode::kOk);
  EXPECT_EQ(trip.response.body, "resource");
  EXPECT_GT(trip.attempts, 0u);
  EXPECT_GE(trip.difficulty, 5u);
  EXPECT_EQ(server.stats().served, 1u);
}

TEST_F(ServerTest, SubmissionFromWrongIpRejected) {
  PowServer server(clock_, model_, policy_, base_config());
  PowClient client("10.0.0.1");
  const Request request = client.make_request("/", benign_features_);
  auto outcome = server.on_request(request);
  const auto& challenge = std::get<Challenge>(outcome);
  const auto solved = client.solve(challenge);
  ASSERT_TRUE(solved.solved);
  const Response response =
      server.on_submission(solved.submission, "203.0.113.99");
  EXPECT_EQ(response.status, common::ErrorCode::kInvalidArgument);
  EXPECT_EQ(server.stats().rejected_binding, 1u);
}

TEST_F(ServerTest, ReplayedSubmissionRejected) {
  PowServer server(clock_, model_, policy_, base_config());
  PowClient client("10.0.0.1");
  const Request request = client.make_request("/", benign_features_);
  auto outcome = server.on_request(request);
  const auto solved = client.solve(std::get<Challenge>(outcome));
  ASSERT_TRUE(solved.solved);
  EXPECT_EQ(server.on_submission(solved.submission, "10.0.0.1").status,
            common::ErrorCode::kOk);
  EXPECT_EQ(server.on_submission(solved.submission, "10.0.0.1").status,
            common::ErrorCode::kReplay);
  EXPECT_EQ(server.stats().rejected_replay, 1u);
}

TEST_F(ServerTest, ExpiredSubmissionRejected) {
  ServerConfig cfg = base_config();
  cfg.verifier.ttl = 10s;
  PowServer server(clock_, model_, policy_, cfg);
  PowClient client("10.0.0.1");
  auto outcome = server.on_request(client.make_request("/", benign_features_));
  const auto solved = client.solve(std::get<Challenge>(outcome));
  ASSERT_TRUE(solved.solved);
  clock_.advance(11s);
  EXPECT_EQ(server.on_submission(solved.submission, "10.0.0.1").status,
            common::ErrorCode::kExpired);
  EXPECT_EQ(server.stats().rejected_expired, 1u);
}

TEST_F(ServerTest, ExpiryRacingBatchVerificationCountsExactly) {
  // Half the batch ages past the verifier TTL while the other half is
  // still fresh; the pooled batch verifier must reject exactly the aged
  // half as kExpired and serve the rest — no submission may slip
  // through because its expiry check raced the pooled verification.
  ServerConfig cfg = base_config();
  cfg.verifier.ttl = 10s;
  cfg.verify_threads = 2;
  PowServer server(clock_, model_, policy_, cfg);
  const ServerStats before = server.stats();

  std::vector<PowClient> clients;
  std::vector<Submission> submissions;
  std::vector<std::string> ips;
  const auto issue_and_solve = [&](int index) {
    const std::string ip = "10.0.3." + std::to_string(index + 1);
    clients.emplace_back(ip);
    auto outcome =
        server.on_request(clients.back().make_request("/", benign_features_));
    const auto solved = clients.back().solve(std::get<Challenge>(outcome));
    ASSERT_TRUE(solved.solved);
    submissions.push_back(solved.submission);
    ips.push_back(ip);
  };

  for (int i = 0; i < 3; ++i) issue_and_solve(i);  // issued at t=0
  clock_.advance(6s);
  for (int i = 3; i < 6; ++i) issue_and_solve(i);  // issued at t=6s
  clock_.advance(5s);  // t=11s: first three aged 11s > TTL, rest 5s

  const std::vector<Response> responses =
      server.on_submission_batch(submissions, ips);
  ASSERT_EQ(responses.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(responses[static_cast<std::size_t>(i)].status,
              common::ErrorCode::kExpired)
        << "submission " << i << " should have aged out";
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(responses[static_cast<std::size_t>(i)].status,
              common::ErrorCode::kOk)
        << "submission " << i << " is still fresh";
  }

  // Stats-delta exactness: every outcome lands in exactly one counter.
  const ServerStats delta = server.stats() - before;
  EXPECT_EQ(delta.rejected_expired, 3u);
  EXPECT_EQ(delta.served, 3u);
  EXPECT_EQ(delta.challenges_issued, 6u);
  EXPECT_EQ(delta.rejected_replay, 0u);
  EXPECT_EQ(delta.rejected_bad_solution, 0u);
}

TEST_F(ServerTest, WholeBatchExpiredRejectsEverySubmission) {
  // The all-expired edge: the verify pool gets a batch where no job
  // survives the TTL pre-check — it must still answer every submission
  // (kExpired each) rather than collapsing on an empty job set.
  ServerConfig cfg = base_config();
  cfg.verifier.ttl = 10s;
  cfg.verify_threads = 2;
  PowServer server(clock_, model_, policy_, cfg);
  const ServerStats before = server.stats();

  std::vector<PowClient> clients;
  std::vector<Submission> submissions;
  std::vector<std::string> ips;
  for (int i = 0; i < 4; ++i) {
    const std::string ip = "10.0.4." + std::to_string(i + 1);
    clients.emplace_back(ip);
    auto outcome =
        server.on_request(clients.back().make_request("/", benign_features_));
    const auto solved = clients.back().solve(std::get<Challenge>(outcome));
    ASSERT_TRUE(solved.solved);
    submissions.push_back(solved.submission);
    ips.push_back(ip);
  }
  clock_.advance(11s);

  const std::vector<Response> responses =
      server.on_submission_batch(submissions, ips);
  ASSERT_EQ(responses.size(), 4u);
  for (const Response& response : responses) {
    EXPECT_EQ(response.status, common::ErrorCode::kExpired);
  }
  const ServerStats delta = server.stats() - before;
  EXPECT_EQ(delta.rejected_expired, 4u);
  EXPECT_EQ(delta.served, 0u);
}

TEST_F(ServerTest, BadNonceRejected) {
  PowServer server(clock_, model_, policy_, base_config());
  PowClient client("10.0.0.1");
  auto outcome = server.on_request(client.make_request("/", benign_features_));
  auto solved = client.solve(std::get<Challenge>(outcome));
  ASSERT_TRUE(solved.solved);
  solved.submission.solution.nonce ^= 1;
  EXPECT_EQ(server.on_submission(solved.submission, "10.0.0.1").status,
            common::ErrorCode::kBadSolution);
  EXPECT_EQ(server.stats().rejected_bad_solution, 1u);
}

TEST_F(ServerTest, PerCallTraceMatchesIssuedChallenge) {
  ServerConfig cfg = base_config();
  cfg.reputation_cache_enabled = false;
  PowServer server(clock_, model_, policy_, cfg);
  PowClient client("10.0.0.1");
  ScoringTrace trace;
  auto outcome = server.on_request(client.make_request("/", benign_features_),
                                   &trace);
  ASSERT_TRUE(std::holds_alternative<Challenge>(outcome));
  EXPECT_EQ(trace.difficulty, std::get<Challenge>(outcome).puzzle.difficulty);
  EXPECT_FALSE(trace.from_cache);
  // The member trace mirrors the per-call one in single-threaded use.
  const ScoringTrace last = server.last_trace();
  EXPECT_DOUBLE_EQ(last.score, trace.score);
  EXPECT_EQ(last.difficulty, trace.difficulty);
}

TEST_F(ServerTest, RequestBatchMatchesPerIndexOutcomes) {
  ServerConfig cfg = base_config();
  cfg.verify_threads = 2;
  PowServer server(clock_, model_, policy_, cfg);

  std::vector<Request> requests;
  for (int i = 0; i < 8; ++i) {
    Request request;
    request.client_ip = "10.0.0." + std::to_string(i + 1);
    request.features = benign_features_;
    request.request_id = 100 + i;
    requests.push_back(std::move(request));
  }
  Request malformed;
  malformed.client_ip = "not-an-ip";
  malformed.features = benign_features_;
  malformed.request_id = 999;
  requests.push_back(std::move(malformed));

  const auto outcomes = server.on_request_batch(requests);
  ASSERT_EQ(outcomes.size(), requests.size());
  for (std::size_t i = 0; i + 1 < outcomes.size(); ++i) {
    ASSERT_TRUE(std::holds_alternative<Challenge>(outcomes[i]));
    EXPECT_EQ(std::get<Challenge>(outcomes[i]).request_id,
              requests[i].request_id);
  }
  ASSERT_TRUE(std::holds_alternative<Response>(outcomes.back()));
  EXPECT_EQ(std::get<Response>(outcomes.back()).status,
            common::ErrorCode::kInvalidArgument);
  EXPECT_EQ(server.stats().requests, 9u);
  EXPECT_EQ(server.stats().challenges_issued, 8u);
  EXPECT_EQ(server.stats().rejected_malformed, 1u);
}

TEST_F(ServerTest, ReputationCacheServesRepeatClients) {
  PowServer server(clock_, model_, policy_, base_config());
  PowClient client("10.0.0.1");
  (void)server.on_request(client.make_request("/", benign_features_));
  EXPECT_FALSE(server.last_trace().from_cache);
  (void)server.on_request(client.make_request("/", benign_features_));
  EXPECT_TRUE(server.last_trace().from_cache);
}

TEST_F(ServerTest, CacheDisabledScoresEveryTime) {
  ServerConfig cfg = base_config();
  cfg.reputation_cache_enabled = false;
  PowServer server(clock_, model_, policy_, cfg);
  PowClient client("10.0.0.1");
  (void)server.on_request(client.make_request("/", benign_features_));
  (void)server.on_request(client.make_request("/", benign_features_));
  EXPECT_FALSE(server.last_trace().from_cache);
}

TEST_F(ServerTest, RateLimiterBoundsChallengeIssuance) {
  ServerConfig cfg = base_config();
  cfg.rate_limiter_enabled = true;
  cfg.rate_limiter.tokens_per_second = 1.0;
  cfg.rate_limiter.burst = 3.0;
  PowServer server(clock_, model_, policy_, cfg);
  PowClient client("10.0.0.1");
  int challenges = 0;
  int limited = 0;
  for (int i = 0; i < 10; ++i) {
    auto outcome = server.on_request(client.make_request("/", benign_features_));
    if (std::holds_alternative<Challenge>(outcome)) {
      ++challenges;
    } else if (std::get<Response>(outcome).status ==
               common::ErrorCode::kRateLimited) {
      ++limited;
    }
  }
  EXPECT_EQ(challenges, 3);
  EXPECT_EQ(limited, 7);
  EXPECT_EQ(server.stats().rejected_rate_limited, 7u);
  // Tokens refill with time.
  clock_.advance(2s);
  auto outcome = server.on_request(client.make_request("/", benign_features_));
  EXPECT_TRUE(std::holds_alternative<Challenge>(outcome));
}

TEST_F(ServerTest, StatsMeanDifficultyTracksIssued) {
  PowServer server(clock_, model_, policy_, base_config());
  PowClient client("10.0.0.1");
  (void)server.on_request(client.make_request("/", benign_features_));
  const double mean = server.stats().mean_difficulty();
  EXPECT_GE(mean, 5.0);
  EXPECT_LE(mean, 15.0);
}

TEST_F(ServerTest, ClientAttemptBudgetProducesTimeout) {
  PowServer server(clock_, model_, policy_, base_config());
  ClientConfig cc;
  cc.max_attempts = 1;  // malicious features would need far more
  PowClient client("203.0.0.7", cc);
  const RoundTrip trip = client.run(server, "/", malicious_features_);
  // Either solved within 1 attempt (astronomically unlikely at d>=10) or
  // timed out.
  if (!trip.served) {
    EXPECT_EQ(trip.response.status, common::ErrorCode::kTimeout);
  }
}

TEST_F(ServerTest, EmptyMasterSecretRejected) {
  ServerConfig cfg;
  EXPECT_THROW(PowServer(clock_, model_, policy_, cfg), std::invalid_argument);
}

TEST(RateLimiterUnit, TokensAndRefill) {
  common::ManualClock clock;
  RateLimiterConfig cfg;
  cfg.tokens_per_second = 2.0;
  cfg.burst = 4.0;
  RateLimiter limiter(clock, cfg);
  const features::IpAddress ip(1, 2, 3, 4);
  EXPECT_DOUBLE_EQ(limiter.tokens(ip), 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(limiter.allow(ip));
  EXPECT_FALSE(limiter.allow(ip));
  clock.advance(500ms);  // +1 token
  EXPECT_TRUE(limiter.allow(ip));
  EXPECT_FALSE(limiter.allow(ip));
}

TEST(RateLimiterUnit, IndependentPerIp) {
  common::ManualClock clock;
  RateLimiterConfig cfg;
  cfg.tokens_per_second = 1.0;
  cfg.burst = 1.0;
  RateLimiter limiter(clock, cfg);
  EXPECT_TRUE(limiter.allow(features::IpAddress(1, 1, 1, 1)));
  EXPECT_TRUE(limiter.allow(features::IpAddress(2, 2, 2, 2)));
  EXPECT_FALSE(limiter.allow(features::IpAddress(1, 1, 1, 1)));
  EXPECT_EQ(limiter.tracked_ips(), 2u);
}

TEST(RateLimiterUnit, CapsTrackedIps) {
  common::ManualClock clock;
  RateLimiterConfig cfg;
  cfg.max_tracked_ips = 2;
  cfg.shards = 1;  // one shard = deterministic global eviction
  RateLimiter limiter(clock, cfg);
  (void)limiter.allow(features::IpAddress(0, 0, 0, 1));
  clock.advance(1ms);
  (void)limiter.allow(features::IpAddress(0, 0, 0, 2));
  clock.advance(1ms);
  (void)limiter.allow(features::IpAddress(0, 0, 0, 3));
  EXPECT_EQ(limiter.tracked_ips(), 2u);
}

TEST(RateLimiterUnit, EvictsStaleBucketWhenFull) {
  common::ManualClock clock;
  RateLimiterConfig cfg;
  cfg.max_tracked_ips = 2;
  cfg.shards = 1;
  cfg.burst = 4.0;
  RateLimiter limiter(clock, cfg);
  for (int i = 0; i < 3; ++i) {
    (void)limiter.allow(features::IpAddress(0, 0, 0, 1));  // stale after this
  }
  clock.advance(10ms);
  (void)limiter.allow(features::IpAddress(0, 0, 0, 2));
  clock.advance(10ms);
  (void)limiter.allow(features::IpAddress(0, 0, 0, 3));  // evicts .1
  // The evicted IP restarts with a full (minus one) bucket instead of
  // its spent balance.
  EXPECT_TRUE(limiter.allow(features::IpAddress(0, 0, 0, 1)));
  EXPECT_DOUBLE_EQ(limiter.tokens(features::IpAddress(0, 0, 0, 1)), 3.0);
}

TEST(RateLimiterUnit, TokensDiagnosticsAreReadOnly) {
  common::ManualClock clock;
  RateLimiterConfig cfg;
  cfg.burst = 4.0;
  cfg.max_tracked_ips = 2;
  cfg.shards = 1;
  RateLimiter limiter(clock, cfg);

  // Probing a never-seen IP reports the full burst without creating a
  // bucket.
  EXPECT_DOUBLE_EQ(limiter.tokens(features::IpAddress(9, 9, 9, 9)), 4.0);
  EXPECT_EQ(limiter.tracked_ips(), 0u);

  // Fill to the ceiling, then probe a third IP: no live bucket may be
  // evicted by a diagnostics read.
  EXPECT_TRUE(limiter.allow(features::IpAddress(0, 0, 0, 1)));
  clock.advance(1ms);
  EXPECT_TRUE(limiter.allow(features::IpAddress(0, 0, 0, 2)));
  EXPECT_DOUBLE_EQ(limiter.tokens(features::IpAddress(0, 0, 0, 3)), 4.0);
  EXPECT_EQ(limiter.tracked_ips(), 2u);
  // Both live buckets still carry their spent balance (plus the 1ms
  // refill on the first).
  EXPECT_LT(limiter.tokens(features::IpAddress(0, 0, 0, 1)), 4.0);
  EXPECT_LT(limiter.tokens(features::IpAddress(0, 0, 0, 2)), 4.0);
}

TEST(RateLimiterUnit, ShardCountClampedToTrackingBudget) {
  common::ManualClock clock;
  RateLimiterConfig cfg;
  // Tiny budgets collapse to one lock: starved shards would thrash-evict
  // colliding IPs back to full burst below the global ceiling.
  cfg.max_tracked_ips = 2;
  cfg.shards = 8;
  EXPECT_EQ(RateLimiter(clock, cfg).shard_count(), 1u);
  cfg = {};
  cfg.max_tracked_ips = 4096;  // feeds 4 shards at the 1024-bucket floor
  cfg.shards = 8;
  EXPECT_EQ(RateLimiter(clock, cfg).shard_count(), 4u);
  cfg = {};
  cfg.shards = 5;
  EXPECT_EQ(RateLimiter(clock, cfg).shard_count(), 8u);  // rounded up
}

TEST(RateLimiterUnit, RejectsBadConfig) {
  common::ManualClock clock;
  RateLimiterConfig bad;
  bad.tokens_per_second = 0.0;
  EXPECT_THROW(RateLimiter(clock, bad), std::invalid_argument);
  bad = {};
  bad.burst = 0.5;
  EXPECT_THROW(RateLimiter(clock, bad), std::invalid_argument);
  bad = {};
  bad.max_tracked_ips = 0;
  EXPECT_THROW(RateLimiter(clock, bad), std::invalid_argument);
}

TEST(RateLimiterUnit, RejectsUnrepresentableBurstInsteadOfTruncating) {
  common::ManualClock clock;
  RateLimiterConfig cfg;
  // Beyond the wide word's range the limiter must refuse, never clamp:
  // a silently truncated burst under-enforces the configured ceiling.
  cfg.burst = RateLimiter::kMaxWideBurst * 2.0;
  EXPECT_THROW(RateLimiter(clock, cfg), std::invalid_argument);
  cfg.burst = std::numeric_limits<double>::infinity();
  EXPECT_THROW(RateLimiter(clock, cfg), std::invalid_argument);
  cfg.burst = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(RateLimiter(clock, cfg), std::invalid_argument);
  // The boundary itself is representable and accepted.
  cfg.burst = RateLimiter::kMaxWideBurst;
  EXPECT_NO_THROW(RateLimiter(clock, cfg));
}

TEST(RateLimiterUnit, WideBurstBeyondPackedCapIsExact) {
  common::ManualClock clock;
  RateLimiterConfig cfg;
  cfg.tokens_per_second = 1000.0;
  cfg.burst = 70000.0;  // > kMaxBurst: selects the wide representation
  RateLimiter limiter(clock, cfg);
  EXPECT_TRUE(limiter.wide());
  const features::IpAddress ip(1, 2, 3, 4);
  EXPECT_DOUBLE_EQ(limiter.tokens(ip), 70000.0);
  for (int i = 0; i < 70000; ++i) ASSERT_TRUE(limiter.allow(ip));
  EXPECT_FALSE(limiter.allow(ip));
  EXPECT_LT(limiter.tokens(ip), 1.0);
  clock.advance(2ms);  // +2 tokens
  EXPECT_TRUE(limiter.allow(ip));
  EXPECT_TRUE(limiter.allow(ip));
  EXPECT_FALSE(limiter.allow(ip));
}

TEST(RateLimiterUnit, WideBucketsRefillAndCapAtBurst) {
  common::ManualClock clock;
  RateLimiterConfig cfg;
  cfg.tokens_per_second = 100000.0;
  cfg.burst = 1 << 20;
  RateLimiter limiter(clock, cfg);
  const features::IpAddress ip(5, 6, 7, 8);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(limiter.allow(ip));
  // Long idle refills back to exactly the burst, never beyond.
  clock.advance(std::chrono::hours(1));
  EXPECT_DOUBLE_EQ(limiter.tokens(ip), static_cast<double>(1 << 20));
}

TEST(RateLimiterUnit, WideFractionalCreditIsNeverRoundedAway) {
  common::ManualClock clock;
  RateLimiterConfig cfg;
  cfg.tokens_per_second = 1.0;
  cfg.burst = 100000.0;
  RateLimiter limiter(clock, cfg);
  const features::IpAddress ip(9, 9, 9, 9);
  for (int i = 0; i < 100000; ++i) ASSERT_TRUE(limiter.allow(ip));
  // Poll every 100ms: each denial earns 0.1 tokens of credit that must
  // accrue across denials (the deny-without-earned-quantum rule), so the
  // 10th poll wins a token.
  int granted = 0;
  for (int i = 0; i < 10; ++i) {
    clock.advance(100ms);
    if (limiter.allow(ip)) ++granted;
  }
  EXPECT_EQ(granted, 1);
}

}  // namespace
}  // namespace powai::framework
