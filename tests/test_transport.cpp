// Integration tests: the full seven-step protocol as encoded bytes over
// the simulated network — server endpoint, wire clients, link effects.

#include "framework/transport.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"

namespace powai::framework {
namespace {

using namespace std::chrono_literals;

constexpr const char* kServerHost = "198.51.100.250";

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : rng_(21),
        network_(loop_, net_rng_) {
    const features::SyntheticTraceGenerator gen;
    model_.fit(gen.generate(300, 300, rng_));
    benign_features_ = gen.sample(false, rng_);
    malicious_features_ = gen.sample(true, rng_);

    ServerConfig cfg;
    cfg.master_secret = common::bytes_of("transport-secret");
    server_ = std::make_unique<PowServer>(loop_.clock(), model_, policy_, cfg);
    endpoint_ = std::make_unique<ServerEndpoint>(network_, kServerHost, *server_);
  }

  common::Rng rng_;
  common::Rng net_rng_{5};
  netsim::EventLoop loop_;
  netsim::Network network_;
  reputation::DabrModel model_;
  policy::LinearPolicy policy_ = policy::LinearPolicy::policy1();
  std::unique_ptr<PowServer> server_;
  std::unique_ptr<ServerEndpoint> endpoint_;
  features::FeatureVector benign_features_;
  features::FeatureVector malicious_features_;
};

TEST_F(TransportTest, FullExchangeOverTheWire) {
  WireClient client(loop_, network_, "10.0.0.1", kServerHost);
  std::optional<Response> got;
  common::Duration latency{};
  const std::uint64_t id =
      client.send_request("/index", benign_features_, [&](const Response& r,
                                                          common::Duration d) {
        got = r;
        latency = d;
      });
  EXPECT_GT(id, 0u);
  loop_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, common::ErrorCode::kOk);
  EXPECT_EQ(got->body, "resource");
  EXPECT_EQ(got->request_id, id);
  // Four legs of ~14.5-15.5 ms default link + solve time.
  EXPECT_GT(latency, 4 * 14ms);
  EXPECT_EQ(server_->stats().served, 1u);
  EXPECT_EQ(client.challenges_solved(), 1u);
}

TEST_F(TransportTest, LatencyIncludesModelledSolveTime) {
  // Malicious features → higher difficulty → more attempts × 38 µs.
  WireClient good(loop_, network_, "10.0.0.1", kServerHost);
  WireClient bad(loop_, network_, "203.0.0.1", kServerHost);
  common::Duration good_latency{};
  common::Duration bad_latency{};
  int done = 0;
  good.send_request("/", benign_features_,
                    [&](const Response&, common::Duration d) {
                      good_latency = d;
                      ++done;
                    });
  bad.send_request("/", malicious_features_,
                   [&](const Response&, common::Duration d) {
                     bad_latency = d;
                     ++done;
                   });
  loop_.run();
  ASSERT_EQ(done, 2);
  EXPECT_GT(bad_latency, good_latency);
}

TEST_F(TransportTest, ServerTrustsTransportSourceOverClaimedIp) {
  // The wire client self-reports its registered IP, but the endpoint
  // overrides with the transport-level source; a puzzle is therefore
  // bound to the true source and the exchange still succeeds end-to-end.
  WireClient client(loop_, network_, "10.0.0.9", kServerHost);
  std::optional<Response> got;
  client.send_request("/", benign_features_,
                      [&](const Response& r, common::Duration) { got = r; });
  loop_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, common::ErrorCode::kOk);
}

TEST_F(TransportTest, MalformedBytesGetNak) {
  // Raw garbage to the server from a registered host.
  std::optional<Response> got;
  network_.add_host("10.0.0.2", [&](const std::string&, common::BytesView p) {
    const auto msg = decode(p);
    ASSERT_TRUE(msg.has_value());
    got = std::get<Response>(*msg);
  });
  network_.send("10.0.0.2", kServerHost, common::bytes_of("garbage"));
  loop_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, common::ErrorCode::kMalformedMessage);
  EXPECT_EQ(endpoint_->malformed_count(), 1u);
}

TEST_F(TransportTest, UnexpectedMessageTypeCountsAsMalformed) {
  network_.add_host("10.0.0.3", [](const std::string&, common::BytesView) {});
  Response stray;  // a server should never receive a Response
  network_.send("10.0.0.3", kServerHost, stray.serialize());
  loop_.run();
  EXPECT_EQ(endpoint_->malformed_count(), 1u);
}

TEST_F(TransportTest, ManyClientsConcurrently) {
  const features::SyntheticTraceGenerator gen;
  std::vector<std::unique_ptr<WireClient>> clients;
  int served = 0;
  for (int i = 0; i < 12; ++i) {
    const std::string ip = "10.0.1." + std::to_string(i + 1);
    clients.push_back(
        std::make_unique<WireClient>(loop_, network_, ip, kServerHost));
  }
  for (auto& c : clients) {
    c->send_request("/", gen.sample(false, rng_),
                    [&](const Response& r, common::Duration) {
                      if (r.status == common::ErrorCode::kOk) ++served;
                    });
  }
  loop_.run();
  EXPECT_EQ(served, 12);
  EXPECT_EQ(server_->stats().served, 12u);
}

TEST_F(TransportTest, SequentialRequestsReuseClient) {
  WireClient client(loop_, network_, "10.0.0.4", kServerHost);
  int served = 0;
  for (int i = 0; i < 3; ++i) {
    client.send_request("/", benign_features_,
                        [&](const Response& r, common::Duration) {
                          if (r.status == common::ErrorCode::kOk) ++served;
                        });
    loop_.run();
  }
  EXPECT_EQ(served, 3);
  EXPECT_EQ(client.challenges_solved(), 3u);
}

TEST_F(TransportTest, DroppedRequestReturnsZeroId) {
  netsim::LinkModel black_hole;
  black_hole.loss_rate = 1.0;
  WireClient client(loop_, network_, "10.0.0.5", kServerHost);
  network_.set_link("10.0.0.5", kServerHost, black_hole);
  bool fired = false;
  const std::uint64_t id = client.send_request(
      "/", benign_features_,
      [&](const Response&, common::Duration) { fired = true; });
  EXPECT_EQ(id, 0u);
  loop_.run();
  EXPECT_FALSE(fired);
}

TEST_F(TransportTest, RetryPolicyClosesTheDroppedSendLivenessHole) {
  // Regression for the legacy hole DroppedRequestReturnsZeroId pins:
  // without a policy a dropped send returns 0 and the callback never
  // fires. With one installed the same black-hole link must yield a
  // real id and exactly one synthetic kTimeout after max_attempts.
  netsim::LinkModel black_hole;
  black_hole.loss_rate = 1.0;
  WireClient client(loop_, network_, "10.0.2.1", kServerHost);
  network_.set_link("10.0.2.1", kServerHost, black_hole);

  RetryPolicy policy;
  policy.enabled = true;
  policy.timeout = 200ms;
  policy.max_attempts = 3;
  policy.backoff_base = 50ms;
  policy.jitter_frac = 0.0;
  client.set_retry_policy(policy);

  int fired = 0;
  std::optional<Response> got;
  const std::uint64_t id = client.send_request(
      "/", benign_features_, [&](const Response& r, common::Duration) {
        got = r;
        ++fired;
      });
  EXPECT_GT(id, 0u);
  loop_.run();
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, common::ErrorCode::kTimeout);
  EXPECT_EQ(got->request_id, id);
}

TEST_F(TransportTest, RetriesResolveEveryRequestOverALossyLink) {
  // Heavy random loss in both directions: every send_request must still
  // resolve exactly once, and all attempts of one request must draw a
  // challenge with the same stable puzzle id — the keyed derivation
  // that lets the replay cache catch a re-submission, so a retried
  // request can never be double-served.
  netsim::LinkModel lossy;
  lossy.loss_rate = 0.25;
  WireClient client(loop_, network_, "10.0.2.2", kServerHost);
  network_.set_link("10.0.2.2", kServerHost, lossy);
  network_.set_link(kServerHost, "10.0.2.2", lossy);

  RetryPolicy policy;
  policy.enabled = true;
  policy.timeout = 500ms;
  policy.max_attempts = 6;
  policy.backoff_base = 20ms;
  policy.jitter_seed = 3;
  client.set_retry_policy(policy);

  std::map<std::uint64_t, std::uint64_t> first_challenge;
  client.set_challenge_observer([&](const Challenge& c) {
    const auto [it, fresh] =
        first_challenge.emplace(c.request_id, c.puzzle.puzzle_id);
    if (!fresh) {
      EXPECT_EQ(it->second, c.puzzle.puzzle_id)
          << "retry drew a different puzzle identity";
    }
  });

  constexpr int kRequests = 8;
  int resolved = 0;
  int ok = 0;
  for (int i = 0; i < kRequests; ++i) {
    const std::uint64_t id = client.send_request(
        "/", benign_features_, [&](const Response& r, common::Duration) {
          ++resolved;
          if (r.status == common::ErrorCode::kOk) ++ok;
          // kReplay is the double-serve guard doing its job: the first
          // attempt was served but its response got dropped, and the
          // retried submission is refused instead of served again.
          EXPECT_TRUE(r.status == common::ErrorCode::kOk ||
                      r.status == common::ErrorCode::kTimeout ||
                      r.status == common::ErrorCode::kReplay)
              << static_cast<int>(r.status);
        });
    EXPECT_GT(id, 0u);
  }
  loop_.run();
  EXPECT_EQ(resolved, kRequests);  // liveness: nothing hangs, ever
  // With 25% per-leg loss and 6 attempts the odds of all eight timing
  // out are negligible; a zero here means retries are not resending.
  EXPECT_GT(ok, 0);
  EXPECT_LE(server_->stats().served, static_cast<std::uint64_t>(kRequests));
}

TEST_F(TransportTest, PooledClientsRetryOverALossyLinkToo) {
  // Same liveness contract through the O(1)-per-client pool: the
  // response handler fires exactly once per send even when the default
  // link for the whole group is lossy.
  netsim::LinkModel lossy;
  lossy.loss_rate = 0.2;
  network_.set_default_link(lossy);

  WireClientPool pool(loop_, network_, "10.1.0.0", 4, kServerHost);
  RetryPolicy policy;
  policy.enabled = true;
  policy.timeout = 500ms;
  policy.max_attempts = 6;
  policy.backoff_base = 20ms;
  policy.jitter_seed = 5;
  pool.set_retry_policy(policy, [this](std::size_t) {
    return std::make_pair(std::string("/"), benign_features_);
  });

  std::vector<int> resolved(pool.size(), 0);
  pool.set_response_handler(
      [&](std::size_t client, const Response& r, common::Duration) {
        ++resolved[client];
        EXPECT_TRUE(r.status == common::ErrorCode::kOk ||
                    r.status == common::ErrorCode::kTimeout ||
                    r.status == common::ErrorCode::kReplay);
      });
  for (std::size_t c = 0; c < pool.size(); ++c) {
    EXPECT_GT(pool.send_request(c, "/", benign_features_), 0u);
  }
  loop_.run();
  for (std::size_t c = 0; c < pool.size(); ++c) {
    EXPECT_EQ(resolved[c], 1) << "client " << c;
  }
}

TEST_F(TransportTest, PowDisabledServerAnswersDirectly) {
  ServerConfig cfg;
  cfg.master_secret = common::bytes_of("transport-secret-2");
  cfg.pow_enabled = false;
  PowServer baseline(loop_.clock(), model_, policy_, cfg);
  ServerEndpoint baseline_endpoint(network_, "198.51.100.251", baseline);

  WireClient client(loop_, network_, "10.0.0.6", "198.51.100.251");
  std::optional<Response> got;
  client.send_request("/", benign_features_,
                      [&](const Response& r, common::Duration) { got = r; });
  loop_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, common::ErrorCode::kOk);
  EXPECT_EQ(client.challenges_solved(), 0u);  // no puzzle was involved
}

}  // namespace
}  // namespace powai::framework
