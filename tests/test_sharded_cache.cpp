// Tests for the mutex-striped reputation cache: the per-key TTL + EWMA
// semantics must match the unsharded ReputationCache, and concurrent
// access must neither lose updates for distinct IPs nor corrupt state
// for a contended one.

#include "reputation/sharded_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/clock.hpp"

namespace powai::reputation {
namespace {

using namespace std::chrono_literals;
using features::IpAddress;

IpAddress ip(std::uint32_t v) { return IpAddress(v); }

TEST(ShardedReputationCache, LookupMissesWhenEmpty) {
  common::ManualClock clock;
  ShardedReputationCache cache(clock);
  EXPECT_FALSE(cache.lookup(ip(1)).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedReputationCache, StoresAndSmoothsLikeUnshardedCache) {
  common::ManualClock clock;
  CacheConfig cfg;
  cfg.alpha = 0.5;
  ShardedReputationCache sharded(clock, cfg, 8);
  ReputationCache flat(clock, cfg);

  // Same operation sequence → same per-key answers, shards or not.
  for (std::uint32_t v = 1; v <= 64; ++v) {
    EXPECT_DOUBLE_EQ(sharded.update(ip(v), 0.25 * v), flat.update(ip(v), 0.25 * v));
  }
  for (std::uint32_t v = 1; v <= 64; ++v) {
    EXPECT_DOUBLE_EQ(sharded.update(ip(v), 0.5), flat.update(ip(v), 0.5));
    ASSERT_TRUE(sharded.lookup(ip(v)).has_value());
    EXPECT_DOUBLE_EQ(*sharded.lookup(ip(v)), *flat.lookup(ip(v)));
  }
  EXPECT_EQ(sharded.size(), flat.size());
}

TEST(ShardedReputationCache, TtlExpiryAndPurge) {
  common::ManualClock clock;
  CacheConfig cfg;
  cfg.ttl = 10s;
  ShardedReputationCache cache(clock, cfg, 4);
  (void)cache.update(ip(1), 0.9);
  (void)cache.update(ip(2), 0.1);
  clock.advance(11s);
  EXPECT_FALSE(cache.lookup(ip(1)).has_value());
  EXPECT_EQ(cache.purge_expired(), 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedReputationCache, EraseRemovesEntry) {
  common::ManualClock clock;
  ShardedReputationCache cache(clock);
  (void)cache.update(ip(42), 0.7);
  cache.erase(ip(42));
  EXPECT_FALSE(cache.lookup(ip(42)).has_value());
  cache.erase(ip(42));  // no-op
}

TEST(ShardedReputationCache, GlobalEntryBudgetIsEnforcedPerShard) {
  common::ManualClock clock;
  CacheConfig cfg;
  cfg.max_entries = 64;
  ShardedReputationCache cache(clock, cfg, 8);
  for (std::uint32_t v = 0; v < 10'000; ++v) {
    (void)cache.update(ip(v), 0.5);
  }
  // The budget is distributed exactly across shards (64 = 8 per shard
  // here), so the resident total can never exceed the configured budget.
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.size(), 0u);
}

TEST(ShardedReputationCache, BudgetDistributedExactlyWhenNotDivisible) {
  common::ManualClock clock;
  CacheConfig cfg;
  cfg.max_entries = 67;  // 8*8 + 3: rounding up per shard would admit 72
  ShardedReputationCache cache(clock, cfg, 8);
  for (std::uint32_t v = 0; v < 50'000; ++v) {
    (void)cache.update(ip(v), 0.5);
  }
  EXPECT_LE(cache.size(), 67u);
}

TEST(ShardedReputationCache, RejectsBadConfig) {
  common::ManualClock clock;
  CacheConfig bad;
  bad.max_entries = 0;
  EXPECT_THROW(ShardedReputationCache(clock, bad), std::invalid_argument);
  bad = {};
  bad.alpha = 0.0;
  EXPECT_THROW(ShardedReputationCache(clock, bad), std::invalid_argument);
}

TEST(ShardedReputationCache, ConcurrentUpdatesToDistinctIpsAllLand) {
  common::ManualClock clock;
  ShardedReputationCache cache(clock, {}, 16);
  constexpr int kThreads = 8;
  constexpr std::uint32_t kPerThread = 2'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        const IpAddress addr(static_cast<std::uint32_t>(t) * 1'000'000 + i);
        (void)cache.update(addr, 0.5);
        ASSERT_TRUE(cache.lookup(addr).has_value());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(ShardedReputationCache, ConcurrentUpdatesToOneIpStayConsistent) {
  common::ManualClock clock;
  CacheConfig cfg;
  cfg.alpha = 0.3;
  ShardedReputationCache cache(clock, cfg, 16);
  constexpr int kThreads = 8;
  constexpr int kRounds = 2'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        const double stored = cache.update(ip(99), 0.5);
        // EWMA of observations all equal to 0.5 starting from 0.5 is
        // always 0.5 — any torn read/write would break this.
        ASSERT_DOUBLE_EQ(stored, 0.5);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(*cache.lookup(ip(99)), 0.5);
}

}  // namespace
}  // namespace powai::reputation
