// Tests for the puzzle generator: uniqueness, unpredictability surface,
// authentication, timestamping.

#include "pow/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/clock.hpp"

namespace powai::pow {
namespace {

using namespace std::chrono_literals;

TEST(Generator, RejectsEmptySecret) {
  common::ManualClock clock;
  EXPECT_THROW(PuzzleGenerator(clock, {}), std::invalid_argument);
  EXPECT_THROW(PuzzleGenerator::derive_mac_key({}), std::invalid_argument);
}

TEST(Generator, IssuesUniqueIdsAndSeeds) {
  common::ManualClock clock;
  PuzzleGenerator gen(clock, common::bytes_of("secret"));
  std::set<std::uint64_t> ids;
  std::set<std::string> seeds;
  for (int i = 0; i < 200; ++i) {
    const Puzzle p = gen.issue("1.2.3.4", 3);
    ids.insert(p.puzzle_id);
    seeds.insert(common::to_hex(p.seed));
  }
  EXPECT_EQ(ids.size(), 200u);
  EXPECT_EQ(seeds.size(), 200u);
  EXPECT_EQ(gen.issued_count(), 200u);
}

TEST(Generator, SeedsAre32Bytes) {
  common::ManualClock clock;
  PuzzleGenerator gen(clock, common::bytes_of("secret"));
  EXPECT_EQ(gen.issue("1.2.3.4", 1).seed.size(), 32u);
}

TEST(Generator, StampsCurrentTime) {
  common::ManualClock clock(common::TimePoint{} + 12345ms);
  PuzzleGenerator gen(clock, common::bytes_of("secret"));
  EXPECT_EQ(gen.issue("1.2.3.4", 1).issued_at_ms, 12345);
  clock.advance(1s);
  EXPECT_EQ(gen.issue("1.2.3.4", 1).issued_at_ms, 13345);
}

TEST(Generator, BindsRequestedClientAndDifficulty) {
  common::ManualClock clock;
  PuzzleGenerator gen(clock, common::bytes_of("secret"));
  const Puzzle p = gen.issue("10.0.0.7", 9);
  EXPECT_EQ(p.client_binding, "10.0.0.7");
  EXPECT_EQ(p.difficulty, 9u);
}

TEST(Generator, AuthTagVerifiesUnderDerivedKey) {
  common::ManualClock clock;
  const common::Bytes secret = common::bytes_of("secret");
  PuzzleGenerator gen(clock, secret);
  const Puzzle p = gen.issue("1.2.3.4", 5);
  const common::Bytes mac_key = PuzzleGenerator::derive_mac_key(secret);
  EXPECT_EQ(PuzzleGenerator::compute_auth(mac_key, p), p.auth);
}

TEST(Generator, AuthTagChangesWithAnyField) {
  common::ManualClock clock;
  const common::Bytes secret = common::bytes_of("secret");
  PuzzleGenerator gen(clock, secret);
  const common::Bytes mac_key = PuzzleGenerator::derive_mac_key(secret);
  const Puzzle p = gen.issue("1.2.3.4", 5);

  Puzzle tampered = p;
  tampered.difficulty = 1;  // client trying to lower its work
  EXPECT_NE(PuzzleGenerator::compute_auth(mac_key, tampered), p.auth);

  tampered = p;
  tampered.client_binding = "6.6.6.6";
  EXPECT_NE(PuzzleGenerator::compute_auth(mac_key, tampered), p.auth);

  tampered = p;
  tampered.issued_at_ms += 60'000;  // extending its own ttl
  EXPECT_NE(PuzzleGenerator::compute_auth(mac_key, tampered), p.auth);

  tampered = p;
  tampered.puzzle_id += 1;  // evading the replay cache
  EXPECT_NE(PuzzleGenerator::compute_auth(mac_key, tampered), p.auth);
}

TEST(Generator, DistinctSecretsProduceDistinctTags) {
  common::ManualClock clock;
  PuzzleGenerator gen_a(clock, common::bytes_of("secret-a"));
  PuzzleGenerator gen_b(clock, common::bytes_of("secret-b"));
  const Puzzle a = gen_a.issue("1.2.3.4", 5);
  // Forge: take a's fields, tag must not verify under b's key.
  const common::Bytes key_b =
      PuzzleGenerator::derive_mac_key(common::bytes_of("secret-b"));
  EXPECT_NE(PuzzleGenerator::compute_auth(key_b, a), a.auth);
  (void)gen_b;
}

TEST(Generator, SeedStreamsDifferAcrossSecrets) {
  common::ManualClock clock;
  PuzzleGenerator gen_a(clock, common::bytes_of("secret-a"));
  PuzzleGenerator gen_b(clock, common::bytes_of("secret-b"));
  EXPECT_NE(gen_a.issue("1.2.3.4", 1).seed, gen_b.issue("1.2.3.4", 1).seed);
}

TEST(Generator, KeyedIssuanceIsOrderIndependent) {
  // The tentpole property: issue_for is a pure function of identity —
  // interleaving other issues (keyed or counter) between two calls for
  // the same (ip, request_key) changes nothing, and two generator
  // instances over the same secret agree.
  common::ManualClock clock;
  const common::Bytes secret = common::bytes_of("keyed-secret");
  PuzzleGenerator gen(clock, secret);

  const Puzzle first = gen.issue_for("10.0.0.1", 7, 5);
  for (int i = 0; i < 10; ++i) (void)gen.issue("9.9.9.9", 3);
  (void)gen.issue_for("10.0.0.2", 7, 5);   // same key, other ip
  (void)gen.issue_for("10.0.0.1", 8, 5);   // same ip, other key
  const Puzzle again = gen.issue_for("10.0.0.1", 7, 5);
  EXPECT_EQ(again.puzzle_id, first.puzzle_id);
  EXPECT_EQ(again.seed, first.seed);
  EXPECT_EQ(again, first);  // frozen clock: every field matches

  PuzzleGenerator fresh(clock, secret);
  EXPECT_EQ(fresh.issue_for("10.0.0.1", 7, 5), first);
}

TEST(Generator, KeyedIdsDistinctAcrossIpAndKey) {
  common::ManualClock clock;
  PuzzleGenerator gen(clock, common::bytes_of("keyed-secret"));
  std::set<std::uint64_t> ids;
  for (std::uint64_t key = 0; key < 16; ++key) {
    for (int c = 0; c < 16; ++c) {
      ids.insert(gen.derive_puzzle_id("10.0.0." + std::to_string(c), key));
    }
  }
  EXPECT_EQ(ids.size(), 256u);
}

TEST(Generator, DerivePuzzleIdMatchesIssueFor) {
  common::ManualClock clock;
  PuzzleGenerator gen(clock, common::bytes_of("keyed-secret"));
  const std::uint64_t id = gen.derive_puzzle_id("192.0.2.77", 31337);
  EXPECT_EQ(gen.issue_for("192.0.2.77", 31337, 4).puzzle_id, id);
}

TEST(Generator, CounterAndKeyedIdentityDomainsDoNotAlias) {
  // issue()'s counter starts at 1; a client using request keys 1, 2, …
  // from the same ip must still get different puzzles than the counter
  // path hands out (separate derivation domains).
  common::ManualClock clock;
  PuzzleGenerator gen(clock, common::bytes_of("keyed-secret"));
  const Puzzle counter_issued = gen.issue("1.2.3.4", 5);  // counter key 1
  const Puzzle keyed = gen.issue_for("1.2.3.4", 1, 5);
  EXPECT_NE(counter_issued.puzzle_id, keyed.puzzle_id);
  EXPECT_NE(counter_issued.seed, keyed.seed);
}

TEST(Generator, KeyedIssuanceVerifiesAndCounts) {
  common::ManualClock clock;
  const common::Bytes secret = common::bytes_of("keyed-secret");
  PuzzleGenerator gen(clock, secret);
  const Puzzle p = gen.issue_for("10.1.2.3", 99, 6);
  EXPECT_EQ(p.client_binding, "10.1.2.3");
  EXPECT_EQ(p.difficulty, 6u);
  EXPECT_EQ(p.seed.size(), 32u);
  const common::Bytes mac_key = PuzzleGenerator::derive_mac_key(secret);
  EXPECT_EQ(PuzzleGenerator::compute_auth(mac_key, p), p.auth);
  EXPECT_EQ(gen.issued_count(), 1u);
}

}  // namespace
}  // namespace powai::pow
