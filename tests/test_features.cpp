// Tests for feature vectors, datasets, and normalizers.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "features/dataset.hpp"
#include "features/feature_vector.hpp"
#include "features/normalizer.hpp"

namespace powai::features {
namespace {

FeatureVector vec(double fill) {
  FeatureVector v;
  for (std::size_t i = 0; i < kFeatureCount; ++i) v[i] = fill;
  return v;
}

TEST(FeatureVector, DefaultsToZero) {
  const FeatureVector v;
  for (std::size_t i = 0; i < kFeatureCount; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(FeatureVector, GetSetByEnum) {
  FeatureVector v;
  v.set(Feature::kSynRatio, 0.25);
  EXPECT_DOUBLE_EQ(v.get(Feature::kSynRatio), 0.25);
  EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(Feature::kSynRatio)], 0.25);
}

TEST(FeatureVector, DistanceIsEuclidean) {
  FeatureVector a;
  FeatureVector b;
  a[0] = 3.0;
  b[1] = 4.0;
  EXPECT_DOUBLE_EQ(a.distance(b), 5.0);
  EXPECT_DOUBLE_EQ(a.distance_sq(b), 25.0);
}

TEST(FeatureVector, DistanceToSelfIsZero) {
  const FeatureVector v = vec(7.5);
  EXPECT_DOUBLE_EQ(v.distance(v), 0.0);
}

TEST(FeatureVector, DistanceIsSymmetric) {
  FeatureVector a = vec(1.0);
  FeatureVector b = vec(2.0);
  a[3] = -4.0;
  EXPECT_DOUBLE_EQ(a.distance(b), b.distance(a));
}

TEST(FeatureNames, AllDistinct) {
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    for (std::size_t j = i + 1; j < kFeatureCount; ++j) {
      EXPECT_NE(feature_name(static_cast<Feature>(i)),
                feature_name(static_cast<Feature>(j)));
    }
    EXPECT_NE(feature_name(static_cast<Feature>(i)), "unknown");
  }
}

Dataset tiny_dataset() {
  Dataset d;
  LabeledExample benign;
  benign.ip = IpAddress(10, 0, 0, 1);
  benign.features = vec(1.0);
  benign.malicious = false;
  LabeledExample bad;
  bad.ip = IpAddress(203, 0, 0, 1);
  bad.features = vec(9.0);
  bad.malicious = true;
  d.add(benign);
  d.add(bad);
  return d;
}

TEST(Dataset, ClassCounts) {
  const Dataset d = tiny_dataset();
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.malicious_count(), 1u);
  EXPECT_EQ(d.benign_count(), 1u);
}

TEST(Dataset, CsvRoundTrip) {
  const Dataset d = tiny_dataset();
  const Dataset restored = Dataset::from_csv(d.to_csv());
  ASSERT_EQ(restored.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(restored[i].ip, d[i].ip);
    EXPECT_EQ(restored[i].malicious, d[i].malicious);
    EXPECT_EQ(restored[i].features, d[i].features);
  }
}

TEST(Dataset, FromCsvRejectsBadRows) {
  EXPECT_THROW(Dataset::from_csv("1.2.3.4,1,2\n"), std::invalid_argument);
  EXPECT_THROW(
      Dataset::from_csv("notanip,0,0,0,0,0,0,0,0,0,0,1\n"),
      std::invalid_argument);
  EXPECT_THROW(
      Dataset::from_csv("1.2.3.4,0,0,0,x,0,0,0,0,0,0,1\n"),
      std::invalid_argument);
  EXPECT_THROW(
      Dataset::from_csv("1.2.3.4,0,0,0,0,0,0,0,0,0,0,2\n"),
      std::invalid_argument);
}

TEST(Dataset, FromCsvSkipsHeaderAndBlankLines) {
  const std::string csv =
      "ip,request_rate,mean_payload_bytes,conn_duration_ms,syn_ratio,"
      "error_ratio,unique_ports,geo_risk,blocklist_hits,path_entropy,"
      "ttl_variance,malicious\n"
      "\n"
      "1.2.3.4,1,2,3,0.1,0.2,5,0.3,0,2.5,1.0,1\n";
  const Dataset d = Dataset::from_csv(csv);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(d[0].malicious);
  EXPECT_DOUBLE_EQ(d[0].features.get(Feature::kRequestRate), 1.0);
}

TEST(Dataset, SplitPreservesRowsAndOrder) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    LabeledExample e;
    e.ip = IpAddress(10, 0, 0, static_cast<std::uint8_t>(i));
    e.features = vec(static_cast<double>(i));
    d.add(e);
  }
  const auto [train, test] = d.split(0.7);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
  EXPECT_EQ(train[0].ip, d[0].ip);
  EXPECT_EQ(test[0].ip, d[7].ip);
}

TEST(Dataset, SplitRejectsDegenerateFractions) {
  const Dataset d = tiny_dataset();
  EXPECT_THROW((void)d.split(0.0), std::invalid_argument);
  EXPECT_THROW((void)d.split(1.0), std::invalid_argument);
}

TEST(Dataset, ShuffleKeepsMultiset) {
  Dataset d;
  for (int i = 0; i < 50; ++i) {
    LabeledExample e;
    e.ip = IpAddress(10, 0, 0, static_cast<std::uint8_t>(i));
    e.malicious = (i % 3 == 0);
    d.add(e);
  }
  const std::size_t malicious_before = d.malicious_count();
  common::Rng rng(5);
  d.shuffle(rng);
  EXPECT_EQ(d.size(), 50u);
  EXPECT_EQ(d.malicious_count(), malicious_before);
}

TEST(Dataset, MeanAndClassMean) {
  const Dataset d = tiny_dataset();
  EXPECT_DOUBLE_EQ(d.mean()[0], 5.0);
  EXPECT_DOUBLE_EQ(d.class_mean(true)[0], 9.0);
  EXPECT_DOUBLE_EQ(d.class_mean(false)[0], 1.0);
}

TEST(MinMaxNormalizer, MapsOntoUnitInterval) {
  Dataset d;
  for (double x : {0.0, 5.0, 10.0}) {
    LabeledExample e;
    e.features = vec(x);
    e.malicious = x > 5.0;
    d.add(e);
  }
  MinMaxNormalizer norm;
  norm.fit(d);
  EXPECT_DOUBLE_EQ(norm.transform(vec(0.0))[0], 0.0);
  EXPECT_DOUBLE_EQ(norm.transform(vec(5.0))[0], 0.5);
  EXPECT_DOUBLE_EQ(norm.transform(vec(10.0))[0], 1.0);
}

TEST(MinMaxNormalizer, ClampsOutOfRangeQueries) {
  Dataset d = tiny_dataset();
  MinMaxNormalizer norm;
  norm.fit(d);
  EXPECT_DOUBLE_EQ(norm.transform(vec(-100.0))[0], 0.0);
  EXPECT_DOUBLE_EQ(norm.transform(vec(100.0))[0], 1.0);
}

TEST(MinMaxNormalizer, ConstantFeatureMapsToHalf) {
  Dataset d;
  for (int i = 0; i < 3; ++i) {
    LabeledExample e;
    e.features = vec(4.2);
    d.add(e);
  }
  MinMaxNormalizer norm;
  norm.fit(d);
  EXPECT_DOUBLE_EQ(norm.transform(vec(4.2))[0], 0.5);
}

TEST(MinMaxNormalizer, ThrowsBeforeFitAndOnEmptyFit) {
  MinMaxNormalizer norm;
  EXPECT_THROW((void)norm.transform(vec(1.0)), std::logic_error);
  EXPECT_THROW(norm.fit(Dataset{}), std::invalid_argument);
}

TEST(ZScoreNormalizer, StandardizesMoments) {
  common::Rng rng(3);
  Dataset d;
  for (int i = 0; i < 1000; ++i) {
    LabeledExample e;
    for (std::size_t f = 0; f < kFeatureCount; ++f) {
      e.features[f] = rng.normal(50.0, 10.0);
    }
    d.add(e);
  }
  ZScoreNormalizer norm;
  const Dataset normalized = norm.fit_transform(d);
  // Transformed data should have ~zero mean and ~unit spread.
  const FeatureVector m = normalized.mean();
  for (std::size_t f = 0; f < kFeatureCount; ++f) {
    EXPECT_NEAR(m[f], 0.0, 1e-9);
  }
  EXPECT_NEAR(norm.mean(0), 50.0, 1.5);
  EXPECT_NEAR(norm.stddev(0), 10.0, 1.0);
}

TEST(ZScoreNormalizer, ConstantFeatureMapsToZero) {
  Dataset d;
  for (int i = 0; i < 3; ++i) {
    LabeledExample e;
    e.features = vec(7.0);
    d.add(e);
  }
  ZScoreNormalizer norm;
  norm.fit(d);
  EXPECT_DOUBLE_EQ(norm.transform(vec(7.0))[0], 0.0);
  EXPECT_DOUBLE_EQ(norm.transform(vec(100.0))[0], 0.0);
}

}  // namespace
}  // namespace powai::features
