// Tests for the client retry policy's pure half: the capped exponential
// backoff schedule and its deterministic per-(client, request, attempt)
// jitter. The stateful half — timers, resends, exactly-once callback
// delivery over a lossy link — lives in test_transport.cpp.

#include "framework/retry.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace powai::framework {
namespace {

using std::chrono::milliseconds;

RetryPolicy unjittered() {
  RetryPolicy policy;
  policy.enabled = true;
  policy.backoff_base = milliseconds(100);
  policy.backoff_cap = std::chrono::seconds(1);
  policy.jitter_frac = 0.0;
  return policy;
}

TEST(RetryBackoff, AttemptZeroWaitsNothing) {
  EXPECT_EQ(retry_backoff(unjittered(), 1, 2, 0), common::Duration::zero());
}

TEST(RetryBackoff, DoublesPerAttemptAndSaturatesAtTheCap) {
  const RetryPolicy policy = unjittered();
  EXPECT_EQ(retry_backoff(policy, 1, 2, 1), milliseconds(100));
  EXPECT_EQ(retry_backoff(policy, 1, 2, 2), milliseconds(200));
  EXPECT_EQ(retry_backoff(policy, 1, 2, 3), milliseconds(400));
  EXPECT_EQ(retry_backoff(policy, 1, 2, 4), milliseconds(800));
  EXPECT_EQ(retry_backoff(policy, 1, 2, 5), milliseconds(1000));  // capped
  // Far beyond the bounded shift: still the cap, no overflow wraparound.
  EXPECT_EQ(retry_backoff(policy, 1, 2, 200), milliseconds(1000));
}

TEST(RetryBackoff, JitterStaysInsideTheConfiguredBand) {
  RetryPolicy policy = unjittered();
  policy.jitter_frac = 0.2;
  policy.jitter_seed = 7;
  for (std::uint64_t client = 0; client < 8; ++client) {
    for (std::uint64_t request = 1; request <= 8; ++request) {
      const auto wait = retry_backoff(policy, client, request, 2);
      EXPECT_GE(wait, milliseconds(160)) << client << "/" << request;
      EXPECT_LE(wait, milliseconds(240)) << client << "/" << request;
    }
  }
}

TEST(RetryBackoff, JitterIsAPureFunctionOfTheTuple) {
  RetryPolicy policy = unjittered();
  policy.jitter_frac = 0.2;
  policy.jitter_seed = 42;

  const auto wait = retry_backoff(policy, 11, 22, 3);
  EXPECT_EQ(retry_backoff(policy, 11, 22, 3), wait);  // replays exactly

  // Changing any tuple component (or the seed) redraws the jitter; with
  // a continuous factor a collision across all three would mean the
  // stream derivation is ignoring its inputs.
  const bool varies = retry_backoff(policy, 12, 22, 3) != wait ||
                      retry_backoff(policy, 11, 23, 3) != wait;
  RetryPolicy reseeded = policy;
  reseeded.jitter_seed = 43;
  EXPECT_TRUE(varies || retry_backoff(reseeded, 11, 22, 3) != wait);
}

TEST(RetryClientKey, MatchesFnv1aAndSeparatesClients) {
  // FNV-1a 64 reference value: the derivation is part of the replay
  // contract (a recorded schedule must replay on any platform).
  EXPECT_EQ(retry_client_key("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(retry_client_key(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(retry_client_key("10.0.0.1"), retry_client_key("10.0.0.2"));
}

}  // namespace
}  // namespace powai::framework
