// Tests for the reputation model family: DAbR, kNN, logistic regression,
// naive Bayes. Each model is exercised through the common interface plus
// its own specifics; a parameterized suite pins the shared contract.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "reputation/dabr.hpp"
#include "reputation/evaluator.hpp"
#include "reputation/knn.hpp"
#include "reputation/logistic.hpp"
#include "reputation/naive_bayes.hpp"

namespace powai::reputation {
namespace {

using features::Dataset;
using features::FeatureVector;
using features::SyntheticConfig;
using features::SyntheticTraceGenerator;

Dataset make_data(std::size_t benign, std::size_t malicious,
                  double overlap = 0.58, std::uint64_t seed = 1) {
  SyntheticConfig cfg;
  cfg.class_overlap = overlap;
  const SyntheticTraceGenerator gen(cfg);
  common::Rng rng(seed);
  return gen.generate(benign, malicious, rng);
}

// ---------------------------------------------------------------------------
// Shared contract, parameterized over model factories.
// ---------------------------------------------------------------------------

using ModelFactory = std::function<std::unique_ptr<IReputationModel>()>;

class ModelContractTest : public ::testing::TestWithParam<
                              std::pair<const char*, ModelFactory>> {};

TEST_P(ModelContractTest, ScoreThrowsBeforeFit) {
  const auto model = GetParam().second();
  EXPECT_FALSE(model->fitted());
  EXPECT_THROW((void)model->score(FeatureVector{}), std::logic_error);
}

TEST_P(ModelContractTest, FitRequiresBothClasses) {
  const auto model = GetParam().second();
  SyntheticTraceGenerator gen;
  common::Rng rng(2);
  Dataset only_benign = gen.generate(20, 0, rng);
  EXPECT_THROW(model->fit(only_benign), std::invalid_argument);
  Dataset only_malicious = gen.generate(0, 20, rng);
  EXPECT_THROW(model->fit(only_malicious), std::invalid_argument);
}

TEST_P(ModelContractTest, ScoresStayInRange) {
  const auto model = GetParam().second();
  model->fit(make_data(200, 200));
  SyntheticTraceGenerator gen;
  common::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double s = model->score(gen.sample(i % 2 == 0, rng));
    EXPECT_GE(s, kMinScore);
    EXPECT_LE(s, kMaxScore);
  }
}

TEST_P(ModelContractTest, SeparatesWellSeparatedClasses) {
  // With zero overlap any sane model should be near-perfect.
  const auto model = GetParam().second();
  model->fit(make_data(300, 300, /*overlap=*/0.0));
  const Dataset test = make_data(200, 200, /*overlap=*/0.0, /*seed=*/99);
  const EvaluationReport report = evaluate(*model, test);
  EXPECT_GT(report.accuracy, 0.95) << GetParam().first << ": "
                                   << report.to_string();
  EXPECT_GT(report.roc_auc, 0.98);
}

TEST_P(ModelContractTest, MaliciousScoreHigherOnAverage) {
  const auto model = GetParam().second();
  model->fit(make_data(300, 300));
  SyntheticTraceGenerator gen;
  common::Rng rng(7);
  double benign_sum = 0.0;
  double malicious_sum = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    benign_sum += model->score(gen.sample(false, rng));
    malicious_sum += model->score(gen.sample(true, rng));
  }
  EXPECT_GT(malicious_sum / n, benign_sum / n + 1.0) << GetParam().first;
}

TEST_P(ModelContractTest, EpsilonIsPositiveAndModest) {
  const auto model = GetParam().second();
  model->fit(make_data(300, 300));
  EXPECT_GT(model->error_epsilon(), 0.0);
  // ε is a score-spread: it cannot exceed half the scale in practice.
  EXPECT_LT(model->error_epsilon(), 5.0);
  EXPECT_TRUE(model->fitted());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelContractTest,
    ::testing::Values(
        std::pair<const char*, ModelFactory>{
            "dabr", [] { return std::make_unique<DabrModel>(); }},
        std::pair<const char*, ModelFactory>{
            "knn", [] { return std::make_unique<KnnModel>(); }},
        std::pair<const char*, ModelFactory>{
            "logistic", [] { return std::make_unique<LogisticModel>(); }},
        std::pair<const char*, ModelFactory>{
            "naive_bayes", [] { return std::make_unique<NaiveBayesModel>(); }}),
    [](const auto& info) { return std::string(info.param.first); });

// ---------------------------------------------------------------------------
// DAbR specifics.
// ---------------------------------------------------------------------------

TEST(Dabr, AccuracyNearPublishedEightyPercentAtDefaultOverlap) {
  // The calibration target of the data substitution (DESIGN.md §2): DAbR
  // reports 80% accuracy; our synthetic overlap default should land the
  // from-scratch DAbR in that neighbourhood.
  DabrModel model;
  model.fit(make_data(1500, 1500));
  const Dataset test = make_data(500, 500, 0.58, /*seed=*/1234);
  const EvaluationReport report = evaluate(model, test);
  EXPECT_GT(report.accuracy, 0.70) << report.to_string();
  EXPECT_LT(report.accuracy, 0.92) << report.to_string();
}

TEST(Dabr, ScoreDecreasesWithCentroidDistance) {
  DabrModel model;
  model.fit(make_data(300, 300));
  SyntheticTraceGenerator gen;
  common::Rng rng(5);
  // Malicious samples sit closer to the malicious centroid.
  const FeatureVector near = gen.sample(true, rng);
  const FeatureVector far = gen.sample(false, rng);
  if (model.centroid_distance(near) < model.centroid_distance(far)) {
    EXPECT_GE(model.score(near), model.score(far));
  }
}

TEST(Dabr, NameIsStable) {
  DabrModel model;
  EXPECT_EQ(model.name(), "dabr");
}

// ---------------------------------------------------------------------------
// kNN specifics.
// ---------------------------------------------------------------------------

TEST(Knn, RejectsZeroK) { EXPECT_THROW(KnnModel{0}, std::invalid_argument); }

TEST(Knn, ExactTrainingPointGetsItsClassScore) {
  // k=1 on a clean dataset: querying a training point returns its label's
  // extreme score.
  KnnModel model(1);
  const Dataset train = make_data(50, 50, /*overlap=*/0.0);
  model.fit(train);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto& row = train[i];
    const double s = model.score(row.features);
    if (row.malicious) {
      EXPECT_GT(s, 9.0);
    } else {
      EXPECT_LT(s, 1.0);
    }
  }
}

TEST(Knn, LargerKSmoothsScores) {
  const Dataset train = make_data(200, 200);
  KnnModel k1(1);
  KnnModel k51(51);
  k1.fit(train);
  k51.fit(train);
  // With k = 1 scores are all-or-nothing; with k = 51 intermediate values
  // appear. Check the variance ordering over a probe set.
  SyntheticTraceGenerator gen;
  common::Rng rng(6);
  double var1 = 0.0;
  double var51 = 0.0;
  const int n = 200;
  double mean1 = 0.0;
  double mean51 = 0.0;
  std::vector<double> s1;
  std::vector<double> s51;
  for (int i = 0; i < n; ++i) {
    const FeatureVector x = gen.sample(i % 2 == 0, rng);
    s1.push_back(k1.score(x));
    s51.push_back(k51.score(x));
  }
  for (double v : s1) mean1 += v / n;
  for (double v : s51) mean51 += v / n;
  for (double v : s1) var1 += (v - mean1) * (v - mean1) / n;
  for (double v : s51) var51 += (v - mean51) * (v - mean51) / n;
  EXPECT_GT(var1, var51);
}

// ---------------------------------------------------------------------------
// Logistic specifics.
// ---------------------------------------------------------------------------

TEST(Logistic, RejectsBadHyperparameters) {
  LogisticConfig bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW(LogisticModel{bad}, std::invalid_argument);
  bad = {};
  bad.epochs = 0;
  EXPECT_THROW(LogisticModel{bad}, std::invalid_argument);
  bad = {};
  bad.batch_size = 0;
  EXPECT_THROW(LogisticModel{bad}, std::invalid_argument);
  bad = {};
  bad.l2 = -1.0;
  EXPECT_THROW(LogisticModel{bad}, std::invalid_argument);
}

TEST(Logistic, TrainingReducesLogLoss) {
  const Dataset train = make_data(400, 400);
  LogisticConfig quick;
  quick.epochs = 1;
  LogisticConfig full;
  full.epochs = 200;
  LogisticModel m_quick(quick);
  LogisticModel m_full(full);
  m_quick.fit(train);
  m_full.fit(train);
  EXPECT_LT(m_full.log_loss(train), m_quick.log_loss(train));
}

TEST(Logistic, DeterministicGivenSeed) {
  const Dataset train = make_data(200, 200);
  LogisticModel a;
  LogisticModel b;
  a.fit(train);
  b.fit(train);
  SyntheticTraceGenerator gen;
  common::Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const FeatureVector x = gen.sample(i % 2 == 0, rng);
    EXPECT_DOUBLE_EQ(a.score(x), b.score(x));
  }
}

TEST(Logistic, ProbaMatchesScoreScale) {
  LogisticModel model;
  model.fit(make_data(200, 200));
  SyntheticTraceGenerator gen;
  common::Rng rng(9);
  const FeatureVector x = gen.sample(true, rng);
  EXPECT_NEAR(model.score(x), 10.0 * model.predict_proba(x), 1e-9);
}

// ---------------------------------------------------------------------------
// Naive Bayes specifics.
// ---------------------------------------------------------------------------

TEST(NaiveBayes, PosteriorIsProbability) {
  NaiveBayesModel model;
  model.fit(make_data(300, 300));
  SyntheticTraceGenerator gen;
  common::Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    const double p = model.posterior(gen.sample(i % 2 == 0, rng));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(NaiveBayes, PriorsReflectClassImbalance) {
  // With a 9:1 benign-heavy prior and an ambiguous feature vector the
  // posterior should lean benign more than under a 1:1 prior.
  NaiveBayesModel balanced;
  balanced.fit(make_data(300, 300, /*overlap=*/0.8, /*seed=*/21));
  NaiveBayesModel skewed;
  skewed.fit(make_data(540, 60, /*overlap=*/0.8, /*seed=*/21));
  // Probe with benign-profile samples; the skewed model should emit lower
  // malicious posteriors on average.
  SyntheticConfig cfg;
  cfg.class_overlap = 0.8;
  SyntheticTraceGenerator gen(cfg);
  common::Rng rng(22);
  double balanced_sum = 0.0;
  double skewed_sum = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    const FeatureVector x = gen.sample(false, rng);
    balanced_sum += balanced.posterior(x);
    skewed_sum += skewed.posterior(x);
  }
  EXPECT_LT(skewed_sum / n, balanced_sum / n);
}

// ---------------------------------------------------------------------------
// Model-comparison sanity (the bench reproduces this as a table).
// ---------------------------------------------------------------------------

TEST(ModelComparison, AllModelsBeatCoinFlipAtDefaultOverlap) {
  const Dataset train = make_data(600, 600);
  const Dataset test = make_data(300, 300, 0.58, /*seed=*/77);
  for (const auto& factory :
       {ModelFactory{[] { return std::make_unique<DabrModel>(); }},
        ModelFactory{[] { return std::make_unique<KnnModel>(); }},
        ModelFactory{[] { return std::make_unique<LogisticModel>(); }},
        ModelFactory{[] { return std::make_unique<NaiveBayesModel>(); }}}) {
    const auto model = factory();
    model->fit(train);
    const EvaluationReport report = evaluate(*model, test);
    EXPECT_GT(report.accuracy, 0.6)
        << model->name() << ": " << report.to_string();
    EXPECT_GT(report.roc_auc, 0.65)
        << model->name() << ": " << report.to_string();
  }
}

}  // namespace
}  // namespace powai::reputation
