// Integration tests for the asynchronous transport front end: the
// queue-draining batch bridge between the simulated wire and the
// PowServer batch entry points. Pins the three contracts the
// architecture promises (docs/ARCHITECTURE.md):
//   1. determinism — an async run produces exactly the totals of the
//      synchronous in-process shim;
//   2. backpressure — a full queue yields explicit kUnavailable answers,
//      counted in ServerStats, never silent drops;
//   3. conservation — across bursts and drains every message is
//      answered exactly once (exactly-once submission accounting).
// Runs under TSan via the `concurrency` label.

#include "framework/async_front_end.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "framework/transport.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/load_harness.hpp"

namespace powai::framework {
namespace {

using namespace std::chrono_literals;

constexpr const char* kServerHost = "198.51.100.250";

class AsyncFrontEndTest : public ::testing::Test {
 protected:
  AsyncFrontEndTest() : rng_(21), network_(loop_, net_rng_) {
    // Deterministic wire: every same-instant burst stays one instant.
    netsim::LinkModel link;
    link.base_latency = 15ms;
    link.jitter = common::Duration::zero();
    network_.set_default_link(link);

    const features::SyntheticTraceGenerator gen;
    model_.fit(gen.generate(300, 300, rng_));
    benign_features_ = gen.sample(false, rng_);

    ServerConfig cfg;
    cfg.master_secret = common::bytes_of("async-front-end-secret");
    server_ = std::make_unique<PowServer>(loop_.clock(), model_, policy_, cfg);
  }

  /// Builds the async path (front end + endpoint) with the given knobs.
  void build_front_end(AsyncFrontEndConfig cfg) {
    front_end_ = std::make_unique<AsyncFrontEnd>(loop_, network_, kServerHost,
                                                 *server_, cfg);
    endpoint_ = std::make_unique<ServerEndpoint>(network_, kServerHost,
                                                 *server_, *front_end_);
  }

  common::Rng rng_;
  common::Rng net_rng_{5};
  netsim::EventLoop loop_;
  netsim::Network network_;
  reputation::DabrModel model_;
  policy::LinearPolicy policy_ = policy::LinearPolicy::policy1();
  std::unique_ptr<PowServer> server_;
  std::unique_ptr<AsyncFrontEnd> front_end_;
  std::unique_ptr<ServerEndpoint> endpoint_;
  features::FeatureVector benign_features_;
};

TEST_F(AsyncFrontEndTest, FullExchangeThroughAsyncPath) {
  build_front_end({});
  WireClient client(loop_, network_, "10.0.0.1", kServerHost);
  std::optional<Response> got;
  const std::uint64_t id = client.send_request(
      "/index", benign_features_,
      [&](const Response& r, common::Duration) { got = r; });
  EXPECT_GT(id, 0u);
  front_end_->run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, common::ErrorCode::kOk);
  EXPECT_EQ(got->request_id, id);
  EXPECT_EQ(got->body, "resource");
  EXPECT_EQ(server_->stats().served, 1u);
  EXPECT_TRUE(front_end_->idle());
  const FrontEndStats fs = front_end_->stats();
  EXPECT_EQ(fs.requests, 1u);
  EXPECT_EQ(fs.submissions, 1u);
  EXPECT_EQ(fs.messages, 2u);
}

TEST_F(AsyncFrontEndTest, SameInstantBurstBecomesOneBatch) {
  // Paused drain: all 6 requests arrive at one instant and sit in the
  // queue, so the adaptive pop takes them as a single batch.
  AsyncFrontEndConfig cfg;
  cfg.start_paused = true;
  build_front_end(cfg);
  std::vector<std::unique_ptr<WireClient>> clients;
  int served = 0;
  for (int i = 0; i < 6; ++i) {
    clients.push_back(std::make_unique<WireClient>(
        loop_, network_, "10.0.1." + std::to_string(i + 1), kServerHost));
    clients.back()->send_request("/", benign_features_,
                                 [&](const Response& r, common::Duration) {
                                   if (r.status == common::ErrorCode::kOk) {
                                     ++served;
                                   }
                                 });
  }
  loop_.run();  // burst lands in the queue while the drain is paused
  EXPECT_EQ(front_end_->queued(), 6u);
  front_end_->run_until_idle();
  EXPECT_EQ(served, 6);
  EXPECT_EQ(front_end_->stats().largest_batch, 6u);
}

TEST_F(AsyncFrontEndTest, MaxBatchCapsOneDispatch) {
  AsyncFrontEndConfig cfg;
  cfg.max_batch = 3;
  cfg.start_paused = true;
  build_front_end(cfg);
  std::vector<std::unique_ptr<WireClient>> clients;
  int served = 0;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(std::make_unique<WireClient>(
        loop_, network_, "10.0.1." + std::to_string(i + 1), kServerHost));
    clients.back()->send_request("/", benign_features_,
                                 [&](const Response& r, common::Duration) {
                                   if (r.status == common::ErrorCode::kOk) {
                                     ++served;
                                   }
                                 });
  }
  loop_.run();  // burst lands in the queue while the drain is paused
  front_end_->run_until_idle();
  EXPECT_EQ(served, 8);
  const FrontEndStats fs = front_end_->stats();
  EXPECT_LE(fs.largest_batch, 3u);
  EXPECT_EQ(fs.messages, 16u);  // 8 requests + 8 submissions
}

TEST_F(AsyncFrontEndTest, QueueFullAnswersOverloadExactly) {
  // 6 same-instant requests against a capacity-2 queue with the drain
  // paused: exactly 2 accepted, exactly 4 refused with kUnavailable —
  // deterministically, no silent drops.
  AsyncFrontEndConfig cfg;
  cfg.queue_capacity = 2;
  cfg.start_paused = true;
  build_front_end(cfg);
  std::vector<std::unique_ptr<WireClient>> clients;
  int served = 0;
  int overloaded = 0;
  int answered = 0;
  std::vector<int> answers_per_client(6, 0);
  for (int i = 0; i < 6; ++i) {
    clients.push_back(std::make_unique<WireClient>(
        loop_, network_, "10.0.2." + std::to_string(i + 1), kServerHost));
    clients.back()->send_request(
        "/", benign_features_, [&, i](const Response& r, common::Duration) {
          ++answered;
          ++answers_per_client[static_cast<std::size_t>(i)];
          if (r.status == common::ErrorCode::kOk) ++served;
          if (r.status == common::ErrorCode::kUnavailable) ++overloaded;
        });
  }
  // Deliver the burst while nothing drains: the overload NAKs are
  // already en route before the front end ever runs.
  loop_.run();
  EXPECT_EQ(overloaded, 4);
  EXPECT_EQ(server_->stats().rejected_overload, 4u);
  EXPECT_EQ(front_end_->overflows(), 4u);

  // Drain the backlog: the two accepted requests complete end to end.
  front_end_->run_until_idle();
  EXPECT_EQ(served, 2);
  EXPECT_EQ(answered, 6);
  for (const int n : answers_per_client) EXPECT_EQ(n, 1);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.rejected_overload, 4u);
  EXPECT_EQ(stats.challenges_issued, 2u);
}

TEST_F(AsyncFrontEndTest, DrainAfterBurstLosesAndDuplicatesNothing) {
  // Capacity comfortably above the burst: every message must be
  // answered exactly once once the backlog drains.
  AsyncFrontEndConfig cfg;
  cfg.queue_capacity = 64;
  cfg.max_batch = 4;
  cfg.start_paused = true;
  build_front_end(cfg);
  constexpr int kClients = 12;
  std::vector<std::unique_ptr<WireClient>> clients;
  std::vector<int> answers_per_client(kClients, 0);
  int served = 0;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<WireClient>(
        loop_, network_, "10.0.3." + std::to_string(i + 1), kServerHost));
    clients.back()->send_request(
        "/", benign_features_, [&, i](const Response& r, common::Duration) {
          ++answers_per_client[static_cast<std::size_t>(i)];
          if (r.status == common::ErrorCode::kOk) ++served;
        });
  }
  loop_.run();  // burst queued, nothing processed yet
  EXPECT_EQ(front_end_->queued(), static_cast<std::size_t>(kClients));
  front_end_->run_until_idle();

  EXPECT_EQ(served, kClients);
  for (const int n : answers_per_client) EXPECT_EQ(n, 1);
  const ServerStats stats = server_->stats();
  // Exactly-once submission accounting end to end: every challenge was
  // redeemed exactly once, nothing replayed, nothing dropped.
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.challenges_issued, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.served, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.rejected_replay, 0u);
  EXPECT_EQ(stats.rejected_overload, 0u);
  EXPECT_TRUE(front_end_->idle());
  EXPECT_EQ(front_end_->in_flight(), 0u);
}

TEST_F(AsyncFrontEndTest, AsyncTotalsMatchSynchronousTransportExactly) {
  // The acceptance invariant: the same wire workload through the
  // synchronous shim and through the async front end, identical totals.
  const features::SyntheticTraceGenerator gen;
  common::Rng frng(33);
  std::vector<features::FeatureVector> features;
  for (int i = 0; i < 5; ++i) features.push_back(gen.sample(i % 2 == 1, frng));

  const auto run = [&](bool async, std::size_t verify_threads) {
    ServerConfig cfg;
    cfg.master_secret = common::bytes_of("match-secret");
    cfg.verify_threads = verify_threads;
    sim::WireLoadConfig wc;
    wc.clients = 6;
    wc.requests_per_client = 5;
    wc.async = async;
    wc.front_end.max_batch = 4;
    return sim::run_wire_load(model_, policy_, cfg, features, wc);
  };

  const sim::WireLoadReport sync_run = run(false, 1);
  const sim::WireLoadReport async_run = run(true, 2);

  EXPECT_EQ(sync_run.answered, 30u);
  EXPECT_EQ(async_run.answered, sync_run.answered);
  EXPECT_EQ(async_run.served, sync_run.served);
  EXPECT_EQ(async_run.unanswered, 0u);
  const ServerStats& s = sync_run.server_delta;
  const ServerStats& a = async_run.server_delta;
  EXPECT_EQ(a.requests, s.requests);
  EXPECT_EQ(a.challenges_issued, s.challenges_issued);
  EXPECT_EQ(a.served, s.served);
  EXPECT_EQ(a.difficulty_sum, s.difficulty_sum);
  EXPECT_EQ(a.rejected_rate_limited, s.rejected_rate_limited);
  EXPECT_EQ(a.rejected_bad_solution, s.rejected_bad_solution);
  EXPECT_EQ(a.rejected_replay, s.rejected_replay);
  EXPECT_EQ(a.rejected_overload, 0u);
  // Same wire conversation, not merely the same totals. Since PR 4 the
  // simulated *duration* matches too: puzzle seeds are keyed per id
  // rather than chained, so batch issue order cannot permute anyone's
  // puzzle (or solve time) anymore.
  EXPECT_EQ(async_run.messages_sent, sync_run.messages_sent);
  EXPECT_EQ(async_run.sim_elapsed, sync_run.sim_elapsed);
}

TEST_F(AsyncFrontEndTest, ShardedDrainMatchesSingleDrainExactly) {
  // drain_shards only changes which thread pops a message, never what
  // any client receives: totals, conversation length, and simulated
  // duration must all match the single-drainer run.
  const features::SyntheticTraceGenerator gen;
  common::Rng frng(91);
  std::vector<features::FeatureVector> features;
  for (int i = 0; i < 4; ++i) features.push_back(gen.sample(i % 2 == 1, frng));

  const auto run = [&](std::size_t drain_shards) {
    ServerConfig cfg;
    cfg.master_secret = common::bytes_of("shard-match-secret");
    cfg.verify_threads = 2;
    sim::WireLoadConfig wc;
    wc.clients = 7;
    wc.requests_per_client = 4;
    wc.async = true;
    wc.front_end.max_batch = 3;
    wc.front_end.drain_shards = drain_shards;
    return sim::run_wire_load(model_, policy_, cfg, features, wc);
  };

  const sim::WireLoadReport one = run(1);
  const sim::WireLoadReport four = run(4);
  EXPECT_EQ(one.answered, 28u);
  EXPECT_EQ(four.answered, one.answered);
  EXPECT_EQ(four.served, one.served);
  EXPECT_EQ(four.messages_sent, one.messages_sent);
  EXPECT_EQ(four.sim_elapsed, one.sim_elapsed);
  EXPECT_EQ(four.server_delta.difficulty_sum, one.server_delta.difficulty_sum);
}

TEST_F(AsyncFrontEndTest, PinnedDrainsAndWorkersChangeNothing) {
  // Affinity is a pure performance knob: a run with drains and verify
  // workers pinned must be indistinguishable — totals, conversation,
  // simulated duration, per-client fingerprints — from an unpinned one.
  const features::SyntheticTraceGenerator gen;
  common::Rng frng(47);
  std::vector<features::FeatureVector> features;
  for (int i = 0; i < 4; ++i) features.push_back(gen.sample(i % 2 == 1, frng));

  const auto run = [&](bool pin) {
    ServerConfig cfg;
    cfg.master_secret = common::bytes_of("pin-match-secret");
    cfg.verify_threads = 2;
    cfg.pin_verify_threads = pin;
    sim::WireLoadConfig wc;
    wc.clients = 5;
    wc.requests_per_client = 4;
    wc.async = true;
    wc.front_end.max_batch = 3;
    wc.front_end.drain_shards = 2;
    wc.front_end.pin_drains = pin;
    wc.capture_fingerprints = true;
    return sim::run_wire_load(model_, policy_, cfg, features, wc);
  };

  const sim::WireLoadReport floating = run(false);
  const sim::WireLoadReport pinned = run(true);
  EXPECT_EQ(pinned.answered, floating.answered);
  EXPECT_EQ(pinned.served, floating.served);
  EXPECT_EQ(pinned.messages_sent, floating.messages_sent);
  EXPECT_EQ(pinned.sim_elapsed, floating.sim_elapsed);
  EXPECT_EQ(pinned.history_fingerprints, floating.history_fingerprints);
}

TEST_F(AsyncFrontEndTest, ShardConfigValidated) {
  // Raw front ends (no endpoint — the network host can register once).
  AsyncFrontEndConfig cfg;
  cfg.queue_capacity = 2;
  cfg.drain_shards = 4;  // capacity cannot feed every shard
  EXPECT_THROW(
      AsyncFrontEnd(loop_, network_, kServerHost, *server_, cfg),
      std::invalid_argument);
  cfg.queue_capacity = 4;
  EXPECT_EQ(AsyncFrontEnd(loop_, network_, kServerHost, *server_, cfg)
                .shard_count(),
            4u);
  cfg.drain_shards = 0;  // treated as 1
  EXPECT_EQ(AsyncFrontEnd(loop_, network_, kServerHost, *server_, cfg)
                .shard_count(),
            1u);
}

TEST_F(AsyncFrontEndTest, ClosedLoopWithBackpressureConservesEveryMessage) {
  // Tiny queue + many clients: overloads interleave with successes over
  // several closed-loop rounds; the ledger must still balance exactly.
  const std::vector<features::FeatureVector> features{benign_features_};
  ServerConfig cfg;
  cfg.master_secret = common::bytes_of("conserve-secret");
  sim::WireLoadConfig wc;
  wc.clients = 8;
  wc.requests_per_client = 4;
  wc.async = true;
  wc.front_end.queue_capacity = 1;
  wc.front_end.max_batch = 2;
  // Staged: run_wire_load plays the wire against the paused drain
  // first, so the pile-up (and therefore every total) is deterministic:
  // one client's request is accepted, the others burn all their rounds
  // on overload NAKs, then the drain completes the accepted client.
  wc.front_end.start_paused = true;
  const sim::WireLoadReport report =
      sim::run_wire_load(model_, policy_, cfg, features, wc);

  EXPECT_EQ(report.sent, 32u);
  EXPECT_EQ(report.answered, report.sent);
  EXPECT_EQ(report.unanswered, 0u);
  EXPECT_EQ(report.served + report.overloaded + report.rejected,
            report.answered);
  EXPECT_EQ(report.served, 4u);       // the one accepted client's rounds
  EXPECT_EQ(report.overloaded, 28u);  // everyone else's, exactly
  // Client-observed refusals and the server ledger agree exactly.
  EXPECT_EQ(report.server_delta.rejected_overload, report.overloaded);
  EXPECT_EQ(report.server_delta.served, report.served);
  EXPECT_EQ(report.server_delta.rejected_replay, 0u);
}

TEST_F(AsyncFrontEndTest, QueuePopShedsDeadlinesThatExpireWhileQueued) {
  // The pop-time shed branch is structurally unreachable under the
  // frozen-clock pump (pop == push instant), so drive it with
  // hand-stamped requests: one whose deadline falls between enqueue and
  // pop (the queue must shed it, kUnavailable, zero server work) and
  // one already expired on arrival (must flow through to the server,
  // which sheds it itself — the parity rule that keeps async and sync
  // ledgers identical).
  AsyncFrontEndConfig cfg;
  cfg.start_paused = true;
  build_front_end(cfg);

  std::vector<Response> got;
  network_.add_host("10.0.5.1", [&](const std::string&, common::BytesView p) {
    const auto msg = decode(p);
    if (msg.has_value()) got.push_back(std::get<Response>(*msg));
  });

  const ServerStats before = server_->stats();
  Request queued_expiry;  // enqueues at t=15ms; deadline 50ms < pop time
  queued_expiry.client_ip = "10.0.5.1";
  queued_expiry.features = benign_features_;
  queued_expiry.request_id = 1;
  queued_expiry.deadline_ms = 50;
  Request dead_on_arrival;  // deadline 5ms already behind the enqueue
  dead_on_arrival.client_ip = "10.0.5.1";
  dead_on_arrival.features = benign_features_;
  dead_on_arrival.request_id = 2;
  dead_on_arrival.deadline_ms = 5;
  (void)network_.send("10.0.5.1", kServerHost, queued_expiry.serialize());
  (void)network_.send("10.0.5.1", kServerHost, dead_on_arrival.serialize());
  loop_.run();  // both queued while the drain is paused
  EXPECT_EQ(front_end_->queued(), 2u);

  loop_.schedule_in(100ms, [] {});
  loop_.run();  // advance sim time past both deadlines before the pop
  front_end_->run_until_idle();

  ASSERT_EQ(got.size(), 2u);
  for (const Response& r : got) {
    EXPECT_EQ(r.status, common::ErrorCode::kUnavailable);
    EXPECT_GT(r.retry_after_ms, 0u);
    if (r.request_id == 1) {
      EXPECT_EQ(r.body, "deadline expired in queue");  // queue shed it
    } else {
      EXPECT_EQ(r.request_id, 2u);  // the server shed this one
    }
  }
  EXPECT_EQ(front_end_->stats().expired_dropped, 1u);
  const ServerStats delta = server_->stats() - before;
  EXPECT_EQ(delta.shed_queue_requests, 1u);
  EXPECT_EQ(delta.shed_deadline_requests, 1u);
  EXPECT_EQ(delta.challenges_issued, 0u);  // dead work never scored
}

TEST_F(AsyncFrontEndTest, ExpiredSubmissionsUnderShardedDrainCountExactly) {
  // rejected_expired under a sharded drain: a verifier TTL far below
  // the wire round-trip ages out every solution in flight, across two
  // drain shards and a pooled verifier. Each client must still get
  // exactly one kExpired answer and the counter must match exactly —
  // no shard may lose or double-count an expiry.
  ServerConfig server_cfg;
  server_cfg.master_secret = common::bytes_of("async-front-end-secret");
  server_cfg.verifier.ttl = 1ms;
  server_cfg.verify_threads = 2;
  server_ = std::make_unique<PowServer>(loop_.clock(), model_, policy_,
                                        server_cfg);
  AsyncFrontEndConfig cfg;
  cfg.drain_shards = 2;
  cfg.queue_capacity = 64;
  build_front_end(cfg);

  constexpr int kClients = 6;
  const ServerStats before = server_->stats();
  std::vector<std::unique_ptr<WireClient>> clients;
  std::vector<int> answers(kClients, 0);
  int expired = 0;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<WireClient>(
        loop_, network_, "10.0.6." + std::to_string(i + 1), kServerHost));
    clients.back()->send_request(
        "/", benign_features_, [&, i](const Response& r, common::Duration) {
          ++answers[static_cast<std::size_t>(i)];
          if (r.status == common::ErrorCode::kExpired) ++expired;
        });
  }
  front_end_->run_until_idle();

  EXPECT_EQ(expired, kClients);
  for (const int n : answers) EXPECT_EQ(n, 1);
  const ServerStats delta = server_->stats() - before;
  EXPECT_EQ(delta.rejected_expired, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(delta.served, 0u);
  EXPECT_EQ(delta.challenges_issued, static_cast<std::uint64_t>(kClients));
  const FrontEndStats fs = front_end_->stats();
  EXPECT_EQ(fs.requests, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(fs.submissions, static_cast<std::uint64_t>(kClients));
}

TEST_F(AsyncFrontEndTest, MalformedCountReadableWhileServing) {
  // Regression: malformed_ was a plain uint64 written on the event-loop
  // thread; with completions on pool threads a monitoring read races.
  // Atomic now — this test puts a polling reader next to live traffic
  // and relies on the TSan job to prove the claim.
  build_front_end({});
  network_.add_host("203.0.0.66",
                    [](const std::string&, common::BytesView) {});
  for (int i = 0; i < 50; ++i) {
    loop_.schedule_in(std::chrono::milliseconds(i), [this] {
      (void)network_.send("203.0.0.66", kServerHost,
                          common::bytes_of("garbage"));
    });
  }
  WireClient client(loop_, network_, "10.0.4.1", kServerHost);
  int served = 0;
  client.send_request("/", benign_features_,
                      [&](const Response& r, common::Duration) {
                        if (r.status == common::ErrorCode::kOk) ++served;
                      });

  std::atomic<bool> done{false};
  std::uint64_t observed = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      observed = std::max(observed, endpoint_->malformed_count());
      std::this_thread::yield();
    }
  });
  front_end_->run_until_idle();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(endpoint_->malformed_count(), 50u);
  EXPECT_LE(observed, 50u);
  EXPECT_EQ(served, 1);
}

}  // namespace
}  // namespace powai::framework
