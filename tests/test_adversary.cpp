// Tests for the adversary strategies: every bypass attempt must fail
// except honest work (sybil), which must cost full price.

#include "sim/adversary.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/workload.hpp"

namespace powai::sim {
namespace {

class AdversaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(31);
    WorkloadConfig wl;
    wl.traffic.class_overlap = 0.35;  // clean separation for crisp checks
    model_.fit(make_training_set(wl, 400, 400, rng));
    config_.attempts_per_strategy = 12;
  }

  const AdversaryReport& find(const std::vector<AdversaryReport>& reports,
                              std::string_view name) {
    for (const auto& r : reports) {
      if (r.strategy == name) return r;
    }
    throw std::logic_error("strategy not found");
  }

  reputation::DabrModel model_;
  policy::LinearPolicy policy_ = policy::LinearPolicy::policy2();
  AdversaryConfig config_;
};

TEST_F(AdversaryTest, AllStrategiesPresent) {
  const auto reports = run_adversaries(config_, model_, policy_);
  EXPECT_EQ(reports.size(), 6u);
  for (const auto& r : reports) {
    EXPECT_EQ(r.attempts, config_.attempts_per_strategy) << r.strategy;
    EXPECT_FALSE(r.note.empty());
  }
}

TEST_F(AdversaryTest, ReplayNeverServed) {
  const auto reports = run_adversaries(config_, model_, policy_);
  EXPECT_EQ(find(reports, "replay").served, 0u);
}

TEST_F(AdversaryTest, ForgeNeverServed) {
  const auto reports = run_adversaries(config_, model_, policy_);
  const auto& forge = find(reports, "forge");
  EXPECT_EQ(forge.served, 0u);
  // Forging is also cheap to attempt (d=1 self-issued puzzles)...
  EXPECT_LT(forge.hashes_spent, 100u * config_.attempts_per_strategy);
}

TEST_F(AdversaryTest, DowngradeNeverServed) {
  const auto reports = run_adversaries(config_, model_, policy_);
  EXPECT_EQ(find(reports, "downgrade").served, 0u);
}

TEST_F(AdversaryTest, StealNeverServed) {
  const auto reports = run_adversaries(config_, model_, policy_);
  EXPECT_EQ(find(reports, "steal").served, 0u);
}

TEST_F(AdversaryTest, PrecomputeNeverServed) {
  const auto reports = run_adversaries(config_, model_, policy_);
  EXPECT_EQ(find(reports, "precompute").served, 0u);
}

TEST_F(AdversaryTest, SybilServedButAtFullWorkPrice) {
  const auto reports = run_adversaries(config_, model_, policy_);
  const auto& sybil = find(reports, "sybil");
  // Honest work is honest work: requests are served...
  EXPECT_EQ(sybil.served, sybil.attempts);
  // ...but the per-request hash price reflects a malicious score. With
  // clean separation and policy2 the difficulty is ~15 → ~2^15 expected
  // hashes per request; require at least 2^11 on average to show the
  // price was paid.
  EXPECT_GT(sybil.hashes_spent,
            sybil.attempts * 2048u);
}

TEST_F(AdversaryTest, HonestWorkCostsDominateBypassAttempts) {
  const auto reports = run_adversaries(config_, model_, policy_);
  const auto& sybil = find(reports, "sybil");
  const auto& forge = find(reports, "forge");
  EXPECT_GT(sybil.hashes_spent, 20u * forge.hashes_spent);
}

TEST_F(AdversaryTest, DeterministicGivenSeed) {
  const auto a = run_adversaries(config_, model_, policy_);
  const auto b = run_adversaries(config_, model_, policy_);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].served, b[i].served);
    EXPECT_EQ(a[i].hashes_spent, b[i].hashes_spent);
  }
}

TEST_F(AdversaryTest, GoldenTalliesPinEveryStrategy) {
  // Exact pins under the fixture's fixed seeds. The whole pipeline —
  // feature synthesis, DAbR scoring, puzzle derivation, solving — is
  // deterministic and platform-independent, so these values must never
  // drift; a change here means a behavioral change somewhere in the
  // issuance or verification path, not noise.
  struct Golden {
    std::string_view strategy;
    std::uint64_t served;
    std::uint64_t hashes_spent;
  };
  constexpr Golden kGolden[] = {
      {"replay", 0, 45378},    {"forge", 0, 12},
      {"downgrade", 0, 20},    {"steal", 0, 387},
      {"precompute", 0, 417722}, {"sybil", 12, 254500},
  };
  const auto reports = run_adversaries(config_, model_, policy_);
  for (const Golden& golden : kGolden) {
    const auto& report = find(reports, golden.strategy);
    EXPECT_EQ(report.attempts, 12u) << golden.strategy;
    EXPECT_EQ(report.served, golden.served) << golden.strategy;
    EXPECT_EQ(report.hashes_spent, golden.hashes_spent) << golden.strategy;
  }
}

TEST_F(AdversaryTest, BypassStrategiesHaveExactlyZeroSuccessRate) {
  // success_rate() must be exactly 0.0 — not merely small — for every
  // strategy the MAC defeats: a single served bypass would be a
  // authentication break, so the assertions use exact equality.
  const auto reports = run_adversaries(config_, model_, policy_);
  for (const auto name : {"forge", "downgrade", "replay", "steal"}) {
    EXPECT_EQ(find(reports, name).success_rate(), 0.0) << name;
  }
}

TEST_F(AdversaryTest, TableHasRowPerStrategy) {
  const auto reports = run_adversaries(config_, model_, policy_);
  const common::Table table = adversary_table(reports);
  EXPECT_EQ(table.rows(), reports.size());
  EXPECT_EQ(table.columns(), 6u);
}

}  // namespace
}  // namespace powai::sim
