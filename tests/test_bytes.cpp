// Tests for common/bytes: hex/base64 codecs and the big-endian reader.

#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace powai::common {
namespace {

TEST(Hex, EncodesKnownVector) {
  const Bytes data = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(to_hex(data), "deadbeef");
}

TEST(Hex, EncodesEmpty) { EXPECT_EQ(to_hex(Bytes{}), ""); }

TEST(Hex, DecodesKnownVector) {
  const auto decoded = from_hex("deadbeef");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, DecodeIsCaseInsensitive) {
  const auto decoded = from_hex("DeAdBeEf");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
  EXPECT_FALSE(from_hex("0 ").has_value());
}

TEST(Hex, RoundTripsRandomBuffers) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(rng.uniform_u64(0, 100));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    const auto decoded = from_hex(to_hex(data));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

TEST(Base64, EncodesRfc4648Vectors) {
  EXPECT_EQ(to_base64(bytes_of("")), "");
  EXPECT_EQ(to_base64(bytes_of("f")), "Zg==");
  EXPECT_EQ(to_base64(bytes_of("fo")), "Zm8=");
  EXPECT_EQ(to_base64(bytes_of("foo")), "Zm9v");
  EXPECT_EQ(to_base64(bytes_of("foob")), "Zm9vYg==");
  EXPECT_EQ(to_base64(bytes_of("fooba")), "Zm9vYmE=");
  EXPECT_EQ(to_base64(bytes_of("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodesRfc4648Vectors) {
  EXPECT_EQ(string_of(from_base64("Zm9vYmFy").value()), "foobar");
  EXPECT_EQ(string_of(from_base64("Zm9vYg==").value()), "foob");
  EXPECT_EQ(string_of(from_base64("Zg==").value()), "f");
}

TEST(Base64, RejectsBadLength) { EXPECT_FALSE(from_base64("Zg=").has_value()); }

TEST(Base64, RejectsInteriorPadding) {
  EXPECT_FALSE(from_base64("Zg==Zg==").has_value());
  EXPECT_FALSE(from_base64("=g==").has_value());
}

TEST(Base64, RejectsNonAlphabet) {
  EXPECT_FALSE(from_base64("Zm9*").has_value());
}

TEST(Base64, RoundTripsRandomBuffers) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(rng.uniform_u64(0, 64));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    const auto decoded = from_base64(to_base64(data));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

TEST(ByteAppend, BigEndianEncodings) {
  Bytes out;
  append_u16be(out, 0x0102);
  append_u32be(out, 0x03040506);
  append_u64be(out, 0x0708090a0b0c0d0eULL);
  const Bytes expected = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                          0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e};
  EXPECT_EQ(out, expected);
}

TEST(ByteReader, ReadsBackWhatWasWritten) {
  Bytes buf;
  append_u16be(buf, 513);
  append_u32be(buf, 123456789);
  append_u64be(buf, 0xfedcba9876543210ULL);
  append(buf, bytes_of("tail"));

  ByteReader reader(buf);
  EXPECT_EQ(reader.read_u16be(), 513);
  EXPECT_EQ(reader.read_u32be(), 123456789u);
  EXPECT_EQ(reader.read_u64be(), 0xfedcba9876543210ULL);
  const auto tail = reader.read_bytes(4);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(string_of(*tail), "tail");
  EXPECT_TRUE(reader.empty());
}

TEST(ByteReader, FailsGracefullyOnShortBuffer) {
  const Bytes buf = {0x01, 0x02, 0x03};
  ByteReader reader(buf);
  EXPECT_FALSE(reader.read_u32be().has_value());
  // Cursor is not advanced by the failed read.
  EXPECT_EQ(reader.remaining(), 3u);
  EXPECT_EQ(reader.read_u16be(), 0x0102);
  EXPECT_FALSE(reader.read_u16be().has_value());
  EXPECT_EQ(reader.read_u8(), 0x03);
  EXPECT_FALSE(reader.read_u8().has_value());
}

TEST(ByteReader, ReadBytesZeroAlwaysSucceeds) {
  ByteReader reader(BytesView{});
  const auto empty = reader.read_bytes(0);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(StringBytes, RoundTrip) {
  const std::string text = "hello \x01 world";
  EXPECT_EQ(string_of(bytes_of(text)), text);
}

}  // namespace
}  // namespace powai::common
