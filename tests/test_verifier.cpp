// Tests for the verifier: authenticity, binding, expiry, work check,
// replay protection, and the attack scenarios each defends against.

#include "pow/verifier.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "pow/generator.hpp"
#include "pow/solver.hpp"

namespace powai::pow {
namespace {

using namespace std::chrono_literals;
using common::ErrorCode;

struct Rig {
  common::ManualClock clock;
  PuzzleGenerator generator;
  Verifier verifier;
  Solver solver;

  explicit Rig(VerifierConfig config = {})
      : generator(clock, common::bytes_of("rig-secret")),
        verifier(clock, common::bytes_of("rig-secret"), config) {}

  std::pair<Puzzle, Solution> solved(unsigned difficulty,
                                     const std::string& ip = "1.2.3.4") {
    const Puzzle p = generator.issue(ip, difficulty);
    const SolveResult r = solver.solve(p);
    EXPECT_TRUE(r.found);
    return {p, r.solution};
  }
};

TEST(Verifier, AcceptsValidSolution) {
  Rig rig;
  const auto [p, s] = rig.solved(6);
  EXPECT_TRUE(rig.verifier.verify(p, s).ok());
}

TEST(Verifier, AcceptsWithMatchingObservedIp) {
  Rig rig;
  const auto [p, s] = rig.solved(4, "10.0.0.9");
  EXPECT_TRUE(rig.verifier.verify(p, s, "10.0.0.9").ok());
}

TEST(Verifier, RejectsWrongObservedIp) {
  // Attack: solution harvested by one bot and replayed from another IP.
  Rig rig;
  const auto [p, s] = rig.solved(4, "10.0.0.9");
  const common::Status st = rig.verifier.verify(p, s, "10.0.0.250");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ErrorCode::kInvalidArgument);
}

TEST(Verifier, RejectsWrongNonce) {
  Rig rig;
  auto [p, s] = rig.solved(8);
  s.nonce ^= 1;
  const common::Status st = rig.verifier.verify(p, s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ErrorCode::kBadSolution);
}

TEST(Verifier, RejectsMismatchedPuzzleId) {
  Rig rig;
  const auto [p, s] = rig.solved(4);
  Solution other = s;
  other.puzzle_id += 1;
  const common::Status st = rig.verifier.verify(p, other);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ErrorCode::kInvalidArgument);
}

TEST(Verifier, RejectsTamperedDifficulty) {
  // Attack: client solves at difficulty 1 then claims the puzzle asked
  // for difficulty 1 when it was issued harder — the MAC catches it.
  Rig rig;
  const Puzzle hard = rig.generator.issue("1.2.3.4", 12);
  Puzzle softened = hard;
  softened.difficulty = 1;
  const SolveResult r = rig.solver.solve(softened);
  ASSERT_TRUE(r.found);
  const common::Status st = rig.verifier.verify(softened, r.solution);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ErrorCode::kInvalidArgument);
}

TEST(Verifier, RejectsForgedPuzzle) {
  // Attack: client fabricates its own easy puzzle with a made-up MAC.
  Rig rig;
  Puzzle forged;
  forged.puzzle_id = 999;
  forged.seed = common::bytes_of("self-issued-seed");
  forged.issued_at_ms = common::to_millis(rig.clock.now());
  forged.difficulty = 1;
  forged.client_binding = "1.2.3.4";
  const SolveResult r = rig.solver.solve(forged);
  ASSERT_TRUE(r.found);
  EXPECT_FALSE(rig.verifier.verify(forged, r.solution).ok());
}

TEST(Verifier, RejectsCrossServerPuzzle) {
  // Puzzle issued by a generator with a different master secret.
  common::ManualClock clock;
  PuzzleGenerator foreign(clock, common::bytes_of("other-secret"));
  Rig rig;
  const Puzzle p = foreign.issue("1.2.3.4", 2);
  const SolveResult r = rig.solver.solve(p);
  ASSERT_TRUE(r.found);
  EXPECT_FALSE(rig.verifier.verify(p, r.solution).ok());
}

TEST(Verifier, RejectsExpiredPuzzle) {
  VerifierConfig cfg;
  cfg.ttl = 10s;
  Rig rig(cfg);
  const auto [p, s] = rig.solved(4);
  rig.clock.advance(11s);
  const common::Status st = rig.verifier.verify(p, s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ErrorCode::kExpired);
}

TEST(Verifier, AcceptsJustInsideTtl) {
  VerifierConfig cfg;
  cfg.ttl = 10s;
  Rig rig(cfg);
  const auto [p, s] = rig.solved(4);
  rig.clock.advance(10s);
  EXPECT_TRUE(rig.verifier.verify(p, s).ok());
}

TEST(Verifier, RejectsFutureTimestampBeyondSkew) {
  // Attack: client rewrites issued_at into the future to extend the ttl —
  // MAC covers the timestamp, so fabricate via the generator clock
  // instead: verifier clock lags the issuing clock.
  common::ManualClock issue_clock(common::TimePoint{} + 100s);
  common::ManualClock verify_clock;  // at t=0
  PuzzleGenerator gen(issue_clock, common::bytes_of("skew-secret"));
  Verifier verifier(verify_clock, common::bytes_of("skew-secret"));
  const Puzzle p = gen.issue("1.2.3.4", 2);
  const SolveResult r = Solver{}.solve(p);
  ASSERT_TRUE(r.found);
  const common::Status st = verifier.verify(p, r.solution);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ErrorCode::kExpired);
}

TEST(Verifier, AcceptsSmallFutureSkew) {
  common::ManualClock issue_clock(common::TimePoint{} + 2s);
  common::ManualClock verify_clock;  // 2 s behind, within default 5 s skew
  PuzzleGenerator gen(issue_clock, common::bytes_of("skew-secret"));
  Verifier verifier(verify_clock, common::bytes_of("skew-secret"));
  const Puzzle p = gen.issue("1.2.3.4", 2);
  const SolveResult r = Solver{}.solve(p);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(verifier.verify(p, r.solution).ok());
}

TEST(Verifier, RejectsReplayedSolution) {
  Rig rig;
  const auto [p, s] = rig.solved(5);
  EXPECT_TRUE(rig.verifier.verify(p, s).ok());
  const common::Status st = rig.verifier.verify(p, s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ErrorCode::kReplay);
  EXPECT_EQ(rig.verifier.replay_entries(), 1u);
}

TEST(Verifier, ReplayCacheDistinguishesPuzzles) {
  Rig rig;
  const auto [p1, s1] = rig.solved(4);
  const auto [p2, s2] = rig.solved(4);
  EXPECT_TRUE(rig.verifier.verify(p1, s1).ok());
  EXPECT_TRUE(rig.verifier.verify(p2, s2).ok());
  EXPECT_EQ(rig.verifier.replay_entries(), 2u);
}

TEST(Verifier, ReplayCacheEvictsFifoAtCapacity) {
  VerifierConfig cfg;
  cfg.replay_capacity = 2;
  cfg.replay_shards = 1;  // single shard = classic global FIFO semantics
  Rig rig(cfg);
  const auto [p1, s1] = rig.solved(2);
  const auto [p2, s2] = rig.solved(2);
  const auto [p3, s3] = rig.solved(2);
  EXPECT_TRUE(rig.verifier.verify(p1, s1).ok());
  EXPECT_TRUE(rig.verifier.verify(p2, s2).ok());
  EXPECT_TRUE(rig.verifier.verify(p3, s3).ok());  // evicts p1
  EXPECT_EQ(rig.verifier.replay_entries(), 2u);
  // p2 is still remembered, so its replay is rejected; p1 was evicted, so
  // (regrettably but by design at this capacity) its replay is accepted.
  EXPECT_FALSE(rig.verifier.verify(p2, s2).ok());
  EXPECT_TRUE(rig.verifier.verify(p1, s1).ok());
}

TEST(Verifier, FailedVerificationDoesNotConsumePuzzle) {
  Rig rig;
  auto [p, s] = rig.solved(6);
  Solution bad = s;
  bad.nonce ^= 1;
  EXPECT_FALSE(rig.verifier.verify(p, bad).ok());
  // The genuine solution still works afterwards.
  EXPECT_TRUE(rig.verifier.verify(p, s).ok());
}

TEST(Verifier, RejectsBadConfig) {
  common::ManualClock clock;
  VerifierConfig bad;
  bad.replay_capacity = 0;
  EXPECT_THROW(Verifier(clock, common::bytes_of("x"), bad),
               std::invalid_argument);
  bad = {};
  bad.ttl = 0s;
  EXPECT_THROW(Verifier(clock, common::bytes_of("x"), bad),
               std::invalid_argument);
}

TEST(Verifier, SerializedPuzzleSurvivesVerification) {
  // End-to-end wire trip: serialize puzzle to the "client", solve there,
  // send solution back, verify.
  Rig rig;
  const Puzzle original = rig.generator.issue("4.5.6.7", 6);
  const auto client_copy = Puzzle::deserialize(original.serialize());
  ASSERT_TRUE(client_copy.has_value());
  const SolveResult r = rig.solver.solve(*client_copy);
  ASSERT_TRUE(r.found);
  const auto wire_solution = Solution::deserialize(r.solution.serialize());
  ASSERT_TRUE(wire_solution.has_value());
  EXPECT_TRUE(rig.verifier.verify(original, *wire_solution, "4.5.6.7").ok());
}

}  // namespace
}  // namespace powai::pow
