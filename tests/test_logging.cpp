// Tests for the leveled logger.

#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace powai::common {
namespace {

TEST(Logger, EmitsAtOrAboveLevel) {
  std::ostringstream sink;
  Logger log(sink, LogLevel::kWarn);
  log.info("hidden");
  log.warn("shown-warn");
  log.error("shown-error");
  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("shown-warn"), std::string::npos);
  EXPECT_NE(out.find("shown-error"), std::string::npos);
}

TEST(Logger, IncludesLevelAndComponent) {
  std::ostringstream sink;
  Logger log(sink, LogLevel::kDebug, "issuer");
  log.debug("generated puzzle");
  const std::string out = sink.str();
  EXPECT_NE(out.find("DEBUG"), std::string::npos);
  EXPECT_NE(out.find("[issuer]"), std::string::npos);
}

TEST(Logger, OffSilencesEverything) {
  std::ostringstream sink;
  Logger log(sink, LogLevel::kOff);
  log.error("should not appear");
  EXPECT_TRUE(sink.str().empty());
}

TEST(Logger, ChildAppendsComponentPath) {
  std::ostringstream sink;
  Logger log(sink, LogLevel::kInfo, "server");
  Logger child = log.child("verifier");
  child.info("checked");
  EXPECT_NE(sink.str().find("[server.verifier]"), std::string::npos);
}

TEST(Logger, ChildOfAnonymousLogger) {
  std::ostringstream sink;
  Logger log(sink, LogLevel::kInfo);
  Logger child = log.child("solo");
  child.info("x");
  EXPECT_NE(sink.str().find("[solo]"), std::string::npos);
}

TEST(Logger, EnabledReflectsLevel) {
  std::ostringstream sink;
  Logger log(sink, LogLevel::kInfo);
  EXPECT_FALSE(log.enabled(LogLevel::kDebug));
  EXPECT_TRUE(log.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(LogLevel::kError));
  log.set_level(LogLevel::kError);
  EXPECT_FALSE(log.enabled(LogLevel::kWarn));
}

TEST(ParseLogLevel, KnownAndUnknown) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
}

TEST(LogLevelName, RoundTrips) {
  EXPECT_EQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(Logger, GlobalIsUsable) {
  Logger& g = Logger::global();
  EXPECT_GE(static_cast<int>(g.level()), static_cast<int>(LogLevel::kTrace));
}

}  // namespace
}  // namespace powai::common
