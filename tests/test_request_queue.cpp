// Tests for the bounded MPMC wire-message queue: capacity/backpressure
// accounting, pop/complete in-flight tracking, close semantics, and a
// multi-producer multi-consumer hammer (runs under TSan via the
// `concurrency` label).

#include "framework/request_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace powai::framework {
namespace {

WireMessage request_from(const std::string& from, std::uint64_t id) {
  Request r;
  r.client_ip = from;
  r.request_id = id;
  return WireMessage{from, std::move(r)};
}

TEST(RequestQueue, RejectsZeroCapacity) {
  EXPECT_THROW(RequestQueue(0), std::invalid_argument);
}

TEST(RequestQueue, PushPopRoundTripPreservesOrderAndPayload) {
  RequestQueue q(8);
  ASSERT_TRUE(q.try_push(request_from("10.0.0.1", 7)));
  ASSERT_TRUE(q.try_push(request_from("10.0.0.2", 8)));
  std::vector<WireMessage> out;
  EXPECT_EQ(q.pop_up_to(10, out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].from, "10.0.0.1");
  EXPECT_EQ(std::get<Request>(out[1].payload).request_id, 8u);
}

TEST(RequestQueue, CapacityBoundIsExactAndCounted) {
  RequestQueue q(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(q.try_push(request_from("10.0.0.1", i)));
  }
  EXPECT_FALSE(q.try_push(request_from("10.0.0.1", 99)));
  EXPECT_FALSE(q.try_push(request_from("10.0.0.1", 100)));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.accepted(), 3u);
  EXPECT_EQ(q.overflows(), 2u);
  EXPECT_EQ(q.high_water(), 3u);
}

TEST(RequestQueue, PopRespectsMaxAndLeavesRemainder) {
  RequestQueue q(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_push(request_from("10.0.0.1", i)));
  }
  std::vector<WireMessage> out;
  EXPECT_EQ(q.pop_up_to(2, out), 2u);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.in_flight(), 2u);
}

TEST(RequestQueue, BusyUntilCompleteNotMerelyPopped) {
  RequestQueue q(4);
  ASSERT_TRUE(q.try_push(request_from("10.0.0.1", 1)));
  EXPECT_TRUE(q.busy());
  std::vector<WireMessage> out;
  ASSERT_EQ(q.pop_up_to(4, out), 1u);
  // Dequeued but not processed: still owed, still busy.
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.busy());
  q.complete(1);
  EXPECT_FALSE(q.busy());
  EXPECT_THROW(q.complete(1), std::logic_error);
}

TEST(RequestQueue, PopFreesCapacityForNewPushes) {
  RequestQueue q(2);
  ASSERT_TRUE(q.try_push(request_from("10.0.0.1", 1)));
  ASSERT_TRUE(q.try_push(request_from("10.0.0.1", 2)));
  ASSERT_FALSE(q.try_push(request_from("10.0.0.1", 3)));
  std::vector<WireMessage> out;
  ASSERT_EQ(q.pop_up_to(2, out), 2u);
  // The bound is on queued messages; popped-but-incomplete ones no
  // longer occupy it (the drain's batch is bounded separately).
  EXPECT_TRUE(q.try_push(request_from("10.0.0.1", 4)));
}

TEST(RequestQueue, CloseWakesBlockedPopperAndDrainsRemainder) {
  RequestQueue q(4);
  ASSERT_TRUE(q.try_push(request_from("10.0.0.1", 1)));
  std::vector<WireMessage> out;
  ASSERT_EQ(q.pop_up_to(4, out), 1u);

  std::atomic<int> popped{-1};
  std::thread blocked([&] {
    std::vector<WireMessage> sink;
    popped.store(static_cast<int>(q.pop_up_to(4, sink)));
  });
  q.close();
  blocked.join();
  EXPECT_EQ(popped.load(), 0);  // closed and empty
  EXPECT_FALSE(q.try_push(request_from("10.0.0.1", 2)));
  // A close with items still queued hands them out before returning 0.
  RequestQueue q2(4);
  ASSERT_TRUE(q2.try_push(request_from("10.0.0.1", 3)));
  q2.close();
  std::vector<WireMessage> rest;
  EXPECT_EQ(q2.pop_up_to(4, rest), 1u);
  EXPECT_EQ(q2.pop_up_to(4, rest), 0u);
}

TEST(RequestQueue, ManyProducersManyConsumersLoseNothing) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 3;
  constexpr std::size_t kPerProducer = 500;
  RequestQueue q(64);

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> refused{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        if (q.try_push(request_from("10.0.0." + std::to_string(p + 1),
                                    p * kPerProducer + i))) {
          accepted.fetch_add(1);
        } else {
          refused.fetch_add(1);
          std::this_thread::yield();  // full: give consumers a beat
        }
      }
    });
  }

  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<WireMessage> batch;
      for (;;) {
        batch.clear();
        const std::size_t n = q.pop_up_to(16, batch);
        if (n == 0) return;  // closed and drained
        consumed.fetch_add(n);
        q.complete(n);
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  // Every push had exactly one fate; every accepted message was
  // consumed exactly once.
  EXPECT_EQ(accepted.load() + refused.load(), kProducers * kPerProducer);
  EXPECT_EQ(consumed.load(), accepted.load());
  EXPECT_EQ(q.accepted(), accepted.load());
  EXPECT_EQ(q.overflows(), refused.load());
  EXPECT_FALSE(q.busy());
}

TEST(RequestQueue, ShutdownMidFloodStrandsNothing) {
  // close() races active producers AND in-flight consumer batches: every
  // push attempt must still have exactly one fate (accepted or
  // overflow), and every accepted message must reach complete() — a
  // close racing a popped batch must not strand the batch's completion.
  // Runs under TSan via the `concurrency` label.
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 3;
  constexpr std::size_t kPerProducer = 2000;
  RequestQueue q(32);

  std::atomic<std::uint64_t> attempts{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        (void)q.try_push(request_from("10.0.0." + std::to_string(p + 1),
                                      p * kPerProducer + i));
        attempts.fetch_add(1);
      }
    });
  }

  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<WireMessage> batch;
      for (;;) {
        batch.clear();
        const std::size_t n = q.pop_up_to(8, batch);
        if (n == 0) return;  // closed and drained
        q.complete(n);
      }
    });
  }

  // Close while producers are still mid-flood: late try_push calls must
  // count as overflows, not vanish. Gate on attempts (which always
  // advances) rather than accepted (which may stall once the queue
  // saturates).
  const std::uint64_t half = kProducers * kPerProducer / 2;
  while (attempts.load() < half) std::this_thread::yield();
  q.close();

  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(attempts.load(), kProducers * kPerProducer);
  EXPECT_EQ(q.accepted() + q.overflows(), attempts.load());
  EXPECT_EQ(q.completed(), q.accepted());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.in_flight(), 0u);
  EXPECT_FALSE(q.busy());
}

}  // namespace
}  // namespace powai::framework
