// Scale goldens: the determinism and memory contracts at 10^5 clients.
// test_determinism pins byte-identical histories at small N; this suite
// pins the same contract at populations where storing full histories is
// impractical, via the per-client 64-bit fingerprint fold — plus the
// O(1)-per-client memory accounting that makes such populations
// simulable at all. Release-build runtime is tens of seconds; the suite
// is deliberately NOT in the concurrency/TSan label (TSan at 10^5
// clients would take hours and adds nothing over the small-N goldens).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "framework/server.hpp"
#include "reputation/dabr.hpp"
#include "policy/error_range_policy.hpp"
#include "sim/load_harness.hpp"
#include "sim/population.hpp"

namespace powai::sim {
namespace {

class ScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(1234);
    const features::SyntheticTraceGenerator gen;
    model_.fit(gen.generate(250, 250, rng));
    for (int i = 0; i < 6; ++i) {
      features_.push_back(gen.sample(i % 3 == 0, rng));
    }
  }

  framework::ServerConfig server_config() const {
    framework::ServerConfig cfg;
    cfg.master_secret = common::bytes_of("scale-golden-secret");
    cfg.policy_seed = 0x5ca1'ab1e'0000'cafeULL;
    return cfg;
  }

  // Equality over 100k-entry vectors with a readable failure: report the
  // first few mismatching indices instead of dumping both vectors.
  static void expect_fingerprints_equal(
      const std::vector<std::uint64_t>& got,
      const std::vector<std::uint64_t>& want, const char* label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (got[i] != want[i] && ++mismatches <= 5) {
        ADD_FAILURE() << label << ": client " << i << " fingerprint 0x"
                      << std::hex << got[i] << " != 0x" << want[i];
      }
    }
    EXPECT_EQ(mismatches, 0u) << label;
  }

  reputation::DabrModel model_;
  policy::ErrorRangePolicy policy_{1.5};
  std::vector<features::FeatureVector> features_;
};

TEST_F(ScaleTest, HundredThousandClientFingerprintsIdenticalAcrossShapes) {
  // The acceptance criterion at scale: a Pareto-paced, weight-skewed
  // 10^5-client population produces bit-identical per-client
  // fingerprints across the synchronous endpoint, a pooled async run
  // (verify_threads=2), and a sharded async run (drain_shards=4) —
  // and the async timelines equal the synchronous one exactly.
  constexpr std::size_t kClients = 100'000;
  constexpr std::size_t kPerClient = 2;

  const auto run = [&](bool async, std::size_t verify_threads,
                       std::size_t drain_shards) {
    framework::ServerConfig cfg = server_config();
    cfg.verify_threads = verify_threads;
    WireLoadConfig wc;
    wc.clients = kClients;
    wc.requests_per_client = kPerClient;
    wc.async = async;
    wc.front_end.max_batch = 64;
    wc.front_end.drain_shards = drain_shards;
    wc.front_end.queue_capacity = 4096;
    wc.capture_fingerprints = true;
    wc.pace_arrivals = true;
    wc.arrivals.process = ArrivalProcess::kPareto;
    wc.arrivals.mean_interarrival_ms = 500.0;
    wc.weight_alpha = 1.2;
    return run_wire_load(model_, policy_, cfg, features_, wc);
  };

  const WireLoadReport sync = run(false, 1, 1);

  // Conservation on the deterministic link: every request answered,
  // every answer accounted for, and the server ledger balances against
  // the client-side tallies.
  ASSERT_EQ(sync.sent, kClients * kPerClient);
  ASSERT_EQ(sync.answered, sync.sent);
  EXPECT_EQ(sync.unanswered, 0u);
  EXPECT_EQ(sync.answered, sync.served + sync.overloaded + sync.rejected);
  EXPECT_EQ(sync.server_delta.served, sync.served);
  EXPECT_EQ(sync.server_delta.rejected_overload, sync.overloaded);
  EXPECT_GE(sync.server_delta.challenges_issued, sync.served);

  // The fingerprints are real data, not a constant: a heavy-tailed
  // population with per-client derivation must not collapse to one value.
  ASSERT_EQ(sync.history_fingerprints.size(), kClients);
  EXPECT_NE(sync.history_fingerprints[0], kFingerprintSeed);
  EXPECT_NE(sync.history_fingerprints[0], sync.history_fingerprints[1]);

  // Memory stays O(1) per client. Measured on the development container:
  // ~40 sim bytes/client (pool slots + population keys + netsim groups)
  // and ~144 server bytes/client; the bounds leave headroom without
  // letting a per-pair or per-object regression slip through.
  EXPECT_GT(sync.server_memory_bytes, 0u);
  EXPECT_LT(sync.sim_bytes_per_client(), 128.0);
  EXPECT_LT(sync.server_bytes_per_client(), 1024.0);

  const WireLoadReport pooled = run(true, 2, 1);
  const WireLoadReport sharded = run(true, 2, 4);

  // Async totals == sync totals, timeline included.
  EXPECT_EQ(pooled.answered, sync.answered);
  EXPECT_EQ(pooled.served, sync.served);
  EXPECT_EQ(pooled.sim_elapsed, sync.sim_elapsed);
  EXPECT_EQ(sharded.answered, sync.answered);
  EXPECT_EQ(sharded.served, sync.served);
  EXPECT_EQ(sharded.sim_elapsed, sync.sim_elapsed);

  expect_fingerprints_equal(pooled.history_fingerprints,
                            sync.history_fingerprints, "pooled vs sync");
  expect_fingerprints_equal(sharded.history_fingerprints,
                            sync.history_fingerprints, "sharded vs sync");
}

TEST_F(ScaleTest, FlashCrowdStaysConservedAndDeterministic) {
  // The stampede shape: 2*10^4 clients whose arrival rate steps up
  // 20x mid-run. Backpressure may fire (that is the point), but
  // conservation and cross-shape determinism must survive the spike.
  constexpr std::size_t kClients = 20'000;

  const auto run = [&](bool async, std::size_t drain_shards) {
    framework::ServerConfig cfg = server_config();
    cfg.verify_threads = 2;
    WireLoadConfig wc;
    wc.clients = kClients;
    wc.requests_per_client = 3;
    wc.async = async;
    wc.front_end.drain_shards = drain_shards;
    wc.front_end.queue_capacity = 2048;
    wc.capture_fingerprints = true;
    wc.pace_arrivals = true;
    wc.arrivals.process = ArrivalProcess::kFlashCrowd;
    wc.arrivals.mean_interarrival_ms = 800.0;
    wc.arrivals.flash_at_ms = 400.0;
    wc.arrivals.flash_factor = 20.0;
    return run_wire_load(model_, policy_, cfg, features_, wc);
  };

  const WireLoadReport sync = run(false, 1);
  const WireLoadReport sharded = run(true, 2);

  ASSERT_EQ(sync.sent, kClients * 3u);
  ASSERT_EQ(sync.answered, sync.sent);
  EXPECT_EQ(sync.answered, sync.served + sync.overloaded + sync.rejected);
  EXPECT_EQ(sharded.answered, sync.answered);
  EXPECT_EQ(sharded.served, sync.served);
  EXPECT_EQ(sharded.sim_elapsed, sync.sim_elapsed);
  expect_fingerprints_equal(sharded.history_fingerprints,
                            sync.history_fingerprints, "flash sharded vs sync");
}

TEST_F(ScaleTest, PopulationMemoryIsEightBytesPerClientPlusConstant) {
  // The headline number of the population abstraction, pinned: the only
  // O(n) state is the 8-byte key table.
  PopulationConfig pc;
  pc.clients = 1'000'000;
  ClientPopulation population(pc);
  EXPECT_EQ(population.memory_bytes(),
            sizeof(ClientPopulation) + 1'000'000 * sizeof(std::uint64_t));
  // Weights and gaps are computed, not stored: sampling them allocates
  // nothing and works at any index.
  EXPECT_GT(population.weight_of(999'999), 0.0);
  EXPECT_GT(population.gap_before(999'999, 7, 0.0).count(), 0);
}

}  // namespace
}  // namespace powai::sim
