// Tests for the table renderer used by the bench harness.

#include "common/table.hpp"

#include <gtest/gtest.h>

namespace powai::common {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, TextRenderingAligns) {
  Table t({"score", "latency_ms"});
  t.add_row({"0", "31.00"});
  t.add_row({"10", "912.55"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("score"), std::string::npos);
  EXPECT_NE(text.find("912.55"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.add_row({"plain", "a,b"});
  t.add_row({"quote", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundStructure) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, MarkdownShape) {
  Table t({"x"});
  t.add_row({"1"});
  const std::string md = t.to_markdown();
  EXPECT_EQ(md, "| x |\n|---|\n| 1 |\n");
}

TEST(Table, Dimensions) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(FmtF, Precision) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f(3.14159, 0), "3");
  EXPECT_EQ(fmt_f(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace powai::common
