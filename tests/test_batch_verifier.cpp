// Tests for parallel verification: batch results must be
// indistinguishable from sequential verification on distinct puzzles,
// the single-redemption guarantee must survive races (N threads, one
// winner), and the server batch path must fold stats correctly.

#include "pow/batch_verifier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "features/synthetic.hpp"
#include "framework/client.hpp"
#include "framework/server.hpp"
#include "policy/linear_policy.hpp"
#include "pow/generator.hpp"
#include "pow/solver.hpp"
#include "reputation/dabr.hpp"

namespace powai::pow {
namespace {

using common::ErrorCode;

/// Owning storage for one solved puzzle; VerificationJob only points.
struct Solved {
  Puzzle puzzle;
  Solution solution;
  std::string observed_ip;
};

struct Rig {
  common::ManualClock clock;
  PuzzleGenerator generator;
  Verifier verifier;
  Solver solver;
  std::deque<Solved> store;  // deque: stable addresses across push_back

  explicit Rig(VerifierConfig config = {})
      : generator(clock, common::bytes_of("batch-secret")),
        verifier(clock, common::bytes_of("batch-secret"), config) {}

  Solved& solved(unsigned difficulty, const std::string& ip = "1.2.3.4") {
    const Puzzle p = generator.issue(ip, difficulty);
    const SolveResult r = solver.solve(p);
    EXPECT_TRUE(r.found);
    store.push_back({p, r.solution, {}});
    return store.back();
  }

  VerificationJob solved_job(unsigned difficulty,
                             const std::string& ip = "1.2.3.4") {
    return job_for(solved(difficulty, ip));
  }

  static VerificationJob job_for(const Solved& s) {
    return {&s.puzzle, &s.solution,
            s.observed_ip.empty() ? nullptr : &s.observed_ip};
  }
};

std::vector<ErrorCode> codes(const std::vector<common::Status>& statuses) {
  std::vector<ErrorCode> out;
  out.reserve(statuses.size());
  for (const auto& st : statuses) {
    out.push_back(st.ok() ? ErrorCode::kOk : st.error().code);
  }
  return out;
}

TEST(BatchVerifier, EmptyBatch) {
  Rig rig;
  BatchVerifier batch(rig.verifier, 2);
  EXPECT_TRUE(batch.verify_batch({}).empty());
}

TEST(BatchVerifier, AcceptsAllValidSolutions) {
  Rig rig;
  std::vector<VerificationJob> jobs;
  for (int i = 0; i < 32; ++i) jobs.push_back(rig.solved_job(4));

  BatchVerifier batch(rig.verifier, 4);
  const auto results = batch.verify_batch(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << "job " << i;
  }
  EXPECT_EQ(rig.verifier.replay_entries(), jobs.size());
}

TEST(BatchVerifier, BatchEqualsSequentialOnDistinctPuzzles) {
  // Two rigs with identical clocks/secrets see identical puzzles; one
  // verifies the batch in parallel, the other sequentially. For
  // distinct puzzle ids the outcome vectors must match element-wise.
  Rig parallel_rig;
  Rig sequential_rig;

  auto make_jobs = [](Rig& rig) {
    std::vector<VerificationJob> jobs;
    // Valid solutions.
    for (int i = 0; i < 8; ++i) jobs.push_back(rig.solved_job(4));
    // Wrong nonce.
    Solved& bad = rig.solved(4);
    bad.solution.nonce ^= 0xdeadULL;
    jobs.push_back(Rig::job_for(bad));
    // Wrong binding.
    Solved& misbound = rig.solved(4, "10.0.0.9");
    misbound.observed_ip = "10.9.9.9";
    jobs.push_back(Rig::job_for(misbound));
    // Tampered difficulty (MAC mismatch).
    Solved& forged = rig.solved(4);
    forged.puzzle.difficulty = 1;
    jobs.push_back(Rig::job_for(forged));
    return jobs;
  };

  const auto parallel_jobs = make_jobs(parallel_rig);
  const auto sequential_jobs = make_jobs(sequential_rig);

  BatchVerifier parallel_batch(parallel_rig.verifier, 4);
  BatchVerifier sequential_batch(sequential_rig.verifier, 4);

  const auto parallel_codes = codes(parallel_batch.verify_batch(parallel_jobs));
  const auto sequential_codes =
      codes(sequential_batch.verify_sequential(sequential_jobs));
  EXPECT_EQ(parallel_codes, sequential_codes);
  EXPECT_EQ(parallel_rig.verifier.replay_entries(),
            sequential_rig.verifier.replay_entries());
}

TEST(BatchVerifier, DuplicateSolutionInOneBatchRedeemsExactlyOnce) {
  Rig rig;
  const VerificationJob job = rig.solved_job(6);
  std::vector<VerificationJob> jobs(16, job);

  BatchVerifier batch(rig.verifier, 4);
  const auto results = batch.verify_batch(jobs);
  const auto cs = codes(results);
  EXPECT_EQ(std::count(cs.begin(), cs.end(), ErrorCode::kOk), 1);
  EXPECT_EQ(std::count(cs.begin(), cs.end(), ErrorCode::kReplay), 15);
  EXPECT_EQ(rig.verifier.replay_entries(), 1u);
}

TEST(BatchVerifier, ConcurrentVerifyFromManyThreadsAcceptsOnce) {
  // The raw race, without the batch API: N threads call verify() on a
  // shared Verifier with the same solved puzzle. Exactly one may win.
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  Rig rig;

  for (int round = 0; round < kRounds; ++round) {
    const VerificationJob job = rig.solved_job(4);
    std::atomic<int> accepted{0};
    std::atomic<int> replayed{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        const common::Status st =
            rig.verifier.verify(*job.puzzle, *job.solution);
        if (st.ok()) {
          accepted.fetch_add(1);
        } else if (st.error().code == ErrorCode::kReplay) {
          replayed.fetch_add(1);
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    ASSERT_EQ(accepted.load(), 1) << "round " << round;
    ASSERT_EQ(replayed.load(), kThreads - 1) << "round " << round;
  }
}

TEST(BatchVerifier, SharedExternalPool) {
  Rig rig;
  common::ThreadPool pool(2);
  BatchVerifier batch(rig.verifier, pool);
  EXPECT_EQ(batch.threads(), 2u);

  std::vector<VerificationJob> jobs;
  for (int i = 0; i < 8; ++i) jobs.push_back(rig.solved_job(4));
  const auto results = batch.verify_batch(jobs);
  for (const auto& st : results) EXPECT_TRUE(st.ok());
}

// --- Server batch path ----------------------------------------------------

class ServerBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(42);
    const features::SyntheticTraceGenerator gen;
    model_.fit(gen.generate(400, 400, rng));
    features_ = gen.sample(false, rng);
  }

  framework::ServerConfig base_config() {
    framework::ServerConfig cfg;
    cfg.master_secret = common::bytes_of("server-batch-secret");
    cfg.verify_threads = 4;
    return cfg;
  }

  common::ManualClock clock_;
  reputation::DabrModel model_;
  policy::LinearPolicy policy_ = policy::LinearPolicy::policy2();
  features::FeatureVector features_;
};

TEST_F(ServerBatchTest, BatchSubmissionMatchesSingleSubmissionSemantics) {
  framework::PowServer server(clock_, model_, policy_, base_config());
  framework::PowClient client("10.0.0.1");
  Solver solver;

  std::vector<framework::Submission> submissions;
  for (int i = 0; i < 12; ++i) {
    const framework::Request request = client.make_request("/", features_);
    auto outcome = server.on_request(request);
    ASSERT_TRUE(std::holds_alternative<framework::Challenge>(outcome));
    const auto& challenge = std::get<framework::Challenge>(outcome);
    const SolveResult r = solver.solve(challenge.puzzle);
    ASSERT_TRUE(r.found);
    submissions.push_back(
        {challenge.request_id, challenge.puzzle, r.solution});
  }
  // Corrupt the last solution.
  submissions.back().solution.nonce ^= 1;

  const std::vector<framework::Response> responses =
      server.on_submission_batch(submissions);
  ASSERT_EQ(responses.size(), submissions.size());
  for (std::size_t i = 0; i + 1 < responses.size(); ++i) {
    EXPECT_EQ(responses[i].status, ErrorCode::kOk) << "submission " << i;
    EXPECT_EQ(responses[i].request_id, submissions[i].request_id);
  }
  EXPECT_EQ(responses.back().status, ErrorCode::kBadSolution);

  EXPECT_EQ(server.stats().served, 11u);
  EXPECT_EQ(server.stats().rejected_bad_solution, 1u);

  // Resubmitting the whole batch is all replays (plus the still-bad one).
  const auto replayed = server.on_submission_batch(submissions);
  for (std::size_t i = 0; i + 1 < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i].status, ErrorCode::kReplay) << "submission " << i;
  }
  EXPECT_EQ(server.stats().rejected_replay, 11u);
}

TEST_F(ServerBatchTest, ObservedIpsLengthMismatchThrows) {
  framework::PowServer server(clock_, model_, policy_, base_config());
  const std::vector<framework::Submission> submissions(2);
  const std::vector<std::string> ips(1);
  EXPECT_THROW((void)server.on_submission_batch(submissions, ips),
               std::invalid_argument);
}

}  // namespace
}  // namespace powai::pow
