// Tests for deterministic fault-injection campaigns: bit-reproducibility
// across reruns and execution shapes, invariants over a seed range, and
// the shrink-to-minimal-repro loop (driven by the fail_on_kind test
// hook). Exercises the async front end's drain threads and the server's
// verify pool, so the suite also runs under the `concurrency` label.

#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/workload.hpp"

namespace powai::sim {
namespace {

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(31);
    WorkloadConfig wl;
    model_.fit(make_training_set(wl, 300, 300, rng));

    config_.benign_clients = 3;
    config_.attackers = 2;
    config_.requests_per_client = 3;
    config_.plan.max_events = 6;
  }

  reputation::DabrModel model_;
  policy::LinearPolicy policy_ = policy::LinearPolicy::policy1();
  CampaignConfig config_;
};

TEST_F(CampaignTest, SameSeedIsBitReproducible) {
  config_.seed = 9;
  const CampaignResult a = run_campaign(model_, policy_, config_);
  const CampaignResult b = run_campaign(model_, policy_, config_);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.tallies, b.tallies);
  EXPECT_EQ(a.tallies.fingerprint(), b.tallies.fingerprint());
}

TEST_F(CampaignTest, TalliesAreIndependentOfExecutionShape) {
  config_.seed = 14;
  // The sync twin inside each run already pins async == sync; this pins
  // async == async across sharding and verify-pool width.
  config_.front_end.drain_shards = 1;
  config_.verify_threads = 1;
  const CampaignResult narrow = run_campaign(model_, policy_, config_);

  config_.front_end.drain_shards = 4;
  config_.verify_threads = 4;
  const CampaignResult wide = run_campaign(model_, policy_, config_);

  EXPECT_EQ(narrow.plan, wide.plan);
  EXPECT_EQ(narrow.tallies.fingerprint(), wide.tallies.fingerprint());
  EXPECT_TRUE(narrow.passed()) << narrow.violations.front().detail;
  EXPECT_TRUE(wide.passed()) << wide.violations.front().detail;
}

TEST_F(CampaignTest, InvariantsHoldAcrossScenariosAndSeeds) {
  for (const Scenario scenario : kAllScenarios) {
    config_.scenario = scenario;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      config_.seed = seed;
      const CampaignResult result = run_campaign(model_, policy_, config_);
      EXPECT_TRUE(result.passed())
          << scenario_name(scenario) << " seed " << seed << ": "
          << result.violations.front().invariant << " — "
          << result.violations.front().detail;
      EXPECT_GT(result.tallies.requests_sent, 0u);
    }
  }
}

TEST_F(CampaignTest, TestHookFailureShrinksToMinimalPlanWithReplayCommand) {
  // The hook fails any plan containing a replay-flood event, so the
  // 1-minimal repro is exactly one event of that kind.
  config_.fail_on_kind = FaultKind::kReplayFlood;
  config_.check_sync_equivalence = false;  // speed: hook needs no twin

  std::optional<CampaignResult> failure;
  for (std::uint64_t seed = 1; seed <= 20 && !failure; ++seed) {
    config_.seed = seed;
    CampaignResult result = run_campaign(model_, policy_, config_);
    if (!result.passed()) failure = std::move(result);
  }
  ASSERT_TRUE(failure.has_value()) << "no derived plan contained a replay "
                                      "flood in 20 seeds";
  config_.seed = failure->plan.seed;

  const ShrinkReport report =
      shrink_failing_plan(model_, policy_, config_, *failure);
  EXPECT_LE(report.minimized.events.size(), failure->plan.events.size());
  ASSERT_EQ(report.minimized.events.size(), 1u);
  EXPECT_EQ(report.minimized.events[0].kind, FaultKind::kReplayFlood);
  EXPECT_FALSE(report.result.passed());
  EXPECT_GT(report.runs, 0u);

  // The minimized plan must replay: executing it again fails the same way.
  const CampaignResult replay =
      run_campaign_with_plan(model_, policy_, config_, report.minimized);
  EXPECT_FALSE(replay.passed());
  EXPECT_EQ(replay.tallies.fingerprint(),
            report.result.tallies.fingerprint());

  const std::string command = report.replay_command(config_.scenario);
  EXPECT_NE(command.find("seed=" + std::to_string(failure->plan.seed)),
            std::string::npos);
  if (!report.minimized.is_full()) {
    EXPECT_NE(command.find("keep=" + report.minimized.keep_spec()),
              std::string::npos);
  }
}

TEST_F(CampaignTest, SweepStopsAtFirstFailureAndReturnsMinimizedRepro) {
  config_.fail_on_kind = FaultKind::kMalformedFlood;
  config_.check_sync_equivalence = false;
  const SweepOutcome outcome =
      run_campaign_sweep(model_, policy_, config_, 1, 20, 60.0);
  ASSERT_TRUE(outcome.failure.has_value());
  ASSERT_TRUE(outcome.failing_seed.has_value());
  EXPECT_EQ(outcome.failure->minimized.seed, *outcome.failing_seed);
  EXPECT_EQ(outcome.failure->minimized.events.size(), 1u);
  EXPECT_EQ(outcome.failure->minimized.events[0].kind,
            FaultKind::kMalformedFlood);
  EXPECT_GE(outcome.campaigns, 1u);
}

TEST_F(CampaignTest, OverloadFlashCrowdRidesTheLadderAndRecovers) {
  // The overload acceptance run: a flash crowd with retrying clients
  // must push the degradation ladder off L0, shed real work with
  // explicit answers, keep serving benign goodput, and hand back a run
  // that satisfies every invariant — including shed_ledger (each shed
  // is accounted exactly once), degrade_recovery (the ladder is back at
  // L0 within the bounded cooldown), and exactly_once (every retrying
  // client's request resolves exactly once).
  config_.scenario = Scenario::kOverloadFlashCrowd;
  config_.seed = 7;
  config_.attackers = 4;
  config_.requests_per_client = 4;
  const CampaignResult result = run_campaign(model_, policy_, config_);
  ASSERT_TRUE(result.passed())
      << result.violations.front().invariant << " — "
      << result.violations.front().detail;

  EXPECT_GE(result.tallies.degrade_max_level, 1u) << "ladder never rode";
  const framework::ServerStats& s = result.tallies.server;
  EXPECT_GT(s.shed_degraded_requests + s.shed_degraded_submissions +
                s.shed_deadline_requests + s.shed_deadline_submissions,
            0u)
      << "overload shed nothing";
  EXPECT_GT(result.tallies.served, 0u) << "no goodput under overload";
  EXPECT_EQ(result.tallies.hung, 0u);  // retry policy: nothing dangles
}

TEST_F(CampaignTest, InjectedDrainStallTripsTheWatchdog) {
  // Hand-built plan (derived plans keep stalls tiny so fingerprints stay
  // wall-speed-independent): one 1.5s drain stall on the only shard's
  // first batch. The watchdog must flag at least one episode — asserted
  // directly and by the campaign's one-sided watchdog invariant, which
  // is part of passed().
  config_.scenario = Scenario::kOverloadFlashCrowd;
  config_.seed = 5;
  config_.front_end.drain_shards = 1;
  config_.check_sync_equivalence = false;  // wall-clock fault; skip twin

  FaultPlan plan;
  plan.seed = config_.seed;
  FaultEvent stall;
  stall.kind = FaultKind::kDrainStall;
  stall.magnitude = 1500.0;  // ms; well past the 2.5x stall_after margin
  stall.count = 1;
  stall.target = 0;  // shard 0, first batch
  plan.events.push_back(stall);
  plan.kept = {0};
  plan.derived_events = 1;

  const CampaignResult result =
      run_campaign_with_plan(model_, policy_, config_, plan);
  ASSERT_TRUE(result.passed())
      << result.violations.front().invariant << " — "
      << result.violations.front().detail;
  EXPECT_GE(result.watchdog_stalls, 1u);
}

TEST(CampaignScenarios, NamesRoundTrip) {
  for (const Scenario scenario : kAllScenarios) {
    const auto back = scenario_from_name(scenario_name(scenario));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, scenario);
  }
  EXPECT_FALSE(scenario_from_name("nope").has_value());
}

}  // namespace
}  // namespace powai::sim
