// Tests for HMAC-SHA256 against RFC 4231 vectors and the key-derivation
// helper.

#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace powai::crypto {
namespace {

using common::Bytes;
using common::bytes_of;
using common::from_hex;
using common::to_hex;

std::string hex_digest(const Digest& d) {
  return to_hex(common::BytesView(d.data(), d.size()));
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest mac = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(hex_digest(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Digest mac =
      hmac_sha256(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(hex_digest(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(hex_digest(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case4) {
  const Bytes key = from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819").value();
  const Bytes msg(50, 0xcd);
  EXPECT_EQ(hex_digest(hmac_sha256(key, msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Hmac, Rfc4231Case5Truncation) {
  // Case 5 specifies a MAC truncated to 128 bits; we compute the full
  // tag and compare its prefix.
  const Bytes key(20, 0x0c);
  const Digest mac = hmac_sha256(key, bytes_of("Test With Truncation"));
  EXPECT_EQ(hex_digest(mac).substr(0, 32), "a3b6167473100ee06e0c796c2955552b");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  // Key longer than the block size must be hashed first.
  const Bytes key(131, 0xaa);
  const Digest mac = hmac_sha256(
      key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex_digest(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, Rfc4231Case7LongKeyAndData) {
  const Bytes key(131, 0xaa);
  const Digest mac = hmac_sha256(
      key,
      bytes_of("This is a test using a larger than block-size key and a "
               "larger than block-size data. The key needs to be hashed "
               "before being used by the HMAC algorithm."));
  EXPECT_EQ(hex_digest(mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hmac, IncrementalMatchesOneShot) {
  const Bytes key = bytes_of("server-secret");
  const Bytes part1 = bytes_of("192.168.1.1|");
  const Bytes part2 = bytes_of("1647851523|");
  const Bytes part3 = bytes_of("42");

  Bytes whole = part1;
  common::append(whole, part2);
  common::append(whole, part3);

  HmacSha256 mac(key);
  mac.update(part1);
  mac.update(part2);
  mac.update(part3);
  EXPECT_EQ(mac.finish(), hmac_sha256(key, whole));
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  const Bytes msg = bytes_of("same message");
  EXPECT_NE(hmac_sha256(bytes_of("key-one"), msg),
            hmac_sha256(bytes_of("key-two"), msg));
}

TEST(DeriveKey, DistinctLabelsDistinctKeys) {
  const Bytes master = bytes_of("master-secret");
  const Bytes seed_key = derive_key(master, bytes_of("seed"), 32);
  const Bytes mac_key = derive_key(master, bytes_of("mac"), 32);
  EXPECT_EQ(seed_key.size(), 32u);
  EXPECT_EQ(mac_key.size(), 32u);
  EXPECT_NE(seed_key, mac_key);
}

TEST(DeriveKey, DeterministicAndLengthRespecting) {
  const Bytes master = bytes_of("master");
  const Bytes a = derive_key(master, bytes_of("label"), 16);
  const Bytes b = derive_key(master, bytes_of("label"), 16);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);
  // A 16-byte request is the prefix of the 32-byte expansion.
  const Bytes full = derive_key(master, bytes_of("label"), 32);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), full.begin()));
}

TEST(DeriveKey, RejectsBadLengths) {
  const Bytes master = bytes_of("master");
  EXPECT_THROW((void)derive_key(master, bytes_of("x"), 0), std::invalid_argument);
  EXPECT_THROW((void)derive_key(master, bytes_of("x"), 33), std::invalid_argument);
}

}  // namespace
}  // namespace powai::crypto
