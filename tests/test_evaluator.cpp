// Tests for the model evaluator: confusion metrics and ROC-AUC.

#include "reputation/evaluator.hpp"

#include <gtest/gtest.h>

#include "features/dataset.hpp"
#include "reputation/model.hpp"

namespace powai::reputation {
namespace {

using features::Dataset;
using features::FeatureVector;
using features::IpAddress;
using features::LabeledExample;

/// Deterministic stub: score = feature[0] (already in [0, 10]).
class StubModel final : public IReputationModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "stub"; }
  void fit(const Dataset&) override { fitted_ = true; }
  [[nodiscard]] bool fitted() const override { return fitted_; }
  [[nodiscard]] double score(const FeatureVector& x) const override {
    return clamp_score(x[0]);
  }
  [[nodiscard]] double error_epsilon() const override { return 1.0; }

 private:
  bool fitted_ = false;
};

LabeledExample example(double score_feature, bool malicious) {
  LabeledExample e;
  e.ip = IpAddress(1, 2, 3, 4);
  e.features[0] = score_feature;
  e.malicious = malicious;
  return e;
}

TEST(Evaluate, PerfectSeparation) {
  StubModel model;
  Dataset data;
  data.add(example(9.0, true));
  data.add(example(8.0, true));
  data.add(example(1.0, false));
  data.add(example(2.0, false));
  const EvaluationReport r = evaluate(model, data);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
  EXPECT_DOUBLE_EQ(r.roc_auc, 1.0);
  EXPECT_EQ(r.confusion.true_positive, 2u);
  EXPECT_EQ(r.confusion.true_negative, 2u);
}

TEST(Evaluate, CompletelyInverted) {
  StubModel model;
  Dataset data;
  data.add(example(1.0, true));   // malicious scored low -> FN
  data.add(example(9.0, false));  // benign scored high -> FP
  const EvaluationReport r = evaluate(model, data);
  EXPECT_DOUBLE_EQ(r.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(r.roc_auc, 0.0);
  EXPECT_EQ(r.confusion.false_positive, 1u);
  EXPECT_EQ(r.confusion.false_negative, 1u);
}

TEST(Evaluate, MixedCaseConfusionCounts) {
  StubModel model;
  Dataset data;
  data.add(example(9.0, true));   // TP
  data.add(example(2.0, true));   // FN
  data.add(example(8.0, false));  // FP
  data.add(example(1.0, false));  // TN
  const EvaluationReport r = evaluate(model, data);
  EXPECT_EQ(r.confusion.true_positive, 1u);
  EXPECT_EQ(r.confusion.false_negative, 1u);
  EXPECT_EQ(r.confusion.false_positive, 1u);
  EXPECT_EQ(r.confusion.true_negative, 1u);
  EXPECT_DOUBLE_EQ(r.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 0.5);
  EXPECT_DOUBLE_EQ(r.f1, 0.5);
}

TEST(Evaluate, ThresholdIsExclusive) {
  // score == threshold is NOT classified malicious.
  StubModel model;
  Dataset data;
  data.add(example(5.0, true));
  const EvaluationReport r = evaluate(model, data, 5.0);
  EXPECT_EQ(r.confusion.false_negative, 1u);
}

TEST(Evaluate, CustomThresholdShiftsDecisions) {
  StubModel model;
  Dataset data;
  data.add(example(3.0, true));
  data.add(example(1.0, false));
  EXPECT_DOUBLE_EQ(evaluate(model, data, 5.0).recall, 0.0);
  EXPECT_DOUBLE_EQ(evaluate(model, data, 2.0).recall, 1.0);
}

TEST(Evaluate, ThrowsOnEmptyData) {
  StubModel model;
  EXPECT_THROW((void)evaluate(model, Dataset{}), std::invalid_argument);
}

TEST(Evaluate, MaeVsTarget) {
  StubModel model;
  Dataset data;
  data.add(example(8.0, true));   // |8-10| = 2
  data.add(example(1.0, false));  // |1-0| = 1
  const EvaluationReport r = evaluate(model, data);
  EXPECT_DOUBLE_EQ(r.mae_vs_target, 1.5);
}

TEST(Evaluate, ReportToStringMentionsMetrics) {
  StubModel model;
  Dataset data;
  data.add(example(9.0, true));
  data.add(example(1.0, false));
  const std::string s = evaluate(model, data).to_string();
  EXPECT_NE(s.find("accuracy="), std::string::npos);
  EXPECT_NE(s.find("auc="), std::string::npos);
}

TEST(RocAuc, HandlesTiesWithMidranks) {
  // Two tied scores across classes contribute 0.5 each.
  const std::vector<double> scores = {5.0, 5.0};
  const std::vector<bool> labels = {true, false};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

TEST(RocAuc, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(roc_auc({1.0, 2.0}, {true, true}), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc({1.0, 2.0}, {false, false}), 0.5);
}

TEST(RocAuc, SizeMismatchThrows) {
  EXPECT_THROW((void)roc_auc({1.0}, {true, false}), std::invalid_argument);
}

TEST(RocAuc, KnownPartialOrdering) {
  // positives: 4, 3; negatives: 2, 1 -> AUC = 1.
  EXPECT_DOUBLE_EQ(roc_auc({4.0, 3.0, 2.0, 1.0}, {true, true, false, false}),
                   1.0);
  // One inversion: positives 4, 1; negatives 3, 2 -> pairs (4>3, 4>2,
  // 1<3, 1<2) => 2/4.
  EXPECT_DOUBLE_EQ(roc_auc({4.0, 1.0, 3.0, 2.0}, {true, true, false, false}),
                   0.5);
}

TEST(Classify, ThresholdRule) {
  EXPECT_TRUE(classify(5.1));
  EXPECT_FALSE(classify(5.0));
  EXPECT_FALSE(classify(4.9));
  EXPECT_TRUE(classify(3.0, 2.0));
}

TEST(ClampScore, Bounds) {
  EXPECT_DOUBLE_EQ(clamp_score(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp_score(11.0), 10.0);
  EXPECT_DOUBLE_EQ(clamp_score(5.5), 5.5);
}

}  // namespace
}  // namespace powai::reputation
