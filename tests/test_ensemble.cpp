// Tests for the ensemble reputation model.

#include "reputation/ensemble.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "reputation/dabr.hpp"
#include "reputation/evaluator.hpp"
#include "reputation/naive_bayes.hpp"

namespace powai::reputation {
namespace {

using features::Dataset;
using features::FeatureVector;
using features::SyntheticTraceGenerator;

Dataset make_data(std::size_t per_class, std::uint64_t seed = 1) {
  const SyntheticTraceGenerator gen;
  common::Rng rng(seed);
  return gen.generate(per_class, per_class, rng);
}

/// Stub returning a constant score with a fixed epsilon.
class ConstModel final : public IReputationModel {
 public:
  explicit ConstModel(double score, double eps = 1.0)
      : score_(score), eps_(eps) {}
  [[nodiscard]] std::string_view name() const override { return "const"; }
  void fit(const Dataset&) override { fitted_ = true; }
  [[nodiscard]] bool fitted() const override { return fitted_; }
  [[nodiscard]] double score(const FeatureVector&) const override {
    return score_;
  }
  [[nodiscard]] double error_epsilon() const override { return eps_; }

 private:
  double score_;
  double eps_;
  bool fitted_ = false;
};

std::vector<std::unique_ptr<IReputationModel>> consts(
    std::initializer_list<double> scores) {
  std::vector<std::unique_ptr<IReputationModel>> out;
  for (double s : scores) out.push_back(std::make_unique<ConstModel>(s));
  return out;
}

TEST(Ensemble, RejectsEmptyOrNullMembers) {
  EXPECT_THROW(EnsembleModel({}), std::invalid_argument);
  std::vector<std::unique_ptr<IReputationModel>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(EnsembleModel(std::move(with_null)), std::invalid_argument);
}

TEST(Ensemble, RejectsBadWeights) {
  EXPECT_THROW(EnsembleModel(consts({1.0, 2.0}), {1.0}),
               std::invalid_argument);
  EXPECT_THROW(EnsembleModel(consts({1.0, 2.0}), {1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(EnsembleModel(consts({1.0, 2.0}), {1.0, -1.0}),
               std::invalid_argument);
}

TEST(Ensemble, UniformWeightsAverageScores) {
  EnsembleModel ensemble(consts({2.0, 4.0, 6.0}));
  ensemble.fit(Dataset{});
  EXPECT_DOUBLE_EQ(ensemble.score(FeatureVector{}), 4.0);
}

TEST(Ensemble, WeightsAreNormalized) {
  EnsembleModel ensemble(consts({0.0, 10.0}), {3.0, 1.0});
  ensemble.fit(Dataset{});
  EXPECT_DOUBLE_EQ(ensemble.score(FeatureVector{}), 2.5);  // 0.75*0 + 0.25*10
}

TEST(Ensemble, FittedOnlyWhenAllMembersFitted) {
  std::vector<std::unique_ptr<IReputationModel>> members;
  members.push_back(std::make_unique<DabrModel>());
  members.push_back(std::make_unique<NaiveBayesModel>());
  EnsembleModel ensemble(std::move(members));
  EXPECT_FALSE(ensemble.fitted());
  ensemble.fit(make_data(150));
  EXPECT_TRUE(ensemble.fitted());
  EXPECT_EQ(ensemble.size(), 2u);
}

TEST(Ensemble, EpsilonShrinksWithMemberCount) {
  EnsembleModel one(consts({5.0}));
  EnsembleModel four(consts({5.0, 5.0, 5.0, 5.0}));
  // Same per-member epsilon (1.0): the 4-member ensemble reports half.
  EXPECT_DOUBLE_EQ(one.error_epsilon(), 1.0);
  EXPECT_DOUBLE_EQ(four.error_epsilon(), 0.5);
}

TEST(Ensemble, DefaultEnsembleBeatsDabrAlone) {
  const Dataset train = make_data(800, /*seed=*/5);
  const Dataset test = make_data(400, /*seed=*/6);

  DabrModel dabr;
  dabr.fit(train);
  auto ensemble = make_default_ensemble();
  ensemble->fit(train);

  const EvaluationReport solo = evaluate(dabr, test);
  const EvaluationReport grouped = evaluate(*ensemble, test);
  EXPECT_GT(grouped.accuracy, solo.accuracy);
  EXPECT_GT(grouped.roc_auc, solo.roc_auc);
  EXPECT_LT(ensemble->error_epsilon(), dabr.error_epsilon());
}

TEST(Ensemble, ScoresClampedToRange) {
  EnsembleModel ensemble(consts({10.0, 10.0}));
  ensemble.fit(Dataset{});
  const double s = ensemble.score(FeatureVector{});
  EXPECT_GE(s, kMinScore);
  EXPECT_LE(s, kMaxScore);
  EXPECT_EQ(ensemble.name(), "ensemble");
}

TEST(Ensemble, MemberAccessor) {
  EnsembleModel ensemble(consts({1.0, 2.0}));
  EXPECT_EQ(ensemble.member(0).name(), "const");
  EXPECT_THROW((void)ensemble.member(5), std::out_of_range);
}

}  // namespace
}  // namespace powai::reputation
