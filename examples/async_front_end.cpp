// The asynchronous transport front end, end to end: wire clients flood
// a server whose endpoint enqueues into a small bounded RequestQueue; a
// paused drain lets the burst hit the backpressure limit so the
// overflow gets explicit kUnavailable answers; then the AsyncFrontEnd
// drains the backlog in adaptive batches onto the server's thread pool
// and every surviving exchange completes. Prints the message ledger —
// every request is answered exactly once, served or refused, never
// silently dropped.
//
// Usage: ./build/examples/async_front_end [clients=12] [queue=4]
//        [max_batch=8]

#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "framework/async_front_end.hpp"
#include "framework/transport.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const auto n_clients = static_cast<std::size_t>(args.get_u64("clients", 12));
  const auto queue_cap = static_cast<std::size_t>(args.get_u64("queue", 4));
  const auto max_batch = static_cast<std::size_t>(args.get_u64("max_batch", 8));

  netsim::EventLoop loop;
  common::Rng net_rng(11);
  netsim::Network network(loop, net_rng);
  // Zero jitter: the whole burst lands at one simulated instant, so the
  // queue bound and the adaptive batching actually show in the output.
  netsim::LinkModel link;
  link.base_latency = std::chrono::milliseconds(15);
  link.jitter = common::Duration::zero();
  network.set_default_link(link);

  common::Rng rng(3);
  const features::SyntheticTraceGenerator traffic;
  reputation::DabrModel model;
  model.fit(traffic.generate(300, 300, rng));
  const policy::LinearPolicy policy = policy::LinearPolicy::policy1();

  framework::ServerConfig cfg;
  cfg.master_secret = common::bytes_of("async-demo-secret");
  framework::PowServer server(loop.clock(), model, policy, cfg);

  // Paused: the burst lands before anything drains, so the queue bound
  // is actually exercised instead of racing the drain thread.
  framework::AsyncFrontEndConfig fc;
  fc.queue_capacity = queue_cap;
  fc.max_batch = max_batch;
  fc.start_paused = true;
  const char* host = "198.51.100.250";
  framework::AsyncFrontEnd front_end(loop, network, host, server, fc);
  framework::ServerEndpoint endpoint(network, host, server, front_end);

  std::vector<std::unique_ptr<framework::WireClient>> clients;
  int served = 0;
  int overloaded = 0;
  int answered = 0;
  for (std::size_t i = 0; i < n_clients; ++i) {
    const std::string ip = "10.0.0." + std::to_string(i + 1);
    clients.push_back(
        std::make_unique<framework::WireClient>(loop, network, ip, host));
    clients.back()->send_request(
        "/resource", traffic.sample(false, rng),
        [&, ip](const framework::Response& r, common::Duration d) {
          ++answered;
          if (r.status == common::ErrorCode::kOk) ++served;
          if (r.status == common::ErrorCode::kUnavailable) ++overloaded;
          std::printf("%-12s %-12s latency %7.1f ms\n", ip.c_str(),
                      std::string(common::error_code_name(r.status)).c_str(),
                      common::to_millis_f(d));
        });
  }

  // run_until_idle starts the drain and pumps until the wire, queue,
  // and in-flight batches are all empty.
  const std::size_t events = front_end.run_until_idle();

  const framework::FrontEndStats fs = front_end.stats();
  const framework::ServerStats ss = server.stats();
  std::printf("\nledger: %zu requests -> %d answered (%d served, %d "
              "overloaded), 0 silent drops\n",
              n_clients, answered, served, overloaded);
  std::printf("front end: %llu batches, %llu messages, largest batch %zu "
              "(queue capacity %zu, max_batch %zu)\n",
              static_cast<unsigned long long>(fs.batches),
              static_cast<unsigned long long>(fs.messages), fs.largest_batch,
              queue_cap, max_batch);
  std::printf("server: %llu challenges issued, %llu served, %llu overload "
              "refusals; %zu loop events\n",
              static_cast<unsigned long long>(ss.challenges_issued),
              static_cast<unsigned long long>(ss.served),
              static_cast<unsigned long long>(ss.rejected_overload), events);
  return answered == static_cast<int>(n_clients) ? 0 : 1;
}
