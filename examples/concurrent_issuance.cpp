// Concurrent issuance: the thread-safe PowServer front-end under real
// parallel load. Part 1 issues a whole batch of requests in one
// on_request_batch call; part 2 drives N client threads through the
// full request→solve→submit loop with sim::LoadHarness and shows the
// atomic stats snapshot balancing exactly against the client-side view.
//
// Build & run:   ./build/examples/concurrent_issuance [clients=4]
//                [requests=16] [seed=7]

#include <cstdio>
#include <vector>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "framework/server.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/load_harness.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const auto clients = static_cast<std::size_t>(args.get_u64("clients", 4));
  const auto requests = static_cast<std::size_t>(args.get_u64("requests", 16));
  const std::uint64_t seed = args.get_u64("seed", 7);

  common::Rng rng(seed);
  const features::SyntheticTraceGenerator traffic;
  reputation::DabrModel model;
  model.fit(traffic.generate(400, 400, rng));
  const policy::LinearPolicy policy = policy::LinearPolicy::policy2();

  framework::ServerConfig config;
  config.master_secret = common::bytes_of("concurrent-issuance-secret");
  config.verify_threads = 2;
  framework::PowServer server(common::WallClock::instance(), model, policy,
                              config);

  // --- Part 1: batch issuance --------------------------------------------
  // A front-end drains its socket and hands the server a whole batch;
  // scoring and issuance fan out over the server's pool.
  std::vector<framework::Request> batch;
  for (std::size_t i = 0; i < 8; ++i) {
    framework::Request request;
    request.client_ip = sim::load_client_ip(i);
    request.features = traffic.sample(false, rng);
    request.request_id = i + 1;
    batch.push_back(std::move(request));
  }
  const auto outcomes = server.on_request_batch(batch);
  std::size_t issued = 0;
  for (const auto& outcome : outcomes) {
    if (std::holds_alternative<framework::Challenge>(outcome)) ++issued;
  }
  std::printf("on_request_batch: %zu requests -> %zu challenges issued\n",
              batch.size(), issued);

  // --- Part 2: closed-loop load -------------------------------------------
  std::vector<features::FeatureVector> client_features;
  for (std::size_t i = 0; i < clients; ++i) {
    client_features.push_back(traffic.sample(false, rng));
  }

  sim::LoadHarnessConfig lc;
  lc.client_threads = clients;
  lc.requests_per_client = requests;
  sim::LoadHarness harness(server, lc);
  const sim::LoadReport report = harness.run(client_features);

  std::printf("\n%zu client threads x %zu round trips in %.3f s\n", clients,
              requests, report.wall_s);
  std::printf("  served=%llu timeouts=%llu rate-limited=%llu other=%llu\n",
              static_cast<unsigned long long>(report.served),
              static_cast<unsigned long long>(report.solve_timeouts),
              static_cast<unsigned long long>(report.rate_limited),
              static_cast<unsigned long long>(report.rejected_other));
  std::printf("  issuance: %.0f challenges/s, service: %.0f resources/s\n",
              report.issued_per_s(), report.served_per_s());

  const framework::ServerStats& delta = report.server_delta;
  std::printf("  server delta: requests=%llu issued=%llu served=%llu "
              "(mean difficulty %.2f)\n",
              static_cast<unsigned long long>(delta.requests),
              static_cast<unsigned long long>(delta.challenges_issued),
              static_cast<unsigned long long>(delta.served),
              delta.mean_difficulty());

  const bool balanced = delta.served == report.served &&
                        delta.requests == report.round_trips;
  std::printf("  client and server tallies %s\n",
              balanced ? "balance exactly" : "DISAGREE (bug!)");
  return balanced ? 0 : 1;
}
