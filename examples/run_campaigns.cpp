// Seed-driven fault-injection campaigns against the full wire stack.
//
// Sweep mode (default): derives a fault schedule per seed, runs each
// campaign (async transport + the synchronous twin), checks the
// invariants, and stops at the first failure — which it then shrinks by
// bisecting the schedule and reports as a one-line replay command, a GH
// `::error::` annotation, and (with json=) a machine-readable artifact.
//
// Replay mode (seed= given): re-executes exactly one campaign, with
// keep=i,j,k optionally restricting the derived schedule to a minimized
// subset — the command a failed sweep prints.
//
// Usage:
//   ./build/examples/run_campaigns [scenario=all] [seed0=1] [seeds=25]
//       [budget_s=60] [benign=5] [attackers=3] [requests=5]
//       [sync_check=1] [fail_on=<fault kind>] [json=campaign_repro.json]
//   ./build/examples/run_campaigns scenario=replay_flood seed=17 keep=2,5
//
// fail_on= plants the test hook that reports a violation whenever the
// executed plan contains that fault kind — the way CI and the tests
// prove the minimizer works without shipping a real bug.

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/campaign.hpp"

namespace {

using namespace powai;

std::vector<std::size_t> parse_keep(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                    : comma - pos);
    if (!token.empty()) out.push_back(std::stoul(token));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

void write_artifact(const std::string& path, sim::Scenario scenario,
                    const sim::ShrinkReport& report) {
  common::JsonWriter json;
  json.begin_object()
      .field_str("scenario", sim::scenario_name(scenario))
      .field_u64("seed", report.minimized.seed)
      .field_str("keep", report.minimized.keep_spec())
      .field_str("replay_command", report.replay_command(scenario))
      .field_u64("shrink_runs", report.runs)
      .field_str("fingerprint", report.result.tallies.fingerprint());
  json.begin_array("events");
  for (const auto& event : report.minimized.events) {
    json.begin_object().field_str("event", event.describe()).end_object();
  }
  json.end_array();
  json.begin_array("violations");
  for (const auto& violation : report.result.violations) {
    json.begin_object()
        .field_str("invariant", violation.invariant)
        .field_str("detail", violation.detail)
        .end_object();
  }
  json.end_array().end_object();
  std::ofstream out(path);
  out << json.str() << "\n";
  std::printf("repro artifact written to %s\n", path.c_str());
}

void print_failure(sim::Scenario scenario, const sim::ShrinkReport& report) {
  std::printf("\nFAILED campaign: scenario=%s seed=%llu\n",
              std::string(sim::scenario_name(scenario)).c_str(),
              static_cast<unsigned long long>(report.minimized.seed));
  std::printf("minimized after %zu shrink runs to %zu event(s):\n%s",
              report.runs, report.minimized.events.size(),
              report.minimized.summary().c_str());
  for (const auto& violation : report.result.violations) {
    std::printf("  violated %s: %s\n", violation.invariant.c_str(),
                violation.detail.c_str());
  }
  const std::string replay = report.replay_command(scenario);
  std::printf("replay: %s\n", replay.c_str());
  // GitHub Actions annotation — shows the minimized repro on the run
  // summary without digging through logs.
  std::printf("::error::campaign invariant violated (%s); replay with: %s\n",
              std::string(sim::scenario_name(scenario)).c_str(),
              replay.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const common::Config args = common::Config::from_args(argc, argv);

  sim::CampaignConfig cfg;
  cfg.benign_clients = static_cast<std::size_t>(args.get_u64("benign", 5));
  cfg.attackers = static_cast<std::size_t>(args.get_u64("attackers", 3));
  cfg.requests_per_client =
      static_cast<std::size_t>(args.get_u64("requests", 5));
  cfg.check_sync_equivalence = args.get_bool("sync_check", true);
  if (const auto fail_on = args.get("fail_on")) {
    const auto kind = sim::fault_kind_from_name(*fail_on);
    if (!kind) {
      std::fprintf(stderr, "unknown fail_on kind: %s\n", fail_on->c_str());
      return 2;
    }
    cfg.fail_on_kind = *kind;
  }

  const std::string scenario_arg = args.get_string("scenario", "all");
  std::vector<sim::Scenario> scenarios;
  if (scenario_arg == "all") {
    scenarios.assign(sim::kAllScenarios.begin(), sim::kAllScenarios.end());
  } else if (const auto s = sim::scenario_from_name(scenario_arg)) {
    scenarios.push_back(*s);
  } else {
    std::fprintf(stderr, "unknown scenario: %s\n", scenario_arg.c_str());
    return 2;
  }

  // Model + policy shared by every campaign. policy1's modest
  // difficulties keep solver work CI-sized; the invariants do not depend
  // on the policy choice.
  common::Rng rng(7);
  const features::SyntheticTraceGenerator traffic;
  reputation::DabrModel model;
  model.fit(traffic.generate(300, 300, rng));
  const policy::LinearPolicy policy = policy::LinearPolicy::policy1();

  // --- Replay mode --------------------------------------------------------
  if (args.has("seed")) {
    cfg.scenario = scenarios.front();
    cfg.seed = args.get_u64("seed", 1);
    sim::FaultPlan plan = sim::FaultPlan::derive(cfg.seed, cfg.plan);
    if (const auto keep = args.get("keep")) {
      plan = plan.subset(parse_keep(*keep));
    }
    std::printf("replaying scenario=%s\n%s",
                std::string(sim::scenario_name(cfg.scenario)).c_str(),
                plan.summary().c_str());
    const sim::CampaignResult result =
        sim::run_campaign_with_plan(model, policy, cfg, plan);
    std::printf("fingerprint: %s\n", result.tallies.fingerprint().c_str());
    const framework::ServerStats& s = result.tallies.server;
    std::printf(
        "overload: shed deadline=%llu queue=%llu degraded=%llu "
        "timed_out=%llu ladder_max=L%llu recovery=%llu win "
        "watchdog_stalls=%llu\n",
        static_cast<unsigned long long>(s.shed_deadline_requests +
                                        s.shed_deadline_submissions),
        static_cast<unsigned long long>(s.shed_queue_requests +
                                        s.shed_queue_submissions),
        static_cast<unsigned long long>(s.shed_degraded_requests +
                                        s.shed_degraded_submissions),
        static_cast<unsigned long long>(result.tallies.timed_out),
        static_cast<unsigned long long>(result.tallies.degrade_max_level),
        static_cast<unsigned long long>(result.recovery_windows),
        static_cast<unsigned long long>(result.watchdog_stalls));
    if (result.passed()) {
      std::printf("campaign passed (%.2fs)\n", result.wall_s);
      return 0;
    }
    for (const auto& violation : result.violations) {
      std::printf("violated %s: %s\n", violation.invariant.c_str(),
                  violation.detail.c_str());
    }
    return 1;
  }

  // --- Sweep mode ---------------------------------------------------------
  const std::uint64_t seed0 = args.get_u64("seed0", 1);
  const auto max_seeds = static_cast<std::size_t>(args.get_u64("seeds", 25));
  const double budget_s = args.get_f64("budget_s", 60.0);

  // The wall-clock budget is shared across scenarios so the sweep stays
  // inside one CI time box regardless of how slow the host is.
  const double per_scenario_budget =
      budget_s / static_cast<double>(scenarios.size());
  std::size_t total = 0;
  for (const sim::Scenario scenario : scenarios) {
    cfg.scenario = scenario;
    const sim::SweepOutcome outcome = sim::run_campaign_sweep(
        model, policy, cfg, seed0, max_seeds, per_scenario_budget);
    total += outcome.campaigns;
    std::printf(
        "scenario %-22s %3zu campaign(s), seeds %llu..%llu: %s "
        "(shed dl=%llu q=%llu deg=%llu timed_out=%llu ladder_max=L%llu "
        "wd_stalls=%llu)\n",
        std::string(sim::scenario_name(scenario)).c_str(), outcome.campaigns,
        static_cast<unsigned long long>(seed0),
        static_cast<unsigned long long>(outcome.last_seed),
        outcome.failure ? "FAIL" : "ok",
        static_cast<unsigned long long>(outcome.shed_deadline),
        static_cast<unsigned long long>(outcome.shed_queue),
        static_cast<unsigned long long>(outcome.shed_degraded),
        static_cast<unsigned long long>(outcome.timed_out),
        static_cast<unsigned long long>(outcome.degrade_max_level),
        static_cast<unsigned long long>(outcome.watchdog_stalls));
    if (outcome.failure) {
      print_failure(scenario, *outcome.failure);
      if (const auto json = args.get("json")) {
        write_artifact(*json, scenario, *outcome.failure);
      }
      return 1;
    }
  }
  std::printf("all %zu campaign(s) passed\n", total);
  return 0;
}
