// Deterministic replay: run the same seeded wire workload twice with
// *different* execution shapes — first synchronous/serial, then through
// the async front end with a server thread pool and a sharded drain —
// and diff the per-client histories record by record. Since the keyed-
// derivation refactor, every puzzle id, 32-byte seed, difficulty
// (including randomized Policy 3 draws), timestamp, and outcome is a
// pure function of stable identity, so the two runs must match byte for
// byte; the example exits nonzero on the first divergence. This is the
// property that lets scaling experiments be verified by byte-comparison
// instead of tally-comparison.
//
// Build & run:   ./build/examples/deterministic_replay [clients=6]
//                [requests=5] [verify_threads=3] [drain_shards=3]
//                [epsilon=1.5] [seed=11]

#include <cstdio>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "policy/error_range_policy.hpp"
#include "reputation/dabr.hpp"
#include "sim/load_harness.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const auto clients = static_cast<std::size_t>(args.get_u64("clients", 6));
  const auto requests = static_cast<std::size_t>(args.get_u64("requests", 5));
  const auto verify_threads =
      static_cast<std::size_t>(args.get_u64("verify_threads", 3));
  const auto drain_shards =
      static_cast<std::size_t>(args.get_u64("drain_shards", 3));
  const double epsilon = args.get_f64("epsilon", 1.5);
  const std::uint64_t seed = args.get_u64("seed", 11);

  common::Rng rng(seed);
  const features::SyntheticTraceGenerator traffic;
  reputation::DabrModel model;
  model.fit(traffic.generate(300, 300, rng));
  // The paper's randomized Policy 3 — the hardest case for determinism,
  // since every difficulty is itself a random draw.
  const policy::ErrorRangePolicy policy(epsilon);

  std::vector<features::FeatureVector> features;
  for (std::size_t i = 0; i < clients; ++i) {
    features.push_back(traffic.sample(i % 3 == 0, rng));
  }

  const auto run = [&](bool async, std::size_t threads, std::size_t shards) {
    framework::ServerConfig cfg;
    cfg.master_secret = common::bytes_of("deterministic-replay-secret");
    cfg.verify_threads = threads;
    sim::WireLoadConfig wc;
    wc.clients = clients;
    wc.requests_per_client = requests;
    wc.async = async;
    wc.front_end.drain_shards = shards;
    wc.front_end.max_batch = 4;
    wc.capture_history = true;
    return sim::run_wire_load(model, policy, cfg, features, wc);
  };

  std::printf("run A: synchronous endpoint (serial service)\n");
  const sim::WireLoadReport a = run(false, 1, 1);
  std::printf("run B: async front end, verify_threads=%zu, drain_shards=%zu\n",
              verify_threads, drain_shards);
  const sim::WireLoadReport b = run(true, verify_threads, drain_shards);

  std::size_t compared = 0;
  std::size_t divergences = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    const sim::ClientHistory& ha = a.histories[c];
    const sim::ClientHistory& hb = b.histories[c];
    if (ha.size() != hb.size()) {
      std::printf("DIVERGENCE client %zu: %zu records vs %zu\n", c, ha.size(),
                  hb.size());
      ++divergences;
      continue;
    }
    for (std::size_t i = 0; i < ha.size(); ++i) {
      ++compared;
      if (ha[i] == hb[i]) continue;
      ++divergences;
      std::printf(
          "DIVERGENCE client %zu record %zu:\n"
          "  A: id=%016llx d=%u seed=%s...\n"
          "  B: id=%016llx d=%u seed=%s...\n",
          c, i, static_cast<unsigned long long>(ha[i].puzzle_id),
          ha[i].difficulty, common::to_hex(ha[i].seed).substr(0, 16).c_str(),
          static_cast<unsigned long long>(hb[i].puzzle_id), hb[i].difficulty,
          common::to_hex(hb[i].seed).substr(0, 16).c_str());
    }
  }

  std::printf("\ncompared %zu records across %zu clients: ", compared,
              clients);
  if (divergences != 0) {
    std::printf("%zu divergences — determinism is BROKEN\n", divergences);
    return 1;
  }
  std::printf("bit-identical\n");
  std::printf("(served %llu, difficulty sum %llu, sim elapsed equal: %s)\n",
              static_cast<unsigned long long>(a.served),
              static_cast<unsigned long long>(a.server_delta.difficulty_sum),
              a.sim_elapsed == b.sim_elapsed ? "yes" : "NO");
  return a.sim_elapsed == b.sim_elapsed ? 0 : 1;
}
