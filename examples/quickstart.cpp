// Quickstart: the three PoW roles (issuer, solver, verifier) in one file,
// then the full AI-assisted pipeline in a dozen lines.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "framework/client.hpp"
#include "framework/server.hpp"
#include "policy/linear_policy.hpp"
#include "pow/generator.hpp"
#include "pow/solver.hpp"
#include "pow/verifier.hpp"
#include "reputation/dabr.hpp"

int main() {
  using namespace powai;

  // --- Part 1: bare PoW --------------------------------------------------
  // The issuer and verifier share a master secret; the client only ever
  // sees the puzzle.
  const common::WallClock& clock = common::WallClock::instance();
  const common::Bytes secret = common::bytes_of("quickstart-secret");

  pow::PuzzleGenerator issuer(clock, secret);
  pow::Verifier verifier(clock, secret);

  const pow::Puzzle puzzle = issuer.issue("192.0.2.1", /*difficulty=*/12);
  std::printf("issued puzzle id=%llu difficulty=%u seed=%s...\n",
              static_cast<unsigned long long>(puzzle.puzzle_id),
              puzzle.difficulty, common::to_hex(puzzle.seed).substr(0, 16).c_str());

  const pow::SolveResult solved = pow::Solver{}.solve(puzzle);
  std::printf("solved in %llu attempts (nonce=%llu)\n",
              static_cast<unsigned long long>(solved.attempts),
              static_cast<unsigned long long>(solved.solution.nonce));

  const common::Status ok = verifier.verify(puzzle, solved.solution, "192.0.2.1");
  std::printf("verification: %s\n", ok.ok() ? "accepted" : ok.error().to_string().c_str());

  // --- Part 2: the AI-assisted pipeline ----------------------------------
  // Train the reputation model on labeled traffic, pick a policy, stand up
  // the server, and run one trustworthy and one suspicious client.
  common::Rng rng(7);
  const features::SyntheticTraceGenerator traffic;
  reputation::DabrModel model;
  model.fit(traffic.generate(500, 500, rng));
  std::printf("\nDAbR trained (epsilon=%.2f)\n", model.error_epsilon());

  const policy::LinearPolicy policy = policy::LinearPolicy::policy2();
  framework::ServerConfig config;
  config.master_secret = secret;
  framework::PowServer server(clock, model, policy, config);

  framework::PowClient good_client("10.0.0.1");
  framework::PowClient bot("203.0.0.1");

  const auto good_trip =
      good_client.run(server, "/", traffic.sample(false, rng));
  const auto bot_trip = bot.run(server, "/", traffic.sample(true, rng));

  std::printf("benign client: difficulty=%u attempts=%llu served=%s\n",
              good_trip.difficulty,
              static_cast<unsigned long long>(good_trip.attempts),
              good_trip.served ? "yes" : "no");
  std::printf("suspicious client: difficulty=%u attempts=%llu served=%s\n",
              bot_trip.difficulty,
              static_cast<unsigned long long>(bot_trip.attempts),
              bot_trip.served ? "yes" : "no");
  std::printf("-> the suspicious client paid %.0fx more hash work\n",
              good_trip.attempts > 0
                  ? static_cast<double>(bot_trip.attempts) /
                        static_cast<double>(good_trip.attempts)
                  : 0.0);
  return 0;
}
