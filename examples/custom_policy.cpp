// Customizing the policy module — the paper's extension point ("a network
// administrator may specify a policy based on her specific security
// needs"). Three routes are shown:
//   1. a text policy in the rule DSL,
//   2. a hand-written IPolicy subclass,
//   3. composing the built-ins with decorators (load surcharge + clamp).
// The program prints each policy's reputation→difficulty curve.
//
// Usage:   ./build/examples/custom_policy

#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "policy/dsl.hpp"
#include "policy/extensions.hpp"
#include "policy/linear_policy.hpp"

namespace {

/// Route 2: a custom C++ policy. Difficulty follows the square of the
/// score so mid-range clients stay cheap and only the worst pay heavily.
class QuadraticPolicy final : public powai::policy::IPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "quadratic"; }
  [[nodiscard]] powai::policy::Difficulty difficulty(
      double score, powai::common::Rng&) const override {
    return powai::policy::clamp_difficulty(1.0 + 0.14 * score * score);
  }
  [[nodiscard]] std::string describe() const override {
    return "quadratic: d = 1 + 0.14 R^2";
  }
};

}  // namespace

int main() {
  using namespace powai;

  // Route 1: the rule DSL. A calm-period policy: trusted scores pay a
  // token cost, the suspicious mid-band ramps linearly, the worst get an
  // exponential wall.
  const policy::DslPolicy dsl_policy(
      "# calm-period policy\n"
      "when score < 3:        difficulty = 2\n"
      "when score in [3, 7):  difficulty = ceil(score) + 2\n"
      "default:               difficulty = ceil(pow(1.45, score))\n");

  // Route 2: custom subclass.
  const QuadraticPolicy quadratic;

  // Route 3: composition — Policy 1 plus a surcharge of up to 6 levels
  // under load, clamped to a deployment band.
  auto surcharged = std::make_unique<policy::AdaptiveLoadPolicy>(
      std::make_unique<policy::LinearPolicy>(1), 6);
  auto* surcharged_raw = surcharged.get();
  surcharged_raw->set_load(0.8);  // the server reports 80% load
  const policy::ClampPolicy composed(std::move(surcharged), 2, 18);

  common::Rng rng(1);
  common::Table table({"score", "dsl", "quadratic", "policy1+load(clamped)"});
  for (int r = 0; r <= 10; ++r) {
    table.add_row({std::to_string(r),
                   std::to_string(dsl_policy.difficulty(r, rng)),
                   std::to_string(quadratic.difficulty(r, rng)),
                   std::to_string(composed.difficulty(r, rng))});
  }

  std::printf("dsl:        %s\n", dsl_policy.describe().c_str());
  std::printf("quadratic:  %s\n", quadratic.describe().c_str());
  std::printf("composed:   %s\n\n", composed.describe().c_str());
  std::printf("%s", table.to_text().c_str());
  return 0;
}
