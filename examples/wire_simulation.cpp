// The full protocol as bytes over a simulated WAN: a server endpoint and
// a handful of wire clients exchanging encoded Request / Challenge /
// Submission / Response messages across links with latency, jitter, and
// loss. Demonstrates that the framework layers cleanly over an unreliable
// transport (drops simply surface as unanswered requests).
//
// Usage:   ./build/examples/wire_simulation [clients=6] [loss=0.05]

#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "framework/transport.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const auto n_clients = static_cast<std::size_t>(args.get_u64("clients", 6));
  const double loss = args.get_f64("loss", 0.05);

  // Simulated world: event loop + network with a lossy wide-area link.
  netsim::EventLoop loop;
  common::Rng net_rng(17);
  netsim::Network network(loop, net_rng);
  netsim::LinkModel wan;
  wan.base_latency = std::chrono::milliseconds(40);
  wan.jitter = std::chrono::milliseconds(8);
  wan.loss_rate = loss;
  network.set_default_link(wan);

  // Server side.
  common::Rng rng(3);
  const features::SyntheticTraceGenerator traffic;
  reputation::DabrModel model;
  model.fit(traffic.generate(400, 400, rng));
  const policy::LinearPolicy policy = policy::LinearPolicy::policy1();
  framework::ServerConfig cfg;
  cfg.master_secret = common::bytes_of("wire-demo-secret");
  framework::PowServer server(loop.clock(), model, policy, cfg);
  framework::ServerEndpoint endpoint(network, "198.51.100.250", server);

  // Clients: half benign, half suspicious traffic patterns.
  std::vector<std::unique_ptr<framework::WireClient>> clients;
  int served = 0;
  int answered = 0;
  for (std::size_t i = 0; i < n_clients; ++i) {
    const bool malicious = i % 2 == 1;
    const std::string ip = (malicious ? "203.0.0." : "10.0.0.") +
                           std::to_string(i / 2 + 1);
    clients.push_back(std::make_unique<framework::WireClient>(
        loop, network, ip, "198.51.100.250"));
    const auto features = traffic.sample(malicious, rng);
    const std::uint64_t id = clients.back()->send_request(
        "/resource", features,
        [&, ip, malicious](const framework::Response& r, common::Duration d) {
          ++answered;
          if (r.status == common::ErrorCode::kOk) ++served;
          std::printf("%-12s %-10s latency %7.1f ms  status %s\n", ip.c_str(),
                      malicious ? "malicious" : "benign",
                      common::to_millis_f(d),
                      std::string(common::error_code_name(r.status)).c_str());
        });
    if (id == 0) {
      std::printf("%-12s %-10s request dropped on the wire\n", ip.c_str(),
                  malicious ? "malicious" : "benign");
    }
  }

  loop.run();

  std::printf("\n%d/%zu answered, %d served; wire: %llu messages, %llu dropped, "
              "%llu bytes\n",
              answered, n_clients, served,
              static_cast<unsigned long long>(network.messages_sent()),
              static_cast<unsigned long long>(network.messages_dropped()),
              static_cast<unsigned long long>(network.bytes_sent()));
  std::printf("(drops surface as missing responses — retries are the "
              "client's job, as over a real network)\n");
  return 0;
}
