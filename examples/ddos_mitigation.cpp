// DDoS mitigation scenario: a benign population browses while a botnet
// floods the server. The simulation runs twice — defenseless and with the
// AI-assisted PoW framework — and prints per-class goodput and latency.
//
// Usage:   ./build/examples/ddos_mitigation [key=value ...]
//   benign=90 attackers=10 duration_s=20 overlap=0.58 seed=7
//
// The default overlap is calibrated so DAbR scores at its published ~80%
// accuracy; lower it to see what a better model buys the defender.

#include <cstdio>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "policy/linear_policy.hpp"
#include "reputation/dabr.hpp"
#include "reputation/evaluator.hpp"
#include "sim/throttling.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);

  sim::ThrottlingConfig cfg;
  cfg.workload.benign_clients =
      static_cast<std::size_t>(args.get_u64("benign", 90));
  cfg.workload.attackers = static_cast<std::size_t>(args.get_u64("attackers", 10));
  cfg.workload.traffic.class_overlap = args.get_f64("overlap", 0.58);
  cfg.duration_s = args.get_f64("duration_s", 20.0);
  cfg.real_hashing = false;  // timing-model mode: large populations, fast
  cfg.seed = args.get_u64("seed", 7);

  // Train DAbR on traffic drawn from the same distributions the live
  // population will exhibit.
  common::Rng rng(cfg.seed ^ 0x5eedULL);
  reputation::DabrModel model;
  model.fit(sim::make_training_set(cfg.workload, 800, 800, rng));

  const policy::LinearPolicy policy = policy::LinearPolicy::policy2();

  std::printf("population: %zu benign + %zu attackers, %.0f s simulated\n",
              cfg.workload.benign_clients, cfg.workload.attackers,
              cfg.duration_s);
  std::printf("model: DAbR, epsilon=%.2f  policy: %s\n\n",
              model.error_epsilon(), policy.describe().c_str());

  cfg.pow_enabled = false;
  const sim::ThrottlingReport off = sim::run_throttling(cfg, model, policy);
  std::printf("--- without PoW (baseline) ---  server utilization %.0f%%\n%s\n",
              100.0 * off.server_utilization, off.to_table().to_text().c_str());

  cfg.pow_enabled = true;
  const sim::ThrottlingReport on = sim::run_throttling(cfg, model, policy);
  std::printf("--- with AI-assisted PoW ---    server utilization %.0f%%\n%s\n",
              100.0 * on.server_utilization, on.to_table().to_text().c_str());

  const double throttle_factor =
      on.attacker.goodput_rps > 0.0
          ? off.attacker.goodput_rps / on.attacker.goodput_rps
          : 0.0;
  std::printf("attacker goodput throttled %.1fx; benign goodput %.2f -> %.2f rps\n",
              throttle_factor, off.benign.goodput_rps, on.benign.goodput_rps);
  return 0;
}
