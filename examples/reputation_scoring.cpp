// The AI-model component in isolation: train all four reputation models
// on labeled traffic, evaluate them on a held-out split (reproducing the
// shape of DAbR's published ~80% accuracy), and score a few example IPs.
//
// Usage:   ./build/examples/reputation_scoring [key=value ...]
//   rows=2000 overlap=0.58 seed=3

#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "features/synthetic.hpp"
#include "reputation/dabr.hpp"
#include "reputation/evaluator.hpp"
#include "reputation/knn.hpp"
#include "reputation/logistic.hpp"
#include "reputation/naive_bayes.hpp"

int main(int argc, char** argv) {
  using namespace powai;

  const common::Config args = common::Config::from_args(argc, argv);
  const auto rows = static_cast<std::size_t>(args.get_u64("rows", 2000));

  features::SyntheticConfig traffic_cfg;
  traffic_cfg.class_overlap = args.get_f64("overlap", 0.58);
  const features::SyntheticTraceGenerator traffic(traffic_cfg);

  common::Rng rng(args.get_u64("seed", 3));
  features::Dataset data = traffic.generate(rows / 2, rows / 2, rng);
  data.shuffle(rng);
  const auto [train, test] = data.split(0.7);

  std::vector<std::unique_ptr<reputation::IReputationModel>> models;
  models.push_back(std::make_unique<reputation::DabrModel>());
  models.push_back(std::make_unique<reputation::KnnModel>());
  models.push_back(std::make_unique<reputation::LogisticModel>());
  models.push_back(std::make_unique<reputation::NaiveBayesModel>());

  common::Table table(
      {"model", "accuracy", "precision", "recall", "f1", "auc", "epsilon"});
  for (auto& model : models) {
    model->fit(train);
    const reputation::EvaluationReport r = reputation::evaluate(*model, test);
    table.add_row({std::string(model->name()), common::fmt_f(r.accuracy, 3),
                   common::fmt_f(r.precision, 3), common::fmt_f(r.recall, 3),
                   common::fmt_f(r.f1, 3), common::fmt_f(r.roc_auc, 3),
                   common::fmt_f(model->error_epsilon(), 2)});
  }
  std::printf("held-out evaluation (%zu train / %zu test rows):\n%s\n",
              train.size(), test.size(), table.to_text().c_str());

  // Score a handful of fresh observations with the trained DAbR.
  const auto& dabr = *models.front();
  std::printf("sample scores (0 = trusted ... 10 = untrustworthy):\n");
  for (int i = 0; i < 3; ++i) {
    const auto benign = traffic.sample(false, rng);
    const auto malicious = traffic.sample(true, rng);
    std::printf("  benign traffic pattern     -> %.1f\n", dabr.score(benign));
    std::printf("  malicious traffic pattern  -> %.1f\n", dabr.score(malicious));
  }
  return 0;
}
