#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powai::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination of moments.
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ += delta * n2 / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs_) sum += x;
  return sum / static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const {
  if (xs_.empty()) throw std::invalid_argument("Samples::min: empty");
  return *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const {
  if (xs_.empty()) throw std::invalid_argument("Samples::max: empty");
  return *std::max_element(xs_.begin(), xs_.end());
}

double Samples::quantile(double q) const {
  if (xs_.empty()) throw std::invalid_argument("Samples::quantile: empty");
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("Samples::quantile: q outside [0,1]");
  }
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  // Linear interpolation between closest ranks (type-7 quantile, the
  // default in R/NumPy, and exactly the textbook median for odd n).
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(std::floor(pos));
  const auto hi_idx = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo_idx);
  return sorted[lo_idx] + frac * (sorted[hi_idx] - sorted[lo_idx]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins == 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo >= hi");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  // Guard against floating-point edge cases at the upper boundary.
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * bin_width_;
}

std::string Histogram::to_ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    char line[64];
    std::snprintf(line, sizeof line, "%10.2f | ", bin_lo(i));
    out += line;
    out.append(bar, '#');
    out += "  ";
    out += std::to_string(counts_[i]);
    out += '\n';
  }
  if (underflow_ > 0) out += "underflow: " + std::to_string(underflow_) + '\n';
  if (overflow_ > 0) out += "overflow: " + std::to_string(overflow_) + '\n';
  return out;
}

}  // namespace powai::common
