#pragma once
/// \file thread_pool.hpp
/// A fixed-size worker pool for the server hot path. Two entry points:
/// fire-and-forget submit() for background work, and a blocking
/// parallel_for() that fans an index range out over the workers — the
/// primitive the batch verifier is built on.
///
/// The pool is deliberately minimal: no futures, no work stealing, no
/// priorities. Hot-path fan-out wants predictable chunking and a single
/// synchronization point, not a task graph.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace powai::common {

class ThreadPool final {
 public:
  /// Spawns \p threads workers; 0 means std::thread::hardware_concurrency
  /// (and at least 1). With \p pin_workers, worker i is pinned to CPU
  /// i mod hardware_concurrency (Linux only; silently a no-op
  /// elsewhere) — affinity keeps a drain/verify worker's cache warm
  /// under sustained load, at the cost of ceding load balancing to the
  /// caller's sharding. Default off: correctness never depends on it.
  explicit ThreadPool(std::size_t threads = 0, bool pin_workers = false);

  /// Drains nothing: queued tasks that have not started are discarded;
  /// running tasks are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// True when worker pinning was requested *and* the platform applied
  /// it (always false off Linux).
  [[nodiscard]] bool pinned() const { return pinned_; }

  /// Pins \p thread to \p cpu mod hardware_concurrency. Returns false
  /// when the platform has no thread affinity (non-Linux) or the call
  /// failed. Shared helper for every component with a pinning knob.
  static bool pin_to_cpu(std::thread& thread, std::size_t cpu);

  /// Enqueues \p task for execution on some worker. Tasks must not
  /// throw; an escaping exception terminates the process.
  void submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), spread over the workers in
  /// contiguous chunks, and blocks until all calls return. The calling
  /// thread participates, so parallel_for(n, f) with a single-threaded
  /// pool still completes. If an invocation throws, the remaining
  /// indices of that chunk are skipped (other chunks still run) and the
  /// first exception is rethrown on the caller once the range finishes.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  bool pinned_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace powai::common
