#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation. Everything in the
/// library that needs randomness takes an explicit `Rng&` so experiments
/// are reproducible from a single seed (a requirement for the benchmark
/// harness: the paper reports medians over 30 trials, which we want to be
/// re-runnable bit-for-bit).
///
/// The generator is xoshiro256++ seeded through splitmix64, the
/// combination recommended by the xoshiro authors. It satisfies
/// std::uniform_random_bit_generator so it composes with <random> too.

#include <array>
#include <cstdint>
#include <limits>

namespace powai::common {

/// splitmix64 step; used for seeding and as a cheap hash for mixing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ deterministic PRNG (not cryptographic — see
/// crypto::HmacDrbg for security-relevant randomness).
class Rng final {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via
  /// splitmix64, per the reference implementation's guidance.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 random bits.
  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  /// Uses rejection sampling, so the distribution is exactly uniform.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform01();

  /// Uniform double in [lo, hi). Requires lo < hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second variate).
  [[nodiscard]] double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double normal(double mean, double sigma);

  /// Exponential with rate lambda > 0 (mean 1/lambda).
  [[nodiscard]] double exponential(double lambda);

  /// True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Splits off an independent child generator. Streams from parent and
  /// child are decorrelated by remixing the parent's output.
  [[nodiscard]] Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Counter-based stream derivation: the generator for (seed, stream) is
/// a pure function of the pair — the same stream id yields the same
/// sequence in every run, no matter how many other streams were drawn
/// first or from which thread. This is the non-cryptographic sibling of
/// crypto::DerivedDrbg, used where shared-Rng locking would either
/// serialize a hot path or make results depend on arrival order (e.g.
/// per-request policy randomness keyed by puzzle id).
[[nodiscard]] Rng stream_rng(std::uint64_t seed, std::uint64_t stream);

}  // namespace powai::common
