#include "common/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace powai::common {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state would be a fixed point; splitmix64 cannot produce four
  // zero outputs in a row, but guard anyway for belt-and-braces safety.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = std::rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_u64: lo > hi");
  const std::uint64_t range = hi - lo;  // inclusive width - 1
  if (range == std::numeric_limits<std::uint64_t>::max()) return (*this)();
  const std::uint64_t span = range + 1;
  // Rejection sampling over the largest multiple of `span` that fits.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      (std::numeric_limits<std::uint64_t>::max() % span + 1) % span;
  std::uint64_t draw = (*this)();
  while (draw > limit) draw = (*this)();
  return lo + draw % span;
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_i64: lo > hi");
  const auto width = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   uniform_u64(0, width));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("Rng::uniform: lo >= hi");
  return lo + (hi - lo) * uniform01();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 must be strictly positive for the log.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  if (sigma < 0.0) throw std::invalid_argument("Rng::normal: sigma < 0");
  return mean + sigma * normal();
}

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("Rng::exponential: lambda <= 0");
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() {
  // Derive a child seed from two parent draws mixed through splitmix64 so
  // the child stream does not overlap a contiguous run of the parent's.
  std::uint64_t mix = (*this)() ^ 0xa0761d6478bd642fULL;
  const std::uint64_t child_seed = splitmix64(mix) ^ (*this)();
  return Rng(child_seed);
}

Rng stream_rng(std::uint64_t seed, std::uint64_t stream) {
  // Finalize the stream id before folding it into the seed so adjacent
  // ids (counters, sequential puzzle ids) land on decorrelated seeds;
  // the Rng constructor then splitmixes the combination into the full
  // 256-bit state. Pure function of (seed, stream) by construction.
  std::uint64_t sm = stream ^ 0x6a09e667f3bcc909ULL;  // domain-separate id 0
  return Rng(seed ^ splitmix64(sm));
}

}  // namespace powai::common
