#pragma once
/// \file bytes.hpp
/// Byte-buffer helpers shared across the library: hex and base64 codecs,
/// conversions between strings and byte vectors, and a streaming
/// big-endian writer/reader used by the wire protocol.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace powai::common {

/// Canonical owned byte buffer used throughout the library.
using Bytes = std::vector<std::uint8_t>;

/// Read-only view over a byte buffer.
using BytesView = std::span<const std::uint8_t>;

/// Encodes \p data as lowercase hexadecimal ("deadbeef").
[[nodiscard]] std::string to_hex(BytesView data);

/// Decodes a hex string (case-insensitive, even length). Returns
/// std::nullopt on any malformed input rather than throwing, because hex
/// frequently arrives from the network.
[[nodiscard]] std::optional<Bytes> from_hex(std::string_view hex);

/// Encodes \p data using the standard base64 alphabet with padding.
[[nodiscard]] std::string to_base64(BytesView data);

/// Decodes standard base64 (padding required). Returns std::nullopt on
/// malformed input.
[[nodiscard]] std::optional<Bytes> from_base64(std::string_view text);

/// Copies the characters of \p text into a byte buffer (no encoding).
[[nodiscard]] Bytes bytes_of(std::string_view text);

/// Interprets \p data as characters (no validation; lossless for ASCII).
[[nodiscard]] std::string string_of(BytesView data);

/// Appends \p src to \p dst.
void append(Bytes& dst, BytesView src);

/// Appends the big-endian encoding of an unsigned integer to \p dst.
void append_u16be(Bytes& dst, std::uint16_t value);
void append_u32be(Bytes& dst, std::uint32_t value);
void append_u64be(Bytes& dst, std::uint64_t value);

/// Stores the big-endian encoding of \p value into the 8 bytes at \p dst
/// — the allocation-free sibling of append_u64be for fixed buffers on
/// hot paths (the solver's per-nonce store).
inline void store_u64be(std::uint8_t* dst, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<std::uint8_t>(value >> (8 * (7 - i)));
  }
}

/// Incremental big-endian reader over a byte view. All \c read_* methods
/// return std::nullopt once the underlying buffer is exhausted; the cursor
/// is not advanced on failure, so callers can safely probe.
class ByteReader final {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }

  [[nodiscard]] std::optional<std::uint8_t> read_u8();
  [[nodiscard]] std::optional<std::uint16_t> read_u16be();
  [[nodiscard]] std::optional<std::uint32_t> read_u32be();
  [[nodiscard]] std::optional<std::uint64_t> read_u64be();

  /// Reads exactly \p n bytes, or std::nullopt if fewer remain.
  [[nodiscard]] std::optional<Bytes> read_bytes(std::size_t n);

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace powai::common
