#include "common/json.hpp"

#include <cstdio>
#include <stdexcept>

namespace powai::common {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::element_prefix() {
  if (scopes_.empty()) {
    if (!out_.empty()) {
      throw std::logic_error("JsonWriter: more than one root value");
    }
    return;
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

void JsonWriter::member_prefix(std::string_view key) {
  if (scopes_.empty() || scopes_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: member outside an object");
  }
  element_prefix();
  out_ += '"';
  out_ += json_escape(key);
  out_ += "\":";
}

JsonWriter& JsonWriter::begin_object() {
  if (!scopes_.empty() && scopes_.back() == Scope::kObject) {
    throw std::logic_error("JsonWriter: anonymous object inside an object");
  }
  element_prefix();
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  member_prefix(key);
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (scopes_.empty() || scopes_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: end_object without begin_object");
  }
  out_ += '}';
  scopes_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  member_prefix(key);
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (scopes_.empty() || scopes_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: end_array without begin_array");
  }
  out_ += ']';
  scopes_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::field_str(std::string_view key,
                                  std::string_view value) {
  member_prefix(key);
  out_ += '"';
  out_ += json_escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field_u64(std::string_view key, std::uint64_t value) {
  member_prefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field_f64(std::string_view key, double value) {
  member_prefix(key);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field_bool(std::string_view key, bool value) {
  member_prefix(key);
  out_ += value ? "true" : "false";
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!scopes_.empty()) {
    throw std::logic_error("JsonWriter: str() with open containers");
  }
  return out_;
}

bool write_json_file(const std::string& path, const JsonWriter& writer) {
  const std::string& doc = writer.str();  // may throw on open containers
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fputs(doc.c_str(), f) >= 0;
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace powai::common
