#include "common/bytes.hpp"

#include <array>
#include <cstring>

namespace powai::common {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Maps an ASCII character to its hex value, or -1 if not a hex digit.
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Maps an ASCII character to its base64 value, or -1 if outside the
/// alphabet ('=' is handled separately by the decoder).
int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string to_base64(BytesView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back(kB64Alphabet[n & 63]);
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.append("==");
  } else if (rest == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::optional<Bytes> from_base64(std::string_view text) {
  if (text.size() % 4 != 0) return std::nullopt;
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding may only appear in the last two positions of the final
        // quartet.
        if (i + 4 != text.size() || j < 2) return std::nullopt;
        vals[j] = 0;
        ++pad;
      } else {
        if (pad > 0) return std::nullopt;  // data after padding
        vals[j] = b64_value(c);
        if (vals[j] < 0) return std::nullopt;
      }
    }
    const std::uint32_t n =
        (static_cast<std::uint32_t>(vals[0]) << 18) |
        (static_cast<std::uint32_t>(vals[1]) << 12) |
        (static_cast<std::uint32_t>(vals[2]) << 6) |
        static_cast<std::uint32_t>(vals[3]);
    out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n & 0xff));
  }
  return out;
}

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string string_of(BytesView data) {
  return std::string(data.begin(), data.end());
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void append_u16be(Bytes& dst, std::uint16_t value) {
  dst.push_back(static_cast<std::uint8_t>(value >> 8));
  dst.push_back(static_cast<std::uint8_t>(value));
}

void append_u32be(Bytes& dst, std::uint32_t value) {
  dst.push_back(static_cast<std::uint8_t>(value >> 24));
  dst.push_back(static_cast<std::uint8_t>(value >> 16));
  dst.push_back(static_cast<std::uint8_t>(value >> 8));
  dst.push_back(static_cast<std::uint8_t>(value));
}

void append_u64be(Bytes& dst, std::uint64_t value) {
  append_u32be(dst, static_cast<std::uint32_t>(value >> 32));
  append_u32be(dst, static_cast<std::uint32_t>(value));
}

std::optional<std::uint8_t> ByteReader::read_u8() {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::read_u16be() {
  if (remaining() < 2) return std::nullopt;
  const std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> ByteReader::read_u32be() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> ByteReader::read_u64be() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::optional<Bytes> ByteReader::read_bytes(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace powai::common
