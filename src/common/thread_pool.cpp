#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace powai::common {

bool ThreadPool::pin_to_cpu(std::thread& thread, std::size_t cpu) {
#ifdef __linux__
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % cores), &set);
  return pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set) ==
         0;
#else
  (void)thread;
  (void)cpu;
  return false;
#endif
}

ThreadPool::ThreadPool(std::size_t threads, bool pin_workers) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
    if (pin_workers) {
      // Best-effort: a failed affinity call (restricted cpuset, exotic
      // platform) degrades to an unpinned worker, never to an error.
      pinned_ = pin_to_cpu(workers_.back(), i) || pinned_;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;

  // Shared cursor: workers (and the caller) grab contiguous chunks until
  // the range is exhausted. Chunking keeps per-index overhead O(1/chunk)
  // while the grab-next-chunk protocol load-balances uneven bodies.
  //
  // The whole state — including a copy of the body — is shared-owned by
  // every helper closure, so the caller can return as soon as all
  // indices are accounted for (done == n) without waiting for helper
  // tasks to be scheduled at all. That keeps parallel_for safe to call
  // from inside a pool task (the caller drains the range itself; queued
  // helpers become no-ops) and avoids spinning behind unrelated work on
  // a shared pool.
  struct Range {
    std::function<void(std::size_t)> body;
    std::size_t n;
    std::size_t chunk;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
  };
  auto range = std::make_shared<Range>();
  range->body = body;
  range->n = n;
  const std::size_t parties = size() + 1;  // workers + caller
  range->chunk = std::max<std::size_t>(1, n / (parties * 4));

  auto drain = [range] {
    for (;;) {
      const std::size_t begin =
          range->next.fetch_add(range->chunk, std::memory_order_relaxed);
      if (begin >= range->n) return;
      const std::size_t end = std::min(range->n, begin + range->chunk);
      try {
        for (std::size_t i = begin; i < end; ++i) range->body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(range->error_mu);
        if (!range->failed.exchange(true)) {
          range->error = std::current_exception();
        }
      }
      range->done.fetch_add(end - begin, std::memory_order_release);
    }
  };

  // Never enqueue more helpers than there are chunks beyond the one the
  // caller will take — a tiny batch on a wide pool should not wake every
  // worker for a no-op drain.
  const std::size_t chunks = (n + range->chunk - 1) / range->chunk;
  const std::size_t helpers = std::min(size(), chunks - 1);
  for (std::size_t w = 0; w < helpers; ++w) submit(drain);
  drain();

  // The caller has already drained the range, so this wait covers only
  // chunks mid-flight on workers.
  while (range->done.load(std::memory_order_acquire) < n) {
    std::this_thread::yield();
  }

  if (range->failed.load()) std::rethrow_exception(range->error);
}

}  // namespace powai::common
