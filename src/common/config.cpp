#include "common/config.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace powai::common {

Config Config::parse(std::string_view text) {
  Config cfg;
  for (std::string_view line : split(text, '\n')) {
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;
    for (std::string_view token : split_ws(line)) {
      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos) {
        throw std::invalid_argument("Config::parse: token without '=': " +
                                    std::string(token));
      }
      cfg.set(std::string(trim(token.substr(0, eq))),
              std::string(trim(token.substr(eq + 1))));
    }
  }
  return cfg;
}

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string_view token = argv[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("Config::from_args: expected key=value, got " +
                                  std::string(token));
    }
    cfg.set(std::string(trim(token.substr(0, eq))),
            std::string(trim(token.substr(eq + 1))));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  if (key.empty()) throw std::invalid_argument("Config::set: empty key");
  entries_[std::move(key)] = std::move(value);
}

bool Config::has(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::optional<std::string> Config::get(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(std::string_view key,
                               std::string_view fallback) const {
  const auto v = get(key);
  return v ? *v : std::string(fallback);
}

std::int64_t Config::get_i64(std::string_view key, std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const auto parsed = parse_i64(*v);
  return parsed ? *parsed : fallback;
}

std::uint64_t Config::get_u64(std::string_view key,
                              std::uint64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const auto parsed = parse_u64(*v);
  return parsed ? *parsed : fallback;
}

double Config::get_f64(std::string_view key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const auto parsed = parse_f64(*v);
  return parsed ? *parsed : fallback;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const std::string lower = to_lower(*v);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return fallback;
}

std::string Config::require_string(std::string_view key) const {
  const auto v = get(key);
  if (!v) {
    throw std::invalid_argument("Config: missing required key '" +
                                std::string(key) + "'");
  }
  return *v;
}

std::int64_t Config::require_i64(std::string_view key) const {
  const auto parsed = parse_i64(require_string(key));
  if (!parsed) {
    throw std::invalid_argument("Config: key '" + std::string(key) +
                                "' is not an integer");
  }
  return *parsed;
}

double Config::require_f64(std::string_view key) const {
  const auto parsed = parse_f64(require_string(key));
  if (!parsed) {
    throw std::invalid_argument("Config: key '" + std::string(key) +
                                "' is not a number");
  }
  return *parsed;
}

}  // namespace powai::common
