#pragma once
/// \file error.hpp
/// Lightweight error-code + message type and a minimal `Result<T>`
/// (expected-style) used for runtime failures that callers are expected
/// to handle (malformed network input, expired puzzles, bad solutions).
/// Programming errors and construction failures throw instead.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace powai::common {

/// Stable error categories used across the library. Keep values explicit:
/// they appear in wire messages and logs.
enum class ErrorCode : std::uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kMalformedMessage = 2,
  kExpired = 3,
  kBadSolution = 4,
  kReplay = 5,
  kRateLimited = 6,
  kNotFound = 7,
  kInternal = 8,
  kUnavailable = 9,
  kTimeout = 10,
};

/// Human-readable name for an error code ("expired", "bad_solution", ...).
[[nodiscard]] std::string_view error_code_name(ErrorCode code);

/// An error: a category plus a free-form message for logs/operators.
struct Error final {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Creates an error in one call: `err(ErrorCode::kExpired, "puzzle ttl")`.
[[nodiscard]] inline Error err(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

/// Minimal expected-style result. Holds either a value or an Error.
/// `value()` throws std::logic_error if called on an error result — that
/// is a programming bug, not a runtime condition.
template <typename T>
class [[nodiscard]] Result final {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Result::error on ok result");
    return std::get<Error>(state_);
  }

  /// Returns the value, or \p fallback if this result is an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> state_;
};

/// Result specialization for operations that produce no value.
class [[nodiscard]] Status final {
 public:
  Status() = default;                                    // success
  Status(Error error) : error_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return error_.code == ErrorCode::kOk; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const { return error_; }

  static Status success() { return Status{}; }

 private:
  Error error_{ErrorCode::kOk, {}};
};

}  // namespace powai::common
