#pragma once
/// \file clock.hpp
/// Virtual time. All latency-sensitive components (puzzle expiry, rate
/// limiting, the network simulator, experiment harnesses) read time
/// through the `Clock` interface so they run identically against the wall
/// clock and against simulated time.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace powai::common {

/// Library-wide duration / time-point resolution.
using Duration = std::chrono::nanoseconds;

/// A point in time. For `WallClock` this is nanoseconds since the Unix
/// epoch; for `ManualClock` it is nanoseconds since simulation start.
using TimePoint = std::chrono::time_point<std::chrono::system_clock, Duration>;

/// Converts a time point to whole milliseconds (for wire messages/logs).
[[nodiscard]] inline std::int64_t to_millis(TimePoint t) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             t.time_since_epoch())
      .count();
}

/// Converts a duration to fractional milliseconds (for reporting).
[[nodiscard]] inline double to_millis_f(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimePoint now() const = 0;
};

/// Real system time.
class WallClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const override;

  /// Shared process-wide instance (stateless, so sharing is safe).
  static const WallClock& instance();
};

/// Manually-advanced time for simulations and tests. Never moves on its
/// own; `advance`/`set` are the only mutators.
///
/// Reads are safe from any thread: the async front end hands simulated
/// work to pool threads that read the owning event loop's clock while
/// the loop thread remains the only mutator. The pump protocol keeps
/// time frozen while such work is in flight, so a relaxed atomic is all
/// the synchronization the value needs.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = TimePoint{}) : now_(start) {}

  [[nodiscard]] TimePoint now() const override {
    return now_.load(std::memory_order_relaxed);
  }

  /// Moves time forward by \p d (negative d is a programming error).
  /// Call from the owning (mutating) thread only.
  void advance(Duration d);

  /// Jumps to an absolute time (must not move backwards). Call from the
  /// owning (mutating) thread only.
  void set(TimePoint t);

 private:
  std::atomic<TimePoint> now_;
};

/// A view of another clock shifted by an adjustable offset — the
/// clock-skew injection seam: a fault campaign hands the server a
/// SkewClock over the event loop's clock and steps the offset from the
/// loop thread, so the server's idea of "now" diverges from the wire's
/// (issuance timestamps jump ahead, in-flight puzzles expire or arrive
/// future-dated) without the loop's own schedule moving.
///
/// Same threading contract as ManualClock: one mutating thread (the
/// loop), any number of readers (server pool threads) — the offset is a
/// relaxed atomic and the pump keeps time frozen while work is in
/// flight.
class SkewClock final : public Clock {
 public:
  /// \p base must outlive this clock.
  explicit SkewClock(const Clock& base) : base_(&base) {}

  [[nodiscard]] TimePoint now() const override {
    return base_->now() + skew_.load(std::memory_order_relaxed);
  }

  void set_skew(Duration d) { skew_.store(d, std::memory_order_relaxed); }
  [[nodiscard]] Duration skew() const {
    return skew_.load(std::memory_order_relaxed);
  }

 private:
  const Clock* base_;
  std::atomic<Duration> skew_{Duration::zero()};
};

}  // namespace powai::common
