#pragma once
/// \file logging.hpp
/// Small leveled logger. Writes to a caller-provided std::ostream
/// (default std::cerr), thread-safe per message. Components take a
/// `Logger&` so tests can capture output and examples can silence it.

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace powai::common {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] std::string_view log_level_name(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-sensitive);
/// returns kInfo for anything unrecognized.
[[nodiscard]] LogLevel parse_log_level(std::string_view name);

class Logger final {
 public:
  /// \p sink must outlive the logger.
  explicit Logger(std::ostream& sink, LogLevel level = LogLevel::kInfo,
                  std::string component = {});

  [[nodiscard]] LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  /// Emits one line: "LEVEL [component] message".
  void log(LogLevel level, std::string_view message);

  void trace(std::string_view m) { log(LogLevel::kTrace, m); }
  void debug(std::string_view m) { log(LogLevel::kDebug, m); }
  void info(std::string_view m) { log(LogLevel::kInfo, m); }
  void warn(std::string_view m) { log(LogLevel::kWarn, m); }
  void error(std::string_view m) { log(LogLevel::kError, m); }

  /// Creates a logger sharing this sink/level with a sub-component tag.
  [[nodiscard]] Logger child(std::string_view component) const;

  /// Process-wide default logger (stderr, level from $POWAI_LOG or info).
  static Logger& global();

 private:
  std::ostream* sink_;
  LogLevel level_;
  std::string component_;
  static std::mutex io_mutex_;  // serializes writes across all loggers
};

}  // namespace powai::common
