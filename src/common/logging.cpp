#include "common/logging.hpp"

#include <cstdlib>
#include <iostream>

namespace powai::common {

std::mutex Logger::io_mutex_;

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger::Logger(std::ostream& sink, LogLevel level, std::string component)
    : sink_(&sink), level_(level), component_(std::move(component)) {}

void Logger::log(LogLevel level, std::string_view message) {
  if (!enabled(level) || level == LogLevel::kOff) return;
  std::ostringstream line;
  line << log_level_name(level);
  if (!component_.empty()) line << " [" << component_ << ']';
  line << ' ' << message << '\n';
  const std::string rendered = line.str();
  const std::lock_guard<std::mutex> lock(io_mutex_);
  (*sink_) << rendered;
}

Logger Logger::child(std::string_view component) const {
  std::string name = component_;
  if (!name.empty()) name += '.';
  name += component;
  return Logger(*sink_, level_, std::move(name));
}

Logger& Logger::global() {
  static Logger logger = [] {
    LogLevel level = LogLevel::kInfo;
    if (const char* env = std::getenv("POWAI_LOG")) {
      level = parse_log_level(env);
    }
    return Logger(std::cerr, level, "powai");
  }();
  return logger;
}

}  // namespace powai::common
