#pragma once
/// \file table.hpp
/// Plain-text/CSV/markdown table rendering used by every bench binary to
/// print the paper's tables and figure series in a uniform format.

#include <string>
#include <vector>

namespace powai::common {

/// A simple column-oriented table: set a header, append rows of cells.
/// Numeric cells should be pre-formatted by the caller (the bench layer
/// owns precision decisions).
class Table final {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header width (throws otherwise).
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

  /// Fixed-width aligned text (for terminals).
  [[nodiscard]] std::string to_text() const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content, but
  /// cells containing commas/quotes are quoted correctly anyway).
  [[nodiscard]] std::string to_csv() const;

  /// GitHub-flavoured markdown.
  [[nodiscard]] std::string to_markdown() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with \p decimals fractional digits.
[[nodiscard]] std::string fmt_f(double value, int decimals = 2);

}  // namespace powai::common
