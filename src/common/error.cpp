#include "common/error.hpp"

namespace powai::common {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kMalformedMessage: return "malformed_message";
    case ErrorCode::kExpired: return "expired";
    case ErrorCode::kBadSolution: return "bad_solution";
    case ErrorCode::kReplay: return "replay";
    case ErrorCode::kRateLimited: return "rate_limited";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kTimeout: return "timeout";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out{error_code_name(code)};
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace powai::common
