#pragma once
/// \file config.hpp
/// Flat key=value configuration, the format the example programs and the
/// benchmark harness accept ("policy=linear offset=5 epsilon=1.5").
/// Lines starting with '#' are comments. Typed getters with defaults;
/// `require_*` variants throw when an operator must supply a value.

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace powai::common {

class Config final {
 public:
  Config() = default;

  /// Parses "key=value" pairs separated by newlines and/or whitespace.
  /// Later duplicates overwrite earlier ones. Throws std::invalid_argument
  /// on a token with no '='.
  static Config parse(std::string_view text);

  /// Parses argv-style tokens ("key=value" each), e.g. from main().
  static Config from_args(int argc, const char* const* argv);

  void set(std::string key, std::string value);

  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_i64(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_u64(std::string_view key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_f64(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Throwing getters for mandatory keys (std::invalid_argument lists the
  /// missing/unparsable key so operators get an actionable message).
  [[nodiscard]] std::string require_string(std::string_view key) const;
  [[nodiscard]] std::int64_t require_i64(std::string_view key) const;
  [[nodiscard]] double require_f64(std::string_view key) const;

  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& entries()
      const {
    return entries_;
  }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace powai::common
