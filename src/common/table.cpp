#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace powai::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::string out;
  auto render = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  };
  render(header_);
  for (const auto& row : rows_) render(row);
  return out;
}

std::string Table::to_markdown() const {
  std::string out = "|";
  for (const auto& h : header_) out += " " + h + " |";
  out += "\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) out += "---|";
  out += '\n';
  for (const auto& row : rows_) {
    out += "|";
    for (const auto& cell : row) out += " " + cell + " |";
    out += '\n';
  }
  return out;
}

std::string fmt_f(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace powai::common
