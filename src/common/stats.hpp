#pragma once
/// \file stats.hpp
/// Statistics used by the evaluation harness: Welford running moments,
/// exact sample-based quantiles (the paper reports *medians* of 30
/// trials), and a fixed-bin histogram for latency distributions.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace powai::common {

/// Numerically-stable running mean/variance (Welford). O(1) memory;
/// cannot produce quantiles — pair with `Samples` when medians matter.
class RunningStats final {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; gives exact order statistics. Intended for the
/// experiment scale in this repo (tens to tens of thousands of samples).
class Samples final {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact quantile with linear interpolation between order statistics,
  /// q in [0, 1]. Throws std::invalid_argument on empty data or bad q.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples land in
/// saturating underflow/overflow bins so no sample is silently dropped.
class Histogram final {
 public:
  /// \p bins >= 1, \p lo < \p hi (else throws std::invalid_argument).
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Lower edge of bin \p i.
  [[nodiscard]] double bin_lo(std::size_t i) const;

  /// Multi-line ASCII rendering (for example programs and logs).
  [[nodiscard]] std::string to_ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace powai::common
