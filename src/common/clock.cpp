#include "common/clock.hpp"

#include <stdexcept>

namespace powai::common {

TimePoint WallClock::now() const {
  return std::chrono::time_point_cast<Duration>(
      std::chrono::system_clock::now());
}

const WallClock& WallClock::instance() {
  static const WallClock clock;
  return clock;
}

void ManualClock::advance(Duration d) {
  if (d < Duration::zero()) {
    throw std::invalid_argument("ManualClock::advance: negative duration");
  }
  // Single-mutator contract: a load/store pair is not a lost-update risk.
  now_.store(now_.load(std::memory_order_relaxed) + d,
             std::memory_order_relaxed);
}

void ManualClock::set(TimePoint t) {
  if (t < now_.load(std::memory_order_relaxed)) {
    throw std::invalid_argument("ManualClock::set: time moved backwards");
  }
  now_.store(t, std::memory_order_relaxed);
}

}  // namespace powai::common
