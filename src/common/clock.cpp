#include "common/clock.hpp"

#include <stdexcept>

namespace powai::common {

TimePoint WallClock::now() const {
  return std::chrono::time_point_cast<Duration>(
      std::chrono::system_clock::now());
}

const WallClock& WallClock::instance() {
  static const WallClock clock;
  return clock;
}

void ManualClock::advance(Duration d) {
  if (d < Duration::zero()) {
    throw std::invalid_argument("ManualClock::advance: negative duration");
  }
  now_ += d;
}

void ManualClock::set(TimePoint t) {
  if (t < now_) {
    throw std::invalid_argument("ManualClock::set: time moved backwards");
  }
  now_ = t;
}

}  // namespace powai::common
