#pragma once
/// \file strings.hpp
/// Small string utilities shared by the config loader, the policy DSL
/// lexer, and CSV parsing. Kept allocation-light: views in, owned strings
/// out only where lifetime demands it.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace powai::common {

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on \p sep; keeps empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits into non-empty whitespace-separated tokens.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// True if \p s begins with \p prefix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Lowercases ASCII characters.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Strict full-string parses; std::nullopt on any trailing garbage,
/// overflow, or empty input.
[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view s);
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s);
[[nodiscard]] std::optional<double> parse_f64(std::string_view s);

/// Joins \p parts with \p sep.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

}  // namespace powai::common
