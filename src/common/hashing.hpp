#pragma once
/// \file hashing.hpp
/// Shared helpers for the shard-striped containers: integer finalizers
/// that spread clustered keys (sequential puzzle ids, IPs from one /24)
/// across a power-of-two shard mask, and the mask-size round-up.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace powai::common {

/// splitmix64 finalizer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// 32-bit multiplicative finalizer (lowbias32).
[[nodiscard]] constexpr std::uint32_t mix32(std::uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

/// Size of slice \p i when \p total is distributed exactly across \p n
/// parts: the first `total % n` parts take one extra. Summing over all
/// i < n gives exactly \p total — the invariant the sharded containers
/// rely on to keep their global budgets exact.
[[nodiscard]] constexpr std::size_t split_slice(std::size_t total,
                                                std::size_t n, std::size_t i) {
  return total / n + (i < total % n ? 1 : 0);
}

/// Saturates at the largest representable power of two instead of the
/// undefined behavior std::bit_ceil has past it.
[[nodiscard]] constexpr std::size_t round_up_pow2(std::size_t v) {
  constexpr std::size_t kMax = std::size_t{1}
                               << (std::numeric_limits<std::size_t>::digits - 1);
  if (v >= kMax) return kMax;
  return std::bit_ceil(v);
}

}  // namespace powai::common
