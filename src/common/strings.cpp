#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace powai::common {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && is_space(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  s = trim(s);
  if (s.empty() || s.front() == '-') return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_f64(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ 11+; use it for
  // strictness (no locale, full-string match enforced below).
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace powai::common
