#pragma once
/// \file json.hpp
/// Minimal append-only JSON emitter for machine-readable artifacts (the
/// bench JSON files CI uploads per run). Handles commas, nesting, and
/// string escaping; nothing else — no parsing, no DOM. Typed field_*
/// methods sidestep numeric overload ambiguity at call sites.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace powai::common {

/// Escapes \p s for embedding inside a JSON string literal (quotes not
/// included): `"`, `\`, and control characters.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Streaming writer. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.field_str("bench", "wire_load");
///   w.begin_array("rows");
///   w.begin_object(); w.field_u64("clients", 4); w.end_object();
///   w.end_array();
///   w.end_object();
///   write_file(path, w.str());
///
/// Misnesting (ending a container that was never begun, or str() with
/// containers still open) throws std::logic_error — artifact writers
/// should fail loudly, not emit truncated JSON.
class JsonWriter final {
 public:
  /// Begins the root value or an array-element object.
  JsonWriter& begin_object();
  /// Begins an object-valued member \p key of the current object.
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& end_object();

  /// Begins an array-valued member \p key of the current object.
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& end_array();

  JsonWriter& field_str(std::string_view key, std::string_view value);
  JsonWriter& field_u64(std::string_view key, std::uint64_t value);
  JsonWriter& field_f64(std::string_view key, double value);
  JsonWriter& field_bool(std::string_view key, bool value);

  /// The finished document. Throws std::logic_error while any object or
  /// array is still open.
  [[nodiscard]] const std::string& str() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void element_prefix();            ///< comma handling before any element
  void member_prefix(std::string_view key);  ///< prefix + quoted key

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_;  ///< parallel to scopes_: no element emitted yet
};

/// Writes \p writer's finished document to \p path (truncating any
/// existing file). Returns false on any I/O failure; propagates
/// JsonWriter's std::logic_error if the document is still open.
[[nodiscard]] bool write_json_file(const std::string& path,
                                   const JsonWriter& writer);

}  // namespace powai::common
