#include "crypto/siphash.hpp"

#include <bit>

namespace powai::crypto {

namespace {

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) {
  v0 += v1;
  v1 = std::rotl(v1, 13);
  v1 ^= v0;
  v0 = std::rotl(v0, 32);
  v2 += v3;
  v3 = std::rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = std::rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = std::rotl(v1, 17);
  v1 ^= v2;
  v2 = std::rotl(v2, 32);
}

}  // namespace

std::uint64_t siphash24(const SipKey& key, common::BytesView data) {
  const std::uint64_t k0 = load_le64(key.data());
  const std::uint64_t k1 = load_le64(key.data() + 8);

  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::size_t len = data.size();
  const std::size_t full_words = len / 8;

  for (std::size_t i = 0; i < full_words; ++i) {
    const std::uint64_t m = load_le64(data.data() + 8 * i);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  // Final partial word: remaining bytes little-endian, length in top byte.
  std::uint64_t b = static_cast<std::uint64_t>(len & 0xff) << 56;
  const std::size_t tail = len & 7;
  for (std::size_t i = 0; i < tail; ++i) {
    b |= static_cast<std::uint64_t>(data[8 * full_words + i]) << (8 * i);
  }
  v3 ^= b;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xff;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);

  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace powai::crypto
