#pragma once
/// \file drbg.hpp
/// HMAC-DRBG (NIST SP 800-90A, HMAC-SHA256 instantiation). The issuer
/// uses it to generate server secrets and unique puzzle seeds; unlike
/// common::Rng it is suitable where predictability would let an attacker
/// pre-compute puzzle solutions.

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace powai::crypto {

/// Deterministic random bit generator per SP 800-90A HMAC_DRBG. Given the
/// same seed material it reproduces the same stream (useful for replaying
/// experiments); seed it from entropy for production-style use.
class HmacDrbg final {
 public:
  /// Instantiates with entropy (+ optional personalization string).
  explicit HmacDrbg(common::BytesView entropy,
                    common::BytesView personalization = {});

  /// Mixes additional entropy into the state.
  void reseed(common::BytesView entropy);

  /// Produces \p n pseudorandom bytes.
  [[nodiscard]] common::Bytes generate(std::size_t n);

  /// Convenience: next 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

 private:
  void update(common::BytesView provided);

  std::array<std::uint8_t, 32> key_{};
  std::array<std::uint8_t, 32> value_{};
};

/// A stateless *family* of DRBG streams under one key: `stream(id)`
/// deterministically instantiates the HMAC-DRBG whose output is a pure
/// function of (key, personalization, id) — never of call order, thread
/// interleaving, or how many other streams were drawn first. This is the
/// primitive that makes issuance order-independent: where a chained
/// HmacDrbg hands consecutive callers consecutive slices of one stream
/// (so a batch that permutes arrival order permutes every seed), a
/// DerivedDrbg hands the caller for id X the same bytes in every run.
///
/// All methods are const and the object holds no mutable state, so one
/// instance may be shared across any number of threads without locks.
class DerivedDrbg final {
 public:
  /// \p key is the derivation key (non-empty); \p personalization
  /// domain-separates independent families under the same key.
  explicit DerivedDrbg(common::BytesView key,
                       common::BytesView personalization = {});

  /// Instantiates stream \p id. The returned generator is an ordinary
  /// chained HmacDrbg — callers that need more than one draw from the
  /// same id keep it and chain locally.
  [[nodiscard]] HmacDrbg stream(std::uint64_t id) const;

  /// One-shot: the first \p n bytes of stream \p id.
  [[nodiscard]] common::Bytes generate(std::uint64_t id, std::size_t n) const;

  /// Convenience: the first 64-bit value of stream \p id.
  [[nodiscard]] std::uint64_t next_u64(std::uint64_t id) const;

 private:
  common::Bytes key_;
  common::Bytes personalization_;
};

/// Returns \p n bytes sampled from std::random_device (wrapped so call
/// sites do not depend on <random> and tests can see a single choke
/// point for entropy).
[[nodiscard]] common::Bytes os_entropy(std::size_t n);

}  // namespace powai::crypto
