#pragma once
/// \file drbg.hpp
/// HMAC-DRBG (NIST SP 800-90A, HMAC-SHA256 instantiation). The issuer
/// uses it to generate server secrets and unique puzzle seeds; unlike
/// common::Rng it is suitable where predictability would let an attacker
/// pre-compute puzzle solutions.

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace powai::crypto {

/// Deterministic random bit generator per SP 800-90A HMAC_DRBG. Given the
/// same seed material it reproduces the same stream (useful for replaying
/// experiments); seed it from entropy for production-style use.
class HmacDrbg final {
 public:
  /// Instantiates with entropy (+ optional personalization string).
  explicit HmacDrbg(common::BytesView entropy,
                    common::BytesView personalization = {});

  /// Mixes additional entropy into the state.
  void reseed(common::BytesView entropy);

  /// Produces \p n pseudorandom bytes.
  [[nodiscard]] common::Bytes generate(std::size_t n);

  /// Convenience: next 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

 private:
  void update(common::BytesView provided);

  std::array<std::uint8_t, 32> key_{};
  std::array<std::uint8_t, 32> value_{};
};

/// Returns \p n bytes sampled from std::random_device (wrapped so call
/// sites do not depend on <random> and tests can see a single choke
/// point for entropy).
[[nodiscard]] common::Bytes os_entropy(std::size_t n);

}  // namespace powai::crypto
