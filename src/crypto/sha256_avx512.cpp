/// \file sha256_avx512.cpp
/// 16-way multi-buffer SHA-256: sixteen independent messages advanced
/// simultaneously, one message per 32-bit lane of a ZMM register — the
/// AVX-512 widening of the AVX2 backend's transposed layout. AVX-512F
/// has a native 32-bit rotate (vprord — the compiler folds the shift-or
/// idiom below into it), so the round function needs one instruction
/// where AVX2 needs three; AVX512BW contributes the byte shuffle used
/// for the big-endian loads.
///
/// Two entry points share the round function: hash16_avx512 (sixteen
/// whole equal-length messages from the initial state) and
/// finish16_avx512 (sixteen pre-padded final blocks from one shared
/// midstate — the solver's nonce sweep).
///
/// Compiled into every build (per-function target attributes); only
/// reached through Sha256::hash_many / finish_many_with_suffix after
/// the cpu_supports_avx512() check. Bit-exactness against the scalar
/// reference is pinned by the cross-check tests run with each backend
/// forced.

#include "crypto/sha256_dispatch.hpp"

#ifdef POWAI_SHA256_X86_DISPATCH

#include <immintrin.h>

#include <cstring>

namespace powai::crypto::detail {

namespace {

alignas(64) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

// Not _mm512_ror_epi32: GCC implements that intrinsic atop
// _mm512_undefined_epi32(), which -Werror=uninitialized rejects. The
// shift-or idiom compiles to the same single vprord.
__attribute__((target("avx512f,avx512bw"))) inline __m512i rotr32(__m512i x,
                                                                  int n) {
  return _mm512_or_si512(_mm512_srli_epi32(x, n), _mm512_slli_epi32(x, 32 - n));
}

/// One 64-byte block per lane: ptrs[l] points at lane l's block.
__attribute__((target("avx512f,avx512bw"))) void compress16_block(
    __m512i st[8], const std::uint8_t* const ptrs[16]) {
  // Transposed message load: w[t] holds word t of all sixteen lanes,
  // byte-swapped to big-endian via one shuffle per vector (the 16-byte
  // pattern repeats across the four 128-bit sublanes).
  const __m512i bswap = _mm512_broadcast_i32x4(_mm_set_epi8(
      12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3));
  __m512i w[16];
  for (int t = 0; t < 16; ++t) {
    alignas(64) std::uint32_t lane_words[16];
    for (int l = 0; l < 16; ++l) {
      std::memcpy(&lane_words[l], ptrs[l] + 4 * t, 4);
    }
    w[t] = _mm512_shuffle_epi8(_mm512_load_si512(lane_words), bswap);
  }

  __m512i a = st[0], b = st[1], c = st[2], d = st[3];
  __m512i e = st[4], f = st[5], g = st[6], h = st[7];

  for (int t = 0; t < 64; ++t) {
    if (t >= 16) {
      const __m512i w15 = w[(t - 15) & 15];
      const __m512i w2 = w[(t - 2) & 15];
      const __m512i s0 = _mm512_xor_si512(
          _mm512_xor_si512(rotr32(w15, 7), rotr32(w15, 18)),
          _mm512_srli_epi32(w15, 3));
      const __m512i s1 = _mm512_xor_si512(
          _mm512_xor_si512(rotr32(w2, 17), rotr32(w2, 19)),
          _mm512_srli_epi32(w2, 10));
      w[t & 15] = _mm512_add_epi32(
          _mm512_add_epi32(w[t & 15], s0),
          _mm512_add_epi32(w[(t - 7) & 15], s1));
    }
    const __m512i s1 = _mm512_xor_si512(
        _mm512_xor_si512(rotr32(e, 6), rotr32(e, 11)),
        rotr32(e, 25));
    const __m512i ch = _mm512_xor_si512(_mm512_and_si512(e, f),
                                        _mm512_andnot_si512(e, g));
    const __m512i t1 = _mm512_add_epi32(
        _mm512_add_epi32(_mm512_add_epi32(h, s1), ch),
        _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(kK[t])),
                         w[t & 15]));
    const __m512i s0 = _mm512_xor_si512(
        _mm512_xor_si512(rotr32(a, 2), rotr32(a, 13)),
        rotr32(a, 22));
    const __m512i maj = _mm512_xor_si512(
        _mm512_xor_si512(_mm512_and_si512(a, b), _mm512_and_si512(a, c)),
        _mm512_and_si512(b, c));
    const __m512i t2 = _mm512_add_epi32(s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm512_add_epi32(d, t1);
    d = c;
    c = b;
    b = a;
    a = _mm512_add_epi32(t1, t2);
  }

  st[0] = _mm512_add_epi32(st[0], a);
  st[1] = _mm512_add_epi32(st[1], b);
  st[2] = _mm512_add_epi32(st[2], c);
  st[3] = _mm512_add_epi32(st[3], d);
  st[4] = _mm512_add_epi32(st[4], e);
  st[5] = _mm512_add_epi32(st[5], f);
  st[6] = _mm512_add_epi32(st[6], g);
  st[7] = _mm512_add_epi32(st[7], h);
}

/// Un-transpose: lane l's words st[0..7][l], stored big-endian.
__attribute__((target("avx512f,avx512bw"))) void store_digests16(
    const __m512i st[8], std::uint8_t (*out)[32]) {
  alignas(64) std::uint32_t words[8][16];  // words[word][lane]
  for (int wrd = 0; wrd < 8; ++wrd) {
    _mm512_store_si512(words[wrd], st[wrd]);
  }
  for (int l = 0; l < 16; ++l) {
    for (int wrd = 0; wrd < 8; ++wrd) {
      const std::uint32_t v = words[wrd][l];
      out[l][4 * wrd + 0] = static_cast<std::uint8_t>(v >> 24);
      out[l][4 * wrd + 1] = static_cast<std::uint8_t>(v >> 16);
      out[l][4 * wrd + 2] = static_cast<std::uint8_t>(v >> 8);
      out[l][4 * wrd + 3] = static_cast<std::uint8_t>(v);
    }
  }
}

}  // namespace

__attribute__((target("avx512f,avx512bw"))) void hash16_avx512(
    const std::uint8_t* const msgs[16], std::size_t len,
    std::uint8_t (*out)[32]) {
  __m512i st[8] = {
      _mm512_set1_epi32(static_cast<int>(0x6a09e667)),
      _mm512_set1_epi32(static_cast<int>(0xbb67ae85)),
      _mm512_set1_epi32(static_cast<int>(0x3c6ef372)),
      _mm512_set1_epi32(static_cast<int>(0xa54ff53a)),
      _mm512_set1_epi32(static_cast<int>(0x510e527f)),
      _mm512_set1_epi32(static_cast<int>(0x9b05688c)),
      _mm512_set1_epi32(static_cast<int>(0x1f83d9ab)),
      _mm512_set1_epi32(static_cast<int>(0x5be0cd19)),
  };

  // Full 64-byte blocks straight from the messages.
  const std::size_t full_blocks = len / 64;
  const std::size_t rem = len % 64;
  const std::uint8_t* ptrs[16];
  for (std::size_t blk = 0; blk < full_blocks; ++blk) {
    for (int l = 0; l < 16; ++l) ptrs[l] = msgs[l] + blk * 64;
    compress16_block(st, ptrs);
  }

  // Remainder + padding: equal lengths mean one shared layout. Build
  // each lane's final one or two blocks on the stack.
  const std::size_t pad_blocks = (rem + 9 <= 64) ? 1 : 2;
  const std::size_t padded = pad_blocks * 64;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(len) * 8;
  std::uint8_t tail[16][128];
  for (int l = 0; l < 16; ++l) {
    if (rem > 0) std::memcpy(tail[l], msgs[l] + full_blocks * 64, rem);
    tail[l][rem] = 0x80;
    std::memset(tail[l] + rem + 1, 0, padded - 8 - (rem + 1));
    for (int i = 0; i < 8; ++i) {
      tail[l][padded - 8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
    }
  }
  for (std::size_t blk = 0; blk < pad_blocks; ++blk) {
    for (int l = 0; l < 16; ++l) ptrs[l] = tail[l] + blk * 64;
    compress16_block(st, ptrs);
  }

  store_digests16(st, out);
}

__attribute__((target("avx512f,avx512bw"))) void finish16_avx512(
    const std::uint32_t state[8], const std::uint8_t* const blocks[16],
    std::size_t blocks_per_lane, std::uint8_t (*out)[32]) {
  // Every lane starts from the same chaining state (the shared
  // midstate) and compresses its own pre-padded final block(s).
  __m512i st[8];
  for (int i = 0; i < 8; ++i) {
    st[i] = _mm512_set1_epi32(static_cast<int>(state[i]));
  }
  const std::uint8_t* ptrs[16];
  for (std::size_t blk = 0; blk < blocks_per_lane; ++blk) {
    for (int l = 0; l < 16; ++l) ptrs[l] = blocks[l] + blk * 64;
    compress16_block(st, ptrs);
  }
  store_digests16(st, out);
}

}  // namespace powai::crypto::detail

#endif  // POWAI_SHA256_X86_DISPATCH
