#include "crypto/sha256.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>

#include "crypto/sha256_dispatch.hpp"

namespace powai::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

/// Block-compression entry used for single-stream hashing under the
/// active backend (the AVX2 backend is multi-buffer only, so it shares
/// the scalar path here).
using CompressFn = void (*)(std::uint32_t*, const std::uint8_t*, std::size_t);

constexpr Sha256Backend kAllBackends[] = {
    Sha256Backend::kGeneric, Sha256Backend::kShaNi, Sha256Backend::kAvx2,
    Sha256Backend::kAvx512, Sha256Backend::kArmv8};

bool backend_supported(Sha256Backend b) {
  switch (b) {
    case Sha256Backend::kGeneric:
      return true;
#ifdef POWAI_SHA256_X86_DISPATCH
    case Sha256Backend::kShaNi:
      return detail::cpu_supports_shani();
    case Sha256Backend::kAvx2:
      return detail::cpu_supports_avx2();
    case Sha256Backend::kAvx512:
      return detail::cpu_supports_avx512();
#endif
#ifdef POWAI_SHA256_ARM_DISPATCH
    case Sha256Backend::kArmv8:
      return detail::cpu_supports_armv8_sha2();
#endif
    default:
      return false;
  }
}

/// Auto order: the single-stream crypto extensions first (SHA-NI /
/// ARMv8-CE win every one-at-a-time hash and stay competitive in
/// sweeps), then the multi-lane backends widest first (they pay on
/// hash_many / finish_many_with_suffix and fall back to the scalar
/// reference for single streams).
Sha256Backend best_backend() {
  if (backend_supported(Sha256Backend::kShaNi)) return Sha256Backend::kShaNi;
  if (backend_supported(Sha256Backend::kArmv8)) return Sha256Backend::kArmv8;
  if (backend_supported(Sha256Backend::kAvx512)) return Sha256Backend::kAvx512;
  if (backend_supported(Sha256Backend::kAvx2)) return Sha256Backend::kAvx2;
  return Sha256Backend::kGeneric;
}

/// Startup choice: POWAI_SHA256_BACKEND, resolved by backend_from_name.
/// Unset behaves like "auto"; unknown or unsupported values throw from
/// the first hashing call so a mis-typed or mis-targeted override is a
/// loud failure instead of a silently slower (or faster) run.
Sha256Backend initial_backend() {
  const char* env = std::getenv("POWAI_SHA256_BACKEND");
  return Sha256::backend_from_name(env == nullptr ? std::string_view() : env);
}

std::atomic<std::uint8_t>& backend_slot() {
  static std::atomic<std::uint8_t> slot{
      static_cast<std::uint8_t>(initial_backend())};
  return slot;
}

CompressFn active_compress() {
  switch (static_cast<Sha256Backend>(
      backend_slot().load(std::memory_order_relaxed))) {
#ifdef POWAI_SHA256_X86_DISPATCH
    case Sha256Backend::kShaNi:
      return &detail::compress_shani;
#endif
#ifdef POWAI_SHA256_ARM_DISPATCH
    case Sha256Backend::kArmv8:
      return &detail::compress_armv8;
#endif
    default:
      return &detail::compress_generic;
  }
}

/// A multi-buffer lane kernel pair: W whole equal-length messages per
/// sweep (hash_many) or W shared-midstate finishes per sweep
/// (finish_many_with_suffix). Null for single-stream backends.
struct LaneKernel {
  std::size_t width = 0;
  void (*hash_lanes)(const std::uint8_t* const*, std::size_t,
                     std::uint8_t (*)[32]) = nullptr;
  void (*finish_lanes)(const std::uint32_t*, const std::uint8_t* const*,
                       std::size_t, std::uint8_t (*)[32]) = nullptr;
};

/// Widest lane width any backend offers — sizes stack batches.
constexpr std::size_t kMaxLanes = 16;

const LaneKernel* active_lane_kernel() {
#ifdef POWAI_SHA256_X86_DISPATCH
  switch (static_cast<Sha256Backend>(
      backend_slot().load(std::memory_order_relaxed))) {
    case Sha256Backend::kAvx2: {
      static constexpr LaneKernel kAvx2Kernel{
          8,
          [](const std::uint8_t* const* msgs, std::size_t len,
             std::uint8_t (*out)[32]) { detail::hash8_avx2(msgs, len, out); },
          [](const std::uint32_t* state, const std::uint8_t* const* blocks,
             std::size_t n, std::uint8_t (*out)[32]) {
            detail::finish8_avx2(state, blocks, n, out);
          }};
      return &kAvx2Kernel;
    }
    case Sha256Backend::kAvx512: {
      static constexpr LaneKernel kAvx512Kernel{
          16,
          [](const std::uint8_t* const* msgs, std::size_t len,
             std::uint8_t (*out)[32]) { detail::hash16_avx512(msgs, len, out); },
          [](const std::uint32_t* state, const std::uint8_t* const* blocks,
             std::size_t n, std::uint8_t (*out)[32]) {
            detail::finish16_avx512(state, blocks, n, out);
          }};
      return &kAvx512Kernel;
    }
    default:
      break;
  }
#endif
  return nullptr;
}

}  // namespace

namespace detail {

void compress_generic(std::uint32_t* state, const std::uint8_t* blocks,
                      std::size_t n) {
  for (; n > 0; --n, blocks += Sha256::kBlockSize) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(blocks + 4 * i);
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^
                               std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^
                               std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 =
          std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
      const std::uint32_t s0 =
          std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

}  // namespace detail

Sha256Backend Sha256::backend() {
  return static_cast<Sha256Backend>(
      backend_slot().load(std::memory_order_relaxed));
}

bool Sha256::set_backend(Sha256Backend b) {
  if (!backend_supported(b)) return false;
  backend_slot().store(static_cast<std::uint8_t>(b),
                       std::memory_order_relaxed);
  return true;
}

std::vector<Sha256Backend> Sha256::supported_backends() {
  std::vector<Sha256Backend> out;
  for (Sha256Backend b : kAllBackends) {
    if (backend_supported(b)) out.push_back(b);
  }
  return out;
}

std::string_view Sha256::backend_name(Sha256Backend b) {
  switch (b) {
    case Sha256Backend::kGeneric:
      return "generic";
    case Sha256Backend::kShaNi:
      return "shani";
    case Sha256Backend::kAvx2:
      return "avx2";
    case Sha256Backend::kAvx512:
      return "avx512";
    case Sha256Backend::kArmv8:
      return "armv8";
  }
  return "unknown";
}

Sha256Backend Sha256::backend_from_name(std::string_view name) {
  if (name.empty() || name == "auto") return best_backend();
  for (Sha256Backend b : kAllBackends) {
    if (name != backend_name(b)) continue;
    if (!backend_supported(b)) {
      std::string supported = "auto";
      for (Sha256Backend s : supported_backends()) {
        supported += ", ";
        supported += backend_name(s);
      }
      throw std::runtime_error(
          "POWAI_SHA256_BACKEND=" + std::string(name) +
          " is not supported on this CPU (supported here: " + supported + ")");
    }
    return b;
  }
  throw std::runtime_error(
      "POWAI_SHA256_BACKEND=" + std::string(name) +
      " is not a known backend (accepted values: auto, generic, shani, "
      "avx2, avx512, armv8)");
}

std::size_t Sha256::lane_width(Sha256Backend b) {
  switch (b) {
    case Sha256Backend::kAvx2:
      return 8;
    case Sha256Backend::kAvx512:
      return 16;
    default:
      return 1;
  }
}

void Sha256::reset() {
  state_ = kInitialState;
  buffer_len_ = 0;
  total_len_ = 0;
  finished_ = false;
}

void Sha256::update(common::BytesView data) {
  if (finished_) throw std::logic_error("Sha256::update after finish");
  const CompressFn compress = active_compress();
  total_len_ += data.size();
  std::size_t offset = 0;

  if (buffer_len_ > 0) {
    const std::size_t need = kBlockSize - buffer_len_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == kBlockSize) {
      compress(state_.data(), buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }

  // All remaining full blocks in one backend call.
  const std::size_t full = (data.size() - offset) / kBlockSize;
  if (full > 0) {
    compress(state_.data(), data.data() + offset, full);
    offset += full * kBlockSize;
  }

  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Digest Sha256::finish() {
  if (finished_) throw std::logic_error("Sha256::finish called twice");
  finished_ = true;

  const CompressFn compress = active_compress();
  const std::uint64_t bit_len = total_len_ * 8;

  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  std::uint8_t pad[kBlockSize * 2] = {};
  std::size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  const std::size_t rem = (buffer_len_ + 1) % kBlockSize;
  const std::size_t zeros = (rem <= 56) ? (56 - rem) : (56 + kBlockSize - rem);
  pad_len += zeros;
  for (int i = 7; i >= 0; --i) {
    pad[pad_len++] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }

  // Feed padding through the normal path (bypassing the total_len_
  // accounting, which is already frozen).
  std::size_t offset = 0;
  while (offset < pad_len) {
    const std::size_t take = std::min(kBlockSize - buffer_len_, pad_len - offset);
    std::memcpy(buffer_.data() + buffer_len_, pad + offset, take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == kBlockSize) {
      compress(state_.data(), buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }

  Digest digest;
  for (int i = 0; i < 8; ++i) store_be32(digest.data() + 4 * i, state_[i]);
  return digest;
}

Digest Sha256::hash(common::BytesView data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest Sha256::hash2(common::BytesView a, common::BytesView b) {
  Sha256 h;
  h.update(a);
  h.update(b);
  return h.finish();
}

Sha256Midstate Sha256::precompute(common::BytesView prefix) {
  Sha256Midstate ms;
  ms.state = kInitialState;
  const std::size_t full = prefix.size() / kBlockSize;
  if (full > 0) {
    active_compress()(ms.state.data(), prefix.data(), full);
  }
  ms.absorbed = static_cast<std::uint64_t>(full) * kBlockSize;
  return ms;
}

Digest Sha256::finish_with_suffix(const Sha256Midstate& midstate,
                                  common::BytesView tail,
                                  common::BytesView suffix) {
  const std::size_t mlen = tail.size() + suffix.size();
  const std::uint64_t total = midstate.absorbed + mlen;

  std::array<std::uint32_t, 8> state = midstate.state;

  if (mlen + 9 <= 2 * kBlockSize) {
    // Hot path (solver/verifier: short tail + 8-byte nonce): lay the
    // remainder and its padding out in at most two stack blocks and
    // compress once. No allocation, no buffering.
    std::uint8_t buf[2 * kBlockSize];
    if (!tail.empty()) std::memcpy(buf, tail.data(), tail.size());
    if (!suffix.empty()) {
      std::memcpy(buf + tail.size(), suffix.data(), suffix.size());
    }
    const std::size_t blocks = (mlen + 9 <= kBlockSize) ? 1 : 2;
    const std::size_t padded = blocks * kBlockSize;
    buf[mlen] = 0x80;
    std::memset(buf + mlen + 1, 0, padded - 8 - (mlen + 1));
    const std::uint64_t bit_len = total * 8;
    for (int i = 0; i < 8; ++i) {
      buf[padded - 8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
    }
    active_compress()(state.data(), buf, blocks);
  } else {
    // General remainder (long tails/suffixes): stream through an
    // incremental hasher seeded from the midstate.
    Sha256 h;
    h.state_ = state;
    h.total_len_ = midstate.absorbed;
    h.update(tail);
    h.update(suffix);
    return h.finish();
  }

  Digest digest;
  for (int i = 0; i < 8; ++i) store_be32(digest.data() + 4 * i, state[i]);
  return digest;
}

void Sha256::hash_many(std::span<const common::BytesView> messages,
                       std::span<Digest> out) {
  if (messages.size() != out.size()) {
    throw std::invalid_argument("Sha256::hash_many: span size mismatch");
  }
  const std::size_t n = messages.size();
  if (n == 0) return;

  const LaneKernel* kernel = active_lane_kernel();
  if (kernel != nullptr && n >= 4) {
    const std::size_t width = kernel->width;
    // Group equal-length messages into width-wide lanes. Order by
    // length (stable, so equal-length runs keep batch order), then
    // sweep runs.
    std::vector<std::uint32_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0u);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return messages[a].size() < messages[b].size();
                     });
    std::size_t run_start = 0;
    while (run_start < n) {
      const std::size_t len = messages[idx[run_start]].size();
      std::size_t run_end = run_start + 1;
      while (run_end < n && messages[idx[run_end]].size() == len) ++run_end;
      for (std::size_t base = run_start; base < run_end; base += width) {
        const std::size_t lanes = std::min(width, run_end - base);
        if (lanes >= width / 2) {
          // Fill idle lanes by repeating the first message; their
          // outputs are discarded.
          const std::uint8_t* ptrs[kMaxLanes];
          std::uint8_t digests[kMaxLanes][32];
          for (std::size_t l = 0; l < width; ++l) {
            ptrs[l] = messages[idx[base + std::min(l, lanes - 1)]].data();
          }
          kernel->hash_lanes(ptrs, len, digests);
          for (std::size_t l = 0; l < lanes; ++l) {
            std::memcpy(out[idx[base + l]].data(), digests[l], 32);
          }
        } else {
          for (std::size_t l = 0; l < lanes; ++l) {
            out[idx[base + l]] = hash(messages[idx[base + l]]);
          }
        }
      }
      run_start = run_end;
    }
    return;
  }

  // Single-stream backends (SHA-NI / ARMv8-CE are fastest one message
  // at a time).
  for (std::size_t i = 0; i < n; ++i) out[i] = hash(messages[i]);
}

void Sha256::finish_many_with_suffix(const Sha256Midstate& midstate,
                                     common::BytesView tail,
                                     std::span<const common::BytesView> suffixes,
                                     std::span<Digest> out) {
  if (suffixes.size() != out.size()) {
    throw std::invalid_argument(
        "Sha256::finish_many_with_suffix: span size mismatch");
  }
  const std::size_t n = suffixes.size();
  if (n == 0) return;
  const std::size_t slen = suffixes[0].size();
  for (const common::BytesView& s : suffixes) {
    if (s.size() != slen) {
      throw std::invalid_argument(
          "Sha256::finish_many_with_suffix: suffixes must be equal length");
    }
  }

  const std::size_t mlen = tail.size() + slen;
  const LaneKernel* kernel = active_lane_kernel();
  if (kernel == nullptr || mlen + 9 > 2 * kBlockSize || n < 2) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = finish_with_suffix(midstate, tail, suffixes[i]);
    }
    return;
  }

  // Shared final-block template: tail, a hole for the suffix, then the
  // padding and bit-length trailer — identical across lanes because the
  // suffix lengths are equal. Each sweep only rewrites the suffix hole.
  const std::size_t blocks = (mlen + 9 <= kBlockSize) ? 1 : 2;
  const std::size_t padded = blocks * kBlockSize;
  const std::uint64_t bit_len = (midstate.absorbed + mlen) * 8;
  std::uint8_t lane_blocks[kMaxLanes][2 * kBlockSize];
  const std::uint8_t* ptrs[kMaxLanes];
  std::uint8_t digests[kMaxLanes][32];
  const std::size_t width = kernel->width;
  for (std::size_t l = 0; l < width; ++l) {
    std::uint8_t* block = lane_blocks[l];
    if (!tail.empty()) std::memcpy(block, tail.data(), tail.size());
    block[mlen] = 0x80;
    std::memset(block + mlen + 1, 0, padded - 8 - (mlen + 1));
    for (int i = 0; i < 8; ++i) {
      block[padded - 8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
    }
    ptrs[l] = block;
  }

  std::size_t base = 0;
  for (; base + width <= n; base += width) {
    if (slen > 0) {
      for (std::size_t l = 0; l < width; ++l) {
        std::memcpy(lane_blocks[l] + tail.size(), suffixes[base + l].data(),
                    slen);
      }
    }
    kernel->finish_lanes(midstate.state.data(), ptrs, blocks, digests);
    for (std::size_t l = 0; l < width; ++l) {
      std::memcpy(out[base + l].data(), digests[l], 32);
    }
  }
  // Trailing partial group: scalar finishes (same result, no idle-lane
  // work).
  for (; base < n; ++base) {
    out[base] = finish_with_suffix(midstate, tail, suffixes[base]);
  }
}

unsigned leading_zero_bits(const Digest& digest) {
  unsigned bits = 0;
  for (std::uint8_t byte : digest) {
    if (byte == 0) {
      bits += 8;
      continue;
    }
    bits += static_cast<unsigned>(std::countl_zero(byte));
    break;
  }
  return bits;
}

bool meets_difficulty(const Digest& digest, unsigned d) {
  return leading_zero_bits(digest) >= d;
}

bool constant_time_equal(common::BytesView a, common::BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace powai::crypto
