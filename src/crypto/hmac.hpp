#pragma once
/// \file hmac.hpp
/// HMAC-SHA256 (RFC 2104). The puzzle issuer derives per-request seeds as
/// HMAC(server-secret, client-ip || timestamp || counter) so that seeds
/// are unpredictable (blocking pre-computation attacks, §II.3 of the
/// paper) yet stateless to verify.

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace powai::crypto {

/// One-shot HMAC-SHA256 over \p message with \p key (any key length).
[[nodiscard]] Digest hmac_sha256(common::BytesView key,
                                 common::BytesView message);

/// Incremental HMAC-SHA256 for multi-part messages.
class HmacSha256 final {
 public:
  explicit HmacSha256(common::BytesView key);

  void update(common::BytesView data);

  /// Finalizes and returns the MAC. The object must not be reused after
  /// finish() without reinitialization.
  [[nodiscard]] Digest finish();

 private:
  Sha256 inner_;
  std::array<std::uint8_t, Sha256::kBlockSize> opad_key_{};
};

/// HKDF-style expand (single block, n <= 32 bytes): derives a sub-key
/// labelled by \p info from \p key. Used to separate the issuer's seed
/// key from its MAC key from one master secret.
[[nodiscard]] common::Bytes derive_key(common::BytesView key,
                                       common::BytesView info, std::size_t n);

}  // namespace powai::crypto
