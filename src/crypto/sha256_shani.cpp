/// \file sha256_shani.cpp
/// SHA-256 compression via the x86 SHA extensions (sha256rnds2 /
/// sha256msg1 / sha256msg2). Same contract as compress_generic; verified
/// bit-exact against it by the KAT and property suites, which CI runs
/// with each backend forced.
///
/// Compiled into every build (no special flags: the kernels carry
/// per-function target attributes) and only ever called after the CPUID
/// check in cpu_supports_shani().

#include "crypto/sha256_dispatch.hpp"

#ifdef POWAI_SHA256_X86_DISPATCH

#include <cpuid.h>
#include <immintrin.h>

namespace powai::crypto::detail {

namespace {

/// XCR0 via xgetbv, or 0 when the OS does not expose it (no OSXSAVE).
std::uint32_t xcr0_low() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return 0;
  if (((ecx >> 27) & 1u) == 0) return 0;  // OSXSAVE
  std::uint32_t xcr0_lo = 0, xcr0_hi = 0;
  __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  return xcr0_lo;
}

/// Are YMM (bit 2) and XMM (bit 1) state OS-enabled?
bool os_enables_ymm() { return (xcr0_low() & 0x6u) == 0x6u; }

/// Are opmask/ZMM (bits 5-7) on top of XMM/YMM state OS-enabled?
bool os_enables_zmm() { return (xcr0_low() & 0xE6u) == 0xE6u; }

}  // namespace

bool cpu_supports_shani() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool sse_levels = ((ecx >> 0) & 1u) != 0 &&   // SSE3
                          ((ecx >> 9) & 1u) != 0 &&   // SSSE3
                          ((ecx >> 19) & 1u) != 0;    // SSE4.1
  if (!sse_levels) return false;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return ((ebx >> 29) & 1u) != 0;  // SHA
}

bool cpu_supports_avx2() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  if (((ebx >> 5) & 1u) == 0) return false;  // AVX2
  return os_enables_ymm();
}

bool cpu_supports_avx512() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  const bool levels = ((ebx >> 16) & 1u) != 0 &&  // AVX512F
                      ((ebx >> 30) & 1u) != 0;    // AVX512BW
  return levels && os_enables_zmm();
}

__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(
    std::uint32_t* state, const std::uint8_t* blocks, std::size_t n) {
  // Byte shuffle turning little-endian loads into big-endian words.
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // The sha256rnds2 instruction wants the state split as ABEF / CDGH.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  while (n > 0) {
    const __m128i save0 = state0;
    const __m128i save1 = state1;
    __m128i msg, msg0, msg1, msg2, msg3;

    // Rounds 0-3.
    msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 0));
    msg0 = _mm_shuffle_epi8(msg, kShuffle);
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(static_cast<long long>(0xE9B5DBA5B5C0FBCFULL),
                             static_cast<long long>(0x71374491428A2F98ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16));
    msg1 = _mm_shuffle_epi8(msg1, kShuffle);
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(static_cast<long long>(0xAB1C5ED5923F82A4ULL),
                             static_cast<long long>(0x59F111F13956C25BULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32));
    msg2 = _mm_shuffle_epi8(msg2, kShuffle);
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(static_cast<long long>(0x550C7DC3243185BEULL),
                             static_cast<long long>(0x12835B01D807AA98ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15.
    msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48));
    msg3 = _mm_shuffle_epi8(msg3, kShuffle);
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(static_cast<long long>(0xC19BF1749BDC06A7ULL),
                             static_cast<long long>(0x80DEB1FE72BE5D74ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(static_cast<long long>(0x240CA1CC0FC19DC6ULL),
                             static_cast<long long>(0xEFBE4786E49B69C1ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23.
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(static_cast<long long>(0x76F988DA5CB0A9DCULL),
                             static_cast<long long>(0x4A7484AA2DE92C6FULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(static_cast<long long>(0xBF597FC7B00327C8ULL),
                             static_cast<long long>(0xA831C66D983E5152ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(static_cast<long long>(0x1429296706CA6351ULL),
                             static_cast<long long>(0xD5A79147C6E00BF3ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(static_cast<long long>(0x53380D134D2C6DFCULL),
                             static_cast<long long>(0x2E1B213827B70A85ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39.
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(static_cast<long long>(0x92722C8581C2C92EULL),
                             static_cast<long long>(0x766A0ABB650A7354ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(static_cast<long long>(0xC76C51A3C24B8B70ULL),
                             static_cast<long long>(0xA81A664BA2BFE8A1ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(static_cast<long long>(0x106AA070F40E3585ULL),
                             static_cast<long long>(0xD6990624D192E819ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(static_cast<long long>(0x34B0BCB52748774CULL),
                             static_cast<long long>(0x1E376C0819A4C116ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55 (message schedule complete; no more msg1 steps).
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(static_cast<long long>(0x682E6FF35B9CCA4FULL),
                             static_cast<long long>(0x4ED8AA4A391C0CB3ULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(static_cast<long long>(0x8CC7020884C87814ULL),
                             static_cast<long long>(0x78A5636F748F82EEULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(static_cast<long long>(0xC67178F2BEF9A3F7ULL),
                             static_cast<long long>(0xA4506CEB90BEFFFAULL)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, save0);
    state1 = _mm_add_epi32(state1, save1);

    blocks += 64;
    --n;
  }

  // ABEF / CDGH back to ABCD / EFGH.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);        // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);           // HGFE... ABCD/EFGH order
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

}  // namespace powai::crypto::detail

#endif  // POWAI_SHA256_X86_DISPATCH
