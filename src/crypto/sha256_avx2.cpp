/// \file sha256_avx2.cpp
/// 8-way multi-buffer SHA-256: eight independent equal-length messages
/// hashed simultaneously, one message per 32-bit lane of a YMM register
/// (the classic transposed "SHA-256 MB" layout). Padding is identical
/// across lanes because the lengths are equal, so whole messages —
/// padding included — run through one vectorized round function.
///
/// Two entry points share the round function: hash8_avx2 (eight whole
/// messages from the initial state) and finish8_avx2 (eight pre-padded
/// final blocks from one shared midstate — the solver's nonce sweep).
///
/// Compiled into every build (per-function target attribute); only
/// reached through Sha256::hash_many / finish_many_with_suffix after
/// the cpu_supports_avx2() check. Bit-exactness against the scalar
/// reference is pinned by the cross-check tests run with each backend
/// forced.

#include "crypto/sha256_dispatch.hpp"

#ifdef POWAI_SHA256_X86_DISPATCH

#include <immintrin.h>

#include <cstring>

namespace powai::crypto::detail {

namespace {

alignas(32) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

__attribute__((target("avx2"))) inline __m256i rotr32(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}

/// One 64-byte block per lane: ptrs[l] points at lane l's block.
__attribute__((target("avx2"))) void compress8_block(
    __m256i st[8], const std::uint8_t* const ptrs[8]) {
  // Transposed message load: w[t] holds word t of all eight lanes,
  // byte-swapped to big-endian via one shuffle per vector.
  const __m256i bswap = _mm256_set_epi8(
      12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3,  //
      12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
  __m256i w[16];
  for (int t = 0; t < 16; ++t) {
    std::uint32_t lane_words[8];
    for (int l = 0; l < 8; ++l) {
      std::memcpy(&lane_words[l], ptrs[l] + 4 * t, 4);
    }
    w[t] = _mm256_shuffle_epi8(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lane_words)),
        bswap);
  }

  __m256i a = st[0], b = st[1], c = st[2], d = st[3];
  __m256i e = st[4], f = st[5], g = st[6], h = st[7];

  for (int t = 0; t < 64; ++t) {
    if (t >= 16) {
      const __m256i w15 = w[(t - 15) & 15];
      const __m256i w2 = w[(t - 2) & 15];
      const __m256i s0 = _mm256_xor_si256(
          _mm256_xor_si256(rotr32(w15, 7), rotr32(w15, 18)),
          _mm256_srli_epi32(w15, 3));
      const __m256i s1 = _mm256_xor_si256(
          _mm256_xor_si256(rotr32(w2, 17), rotr32(w2, 19)),
          _mm256_srli_epi32(w2, 10));
      w[t & 15] = _mm256_add_epi32(
          _mm256_add_epi32(w[t & 15], s0),
          _mm256_add_epi32(w[(t - 7) & 15], s1));
    }
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(rotr32(e, 6), rotr32(e, 11)), rotr32(e, 25));
    const __m256i ch = _mm256_xor_si256(
        _mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
    const __m256i t1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, s1), ch),
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(kK[t])),
                         w[t & 15]));
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(rotr32(a, 2), rotr32(a, 13)), rotr32(a, 22));
    const __m256i maj = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
        _mm256_and_si256(b, c));
    const __m256i t2 = _mm256_add_epi32(s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, t1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(t1, t2);
  }

  st[0] = _mm256_add_epi32(st[0], a);
  st[1] = _mm256_add_epi32(st[1], b);
  st[2] = _mm256_add_epi32(st[2], c);
  st[3] = _mm256_add_epi32(st[3], d);
  st[4] = _mm256_add_epi32(st[4], e);
  st[5] = _mm256_add_epi32(st[5], f);
  st[6] = _mm256_add_epi32(st[6], g);
  st[7] = _mm256_add_epi32(st[7], h);
}

/// Un-transpose: lane l's words st[0..7][l], stored big-endian.
__attribute__((target("avx2"))) void store_digests8(const __m256i st[8],
                                                    std::uint8_t (*out)[32]) {
  alignas(32) std::uint32_t words[8][8];  // words[word][lane]
  for (int wrd = 0; wrd < 8; ++wrd) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(words[wrd]), st[wrd]);
  }
  for (int l = 0; l < 8; ++l) {
    for (int wrd = 0; wrd < 8; ++wrd) {
      const std::uint32_t v = words[wrd][l];
      out[l][4 * wrd + 0] = static_cast<std::uint8_t>(v >> 24);
      out[l][4 * wrd + 1] = static_cast<std::uint8_t>(v >> 16);
      out[l][4 * wrd + 2] = static_cast<std::uint8_t>(v >> 8);
      out[l][4 * wrd + 3] = static_cast<std::uint8_t>(v);
    }
  }
}

}  // namespace

__attribute__((target("avx2"))) void hash8_avx2(
    const std::uint8_t* const msgs[8], std::size_t len,
    std::uint8_t (*out)[32]) {
  __m256i st[8] = {
      _mm256_set1_epi32(static_cast<int>(0x6a09e667)),
      _mm256_set1_epi32(static_cast<int>(0xbb67ae85)),
      _mm256_set1_epi32(static_cast<int>(0x3c6ef372)),
      _mm256_set1_epi32(static_cast<int>(0xa54ff53a)),
      _mm256_set1_epi32(static_cast<int>(0x510e527f)),
      _mm256_set1_epi32(static_cast<int>(0x9b05688c)),
      _mm256_set1_epi32(static_cast<int>(0x1f83d9ab)),
      _mm256_set1_epi32(static_cast<int>(0x5be0cd19)),
  };

  // Full 64-byte blocks straight from the messages.
  const std::size_t full_blocks = len / 64;
  const std::size_t rem = len % 64;
  const std::uint8_t* ptrs[8];
  for (std::size_t blk = 0; blk < full_blocks; ++blk) {
    for (int l = 0; l < 8; ++l) ptrs[l] = msgs[l] + blk * 64;
    compress8_block(st, ptrs);
  }

  // Remainder + padding: equal lengths mean one shared layout. Build
  // each lane's final one or two blocks on the stack.
  const std::size_t pad_blocks = (rem + 9 <= 64) ? 1 : 2;
  const std::size_t padded = pad_blocks * 64;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(len) * 8;
  std::uint8_t tail[8][128];
  for (int l = 0; l < 8; ++l) {
    if (rem > 0) std::memcpy(tail[l], msgs[l] + full_blocks * 64, rem);
    tail[l][rem] = 0x80;
    std::memset(tail[l] + rem + 1, 0, padded - 8 - (rem + 1));
    for (int i = 0; i < 8; ++i) {
      tail[l][padded - 8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
    }
  }
  for (std::size_t blk = 0; blk < pad_blocks; ++blk) {
    for (int l = 0; l < 8; ++l) ptrs[l] = tail[l] + blk * 64;
    compress8_block(st, ptrs);
  }

  store_digests8(st, out);
}

__attribute__((target("avx2"))) void finish8_avx2(
    const std::uint32_t state[8], const std::uint8_t* const blocks[8],
    std::size_t blocks_per_lane, std::uint8_t (*out)[32]) {
  // Every lane starts from the same chaining state (the shared
  // midstate) and compresses its own pre-padded final block(s).
  __m256i st[8];
  for (int i = 0; i < 8; ++i) {
    st[i] = _mm256_set1_epi32(static_cast<int>(state[i]));
  }
  const std::uint8_t* ptrs[8];
  for (std::size_t blk = 0; blk < blocks_per_lane; ++blk) {
    for (int l = 0; l < 8; ++l) ptrs[l] = blocks[l] + blk * 64;
    compress8_block(st, ptrs);
  }
  store_digests8(st, out);
}

}  // namespace powai::crypto::detail

#endif  // POWAI_SHA256_X86_DISPATCH
