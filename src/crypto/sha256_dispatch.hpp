#pragma once
/// \file sha256_dispatch.hpp
/// Internal seam between the portable SHA-256 front end (sha256.cpp) and
/// the CPU-specific compression backends (sha256_shani.cpp,
/// sha256_avx2.cpp, sha256_avx512.cpp, sha256_armv8.cpp). Not part of
/// the public API — include sha256.hpp.
///
/// Two kernel shapes:
///  - single-stream: fold \p n contiguous 64-byte blocks (big-endian
///    words) into \p state — the compress_generic contract, implemented
///    by the scalar reference, x86 SHA-NI, and ARMv8-CE kernels;
///  - multi-lane: W independent messages advanced together, one message
///    per 32-bit SIMD lane (AVX2: W=8, AVX-512: W=16). Each multi-lane
///    backend provides a whole-message form (hashW: equal-length
///    messages, padding included) and a finish form (finishW: every
///    lane starts from the same already-absorbed chaining state and
///    compresses its own pre-padded final block(s) — the solver's
///    shared-midstate nonce sweep).

#include <cstddef>
#include <cstdint>

namespace powai::crypto::detail {

/// Folds \p n 64-byte blocks into \p state (8 words). The portable
/// reference implementation; always available.
void compress_generic(std::uint32_t* state, const std::uint8_t* blocks,
                      std::size_t n);

// x86 runtime dispatch is only wired up for the GCC/Clang family, which
// supports per-function target attributes (no special compile flags
// needed for the rest of the translation unit).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define POWAI_SHA256_X86_DISPATCH 1

/// CPUID: SHA extensions plus the SSE levels the kernel needs.
[[nodiscard]] bool cpu_supports_shani();

/// CPUID + XGETBV: AVX2 with OS-enabled YMM state.
[[nodiscard]] bool cpu_supports_avx2();

/// CPUID + XGETBV: AVX-512 F+BW with OS-enabled ZMM/opmask state.
[[nodiscard]] bool cpu_supports_avx512();

/// SHA-NI compression (same contract as compress_generic). Only call
/// when cpu_supports_shani() is true.
void compress_shani(std::uint32_t* state, const std::uint8_t* blocks,
                    std::size_t n);

/// Hashes eight equal-length messages in AVX2 lanes, producing
/// out[i] = SHA-256(msgs[i]) for i in [0, 8). Handles padding
/// internally. Only call when cpu_supports_avx2() is true.
void hash8_avx2(const std::uint8_t* const msgs[8], std::size_t len,
                std::uint8_t (*out)[32]);

/// Finishes eight messages sharing one chaining state: every lane
/// starts from \p state (8 words, the midstate of a common prefix) and
/// compresses its own \p blocks_per_lane pre-padded 64-byte blocks
/// (blocks[l] points at lane l's contiguous final blocks), producing
/// out[l] = the lane's big-endian digest. Padding and the bit-length
/// trailer must already be laid out in the blocks — this kernel only
/// compresses. Only call when cpu_supports_avx2() is true.
void finish8_avx2(const std::uint32_t state[8],
                  const std::uint8_t* const blocks[8],
                  std::size_t blocks_per_lane, std::uint8_t (*out)[32]);

/// 16-lane AVX-512 analogues of hash8_avx2 / finish8_avx2. Only call
/// when cpu_supports_avx512() is true.
void hash16_avx512(const std::uint8_t* const msgs[16], std::size_t len,
                   std::uint8_t (*out)[32]);
void finish16_avx512(const std::uint32_t state[8],
                     const std::uint8_t* const blocks[16],
                     std::size_t blocks_per_lane, std::uint8_t (*out)[32]);
#endif  // x86 dispatch

// ARMv8 runtime dispatch (AArch64 crypto extensions). The kernel is
// fenced behind a per-file feature pragma in sha256_armv8.cpp; the
// probe consults HWCAP so a build run on a CPU without the SHA-2
// extension never reaches it.
#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define POWAI_SHA256_ARM_DISPATCH 1

/// getauxval(AT_HWCAP) & HWCAP_SHA2 on Linux; Apple arm64 always has
/// the SHA-2 extension.
[[nodiscard]] bool cpu_supports_armv8_sha2();

/// ARMv8-CE compression (vsha256hq / vsha256h2q; same contract as
/// compress_generic). Only call when cpu_supports_armv8_sha2() is true.
void compress_armv8(std::uint32_t* state, const std::uint8_t* blocks,
                    std::size_t n);
#endif  // arm dispatch

}  // namespace powai::crypto::detail
