#pragma once
/// \file sha256_dispatch.hpp
/// Internal seam between the portable SHA-256 front end (sha256.cpp) and
/// the CPU-specific compression backends (sha256_shani.cpp,
/// sha256_avx2.cpp). Not part of the public API — include sha256.hpp.
///
/// Every backend implements the same contract as compress_generic: fold
/// \p blocks (n contiguous 64-byte blocks, big-endian words) into
/// \p state. The multi-lane AVX2 entry point instead hashes eight whole
/// equal-length messages, padding included, producing eight digests.

#include <cstddef>
#include <cstdint>

namespace powai::crypto::detail {

/// Folds \p n 64-byte blocks into \p state (8 words). The portable
/// reference implementation; always available.
void compress_generic(std::uint32_t* state, const std::uint8_t* blocks,
                      std::size_t n);

// x86 runtime dispatch is only wired up for the GCC/Clang family, which
// supports per-function target attributes (no special compile flags
// needed for the rest of the translation unit).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define POWAI_SHA256_X86_DISPATCH 1

/// CPUID: SHA extensions plus the SSE levels the kernel needs.
[[nodiscard]] bool cpu_supports_shani();

/// CPUID + XGETBV: AVX2 with OS-enabled YMM state.
[[nodiscard]] bool cpu_supports_avx2();

/// SHA-NI compression (same contract as compress_generic). Only call
/// when cpu_supports_shani() is true.
void compress_shani(std::uint32_t* state, const std::uint8_t* blocks,
                    std::size_t n);

/// Hashes eight equal-length messages in AVX2 lanes, producing
/// out[i] = SHA-256(msgs[i]) for i in [0, 8). Handles padding
/// internally. Only call when cpu_supports_avx2() is true.
void hash8_avx2(const std::uint8_t* const msgs[8], std::size_t len,
                std::uint8_t (*out)[32]);
#endif  // x86 dispatch

}  // namespace powai::crypto::detail
