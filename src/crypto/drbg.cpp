#include "crypto/drbg.hpp"

#include <cstring>
#include <random>
#include <stdexcept>

#include "crypto/hmac.hpp"

namespace powai::crypto {

HmacDrbg::HmacDrbg(common::BytesView entropy,
                   common::BytesView personalization) {
  key_.fill(0x00);
  value_.fill(0x01);
  common::Bytes seed_material(entropy.begin(), entropy.end());
  common::append(seed_material, personalization);
  update(seed_material);
}

void HmacDrbg::reseed(common::BytesView entropy) { update(entropy); }

void HmacDrbg::update(common::BytesView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  {
    HmacSha256 mac(common::BytesView(key_.data(), key_.size()));
    mac.update(common::BytesView(value_.data(), value_.size()));
    const std::uint8_t zero = 0x00;
    mac.update(common::BytesView(&zero, 1));
    mac.update(provided);
    const Digest k = mac.finish();
    std::memcpy(key_.data(), k.data(), k.size());
  }
  {
    const Digest v = hmac_sha256(common::BytesView(key_.data(), key_.size()),
                                 common::BytesView(value_.data(), value_.size()));
    std::memcpy(value_.data(), v.data(), v.size());
  }
  if (provided.empty()) return;
  // Second round when provided data is present (per SP 800-90A).
  {
    HmacSha256 mac(common::BytesView(key_.data(), key_.size()));
    mac.update(common::BytesView(value_.data(), value_.size()));
    const std::uint8_t one = 0x01;
    mac.update(common::BytesView(&one, 1));
    mac.update(provided);
    const Digest k = mac.finish();
    std::memcpy(key_.data(), k.data(), k.size());
  }
  {
    const Digest v = hmac_sha256(common::BytesView(key_.data(), key_.size()),
                                 common::BytesView(value_.data(), value_.size()));
    std::memcpy(value_.data(), v.data(), v.size());
  }
}

common::Bytes HmacDrbg::generate(std::size_t n) {
  common::Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    const Digest v = hmac_sha256(common::BytesView(key_.data(), key_.size()),
                                 common::BytesView(value_.data(), value_.size()));
    std::memcpy(value_.data(), v.data(), v.size());
    const std::size_t take = std::min(v.size(), n - out.size());
    out.insert(out.end(), v.begin(), v.begin() + static_cast<std::ptrdiff_t>(take));
  }
  update({});
  return out;
}

std::uint64_t HmacDrbg::next_u64() {
  const common::Bytes bytes = generate(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

DerivedDrbg::DerivedDrbg(common::BytesView key,
                         common::BytesView personalization)
    : key_(key.begin(), key.end()),
      personalization_(personalization.begin(), personalization.end()) {
  if (key_.empty()) {
    throw std::invalid_argument("DerivedDrbg: empty key");
  }
}

HmacDrbg DerivedDrbg::stream(std::uint64_t id) const {
  // Instantiate with the family key as entropy and (personalization ||
  // id) as the personalization string: SP 800-90A folds both into the
  // initial state, so distinct ids yield independent streams while the
  // derivation stays a pure function of (key, personalization, id).
  common::Bytes info = personalization_;
  common::append_u64be(info, id);
  return HmacDrbg(common::BytesView(key_.data(), key_.size()),
                  common::BytesView(info.data(), info.size()));
}

common::Bytes DerivedDrbg::generate(std::uint64_t id, std::size_t n) const {
  return stream(id).generate(n);
}

std::uint64_t DerivedDrbg::next_u64(std::uint64_t id) const {
  return stream(id).next_u64();
}

common::Bytes os_entropy(std::size_t n) {
  std::random_device rd;
  common::Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    const unsigned int word = rd();
    for (std::size_t i = 0; i < sizeof(word) && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
    }
  }
  return out;
}

}  // namespace powai::crypto
