#pragma once
/// \file siphash.hpp
/// SipHash-2-4 (Aumasson–Bernstein), a fast keyed 64-bit PRF. Used for
/// hash-table keying in the replay cache and for cheap keyed fingerprints
/// where a full SHA-256 would be wasteful.

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace powai::crypto {

/// 128-bit SipHash key.
using SipKey = std::array<std::uint8_t, 16>;

/// Computes SipHash-2-4 of \p data under \p key.
[[nodiscard]] std::uint64_t siphash24(const SipKey& key,
                                      common::BytesView data);

}  // namespace powai::crypto
