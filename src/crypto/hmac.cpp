#include "crypto/hmac.hpp"

#include <cstring>
#include <stdexcept>

namespace powai::crypto {

namespace {

/// Prepares the padded key block: hash keys longer than the block size,
/// zero-pad to exactly one block.
std::array<std::uint8_t, Sha256::kBlockSize> normalize_key(
    common::BytesView key) {
  std::array<std::uint8_t, Sha256::kBlockSize> block{};
  if (key.size() > Sha256::kBlockSize) {
    const Digest digest = Sha256::hash(key);
    std::memcpy(block.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }
  return block;
}

}  // namespace

HmacSha256::HmacSha256(common::BytesView key) {
  const auto key_block = normalize_key(key);
  std::array<std::uint8_t, Sha256::kBlockSize> ipad_key{};
  for (std::size_t i = 0; i < key_block.size(); ++i) {
    ipad_key[i] = key_block[i] ^ 0x36;
    opad_key_[i] = key_block[i] ^ 0x5c;
  }
  inner_.update(common::BytesView(ipad_key.data(), ipad_key.size()));
}

void HmacSha256::update(common::BytesView data) { inner_.update(data); }

Digest HmacSha256::finish() {
  const Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(common::BytesView(opad_key_.data(), opad_key_.size()));
  outer.update(common::BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Digest hmac_sha256(common::BytesView key, common::BytesView message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finish();
}

common::Bytes derive_key(common::BytesView key, common::BytesView info,
                         std::size_t n) {
  if (n == 0 || n > Sha256::kDigestSize) {
    throw std::invalid_argument("derive_key: n must be in [1, 32]");
  }
  // HKDF-Expand with a single block: T(1) = HMAC(key, info || 0x01).
  HmacSha256 mac(key);
  mac.update(info);
  const std::uint8_t counter = 0x01;
  mac.update(common::BytesView(&counter, 1));
  const Digest t1 = mac.finish();
  return common::Bytes(t1.begin(), t1.begin() + static_cast<std::ptrdiff_t>(n));
}

}  // namespace powai::crypto
