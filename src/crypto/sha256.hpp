#pragma once
/// \file sha256.hpp
/// From-scratch SHA-256 (FIPS 180-4). This is the hash underlying the
/// paper's PoW puzzles: a solution is a nonce such that
/// SHA-256(puzzle-string || nonce) has a prefix of `d` zero bits.
///
/// Incremental interface (init/update/final) plus one-shot helpers.

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace powai::crypto {

/// A 32-byte SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256. Usage: construct, update() any number of times,
/// finish() once. A finished hasher can be reset() and reused.
class Sha256 final {
 public:
  static constexpr std::size_t kBlockSize = 64;
  static constexpr std::size_t kDigestSize = 32;

  Sha256() { reset(); }

  /// Restores the initial state (discards buffered input).
  void reset();

  /// Absorbs more message bytes.
  void update(common::BytesView data);

  /// Pads, finalizes, and returns the digest. The hasher must be reset()
  /// before further use; calling update() after finish() without reset()
  /// throws std::logic_error.
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(common::BytesView data);

  /// One-shot over the concatenation of two buffers — the solver's hot
  /// path (puzzle-prefix || nonce) without building a temporary.
  [[nodiscard]] static Digest hash2(common::BytesView a, common::BytesView b);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

/// Counts leading zero bits of a digest — the PoW difficulty measure.
/// Returns 256 for the all-zero digest.
[[nodiscard]] unsigned leading_zero_bits(const Digest& digest);

/// True iff the digest meets difficulty \p d (>= d leading zero bits).
[[nodiscard]] bool meets_difficulty(const Digest& digest, unsigned d);

/// Constant-time equality for MAC/digest comparison.
[[nodiscard]] bool constant_time_equal(common::BytesView a, common::BytesView b);

}  // namespace powai::crypto
