#pragma once
/// \file sha256.hpp
/// From-scratch SHA-256 (FIPS 180-4). This is the hash underlying the
/// paper's PoW puzzles: a solution is a nonce such that
/// SHA-256(puzzle-string || nonce) has a prefix of `d` zero bits.
///
/// Three interfaces, from general to hot-path:
///  - incremental (init/update/final) plus one-shot helpers;
///  - a midstate API (precompute / finish_with_suffix) that absorbs an
///    invariant prefix once and then per-suffix compresses only the
///    final block(s) — the solver and verifier fast path;
///  - hash_many, which hashes N independent messages at once, in SIMD
///    lanes when the hardware has them.
///
/// The compression function is runtime-dispatched: a generic scalar
/// backend (the reference all others are tested against), single-stream
/// hardware backends (x86 SHA-NI, ARMv8 crypto extensions), and
/// multi-buffer lane backends (8-way AVX2, 16-way AVX-512) for
/// hash_many and the solver's shared-midstate nonce sweeps
/// (finish_many_with_suffix). The best supported backend is selected
/// once at startup; the environment variable POWAI_SHA256_BACKEND
/// (auto|generic|shani|avx2|avx512|armv8) overrides the choice — an
/// unknown or unsupported-on-this-CPU value fails loudly with
/// std::runtime_error — and tests can force one programmatically via
/// set_backend().

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace powai::crypto {

/// A 32-byte SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Which compression-function implementation services hash calls.
enum class Sha256Backend : std::uint8_t {
  kGeneric = 0,  ///< portable scalar (always available; the reference)
  kShaNi = 1,    ///< x86 SHA extensions, one message at a time
  kAvx2 = 2,     ///< 8-lane AVX2 multi-buffer for lane sweeps; scalar otherwise
  kAvx512 = 3,   ///< 16-lane AVX-512 multi-buffer for lane sweeps; scalar otherwise
  kArmv8 = 4,    ///< ARMv8 crypto extensions, one message at a time
};

/// Chaining state captured after absorbing the full 64-byte blocks of a
/// message prefix. Plain value type: copy it freely, reuse it from any
/// number of threads. Only meaningful with the finish_with_suffix that
/// shares its contract: `absorbed` is a multiple of the block size and
/// the unabsorbed prefix tail is re-supplied per call.
struct Sha256Midstate final {
  std::array<std::uint32_t, 8> state{};
  std::uint64_t absorbed = 0;  ///< prefix bytes folded in (multiple of 64)
};

/// Incremental SHA-256. Usage: construct, update() any number of times,
/// finish() once. A finished hasher can be reset() and reused.
class Sha256 final {
 public:
  static constexpr std::size_t kBlockSize = 64;
  static constexpr std::size_t kDigestSize = 32;

  Sha256() { reset(); }

  /// Restores the initial state (discards buffered input).
  void reset();

  /// Absorbs more message bytes.
  void update(common::BytesView data);

  /// Pads, finalizes, and returns the digest. The hasher must be reset()
  /// before further use; calling update() after finish() without reset()
  /// throws std::logic_error.
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(common::BytesView data);

  /// One-shot over the concatenation of two buffers (no temporary).
  [[nodiscard]] static Digest hash2(common::BytesView a, common::BytesView b);

  /// Absorbs the full 64-byte blocks of \p prefix once. The remaining
  /// `prefix.size() % 64` bytes (the tail, `prefix.subspan(m.absorbed)`)
  /// are NOT folded in — pass them to every finish_with_suffix call.
  [[nodiscard]] static Sha256Midstate precompute(common::BytesView prefix);

  /// Completes SHA-256(prefix || suffix) from a midstate: compresses
  /// only `tail || suffix || padding`. With a short tail and suffix
  /// (the solver: tail < 64, suffix = 8-byte nonce) that is a single
  /// compression per call, allocation-free. Thread-safe; the midstate
  /// is read-only.
  [[nodiscard]] static Digest finish_with_suffix(const Sha256Midstate& midstate,
                                                 common::BytesView tail,
                                                 common::BytesView suffix);

  /// Hashes N independent messages: out[i] = hash(messages[i]). Equal-
  /// length messages are swept in SIMD lanes when the active backend
  /// supports it (mixed lengths are grouped internally); the result is
  /// bit-identical to N scalar hash() calls on every backend. Throws
  /// std::invalid_argument when the spans' sizes differ.
  static void hash_many(std::span<const common::BytesView> messages,
                        std::span<Digest> out);

  /// Completes SHA-256(prefix || suffixes[i]) for N equal-length
  /// suffixes from one shared midstate: out[i] =
  /// finish_with_suffix(midstate, tail, suffixes[i]), bit-identical on
  /// every backend. On a multi-lane backend, suffixes whose final
  /// block(s) fit the hot path (tail + suffix + 9 <= 128 bytes) are
  /// compressed lane_width() at a time from one shared pre-padded
  /// template — the solver's nonce sweep: N nonces differing only in
  /// the 8 suffix bytes cost one lane-group compression per
  /// lane_width() nonces. Allocation-free. Throws std::invalid_argument
  /// when the spans' sizes differ or the suffix lengths are unequal.
  static void finish_many_with_suffix(
      const Sha256Midstate& midstate, common::BytesView tail,
      std::span<const common::BytesView> suffixes, std::span<Digest> out);

  /// Messages advanced per multi-buffer sweep under backend \p b: 16
  /// for AVX-512, 8 for AVX2, 1 for the single-stream backends
  /// (generic, SHA-NI, ARMv8-CE). The solver sizes its nonce batches
  /// with this; callers batching work for hash_many /
  /// finish_many_with_suffix should hand over multiples of it.
  [[nodiscard]] static std::size_t lane_width(Sha256Backend b);

  /// The backend servicing calls right now.
  [[nodiscard]] static Sha256Backend backend();

  /// Forces a backend (tests, experiments). Returns false — and changes
  /// nothing — when this CPU cannot run \p b. Takes effect for
  /// subsequent calls process-wide.
  static bool set_backend(Sha256Backend b);

  /// Backends this CPU can run, kGeneric always included.
  [[nodiscard]] static std::vector<Sha256Backend> supported_backends();

  /// Stable lowercase name ("generic", "shani", "avx2", "avx512",
  /// "armv8").
  [[nodiscard]] static std::string_view backend_name(Sha256Backend b);

  /// Resolves a POWAI_SHA256_BACKEND-style value: "auto" (or empty)
  /// picks the best supported backend; a known name picks that backend,
  /// throwing std::runtime_error when this CPU cannot run it; anything
  /// else throws std::runtime_error naming the accepted values. This is
  /// exactly the startup environment-variable path, exposed so tests
  /// and tools share its behavior.
  [[nodiscard]] static Sha256Backend backend_from_name(std::string_view name);

 private:
  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

/// Counts leading zero bits of a digest — the PoW difficulty measure.
/// Returns 256 for the all-zero digest.
[[nodiscard]] unsigned leading_zero_bits(const Digest& digest);

/// True iff the digest meets difficulty \p d (>= d leading zero bits).
[[nodiscard]] bool meets_difficulty(const Digest& digest, unsigned d);

/// Constant-time equality for MAC/digest comparison.
[[nodiscard]] bool constant_time_equal(common::BytesView a, common::BytesView b);

}  // namespace powai::crypto
