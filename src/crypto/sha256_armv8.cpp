/// \file sha256_armv8.cpp
/// ARMv8 crypto-extension SHA-256: the SHA2 instructions (vsha256hq,
/// vsha256h2q, vsha256su0q, vsha256su1q) compute four rounds per
/// instruction pair on 128-bit NEON registers, one message stream at a
/// time — the AArch64 analogue of the x86 SHA-NI backend, and like it a
/// single-stream kernel (lane_width 1): midstate reuse, not lane
/// parallelism, is the win here.
///
/// The whole translation unit is compiled only on AArch64
/// (POWAI_SHA256_ARM_DISPATCH); within it the kernel is fenced behind a
/// feature pragma so the surrounding build needs no global -march
/// flags. cpu_supports_armv8_sha2() consults HWCAP at runtime, so a
/// binary built here still starts correctly on a core without the
/// extension (the dispatcher falls back to generic).

#include "crypto/sha256_dispatch.hpp"

#ifdef POWAI_SHA256_ARM_DISPATCH

#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_SHA2
#define HWCAP_SHA2 (1 << 6)
#endif
#endif

#if defined(__clang__)
#pragma clang attribute push(__attribute__((target("neon,sha2"))), \
                             apply_to = function)
#elif defined(__GNUC__)
#pragma GCC push_options
#pragma GCC target("+simd+crypto")
#endif

#include <arm_neon.h>

namespace powai::crypto::detail {

namespace {

alignas(16) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

bool cpu_supports_armv8_sha2() {
#if defined(__APPLE__)
  // Every Apple arm64 core ships the SHA-2 extension.
  return true;
#elif defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_SHA2) != 0;
#else
  return false;
#endif
}

void compress_armv8(std::uint32_t* state, const std::uint8_t* blocks,
                    std::size_t n) {
  // State lives in two quadwords: abcd = {a,b,c,d}, efgh = {e,f,g,h}.
  uint32x4_t abcd = vld1q_u32(state);
  uint32x4_t efgh = vld1q_u32(state + 4);

  while (n-- > 0) {
    const uint32x4_t abcd_save = abcd;
    const uint32x4_t efgh_save = efgh;

    // Load the sixteen message words, byte-swapped to big-endian.
    uint32x4_t w0 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(blocks)));
    uint32x4_t w1 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(blocks + 16)));
    uint32x4_t w2 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(blocks + 32)));
    uint32x4_t w3 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(blocks + 48)));

    uint32x4_t k, wk, tmp;

    // Rounds t..t+3: wk = w + K[t..t+3]; vsha256hq/h2q advance both
    // state halves four rounds. The schedule vectors rotate w0<-w1<-
    // w2<-w3 with vsha256su0/su1 extending sixteen words ahead.
#define POWAI_SHA256_ROUNDS4(i, a, b, c, d)                    \
  do {                                                         \
    k = vld1q_u32(&kK[4 * (i)]);                               \
    wk = vaddq_u32((a), k);                                    \
    tmp = abcd;                                                \
    abcd = vsha256hq_u32(abcd, efgh, wk);                      \
    efgh = vsha256h2q_u32(efgh, tmp, wk);                      \
    if ((i) < 12) {                                            \
      (a) = vsha256su1q_u32(vsha256su0q_u32((a), (b)), (c), (d)); \
    }                                                          \
  } while (0)

    POWAI_SHA256_ROUNDS4(0, w0, w1, w2, w3);
    POWAI_SHA256_ROUNDS4(1, w1, w2, w3, w0);
    POWAI_SHA256_ROUNDS4(2, w2, w3, w0, w1);
    POWAI_SHA256_ROUNDS4(3, w3, w0, w1, w2);
    POWAI_SHA256_ROUNDS4(4, w0, w1, w2, w3);
    POWAI_SHA256_ROUNDS4(5, w1, w2, w3, w0);
    POWAI_SHA256_ROUNDS4(6, w2, w3, w0, w1);
    POWAI_SHA256_ROUNDS4(7, w3, w0, w1, w2);
    POWAI_SHA256_ROUNDS4(8, w0, w1, w2, w3);
    POWAI_SHA256_ROUNDS4(9, w1, w2, w3, w0);
    POWAI_SHA256_ROUNDS4(10, w2, w3, w0, w1);
    POWAI_SHA256_ROUNDS4(11, w3, w0, w1, w2);
    POWAI_SHA256_ROUNDS4(12, w0, w1, w2, w3);
    POWAI_SHA256_ROUNDS4(13, w1, w2, w3, w0);
    POWAI_SHA256_ROUNDS4(14, w2, w3, w0, w1);
    POWAI_SHA256_ROUNDS4(15, w3, w0, w1, w2);

#undef POWAI_SHA256_ROUNDS4

    abcd = vaddq_u32(abcd, abcd_save);
    efgh = vaddq_u32(efgh, efgh_save);
    blocks += 64;
  }

  vst1q_u32(state, abcd);
  vst1q_u32(state + 4, efgh);
}

}  // namespace powai::crypto::detail

#if defined(__clang__)
#pragma clang attribute pop
#elif defined(__GNUC__)
#pragma GCC pop_options
#endif

#endif  // POWAI_SHA256_ARM_DISPATCH
