#include "reputation/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/table.hpp"

namespace powai::reputation {

std::string EvaluationReport::to_string() const {
  std::string out;
  out += "accuracy=" + common::fmt_f(accuracy, 3);
  out += " precision=" + common::fmt_f(precision, 3);
  out += " recall=" + common::fmt_f(recall, 3);
  out += " f1=" + common::fmt_f(f1, 3);
  out += " auc=" + common::fmt_f(roc_auc, 3);
  out += " mae=" + common::fmt_f(mae_vs_target, 2);
  return out;
}

double roc_auc(const std::vector<double>& scores,
               const std::vector<bool>& labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("roc_auc: size mismatch");
  }
  std::size_t positives = 0;
  for (bool label : labels) positives += label ? 1 : 0;
  const std::size_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Mann–Whitney U via midranks.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  double rank_sum_positive = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    // Ranks are 1-based; tied block [i, j] shares the mean rank.
    const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (labels[order[k]]) rank_sum_positive += midrank;
    }
    i = j + 1;
  }
  const auto np = static_cast<double>(positives);
  const auto nn = static_cast<double>(negatives);
  const double u = rank_sum_positive - np * (np + 1.0) / 2.0;
  return u / (np * nn);
}

EvaluationReport evaluate(const IReputationModel& model,
                          const features::Dataset& data, double threshold) {
  if (data.empty()) throw std::invalid_argument("evaluate: empty dataset");

  EvaluationReport report;
  std::vector<double> scores;
  std::vector<bool> labels;
  scores.reserve(data.size());
  labels.reserve(data.size());

  double abs_error_sum = 0.0;
  for (const auto& row : data.rows()) {
    const double s = model.score(row.features);
    scores.push_back(s);
    labels.push_back(row.malicious);
    const double target = row.malicious ? kMaxScore : kMinScore;
    abs_error_sum += std::abs(s - target);

    const bool predicted = classify(s, threshold);
    if (row.malicious && predicted) ++report.confusion.true_positive;
    if (row.malicious && !predicted) ++report.confusion.false_negative;
    if (!row.malicious && predicted) ++report.confusion.false_positive;
    if (!row.malicious && !predicted) ++report.confusion.true_negative;
  }

  const auto& cm = report.confusion;
  const auto total = static_cast<double>(cm.total());
  report.accuracy =
      static_cast<double>(cm.true_positive + cm.true_negative) / total;
  const std::size_t predicted_positive = cm.true_positive + cm.false_positive;
  report.precision =
      predicted_positive > 0
          ? static_cast<double>(cm.true_positive) /
                static_cast<double>(predicted_positive)
          : 0.0;
  const std::size_t actual_positive = cm.true_positive + cm.false_negative;
  report.recall = actual_positive > 0
                      ? static_cast<double>(cm.true_positive) /
                            static_cast<double>(actual_positive)
                      : 0.0;
  report.f1 = (report.precision + report.recall) > 0.0
                  ? 2.0 * report.precision * report.recall /
                        (report.precision + report.recall)
                  : 0.0;
  report.roc_auc = roc_auc(scores, labels);
  report.mae_vs_target = abs_error_sum / total;
  return report;
}

}  // namespace powai::reputation
