#include "reputation/naive_bayes.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/stats.hpp"

namespace powai::reputation {

namespace {
/// Variance floor: degenerate (constant) features would otherwise give
/// infinite densities.
constexpr double kVarFloor = 1e-9;
}  // namespace

void NaiveBayesModel::fit(const features::Dataset& data) {
  const std::size_t n_mal = data.malicious_count();
  const std::size_t n_ben = data.benign_count();
  if (n_mal == 0 || n_ben == 0) {
    throw std::invalid_argument("NaiveBayesModel::fit: need both classes present");
  }

  benign_ = ClassStats{};
  malicious_ = ClassStats{};
  for (const auto& row : data.rows()) {
    ClassStats& cls = row.malicious ? malicious_ : benign_;
    for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
      cls.mean[i] += row.features[i];
    }
  }
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    benign_.mean[i] /= static_cast<double>(n_ben);
    malicious_.mean[i] /= static_cast<double>(n_mal);
  }
  for (const auto& row : data.rows()) {
    ClassStats& cls = row.malicious ? malicious_ : benign_;
    for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
      const double d = row.features[i] - cls.mean[i];
      cls.var[i] += d * d;
    }
  }
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    benign_.var[i] =
        std::max(benign_.var[i] / static_cast<double>(n_ben), kVarFloor);
    malicious_.var[i] =
        std::max(malicious_.var[i] / static_cast<double>(n_mal), kVarFloor);
  }
  const auto total = static_cast<double>(data.size());
  benign_.log_prior = std::log(static_cast<double>(n_ben) / total);
  malicious_.log_prior = std::log(static_cast<double>(n_mal) / total);
  fitted_ = true;

  common::RunningStats malicious_scores;
  common::RunningStats benign_scores;
  for (const auto& row : data.rows()) {
    (row.malicious ? malicious_scores : benign_scores).add(score(row.features));
  }
  epsilon_ = 0.5 * (malicious_scores.stddev() + benign_scores.stddev());
}

double NaiveBayesModel::log_likelihood(const ClassStats& cls,
                                       const features::FeatureVector& x) const {
  double ll = cls.log_prior;
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    const double d = x[i] - cls.mean[i];
    ll += -0.5 * (std::log(2.0 * std::numbers::pi * cls.var[i]) +
                  d * d / cls.var[i]);
  }
  return ll;
}

double NaiveBayesModel::posterior(const features::FeatureVector& x) const {
  if (!fitted_) throw std::logic_error("NaiveBayesModel: not fitted");
  const double ll_mal = log_likelihood(malicious_, x);
  const double ll_ben = log_likelihood(benign_, x);
  // Log-sum-exp for a stable posterior.
  const double max_ll = std::max(ll_mal, ll_ben);
  const double denom = std::exp(ll_mal - max_ll) + std::exp(ll_ben - max_ll);
  return std::exp(ll_mal - max_ll) / denom;
}

double NaiveBayesModel::score(const features::FeatureVector& x) const {
  return clamp_score(kMaxScore * posterior(x));
}

}  // namespace powai::reputation
