#pragma once
/// \file dabr.hpp
/// DAbR — Dynamic Attribute-based Reputation (Renjan et al., ISI 2018),
/// the AI model the paper uses for its proof of concept. DAbR scores an
/// IP by the Euclidean distance of its attribute vector to previously
/// known malicious IPs: close to the malicious population → high score.
///
/// Implementation: features are z-scored with statistics fit on the
/// training set, the malicious centroid is computed, and a query's
/// distance to the centroid is mapped onto [0, 10] by a linear ramp
/// anchored at the typical (median) distances of the two training
/// classes. The ε reported to Policy 3 is the within-class spread of
/// produced scores (see error_epsilon()).

#include <optional>
#include <string>
#include <string_view>

#include "features/normalizer.hpp"
#include "reputation/model.hpp"

namespace powai::reputation {

class DabrModel final : public IReputationModel {
 public:
  DabrModel() = default;

  [[nodiscard]] std::string_view name() const override { return "dabr"; }

  /// Requires at least one malicious and one benign example.
  void fit(const features::Dataset& data) override;

  [[nodiscard]] bool fitted() const override { return fitted_; }

  [[nodiscard]] double score(const features::FeatureVector& x) const override;

  /// ε = mean of the two within-class standard deviations of training
  /// scores: the magnitude by which a produced score typically deviates
  /// from its class's central score, which is exactly the uncertainty
  /// Policy 3's random interval is meant to absorb.
  [[nodiscard]] double error_epsilon() const override { return epsilon_; }

  /// Distance of a (raw, unnormalized) query to the malicious centroid in
  /// normalized feature space. Exposed for diagnostics and tests.
  [[nodiscard]] double centroid_distance(const features::FeatureVector& x) const;

  // --- Dynamic updates (the "D" in DAbR) --------------------------------
  // Threat feeds deliver newly-confirmed observations continuously; the
  // model absorbs them without a full refit. The feature normalizer stays
  // frozen from fit() (scales drift slowly), the malicious centroid moves
  // by an EWMA step toward confirmed-malicious observations, and the two
  // class-distance anchors track observed distances with the same EWMA.

  /// Absorbs one labeled observation. \p alpha in (0, 1] is the EWMA
  /// weight of the new observation (throws std::invalid_argument
  /// otherwise; std::logic_error if called before fit()).
  void observe(const features::FeatureVector& x, bool malicious,
               double alpha = 0.05);

  /// Observations absorbed since fit().
  [[nodiscard]] std::uint64_t observed_count() const { return observed_; }

  // --- Persistence -------------------------------------------------------
  // Text format (key=value lines) so operators can retrain offline and
  // ship the model file to servers.

  /// Serializes the fitted model (throws std::logic_error if unfitted).
  [[nodiscard]] std::string save() const;

  /// Restores a model from save() output; std::nullopt on malformed or
  /// incomplete input.
  [[nodiscard]] static std::optional<DabrModel> load(std::string_view text);

 private:
  features::ZScoreNormalizer normalizer_;
  features::FeatureVector malicious_centroid_;  // normalized space
  double d_malicious_ = 0.0;  // typical centroid distance, malicious rows
  double d_benign_ = 0.0;     // typical centroid distance, benign rows
  double epsilon_ = 0.0;
  bool fitted_ = false;
  std::uint64_t observed_ = 0;
};

}  // namespace powai::reputation
