#pragma once
/// \file logistic.hpp
/// Logistic-regression reputation model trained with mini-batch SGD —
/// the repository's stand-in for a "learned" model where the paper's
/// modular design would slot in a heavier ML stack. Score is ten times
/// the predicted malicious probability.

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "features/normalizer.hpp"
#include "reputation/model.hpp"

namespace powai::reputation {

/// Training hyper-parameters.
struct LogisticConfig final {
  double learning_rate = 0.1;
  double l2 = 1e-4;           ///< L2 regularization strength
  std::size_t epochs = 200;
  std::size_t batch_size = 32;
  std::uint64_t seed = 42;    ///< shuffling seed (training is deterministic)
};

class LogisticModel final : public IReputationModel {
 public:
  explicit LogisticModel(LogisticConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "logistic"; }

  void fit(const features::Dataset& data) override;

  [[nodiscard]] bool fitted() const override { return fitted_; }

  [[nodiscard]] double score(const features::FeatureVector& x) const override;

  [[nodiscard]] double error_epsilon() const override { return epsilon_; }

  /// Predicted probability that \p x is malicious, in [0, 1].
  [[nodiscard]] double predict_proba(const features::FeatureVector& x) const;

  /// Mean cross-entropy loss on a dataset (diagnostics/tests).
  [[nodiscard]] double log_loss(const features::Dataset& data) const;

 private:
  [[nodiscard]] double logit(const features::FeatureVector& normalized) const;

  LogisticConfig config_;
  std::array<double, features::kFeatureCount> weights_{};
  double bias_ = 0.0;
  features::ZScoreNormalizer normalizer_;
  double epsilon_ = 0.0;
  bool fitted_ = false;
};

}  // namespace powai::reputation
