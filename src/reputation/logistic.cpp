#include "reputation/logistic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/stats.hpp"

namespace powai::reputation {

namespace {
double sigmoid(double z) {
  // Numerically-stable split form.
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

LogisticModel::LogisticModel(LogisticConfig config) : config_(config) {
  if (config_.learning_rate <= 0.0 || config_.epochs == 0 ||
      config_.batch_size == 0 || config_.l2 < 0.0) {
    throw std::invalid_argument("LogisticModel: bad hyper-parameters");
  }
}

double LogisticModel::logit(const features::FeatureVector& normalized) const {
  double z = bias_;
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    z += weights_[i] * normalized[i];
  }
  return z;
}

void LogisticModel::fit(const features::Dataset& data) {
  if (data.malicious_count() == 0 || data.benign_count() == 0) {
    throw std::invalid_argument("LogisticModel::fit: need both classes present");
  }
  const features::Dataset normalized = normalizer_.fit_transform(data);
  weights_.fill(0.0);
  bias_ = 0.0;

  std::vector<std::size_t> order(normalized.size());
  std::iota(order.begin(), order.end(), 0);
  common::Rng rng(config_.seed);

  const auto n = normalized.size();
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Fisher–Yates reshuffle each epoch.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_u64(0, i - 1)]);
    }
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(start + config_.batch_size, n);
      std::array<double, features::kFeatureCount> grad{};
      double grad_bias = 0.0;
      for (std::size_t idx = start; idx < end; ++idx) {
        const auto& row = normalized[order[idx]];
        const double y = row.malicious ? 1.0 : 0.0;
        const double p = sigmoid(logit(row.features));
        const double residual = p - y;
        for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
          grad[i] += residual * row.features[i];
        }
        grad_bias += residual;
      }
      const double scale =
          config_.learning_rate / static_cast<double>(end - start);
      for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
        weights_[i] -= scale * grad[i] + config_.learning_rate * config_.l2 * weights_[i];
      }
      bias_ -= scale * grad_bias;
    }
  }
  fitted_ = true;

  common::RunningStats malicious_scores;
  common::RunningStats benign_scores;
  for (const auto& row : data.rows()) {
    (row.malicious ? malicious_scores : benign_scores).add(score(row.features));
  }
  epsilon_ = 0.5 * (malicious_scores.stddev() + benign_scores.stddev());
}

double LogisticModel::predict_proba(const features::FeatureVector& x) const {
  if (!fitted_) throw std::logic_error("LogisticModel: not fitted");
  return sigmoid(logit(normalizer_.transform(x)));
}

double LogisticModel::score(const features::FeatureVector& x) const {
  return clamp_score(kMaxScore * predict_proba(x));
}

double LogisticModel::log_loss(const features::Dataset& data) const {
  if (!fitted_) throw std::logic_error("LogisticModel: not fitted");
  if (data.empty()) return 0.0;
  double loss = 0.0;
  for (const auto& row : data.rows()) {
    const double p = std::clamp(predict_proba(row.features), 1e-12, 1.0 - 1e-12);
    loss += row.malicious ? -std::log(p) : -std::log(1.0 - p);
  }
  return loss / static_cast<double>(data.size());
}

}  // namespace powai::reputation
