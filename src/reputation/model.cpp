#include "reputation/model.hpp"

#include <algorithm>

namespace powai::reputation {

double clamp_score(double score) {
  return std::clamp(score, kMinScore, kMaxScore);
}

bool classify(double score, double threshold) { return score > threshold; }

}  // namespace powai::reputation
