#pragma once
/// \file model.hpp
/// The AI-model component of the framework (Fig. 1, step 2). A reputation
/// model maps an IP's attribute vector to a score in [0, 10] where higher
/// means *less* trustworthy, matching the paper's convention. Models also
/// report an error estimate ε used by Policy 3 (error-range mapping).

#include <memory>
#include <string>
#include <string_view>

#include "features/dataset.hpp"
#include "features/feature_vector.hpp"

namespace powai::reputation {

/// Score range bounds (the paper normalizes scores to 0 - 10).
inline constexpr double kMinScore = 0.0;
inline constexpr double kMaxScore = 10.0;

/// Interface for the pluggable AI model.
///
/// Lifecycle: construct → fit() on labeled data → score() queries.
/// Implementations throw std::logic_error if scored before fitting and
/// std::invalid_argument if fit on data that lacks one of the classes.
class IReputationModel {
 public:
  virtual ~IReputationModel() = default;

  /// Short stable identifier ("dabr", "knn", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Trains the model on labeled examples.
  virtual void fit(const features::Dataset& data) = 0;

  [[nodiscard]] virtual bool fitted() const = 0;

  /// Reputation score in [kMinScore, kMaxScore]; higher = more suspect.
  [[nodiscard]] virtual double score(const features::FeatureVector& x) const = 0;

  /// The model's score-error estimate ε (>= 0), set during fit(). This is
  /// the ε that Policy 3 corrects for.
  [[nodiscard]] virtual double error_epsilon() const = 0;
};

/// Clamps an arbitrary value into the legal score range.
[[nodiscard]] double clamp_score(double score);

/// Binary decision rule used when a hard label is needed (evaluation,
/// blocklists): an IP is called malicious when its score exceeds
/// \p threshold (the scale midpoint by default).
[[nodiscard]] bool classify(double score, double threshold = 5.0);

}  // namespace powai::reputation
