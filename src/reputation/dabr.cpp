#include "reputation/dabr.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"

namespace powai::reputation {

void DabrModel::fit(const features::Dataset& data) {
  if (data.malicious_count() == 0 || data.benign_count() == 0) {
    throw std::invalid_argument("DabrModel::fit: need both classes present");
  }
  const features::Dataset normalized = normalizer_.fit_transform(data);
  malicious_centroid_ = normalized.class_mean(/*malicious=*/true);

  common::Samples malicious_distances;
  common::Samples benign_distances;
  for (const auto& row : normalized.rows()) {
    const double d = row.features.distance(malicious_centroid_);
    (row.malicious ? malicious_distances : benign_distances).add(d);
  }
  d_malicious_ = malicious_distances.median();
  d_benign_ = benign_distances.median();
  if (d_benign_ <= d_malicious_) {
    // Classes are inverted or inseparable in distance space; keep the
    // anchors ordered so score() stays monotone (scores will be ~flat,
    // and the evaluator will report the resulting poor accuracy).
    d_benign_ = d_malicious_ + 1e-9;
  }
  fitted_ = true;

  // Score the training rows to estimate ε as the mean within-class
  // standard deviation of produced scores.
  common::RunningStats malicious_scores;
  common::RunningStats benign_scores;
  for (const auto& row : data.rows()) {
    const double s = score(row.features);
    (row.malicious ? malicious_scores : benign_scores).add(s);
  }
  epsilon_ = 0.5 * (malicious_scores.stddev() + benign_scores.stddev());
}

double DabrModel::centroid_distance(const features::FeatureVector& x) const {
  if (!fitted_) throw std::logic_error("DabrModel: not fitted");
  return normalizer_.transform(x).distance(malicious_centroid_);
}

double DabrModel::score(const features::FeatureVector& x) const {
  const double d = centroid_distance(x);
  // Linear ramp: typical malicious distance -> 10, typical benign
  // distance -> 0, clamped outside the anchor interval.
  const double t = (d_benign_ - d) / (d_benign_ - d_malicious_);
  return clamp_score(kMaxScore * t);
}

void DabrModel::observe(const features::FeatureVector& x, bool malicious,
                        double alpha) {
  if (!fitted_) throw std::logic_error("DabrModel::observe: not fitted");
  if (!(alpha > 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument("DabrModel::observe: alpha outside (0, 1]");
  }
  const features::FeatureVector q = normalizer_.transform(x);
  const double d = q.distance(malicious_centroid_);
  if (malicious) {
    // Centroid drifts toward the confirmed-malicious observation...
    for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
      malicious_centroid_[i] += alpha * (q[i] - malicious_centroid_[i]);
    }
    // ...and the malicious anchor tracks the observed distances.
    d_malicious_ += alpha * (d - d_malicious_);
  } else {
    d_benign_ += alpha * (d - d_benign_);
  }
  // Keep the ramp oriented (same guard as fit()).
  if (d_benign_ <= d_malicious_) d_benign_ = d_malicious_ + 1e-9;
  ++observed_;
}

std::string DabrModel::save() const {
  if (!fitted_) throw std::logic_error("DabrModel::save: not fitted");
  std::string out = "format=dabr-v1\n";
  char buf[64];
  auto put = [&](const char* key, double value) {
    std::snprintf(buf, sizeof buf, "%s=%.17g\n", key, value);
    out += buf;
  };
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    std::string idx = std::to_string(i);
    put(("norm_mean_" + idx).c_str(), normalizer_.mean(i));
    put(("norm_std_" + idx).c_str(), normalizer_.stddev(i));
    put(("centroid_" + idx).c_str(), malicious_centroid_[i]);
  }
  put("d_malicious", d_malicious_);
  put("d_benign", d_benign_);
  put("epsilon", epsilon_);
  return out;
}

std::optional<DabrModel> DabrModel::load(std::string_view text) {
  common::Config cfg;
  try {
    cfg = common::Config::parse(text);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  if (cfg.get_string("format", "") != "dabr-v1") return std::nullopt;

  std::array<double, features::kFeatureCount> means{};
  std::array<double, features::kFeatureCount> stds{};
  DabrModel model;
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    const std::string idx = std::to_string(i);
    const auto mean = cfg.get("norm_mean_" + idx);
    const auto stddev = cfg.get("norm_std_" + idx);
    const auto centroid = cfg.get("centroid_" + idx);
    if (!mean || !stddev || !centroid) return std::nullopt;
    const auto m = common::parse_f64(*mean);
    const auto s = common::parse_f64(*stddev);
    const auto c = common::parse_f64(*centroid);
    if (!m || !s || !c || *s < 0.0) return std::nullopt;
    means[i] = *m;
    stds[i] = *s;
    model.malicious_centroid_[i] = *c;
  }
  const auto d_mal = cfg.get("d_malicious");
  const auto d_ben = cfg.get("d_benign");
  const auto eps = cfg.get("epsilon");
  if (!d_mal || !d_ben || !eps) return std::nullopt;
  const auto dm = common::parse_f64(*d_mal);
  const auto db = common::parse_f64(*d_ben);
  const auto ep = common::parse_f64(*eps);
  if (!dm || !db || !ep || !(*db > *dm) || *ep < 0.0) return std::nullopt;

  model.normalizer_ = features::ZScoreNormalizer::from_params(means, stds);
  model.d_malicious_ = *dm;
  model.d_benign_ = *db;
  model.epsilon_ = *ep;
  model.fitted_ = true;
  return model;
}

}  // namespace powai::reputation
