#include "reputation/sharded_cache.hpp"

#include <algorithm>

#include "common/hashing.hpp"

namespace powai::reputation {

ShardedReputationCache::ShardedReputationCache(const common::Clock& clock,
                                               CacheConfig config,
                                               std::size_t shards) {
  std::size_t n = common::round_up_pow2(std::max<std::size_t>(1, shards));
  while (n > 1 && n > config.max_entries) n >>= 1;
  shard_mask_ = static_cast<std::uint32_t>(n - 1);

  // Distribute the global entry budget exactly across shards (rounding
  // each slice up would overshoot the budget by up to n-1 entries);
  // validation of the other knobs (alpha, ttl) happens inside each
  // ReputationCache, including the max_entries == 0 throw.
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    CacheConfig per_shard = config;
    per_shard.max_entries = common::split_slice(config.max_entries, n, i);
    shards_.push_back(std::make_unique<Shard>(clock, per_shard));
  }
}

ShardedReputationCache::Shard& ShardedReputationCache::shard_for(
    features::IpAddress ip) const {
  // IPv4 addresses cluster in the low octets (one /24 of bots differs
  // only in the last byte); the finalizer spreads them across the mask.
  return *shards_[common::mix32(ip.value()) & shard_mask_];
}

std::optional<double> ShardedReputationCache::lookup(
    features::IpAddress ip) const {
  Shard& s = shard_for(ip);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.cache.lookup(ip);
}

double ShardedReputationCache::update(features::IpAddress ip, double score) {
  Shard& s = shard_for(ip);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.cache.update(ip, score);
}

void ShardedReputationCache::erase(features::IpAddress ip) {
  Shard& s = shard_for(ip);
  std::lock_guard<std::mutex> lock(s.mu);
  s.cache.erase(ip);
}

std::size_t ShardedReputationCache::purge_expired() {
  std::size_t removed = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    removed += shard->cache.purge_expired();
  }
  return removed;
}

std::size_t ShardedReputationCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->cache.size();
  }
  return total;
}

std::size_t ShardedReputationCache::memory_bytes() const {
  std::size_t total = sizeof(ShardedReputationCache);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += sizeof(Shard) + shard->cache.memory_bytes();
  }
  return total;
}

}  // namespace powai::reputation
