#pragma once
/// \file evaluator.hpp
/// Model evaluation: confusion-matrix metrics at the score-5 decision
/// threshold (accuracy — the paper quotes DAbR at 80% — precision,
/// recall, F1) plus threshold-free ROC-AUC, all computed on held-out data.

#include <cstddef>
#include <string>

#include "features/dataset.hpp"
#include "reputation/model.hpp"

namespace powai::reputation {

/// Binary confusion matrix.
struct ConfusionMatrix final {
  std::size_t true_positive = 0;   ///< malicious classified malicious
  std::size_t false_positive = 0;  ///< benign classified malicious
  std::size_t true_negative = 0;   ///< benign classified benign
  std::size_t false_negative = 0;  ///< malicious classified benign

  [[nodiscard]] std::size_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
};

/// Aggregate evaluation result.
struct EvaluationReport final {
  ConfusionMatrix confusion;
  double accuracy = 0.0;
  double precision = 0.0;  ///< 0 when no positive predictions
  double recall = 0.0;     ///< 0 when no positive examples
  double f1 = 0.0;
  double roc_auc = 0.5;
  /// Mean |score - class target| where targets are 0 (benign) / 10
  /// (malicious): a coarse score-error measure comparable to ε.
  double mae_vs_target = 0.0;

  [[nodiscard]] std::string to_string() const;
};

/// Evaluates a fitted model on labeled data at decision threshold
/// \p threshold (malicious iff score > threshold). Throws
/// std::invalid_argument on an empty dataset.
[[nodiscard]] EvaluationReport evaluate(const IReputationModel& model,
                                        const features::Dataset& data,
                                        double threshold = 5.0);

/// Rank-based ROC-AUC of raw scores against labels (ties get midranks).
/// Returns 0.5 when either class is absent.
[[nodiscard]] double roc_auc(const std::vector<double>& scores,
                             const std::vector<bool>& labels);

}  // namespace powai::reputation
