#include "reputation/cache.hpp"

#include <stdexcept>

namespace powai::reputation {

ReputationCache::ReputationCache(const common::Clock& clock, CacheConfig config)
    : clock_(&clock), config_(config) {
  if (!(config_.alpha > 0.0 && config_.alpha <= 1.0)) {
    throw std::invalid_argument("ReputationCache: alpha outside (0, 1]");
  }
  if (config_.max_entries == 0) {
    throw std::invalid_argument("ReputationCache: max_entries == 0");
  }
  if (config_.ttl <= common::Duration::zero()) {
    throw std::invalid_argument("ReputationCache: non-positive ttl");
  }
}

std::optional<double> ReputationCache::lookup(features::IpAddress ip) const {
  const auto it = entries_.find(ip.value());
  if (it == entries_.end()) return std::nullopt;
  if (clock_->now() - it->second.updated_at > config_.ttl) return std::nullopt;
  return it->second.score;
}

double ReputationCache::update(features::IpAddress ip, double score) {
  const common::TimePoint now = clock_->now();
  auto it = entries_.find(ip.value());
  if (it != entries_.end()) {
    const bool expired = now - it->second.updated_at > config_.ttl;
    it->second.score = expired
                           ? score
                           : config_.alpha * score +
                                 (1.0 - config_.alpha) * it->second.score;
    it->second.updated_at = now;
    return it->second.score;
  }
  if (entries_.size() >= config_.max_entries) evict_one();
  entries_.emplace(ip.value(), Entry{score, now});
  return score;
}

void ReputationCache::erase(features::IpAddress ip) {
  entries_.erase(ip.value());
}

std::size_t ReputationCache::purge_expired() {
  const common::TimePoint now = clock_->now();
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.updated_at > config_.ttl) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void ReputationCache::evict_one() {
  // Evict the least-recently-updated entry. Linear scan is acceptable:
  // eviction only happens at the max_entries watermark, and correctness
  // (never exceeding the bound) is what the tests pin down.
  auto stalest = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.updated_at < stalest->second.updated_at) stalest = it;
  }
  if (stalest != entries_.end()) entries_.erase(stalest);
}

}  // namespace powai::reputation
