#pragma once
/// \file ensemble.hpp
/// Weighted ensemble over reputation models — a drop-in occupant of the
/// framework's modular AI-model slot. Averaging decorrelated scorers
/// (distance-based DAbR + discriminative logistic + generative NB)
/// tightens the score error ε, which directly narrows Policy 3's
/// difficulty interval.

#include <memory>
#include <vector>

#include "reputation/model.hpp"

namespace powai::reputation {

class EnsembleModel final : public IReputationModel {
 public:
  /// Takes ownership of the member models (>= 1, all non-null; throws
  /// std::invalid_argument otherwise). Weights default to uniform.
  explicit EnsembleModel(std::vector<std::unique_ptr<IReputationModel>> members);

  /// Weighted variant; weights must match the member count and be
  /// positive (they are normalized internally).
  EnsembleModel(std::vector<std::unique_ptr<IReputationModel>> members,
                std::vector<double> weights);

  [[nodiscard]] std::string_view name() const override { return "ensemble"; }

  /// Fits every member on the same data.
  void fit(const features::Dataset& data) override;

  [[nodiscard]] bool fitted() const override;

  /// Weighted mean of member scores.
  [[nodiscard]] double score(const features::FeatureVector& x) const override;

  /// Ensemble ε: weighted mean of member ε values scaled by 1/√n — the
  /// independence approximation for averaged errors; an upper bound is
  /// the weighted mean itself, so this errs toward tighter Policy-3
  /// intervals, which the clamp in the policy band absorbs.
  [[nodiscard]] double error_epsilon() const override;

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] const IReputationModel& member(std::size_t i) const {
    return *members_.at(i);
  }

 private:
  std::vector<std::unique_ptr<IReputationModel>> members_;
  std::vector<double> weights_;  // normalized to sum 1
};

/// Convenience: the standard three-member ensemble (DAbR + logistic +
/// naive Bayes), unfitted.
[[nodiscard]] std::unique_ptr<EnsembleModel> make_default_ensemble();

}  // namespace powai::reputation
