#pragma once
/// \file naive_bayes.hpp
/// Gaussian naive Bayes reputation model — a generative baseline for the
/// model-comparison benches. Score is ten times the posterior probability
/// of the malicious class.

#include <array>

#include "reputation/model.hpp"

namespace powai::reputation {

class NaiveBayesModel final : public IReputationModel {
 public:
  NaiveBayesModel() = default;

  [[nodiscard]] std::string_view name() const override { return "naive_bayes"; }

  void fit(const features::Dataset& data) override;

  [[nodiscard]] bool fitted() const override { return fitted_; }

  [[nodiscard]] double score(const features::FeatureVector& x) const override;

  [[nodiscard]] double error_epsilon() const override { return epsilon_; }

  /// Posterior P(malicious | x) in [0, 1].
  [[nodiscard]] double posterior(const features::FeatureVector& x) const;

 private:
  struct ClassStats {
    std::array<double, features::kFeatureCount> mean{};
    std::array<double, features::kFeatureCount> var{};
    double log_prior = 0.0;
  };

  [[nodiscard]] double log_likelihood(const ClassStats& cls,
                                      const features::FeatureVector& x) const;

  ClassStats benign_;
  ClassStats malicious_;
  double epsilon_ = 0.0;
  bool fitted_ = false;
};

}  // namespace powai::reputation
