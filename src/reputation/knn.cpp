#include "reputation/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace powai::reputation {

KnnModel::KnnModel(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("KnnModel: k must be >= 1");
}

void KnnModel::fit(const features::Dataset& data) {
  if (data.malicious_count() == 0 || data.benign_count() == 0) {
    throw std::invalid_argument("KnnModel::fit: need both classes present");
  }
  const features::Dataset normalized = normalizer_.fit_transform(data);
  points_.clear();
  points_.reserve(normalized.size());
  for (const auto& row : normalized.rows()) {
    points_.push_back({row.features, row.malicious});
  }
  fitted_ = true;

  common::RunningStats malicious_scores;
  common::RunningStats benign_scores;
  for (const auto& row : data.rows()) {
    (row.malicious ? malicious_scores : benign_scores).add(score(row.features));
  }
  epsilon_ = 0.5 * (malicious_scores.stddev() + benign_scores.stddev());
}

double KnnModel::score(const features::FeatureVector& x) const {
  if (!fitted_) throw std::logic_error("KnnModel: not fitted");
  const features::FeatureVector q = normalizer_.transform(x);

  // Collect squared distances; partial-select the k nearest.
  std::vector<std::pair<double, bool>> dist;
  dist.reserve(points_.size());
  for (const auto& p : points_) {
    dist.emplace_back(p.x.distance_sq(q), p.malicious);
  }
  const std::size_t k = std::min(k_, dist.size());
  std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dist.end());

  // Inverse-distance weighting with a small floor so exact matches do not
  // produce infinite weight.
  double weight_total = 0.0;
  double weight_malicious = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (std::sqrt(dist[i].first) + 1e-6);
    weight_total += w;
    if (dist[i].second) weight_malicious += w;
  }
  return clamp_score(kMaxScore * weight_malicious / weight_total);
}

}  // namespace powai::reputation
