#pragma once
/// \file sharded_cache.hpp
/// Mutex-striped sharded wrapper around ReputationCache. The per-IP
/// score memo sits on the request hot path; striping it across
/// independently-locked shards (keyed by a mix of the IPv4 address) lets
/// concurrent request handlers score different clients without
/// serializing on one lock. Entries for one IP always live in one
/// shard, so the TTL + EWMA semantics of ReputationCache carry over
/// unchanged per key.

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "features/ip_address.hpp"
#include "reputation/cache.hpp"

namespace powai::reputation {

class ShardedReputationCache final {
 public:
  /// `config.max_entries` is the *total* budget, distributed exactly
  /// across \p shards (rounded up to a power of two, then halved until
  /// no shard's slice is zero). \p clock must outlive the cache.
  ShardedReputationCache(const common::Clock& clock, CacheConfig config = {},
                         std::size_t shards = 16);

  ShardedReputationCache(const ShardedReputationCache&) = delete;
  ShardedReputationCache& operator=(const ShardedReputationCache&) = delete;

  /// Fresh cached score, or nullopt if absent/expired. Thread-safe.
  [[nodiscard]] std::optional<double> lookup(features::IpAddress ip) const;

  /// Inserts or EWMA-merges an observation; returns the stored score.
  /// Thread-safe; concurrent updates to one IP serialize on its shard.
  double update(features::IpAddress ip, double score);

  /// Removes one entry (no-op if absent). Thread-safe.
  void erase(features::IpAddress ip);

  /// Drops expired entries in every shard; returns how many were
  /// removed. Takes one shard lock at a time.
  std::size_t purge_expired();

  /// Total resident entries, summed over shards. Exact when quiescent.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Estimated resident footprint summed over shards (takes one shard
  /// lock at a time; exact when quiescent). Feeds the bytes/client
  /// accounting of the scale harnesses.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    ReputationCache cache;

    Shard(const common::Clock& clock, CacheConfig config)
        : cache(clock, config) {}
  };

  [[nodiscard]] Shard& shard_for(features::IpAddress ip) const;

  std::uint32_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace powai::reputation
