#pragma once
/// \file knn.hpp
/// k-nearest-neighbours reputation scorer: an alternative AI model that
/// exercises the framework's pluggable-model interface. The score is ten
/// times the distance-weighted malicious fraction among the k nearest
/// training points (normalized feature space).

#include <vector>

#include "features/normalizer.hpp"
#include "reputation/model.hpp"

namespace powai::reputation {

class KnnModel final : public IReputationModel {
 public:
  /// \p k >= 1 (throws std::invalid_argument otherwise).
  explicit KnnModel(std::size_t k = 15);

  [[nodiscard]] std::string_view name() const override { return "knn"; }

  void fit(const features::Dataset& data) override;

  [[nodiscard]] bool fitted() const override { return fitted_; }

  [[nodiscard]] double score(const features::FeatureVector& x) const override;

  [[nodiscard]] double error_epsilon() const override { return epsilon_; }

  [[nodiscard]] std::size_t k() const { return k_; }

 private:
  struct Point {
    features::FeatureVector x;  // normalized
    bool malicious;
  };

  std::size_t k_;
  std::vector<Point> points_;
  features::ZScoreNormalizer normalizer_;
  double epsilon_ = 0.0;
  bool fitted_ = false;
};

}  // namespace powai::reputation
