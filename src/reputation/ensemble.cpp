#include "reputation/ensemble.hpp"

#include <cmath>
#include <stdexcept>

#include "reputation/dabr.hpp"
#include "reputation/logistic.hpp"
#include "reputation/naive_bayes.hpp"

namespace powai::reputation {

EnsembleModel::EnsembleModel(
    std::vector<std::unique_ptr<IReputationModel>> members)
    : EnsembleModel(std::move(members), {}) {}

EnsembleModel::EnsembleModel(
    std::vector<std::unique_ptr<IReputationModel>> members,
    std::vector<double> weights)
    : members_(std::move(members)), weights_(std::move(weights)) {
  if (members_.empty()) {
    throw std::invalid_argument("EnsembleModel: no members");
  }
  for (const auto& m : members_) {
    if (!m) throw std::invalid_argument("EnsembleModel: null member");
  }
  if (weights_.empty()) {
    weights_.assign(members_.size(), 1.0 / static_cast<double>(members_.size()));
  } else {
    if (weights_.size() != members_.size()) {
      throw std::invalid_argument("EnsembleModel: weight count mismatch");
    }
    double total = 0.0;
    for (double w : weights_) {
      if (!(w > 0.0)) {
        throw std::invalid_argument("EnsembleModel: weights must be positive");
      }
      total += w;
    }
    for (double& w : weights_) w /= total;
  }
}

void EnsembleModel::fit(const features::Dataset& data) {
  for (auto& m : members_) m->fit(data);
}

bool EnsembleModel::fitted() const {
  for (const auto& m : members_) {
    if (!m->fitted()) return false;
  }
  return true;
}

double EnsembleModel::score(const features::FeatureVector& x) const {
  double s = 0.0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    s += weights_[i] * members_[i]->score(x);
  }
  return clamp_score(s);
}

double EnsembleModel::error_epsilon() const {
  double eps = 0.0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    eps += weights_[i] * members_[i]->error_epsilon();
  }
  return eps / std::sqrt(static_cast<double>(members_.size()));
}

std::unique_ptr<EnsembleModel> make_default_ensemble() {
  std::vector<std::unique_ptr<IReputationModel>> members;
  members.push_back(std::make_unique<DabrModel>());
  members.push_back(std::make_unique<LogisticModel>());
  members.push_back(std::make_unique<NaiveBayesModel>());
  return std::make_unique<EnsembleModel>(std::move(members));
}

}  // namespace powai::reputation
