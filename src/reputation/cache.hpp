#pragma once
/// \file cache.hpp
/// Per-IP reputation cache. Scoring every request through the model is
/// wasteful for repeat clients, so the server memoizes scores with a TTL
/// and smooths successive observations with an EWMA — the "dynamic" part
/// of Dynamic Attribute-based Reputation.

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "common/clock.hpp"
#include "features/ip_address.hpp"

namespace powai::reputation {

/// Cache policy knobs.
struct CacheConfig final {
  /// Entries older than this are treated as absent.
  common::Duration ttl = std::chrono::seconds(300);

  /// EWMA weight of a *new* observation in update(): 1 = replace, 0 =
  /// ignore updates. Must be in (0, 1].
  double alpha = 0.3;

  /// Hard bound on resident entries; inserting beyond evicts the stalest
  /// entry first. Must be >= 1.
  std::size_t max_entries = 1 << 20;
};

/// TTL + EWMA cache of reputation scores keyed by IPv4 address.
class ReputationCache final {
 public:
  /// \p clock must outlive the cache.
  ReputationCache(const common::Clock& clock, CacheConfig config = {});

  /// Fresh cached score, or nullopt if absent/expired.
  [[nodiscard]] std::optional<double> lookup(features::IpAddress ip) const;

  /// Inserts or EWMA-merges an observation and refreshes its timestamp.
  /// Returns the stored (possibly smoothed) score.
  double update(features::IpAddress ip, double score);

  /// Removes one entry (no-op if absent).
  void erase(features::IpAddress ip);

  /// Drops expired entries; returns how many were removed.
  std::size_t purge_expired();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Estimated resident footprint (object + hash buckets + entry nodes)
  /// for the scale harness's bytes/client accounting.
  [[nodiscard]] std::size_t memory_bytes() const {
    return sizeof(ReputationCache) +
           entries_.bucket_count() * sizeof(void*) +
           entries_.size() *
               (sizeof(std::pair<const std::uint32_t, Entry>) +
                2 * sizeof(void*));
  }

 private:
  struct Entry {
    double score;
    common::TimePoint updated_at;
  };

  void evict_one();

  const common::Clock* clock_;
  CacheConfig config_;
  std::unordered_map<std::uint32_t, Entry> entries_;
};

}  // namespace powai::reputation
