#pragma once
/// \file normalizer.hpp
/// Feature normalization. The reputation models are distance-based, so
/// they are only meaningful on comparable feature scales; both normalizers
/// are fit on training data and then applied to queries.

#include <array>

#include "features/dataset.hpp"
#include "features/feature_vector.hpp"

namespace powai::features {

/// Per-feature affine map x' = (x - lo) / (hi - lo) onto [0, 1]
/// (constant features map to 0.5). Queries outside the training range are
/// clamped to [0, 1] so one wild feature cannot dominate a distance.
class MinMaxNormalizer final {
 public:
  /// Fits bounds from \p data (throws std::invalid_argument if empty).
  void fit(const Dataset& data);

  [[nodiscard]] bool fitted() const { return fitted_; }

  /// Transforms one vector (throws std::logic_error if not fitted).
  [[nodiscard]] FeatureVector transform(const FeatureVector& x) const;

  /// Fits and transforms every row of \p data into a new dataset.
  [[nodiscard]] Dataset fit_transform(const Dataset& data);

  [[nodiscard]] double lo(std::size_t i) const { return lo_[i]; }
  [[nodiscard]] double hi(std::size_t i) const { return hi_[i]; }

 private:
  std::array<double, kFeatureCount> lo_{};
  std::array<double, kFeatureCount> hi_{};
  bool fitted_ = false;
};

/// Per-feature standardization x' = (x - mean) / std (constant features
/// map to 0). No clamping: z-scores legitimately exceed +-1.
class ZScoreNormalizer final {
 public:
  void fit(const Dataset& data);

  [[nodiscard]] bool fitted() const { return fitted_; }
  [[nodiscard]] FeatureVector transform(const FeatureVector& x) const;
  [[nodiscard]] Dataset fit_transform(const Dataset& data);

  [[nodiscard]] double mean(std::size_t i) const { return mean_[i]; }
  [[nodiscard]] double stddev(std::size_t i) const { return std_[i]; }

  /// Reconstructs a fitted normalizer from saved statistics (negative
  /// stddevs throw std::invalid_argument). Used by model persistence.
  [[nodiscard]] static ZScoreNormalizer from_params(
      const std::array<double, kFeatureCount>& means,
      const std::array<double, kFeatureCount>& stddevs);

 private:
  std::array<double, kFeatureCount> mean_{};
  std::array<double, kFeatureCount> std_{};
  bool fitted_ = false;
};

}  // namespace powai::features
