#pragma once
/// \file synthetic.hpp
/// Synthetic labeled IP traffic. Substitutes for the proprietary
/// threat-feed attribute data DAbR was trained on (DESIGN.md §2): benign
/// and malicious populations are drawn from overlapping per-feature
/// distributions. The `class_overlap` knob moves the malicious
/// distribution toward the benign one; the default is calibrated so a
/// distance-based scorer achieves roughly the 80% accuracy DAbR reports.

#include <cstdint>

#include "common/rng.hpp"
#include "features/dataset.hpp"
#include "features/feature_vector.hpp"
#include "features/ip_address.hpp"

namespace powai::features {

/// Per-class generative profile: feature means and standard deviations.
struct ClassProfile final {
  FeatureVector mean;
  FeatureVector stddev;
};

/// Built-in benign profile (ordinary web clients).
[[nodiscard]] ClassProfile benign_profile();

/// Built-in malicious profile (flooders/scanners) before overlap blending.
[[nodiscard]] ClassProfile malicious_profile();

/// Configuration for the generator.
struct SyntheticConfig final {
  /// In [0, 1): 0 = fully separated classes (a scorer gets ~100%
  /// accuracy), 0.9 = nearly indistinguishable. The default lands the
  /// DAbR scorer near its published 80% accuracy.
  double class_overlap = 0.58;

  /// Fraction of labels flipped after sampling (sensor/feed noise).
  double label_noise = 0.0;

  /// Subnet housing benign clients (one address per client).
  Subnet benign_subnet{IpAddress(10, 0, 0, 0), 8};

  /// Subnet housing malicious clients; a distinct block so examples and
  /// experiments can tell populations apart at a glance.
  Subnet malicious_subnet{IpAddress(203, 0, 0, 0), 8};
};

/// Generates labeled attribute datasets and per-request feature samples.
class SyntheticTraceGenerator final {
 public:
  explicit SyntheticTraceGenerator(SyntheticConfig config = {});

  /// The profiles actually used after overlap blending.
  [[nodiscard]] const ClassProfile& benign() const { return benign_; }
  [[nodiscard]] const ClassProfile& malicious() const { return malicious_; }

  /// Samples one attribute vector of the given class. Values are clamped
  /// to their physical domains (rates >= 0, ratios in [0, 1]).
  [[nodiscard]] FeatureVector sample(bool malicious, common::Rng& rng) const;

  /// Generates a labeled dataset with the given class sizes. IPs are
  /// allocated sequentially from the class subnets; rows are interleaved
  /// (shuffle before splitting if you need randomized order).
  [[nodiscard]] Dataset generate(std::size_t benign_count,
                                 std::size_t malicious_count,
                                 common::Rng& rng) const;

  [[nodiscard]] const SyntheticConfig& config() const { return config_; }

 private:
  SyntheticConfig config_;
  ClassProfile benign_;
  ClassProfile malicious_;
};

}  // namespace powai::features
