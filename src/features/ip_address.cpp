#include "features/ip_address.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace powai::features {

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  const auto parts = common::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    if (part.size() > 1 && part.front() == '0') return std::nullopt;
    std::uint32_t octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      octet = octet * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (octet > 255) return std::nullopt;
    value = (value << 8) | octet;
  }
  return IpAddress(value);
}

std::string IpAddress::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out += '.';
    out += std::to_string(octet(i));
  }
  return out;
}

Subnet::Subnet(IpAddress base, int prefix_len) : prefix_len_(prefix_len) {
  if (prefix_len < 0 || prefix_len > 32) {
    throw std::invalid_argument("Subnet: prefix_len outside [0, 32]");
  }
  const std::uint32_t mask =
      prefix_len == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_len);
  base_ = IpAddress(base.value() & mask);
}

std::optional<Subnet> Subnet::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto base = IpAddress::parse(text.substr(0, slash));
  const auto len = common::parse_i64(text.substr(slash + 1));
  if (!base || !len || *len < 0 || *len > 32) return std::nullopt;
  return Subnet(*base, static_cast<int>(*len));
}

bool Subnet::contains(IpAddress ip) const {
  const std::uint32_t mask =
      prefix_len_ == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_len_);
  return (ip.value() & mask) == base_.value();
}

std::string Subnet::to_string() const {
  return base_.to_string() + "/" + std::to_string(prefix_len_);
}

IpAddress Subnet::at(std::uint64_t i) const {
  if (i >= size()) throw std::out_of_range("Subnet::at: index beyond block");
  return IpAddress(base_.value() + static_cast<std::uint32_t>(i));
}

}  // namespace powai::features
