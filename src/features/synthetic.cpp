#include "features/synthetic.hpp"

#include <algorithm>
#include <stdexcept>

namespace powai::features {

namespace {

FeatureVector make_vector(std::initializer_list<double> values) {
  FeatureVector v;
  std::size_t i = 0;
  for (double x : values) v[i++] = x;
  return v;
}

/// Clamps a sampled value to the physical domain of its feature.
double clamp_to_domain(Feature f, double v) {
  switch (f) {
    case Feature::kSynRatio:
    case Feature::kErrorRatio:
    case Feature::kGeoRisk:
      return std::clamp(v, 0.0, 1.0);
    default:
      return std::max(v, 0.0);
  }
}

}  // namespace

ClassProfile benign_profile() {
  return ClassProfile{
      // request_rate, payload, duration, syn, error, ports, geo,
      // blocklist, path_entropy, ttl_var
      .mean = make_vector({2.0, 800.0, 1200.0, 0.02, 0.03, 2.0, 0.15, 0.05,
                           2.5, 1.0}),
      .stddev = make_vector({1.5, 300.0, 600.0, 0.02, 0.03, 1.0, 0.10, 0.30,
                             1.0, 0.8}),
  };
}

ClassProfile malicious_profile() {
  return ClassProfile{
      .mean = make_vector({80.0, 250.0, 150.0, 0.45, 0.30, 25.0, 0.60, 3.0,
                           6.0, 8.0}),
      .stddev = make_vector({40.0, 150.0, 100.0, 0.20, 0.15, 15.0, 0.25, 2.0,
                             1.5, 5.0}),
  };
}

SyntheticTraceGenerator::SyntheticTraceGenerator(SyntheticConfig config)
    : config_(config), benign_(benign_profile()), malicious_(malicious_profile()) {
  if (!(config_.class_overlap >= 0.0 && config_.class_overlap < 1.0)) {
    throw std::invalid_argument(
        "SyntheticTraceGenerator: class_overlap outside [0, 1)");
  }
  if (!(config_.label_noise >= 0.0 && config_.label_noise <= 0.5)) {
    throw std::invalid_argument(
        "SyntheticTraceGenerator: label_noise outside [0, 0.5]");
  }
  // Blend the malicious distribution toward the benign one: means move by
  // `overlap`, spreads widen toward the benign spread by half as much so
  // high overlap also blurs the boundary rather than just shifting it.
  const double a = config_.class_overlap;
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    malicious_.mean[i] =
        malicious_.mean[i] + a * (benign_.mean[i] - malicious_.mean[i]);
    malicious_.stddev[i] =
        malicious_.stddev[i] +
        0.5 * a * (benign_.stddev[i] - malicious_.stddev[i]);
    malicious_.stddev[i] = std::max(malicious_.stddev[i], 1e-9);
  }
}

FeatureVector SyntheticTraceGenerator::sample(bool malicious,
                                              common::Rng& rng) const {
  const ClassProfile& profile = malicious ? malicious_ : benign_;
  FeatureVector out;
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    const double v = rng.normal(profile.mean[i], profile.stddev[i]);
    out[i] = clamp_to_domain(static_cast<Feature>(i), v);
  }
  return out;
}

Dataset SyntheticTraceGenerator::generate(std::size_t benign_count,
                                          std::size_t malicious_count,
                                          common::Rng& rng) const {
  if (benign_count > config_.benign_subnet.size() ||
      malicious_count > config_.malicious_subnet.size()) {
    throw std::invalid_argument(
        "SyntheticTraceGenerator::generate: population exceeds subnet size");
  }
  Dataset out;
  out.reserve(benign_count + malicious_count);
  // Interleave classes so a prefix of the dataset is class-balanced-ish.
  std::size_t b = 0;
  std::size_t m = 0;
  while (b < benign_count || m < malicious_count) {
    const bool pick_malicious =
        m < malicious_count &&
        (b >= benign_count ||
         rng.uniform01() < static_cast<double>(malicious_count) /
                               static_cast<double>(benign_count + malicious_count));
    LabeledExample example;
    if (pick_malicious) {
      example.ip = config_.malicious_subnet.at(m++);
      example.features = sample(true, rng);
      example.malicious = true;
    } else {
      example.ip = config_.benign_subnet.at(b++);
      example.features = sample(false, rng);
      example.malicious = false;
    }
    if (config_.label_noise > 0.0 && rng.bernoulli(config_.label_noise)) {
      example.malicious = !example.malicious;
    }
    out.add(std::move(example));
  }
  return out;
}

}  // namespace powai::features
