#pragma once
/// \file ip_address.hpp
/// IPv4 address and CIDR subnet types. The framework keys reputation,
/// sessions, rate limits, and puzzle client-binding by source IP, so the
/// type shows up in nearly every module above this one.

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace powai::features {

/// An IPv4 address (stored host-order for cheap arithmetic/comparison).
class IpAddress final {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t host_order) : value_(host_order) {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d)
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parses dotted-quad "a.b.c.d". Rejects leading-zero octets ("01"),
  /// out-of-range octets, and trailing garbage.
  [[nodiscard]] static std::optional<IpAddress> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  /// Octet accessor, index 0 = most significant ("a" in a.b.c.d).
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  auto operator<=>(const IpAddress&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR block like 10.0.0.0/8.
class Subnet final {
 public:
  /// \p prefix_len in [0, 32]; host bits of \p base are masked off.
  Subnet(IpAddress base, int prefix_len);

  /// Parses "a.b.c.d/len".
  [[nodiscard]] static std::optional<Subnet> parse(std::string_view text);

  [[nodiscard]] bool contains(IpAddress ip) const;
  [[nodiscard]] IpAddress base() const { return base_; }
  [[nodiscard]] int prefix_len() const { return prefix_len_; }
  [[nodiscard]] std::uint64_t size() const {
    return 1ULL << (32 - prefix_len_);
  }
  [[nodiscard]] std::string to_string() const;

  /// The i-th address inside the block (i < size()).
  [[nodiscard]] IpAddress at(std::uint64_t i) const;

 private:
  IpAddress base_;
  int prefix_len_;
};

}  // namespace powai::features
