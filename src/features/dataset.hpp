#pragma once
/// \file dataset.hpp
/// Labeled IP attribute data: the training/evaluation substrate for the
/// reputation models. Supports CSV round-trips, shuffled splits, and
/// class bookkeeping.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "features/feature_vector.hpp"
#include "features/ip_address.hpp"

namespace powai::features {

/// One labeled observation: an IP, its attribute vector, and whether the
/// IP is known-malicious (ground truth).
struct LabeledExample final {
  IpAddress ip;
  FeatureVector features;
  bool malicious = false;
};

/// An in-memory dataset of labeled examples.
class Dataset final {
 public:
  Dataset() = default;

  void add(LabeledExample example) { rows_.push_back(std::move(example)); }
  void reserve(std::size_t n) { rows_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] bool empty() const { return rows_.empty(); }
  [[nodiscard]] const LabeledExample& operator[](std::size_t i) const {
    return rows_[i];
  }
  [[nodiscard]] const std::vector<LabeledExample>& rows() const { return rows_; }

  [[nodiscard]] std::size_t malicious_count() const;
  [[nodiscard]] std::size_t benign_count() const;

  /// In-place Fisher–Yates shuffle.
  void shuffle(common::Rng& rng);

  /// Splits into (train, test) with \p train_fraction of rows in train
  /// (row order preserved; shuffle first for a random split). Fraction
  /// must be in (0, 1).
  [[nodiscard]] std::pair<Dataset, Dataset> split(double train_fraction) const;

  /// Serializes to CSV with a header row:
  /// `ip,<feature names...>,malicious`.
  [[nodiscard]] std::string to_csv() const;

  /// Parses the format produced by to_csv(). Throws std::invalid_argument
  /// with a line number on malformed input.
  [[nodiscard]] static Dataset from_csv(std::string_view text);

  /// Per-feature mean over all rows (zero vector when empty).
  [[nodiscard]] FeatureVector mean() const;

  /// Per-feature mean over rows of one class only.
  [[nodiscard]] FeatureVector class_mean(bool malicious) const;

 private:
  std::vector<LabeledExample> rows_;
};

}  // namespace powai::features
