#pragma once
/// \file feature_vector.hpp
/// The IP-traffic attribute vector consumed by the reputation models.
///
/// DAbR (Renjan et al., ISI 2018) scores an IP by the Euclidean distance
/// of its attribute vector to previously-seen malicious IPs. The original
/// attributes come from a commercial threat feed; here the schema is a
/// fixed set of transport/application-level statistics that a server-side
/// observer can compute per source IP (see DESIGN.md §2 for the
/// substitution rationale).

#include <array>
#include <cstddef>
#include <string>
#include <string_view>

namespace powai::features {

/// Index of each attribute in a FeatureVector. Order is part of the
/// on-disk CSV format — append only.
enum class Feature : std::size_t {
  kRequestRate = 0,     ///< requests / second from this IP
  kMeanPayloadBytes,    ///< mean request payload size
  kConnDurationMs,      ///< mean connection duration
  kSynRatio,            ///< fraction of handshakes never completed
  kErrorRatio,          ///< fraction of requests ending in 4xx/5xx
  kUniquePorts,         ///< distinct destination ports probed
  kGeoRisk,             ///< [0,1] risk weight of the announced origin
  kBlocklistHits,       ///< hits on public blocklists (count)
  kPathEntropy,         ///< Shannon entropy of requested paths (bits)
  kTtlVariance,         ///< variance of observed IP TTLs (spoofing tell)
};

inline constexpr std::size_t kFeatureCount = 10;

/// Human-readable attribute name ("request_rate", ...).
[[nodiscard]] std::string_view feature_name(Feature f);

/// Fixed-width numeric attribute vector.
class FeatureVector final {
 public:
  FeatureVector() { values_.fill(0.0); }
  explicit FeatureVector(const std::array<double, kFeatureCount>& values)
      : values_(values) {}

  [[nodiscard]] double get(Feature f) const {
    return values_[static_cast<std::size_t>(f)];
  }
  void set(Feature f, double v) { values_[static_cast<std::size_t>(f)] = v; }

  [[nodiscard]] double operator[](std::size_t i) const { return values_[i]; }
  [[nodiscard]] double& operator[](std::size_t i) { return values_[i]; }

  [[nodiscard]] static constexpr std::size_t size() { return kFeatureCount; }

  [[nodiscard]] const std::array<double, kFeatureCount>& values() const {
    return values_;
  }

  /// Euclidean distance to \p other.
  [[nodiscard]] double distance(const FeatureVector& other) const;

  /// Squared Euclidean distance (no sqrt; for hot loops).
  [[nodiscard]] double distance_sq(const FeatureVector& other) const;

  /// "f0,f1,...,f9" with full precision (CSV cell form).
  [[nodiscard]] std::string to_csv() const;

  bool operator==(const FeatureVector&) const = default;

 private:
  std::array<double, kFeatureCount> values_;
};

}  // namespace powai::features
