#include "features/dataset.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace powai::features {

std::size_t Dataset::malicious_count() const {
  std::size_t n = 0;
  for (const auto& row : rows_) n += row.malicious ? 1 : 0;
  return n;
}

std::size_t Dataset::benign_count() const {
  return rows_.size() - malicious_count();
}

void Dataset::shuffle(common::Rng& rng) {
  for (std::size_t i = rows_.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_u64(0, i - 1);
    std::swap(rows_[i - 1], rows_[j]);
  }
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction) const {
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    throw std::invalid_argument("Dataset::split: fraction outside (0, 1)");
  }
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(rows_.size()) * train_fraction);
  Dataset train;
  Dataset test;
  train.reserve(cut);
  test.reserve(rows_.size() - cut);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    (i < cut ? train : test).add(rows_[i]);
  }
  return {std::move(train), std::move(test)};
}

std::string Dataset::to_csv() const {
  std::string out = "ip";
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    out += ',';
    out += feature_name(static_cast<Feature>(i));
  }
  out += ",malicious\n";
  for (const auto& row : rows_) {
    out += row.ip.to_string();
    out += ',';
    out += row.features.to_csv();
    out += row.malicious ? ",1\n" : ",0\n";
  }
  return out;
}

Dataset Dataset::from_csv(std::string_view text) {
  Dataset out;
  const auto lines = common::split(text, '\n');
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    const auto line = common::trim(lines[ln]);
    if (line.empty()) continue;
    if (ln == 0 && common::starts_with(line, "ip,")) continue;  // header
    const auto cells = common::split(line, ',');
    if (cells.size() != kFeatureCount + 2) {
      throw std::invalid_argument("Dataset::from_csv: line " +
                                  std::to_string(ln + 1) + ": expected " +
                                  std::to_string(kFeatureCount + 2) +
                                  " cells, got " + std::to_string(cells.size()));
    }
    LabeledExample example;
    const auto ip = IpAddress::parse(cells[0]);
    if (!ip) {
      throw std::invalid_argument("Dataset::from_csv: line " +
                                  std::to_string(ln + 1) + ": bad ip");
    }
    example.ip = *ip;
    for (std::size_t f = 0; f < kFeatureCount; ++f) {
      const auto v = common::parse_f64(cells[1 + f]);
      if (!v) {
        throw std::invalid_argument("Dataset::from_csv: line " +
                                    std::to_string(ln + 1) + ": bad feature " +
                                    std::to_string(f));
      }
      example.features[f] = *v;
    }
    const auto label = common::trim(cells.back());
    if (label == "1") {
      example.malicious = true;
    } else if (label == "0") {
      example.malicious = false;
    } else {
      throw std::invalid_argument("Dataset::from_csv: line " +
                                  std::to_string(ln + 1) + ": bad label");
    }
    out.add(std::move(example));
  }
  return out;
}

FeatureVector Dataset::mean() const {
  FeatureVector m;
  if (rows_.empty()) return m;
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < kFeatureCount; ++i) m[i] += row.features[i];
  }
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    m[i] /= static_cast<double>(rows_.size());
  }
  return m;
}

FeatureVector Dataset::class_mean(bool malicious) const {
  FeatureVector m;
  std::size_t n = 0;
  for (const auto& row : rows_) {
    if (row.malicious != malicious) continue;
    ++n;
    for (std::size_t i = 0; i < kFeatureCount; ++i) m[i] += row.features[i];
  }
  if (n == 0) return m;
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    m[i] /= static_cast<double>(n);
  }
  return m;
}

}  // namespace powai::features
