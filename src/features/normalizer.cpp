#include "features/normalizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powai::features {

void MinMaxNormalizer::fit(const Dataset& data) {
  if (data.empty()) {
    throw std::invalid_argument("MinMaxNormalizer::fit: empty dataset");
  }
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    lo_[i] = data[0].features[i];
    hi_[i] = data[0].features[i];
  }
  for (const auto& row : data.rows()) {
    for (std::size_t i = 0; i < kFeatureCount; ++i) {
      lo_[i] = std::min(lo_[i], row.features[i]);
      hi_[i] = std::max(hi_[i], row.features[i]);
    }
  }
  fitted_ = true;
}

FeatureVector MinMaxNormalizer::transform(const FeatureVector& x) const {
  if (!fitted_) throw std::logic_error("MinMaxNormalizer: not fitted");
  FeatureVector out;
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    const double width = hi_[i] - lo_[i];
    if (width <= 0.0) {
      out[i] = 0.5;
    } else {
      out[i] = std::clamp((x[i] - lo_[i]) / width, 0.0, 1.0);
    }
  }
  return out;
}

Dataset MinMaxNormalizer::fit_transform(const Dataset& data) {
  fit(data);
  Dataset out;
  out.reserve(data.size());
  for (const auto& row : data.rows()) {
    out.add({row.ip, transform(row.features), row.malicious});
  }
  return out;
}

void ZScoreNormalizer::fit(const Dataset& data) {
  if (data.empty()) {
    throw std::invalid_argument("ZScoreNormalizer::fit: empty dataset");
  }
  mean_.fill(0.0);
  std_.fill(0.0);
  const auto n = static_cast<double>(data.size());
  for (const auto& row : data.rows()) {
    for (std::size_t i = 0; i < kFeatureCount; ++i) mean_[i] += row.features[i];
  }
  for (std::size_t i = 0; i < kFeatureCount; ++i) mean_[i] /= n;
  for (const auto& row : data.rows()) {
    for (std::size_t i = 0; i < kFeatureCount; ++i) {
      const double d = row.features[i] - mean_[i];
      std_[i] += d * d;
    }
  }
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    std_[i] = std::sqrt(std_[i] / n);
  }
  fitted_ = true;
}

FeatureVector ZScoreNormalizer::transform(const FeatureVector& x) const {
  if (!fitted_) throw std::logic_error("ZScoreNormalizer: not fitted");
  FeatureVector out;
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    out[i] = std_[i] > 0.0 ? (x[i] - mean_[i]) / std_[i] : 0.0;
  }
  return out;
}

ZScoreNormalizer ZScoreNormalizer::from_params(
    const std::array<double, kFeatureCount>& means,
    const std::array<double, kFeatureCount>& stddevs) {
  for (double s : stddevs) {
    if (s < 0.0) {
      throw std::invalid_argument("ZScoreNormalizer::from_params: stddev < 0");
    }
  }
  ZScoreNormalizer out;
  out.mean_ = means;
  out.std_ = stddevs;
  out.fitted_ = true;
  return out;
}

Dataset ZScoreNormalizer::fit_transform(const Dataset& data) {
  fit(data);
  Dataset out;
  out.reserve(data.size());
  for (const auto& row : data.rows()) {
    out.add({row.ip, transform(row.features), row.malicious});
  }
  return out;
}

}  // namespace powai::features
