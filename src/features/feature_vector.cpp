#include "features/feature_vector.hpp"

#include <cmath>
#include <cstdio>

namespace powai::features {

std::string_view feature_name(Feature f) {
  switch (f) {
    case Feature::kRequestRate: return "request_rate";
    case Feature::kMeanPayloadBytes: return "mean_payload_bytes";
    case Feature::kConnDurationMs: return "conn_duration_ms";
    case Feature::kSynRatio: return "syn_ratio";
    case Feature::kErrorRatio: return "error_ratio";
    case Feature::kUniquePorts: return "unique_ports";
    case Feature::kGeoRisk: return "geo_risk";
    case Feature::kBlocklistHits: return "blocklist_hits";
    case Feature::kPathEntropy: return "path_entropy";
    case Feature::kTtlVariance: return "ttl_variance";
  }
  return "unknown";
}

double FeatureVector::distance_sq(const FeatureVector& other) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    const double d = values_[i] - other.values_[i];
    acc += d * d;
  }
  return acc;
}

double FeatureVector::distance(const FeatureVector& other) const {
  return std::sqrt(distance_sq(other));
}

std::string FeatureVector::to_csv() const {
  std::string out;
  char buf[32];
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof buf, "%.17g", values_[i]);
    out += buf;
  }
  return out;
}

}  // namespace powai::features
