#pragma once
/// \file network.hpp
/// Message-level network simulation: named hosts exchange byte payloads
/// over per-pair links, with delivery scheduled on the EventLoop. This is
/// the substrate the throttling experiment runs the full client/server
/// protocol over.
///
/// Scale model: per-host and per-pair state is opt-in, not mandatory.
/// A simulation can register a *host group* — one handler covering a
/// contiguous IPv4 range — so a million simulated clients cost one
/// registration, and express topology through *link classes* — shared
/// LinkModel profiles picked by a resolver function — so link state is
/// O(classes), not O(clients²). Explicit per-host / per-pair
/// registrations still work and take precedence; the resolution order is
/// exact host → group, and explicit pair link → class resolver →
/// default link.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "features/ip_address.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/link.hpp"

namespace powai::netsim {

/// Invoked on delivery: (source host, payload).
using MessageHandler =
    std::function<void(const std::string& from, common::BytesView payload)>;

/// Invoked on delivery to a host-group member: (member host — the
/// concrete dotted-quad name, source host, payload).
using GroupMessageHandler = std::function<void(
    const std::string& member, const std::string& from,
    common::BytesView payload)>;

/// Picks a link class for a directed (from, to) pair, or std::nullopt to
/// fall through to the default link. Must be a pure function of its
/// arguments (it runs on every send of an unconfigured pair).
using LinkClassResolver = std::function<std::optional<std::size_t>(
    const std::string& from, const std::string& to)>;

/// Transient fault overlay applied on top of the static link models while
/// active (sim::FaultPlan events toggle it). Draws for the overlay come
/// from per-pair counter-based streams keyed by fault_stream_seed — never
/// from the network's shared Rng — so (a) activating or removing a fault
/// window does not perturb the base link's draw sequence, and (b) the
/// fault a given message experiences is a pure function of (seed,
/// directed pair, that pair's message index), which is what keeps fault
/// campaigns bit-identical across sync/async transports and any
/// drain_shards setting.
struct LinkFault final {
  /// Additional independent loss probability in [0, 1].
  double extra_loss = 0.0;
  /// Additional uniform jitter U[0, extra_jitter], bounds inclusive.
  common::Duration extra_jitter{};
  /// Deterministic added one-way latency.
  common::Duration extra_latency{};

  [[nodiscard]] bool active() const {
    return extra_loss > 0.0 || extra_jitter > common::Duration::zero() ||
           extra_latency > common::Duration::zero();
  }
};

class Network final {
 public:
  /// \p loop and \p rng must outlive the network — the network holds
  /// plain pointers to both (no ownership, no null state) and touches
  /// them on every send() and scheduled delivery, so destroying either
  /// while deliveries are pending is undefined behavior. Destruction
  /// order for a simulation is therefore: transports/front ends first,
  /// then the network, then the loop and rng (the reverse of
  /// construction — same discipline async_front_end.hpp documents for
  /// its loop/network/server references). The constructor asserts the
  /// stored pointers are non-null so a miswired binding fails at build
  /// time of the simulation, not mid-run.
  Network(EventLoop& loop, common::Rng& rng);

  /// Registers a host; throws std::invalid_argument on duplicates or an
  /// empty handler.
  void add_host(const std::string& name, MessageHandler handler);

  /// Registers \p count hosts in one shot: every dotted-quad name in
  /// [base_ip, base_ip + count) resolves to \p handler, which receives
  /// the concrete member name alongside the sender. One registration —
  /// O(1) network-side state — regardless of count; this is how a
  /// million-client population attaches. Throws std::invalid_argument on
  /// a malformed base, an empty handler, a range wrapping past
  /// 255.255.255.255, or a range overlapping an existing group.
  /// Individually-registered hosts shadow group members.
  void add_host_group(const std::string& base_ip, std::uint64_t count,
                      GroupMessageHandler handler);

  [[nodiscard]] bool has_host(const std::string& name) const;

  /// Sets the (directed) link model used from \p from to \p to.
  /// Unconfigured pairs use the class resolver, then the default link.
  /// Validates \p link — malformed models are rejected here, at attach
  /// time, not per packet.
  void set_link(const std::string& from, const std::string& to,
                LinkModel link);

  /// Registers a shared link profile and returns its class id (dense,
  /// starting at 0). Validates \p link.
  std::size_t add_link_class(LinkModel link);

  /// Installs the resolver mapping unconfigured (from, to) pairs to a
  /// link class (see LinkClassResolver). Pass an empty function to
  /// remove. Throws std::out_of_range at send time if the resolver
  /// returns an id no add_link_class call produced.
  void set_link_class_resolver(LinkClassResolver resolver);

  /// Default model for unconfigured pairs. Validates \p link.
  void set_default_link(LinkModel link);

  /// Installs (or, with a default-constructed fault, clears) the fault
  /// overlay. Replaces any previous overlay; callers composing multiple
  /// overlapping fault windows combine them before installing.
  void set_fault(LinkFault fault) { fault_ = fault; }
  void clear_fault() { fault_ = LinkFault{}; }
  [[nodiscard]] const LinkFault& fault() const { return fault_; }

  /// Seed of the per-pair fault draw streams (see LinkFault).
  void set_fault_stream_seed(std::uint64_t seed) { fault_seed_ = seed; }

  /// Queues \p payload for delivery; returns false if the link (or the
  /// fault overlay) dropped it. Throws std::invalid_argument for unknown
  /// hosts.
  bool send(const std::string& from, const std::string& to,
            common::Bytes payload);

  /// Counters for assertions and reporting.
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  /// Of messages_dropped, how many the fault overlay (not the base link
  /// model) dropped.
  [[nodiscard]] std::uint64_t fault_dropped() const { return fault_dropped_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

  /// Approximate resident footprint of the topology state, in bytes:
  /// host map + groups + links + classes + live fault counters.
  /// Diagnostic — feeds the load benches' bytes/client accounting. Note
  /// what is *absent*: nothing here scales with group member count.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  /// One handler covering the contiguous range [base, base + count).
  struct HostGroup {
    std::uint32_t base = 0;
    std::uint64_t count = 0;
    GroupMessageHandler handler;

    [[nodiscard]] bool covers(features::IpAddress ip) const {
      return ip.value() >= base && ip.value() - base < count;
    }
  };

  /// Group lookup for \p name (nullptr when no group covers it).
  [[nodiscard]] const HostGroup* group_for(const std::string& name) const;

  EventLoop* loop_;
  common::Rng* rng_;
  std::map<std::string, MessageHandler> hosts_;
  /// deque: scheduled deliveries hold pointers into elements, which a
  /// vector would invalidate if a group were added while in flight.
  std::deque<HostGroup> groups_;
  std::map<std::pair<std::string, std::string>, LinkModel> links_;
  std::vector<LinkModel> link_classes_;
  LinkClassResolver link_resolver_;
  LinkModel default_link_ = default_experiment_link();
  LinkFault fault_;
  std::uint64_t fault_seed_ = 0;
  /// Per directed pair: messages attempted so far (the fault stream id),
  /// keyed by the pair's stable 64-bit hash — O(pairs active during a
  /// fault window), with no string storage per pair.
  std::unordered_map<std::uint64_t, std::uint64_t> pair_seq_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t fault_dropped_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace powai::netsim
