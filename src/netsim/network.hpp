#pragma once
/// \file network.hpp
/// Message-level network simulation: named hosts exchange byte payloads
/// over per-pair links, with delivery scheduled on the EventLoop. This is
/// the substrate the throttling experiment runs the full client/server
/// protocol over.

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/link.hpp"

namespace powai::netsim {

/// Invoked on delivery: (source host, payload).
using MessageHandler =
    std::function<void(const std::string& from, common::BytesView payload)>;

class Network final {
 public:
  /// \p loop and \p rng must outlive the network — the network holds
  /// plain pointers to both (no ownership, no null state) and touches
  /// them on every send() and scheduled delivery, so destroying either
  /// while deliveries are pending is undefined behavior. Destruction
  /// order for a simulation is therefore: transports/front ends first,
  /// then the network, then the loop and rng (the reverse of
  /// construction — same discipline async_front_end.hpp documents for
  /// its loop/network/server references). The constructor asserts the
  /// stored pointers are non-null so a miswired binding fails at build
  /// time of the simulation, not mid-run.
  Network(EventLoop& loop, common::Rng& rng);

  /// Registers a host; throws std::invalid_argument on duplicates or an
  /// empty handler.
  void add_host(const std::string& name, MessageHandler handler);

  [[nodiscard]] bool has_host(const std::string& name) const;

  /// Sets the (directed) link model used from \p from to \p to.
  /// Unconfigured pairs use the default link.
  void set_link(const std::string& from, const std::string& to,
                LinkModel link);

  /// Default model for unconfigured pairs.
  void set_default_link(LinkModel link) { default_link_ = link; }

  /// Queues \p payload for delivery; returns false if the link dropped
  /// it. Throws std::invalid_argument for unknown hosts.
  bool send(const std::string& from, const std::string& to,
            common::Bytes payload);

  /// Counters for assertions and reporting.
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

 private:
  EventLoop* loop_;
  common::Rng* rng_;
  std::map<std::string, MessageHandler> hosts_;
  std::map<std::pair<std::string, std::string>, LinkModel> links_;
  LinkModel default_link_ = default_experiment_link();
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace powai::netsim
