#include "netsim/event_loop.hpp"

#include <stdexcept>

namespace powai::netsim {

EventId EventLoop::schedule_at(common::TimePoint at, std::function<void()> fn) {
  if (at < clock_.now()) {
    throw std::invalid_argument("EventLoop::schedule_at: time in the past");
  }
  if (!fn) throw std::invalid_argument("EventLoop::schedule_at: empty fn");
  const EventId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  return id;
}

EventId EventLoop::schedule_in(common::Duration delay, std::function<void()> fn) {
  if (delay < common::Duration::zero()) {
    throw std::invalid_argument("EventLoop::schedule_in: negative delay");
  }
  return schedule_at(clock_.now() + delay, std::move(fn));
}

bool EventLoop::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy cancellation: remember the id; skip when popped.
  return cancelled_.insert(id).second;
}

void EventLoop::post(std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("EventLoop::post: empty fn");
  const std::lock_guard<std::mutex> lock(posted_mu_);
  posted_.push_back(std::move(fn));
}

bool EventLoop::has_posted() const {
  const std::lock_guard<std::mutex> lock(posted_mu_);
  return !posted_.empty();
}

void EventLoop::collect_posted() {
  std::vector<std::function<void()>> collected;
  {
    const std::lock_guard<std::mutex> lock(posted_mu_);
    collected.swap(posted_);
  }
  // Fold into the timed queue at the current instant; the shared seq
  // counter keeps posts FIFO among themselves and after events already
  // due now.
  for (auto& fn : collected) {
    queue_.push(Event{clock_.now(), next_seq_++, next_id_++, std::move(fn)});
  }
}

std::optional<common::TimePoint> EventLoop::next_event_time() {
  collect_posted();
  while (!queue_.empty()) {
    const auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return queue_.top().at;
    cancelled_.erase(it);
    queue_.pop();
  }
  return std::nullopt;
}

bool EventLoop::pop_next(Event& out) {
  collect_posted();
  while (!queue_.empty()) {
    // priority_queue::top is const; copy the small header, move the fn
    // via const_cast-free re-push-less approach: top then pop.
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    const auto it = cancelled_.find(e.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(e);
    return true;
  }
  return false;
}

bool EventLoop::step() {
  Event e;
  if (!pop_next(e)) return false;
  clock_.set(e.at);
  e.fn();
  return true;
}

std::size_t EventLoop::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::size_t EventLoop::run_until(common::TimePoint deadline) {
  std::size_t executed = 0;
  for (;;) {
    Event e;
    if (!pop_next(e)) break;  // also folds in post()ed callbacks
    if (e.at > deadline) {
      // Not due yet: put it back and stop.
      queue_.push(std::move(e));
      break;
    }
    clock_.set(e.at);
    e.fn();
    ++executed;
  }
  if (clock_.now() < deadline) clock_.set(deadline);
  return executed;
}

}  // namespace powai::netsim
