#include "netsim/event_loop.hpp"

#include <stdexcept>

namespace powai::netsim {

EventId EventLoop::schedule_at(common::TimePoint at, std::function<void()> fn) {
  if (at < clock_.now()) {
    throw std::invalid_argument("EventLoop::schedule_at: time in the past");
  }
  if (!fn) throw std::invalid_argument("EventLoop::schedule_at: empty fn");
  const EventId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  return id;
}

EventId EventLoop::schedule_in(common::Duration delay, std::function<void()> fn) {
  if (delay < common::Duration::zero()) {
    throw std::invalid_argument("EventLoop::schedule_in: negative delay");
  }
  return schedule_at(clock_.now() + delay, std::move(fn));
}

bool EventLoop::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy cancellation: remember the id; skip when popped.
  return cancelled_.insert(id).second;
}

bool EventLoop::pop_next(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top is const; copy the small header, move the fn
    // via const_cast-free re-push-less approach: top then pop.
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    const auto it = cancelled_.find(e.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(e);
    return true;
  }
  return false;
}

bool EventLoop::step() {
  Event e;
  if (!pop_next(e)) return false;
  clock_.set(e.at);
  e.fn();
  return true;
}

std::size_t EventLoop::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::size_t EventLoop::run_until(common::TimePoint deadline) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event e;
    if (!pop_next(e)) break;
    if (e.at > deadline) {
      // Not due yet: put it back and stop.
      queue_.push(std::move(e));
      break;
    }
    clock_.set(e.at);
    e.fn();
    ++executed;
  }
  if (clock_.now() < deadline) clock_.set(deadline);
  return executed;
}

}  // namespace powai::netsim
