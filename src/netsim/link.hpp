#pragma once
/// \file link.hpp
/// Network link model: propagation latency + jitter + serialization
/// delay + random loss. Used by the simulator to delay (or drop) message
/// deliveries between hosts.

#include <cstdint>
#include <optional>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace powai::netsim {

struct LinkModel final {
  /// One-way propagation latency.
  common::Duration base_latency = std::chrono::milliseconds(5);

  /// Uniform jitter added on top: U[0, jitter], bounds inclusive.
  common::Duration jitter = std::chrono::milliseconds(1);

  /// Bytes/second; 0 = infinite (no serialization delay).
  double bandwidth_bytes_per_sec = 0.0;

  /// Independent per-message loss probability in [0, 1].
  double loss_rate = 0.0;

  /// One-way delay for a \p size-byte message, or std::nullopt if the
  /// message is lost. The model must already be valid: validation is an
  /// attach-time concern (Network::set_link / set_default_link call
  /// validate()), never a per-message one — this is the per-packet hot
  /// path of every simulated send.
  [[nodiscard]] std::optional<common::Duration> delay_for(
      std::size_t size, common::Rng& rng) const noexcept;

  /// Validates fields; throws std::invalid_argument on a malformed model
  /// (negative latency/jitter, loss outside [0,1], negative bandwidth).
  /// Called by Network when a model is attached.
  void validate() const;
};

/// A symmetric-latency LAN-ish default used by the experiments: ~15 ms
/// one-way (the calibration that puts the d=1 round trip near the
/// paper's 31 ms — see EXPERIMENTS.md).
[[nodiscard]] LinkModel default_experiment_link();

}  // namespace powai::netsim
