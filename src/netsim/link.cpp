#include "netsim/link.hpp"

#include <stdexcept>

namespace powai::netsim {

void LinkModel::validate() const {
  if (base_latency < common::Duration::zero()) {
    throw std::invalid_argument("LinkModel: negative base_latency");
  }
  if (jitter < common::Duration::zero()) {
    throw std::invalid_argument("LinkModel: negative jitter");
  }
  if (!(loss_rate >= 0.0 && loss_rate <= 1.0)) {
    throw std::invalid_argument("LinkModel: loss_rate outside [0, 1]");
  }
  if (bandwidth_bytes_per_sec < 0.0) {
    throw std::invalid_argument("LinkModel: negative bandwidth");
  }
}

std::optional<common::Duration> LinkModel::delay_for(
    std::size_t size, common::Rng& rng) const noexcept {
  if (loss_rate > 0.0 && rng.bernoulli(loss_rate)) return std::nullopt;
  common::Duration delay = base_latency;
  if (jitter > common::Duration::zero()) {
    // Inclusive draw over [0, jitter] in clock ticks: the configured
    // bound is reachable and the distribution is exactly uniform (the
    // old uniform01()*count form truncated toward zero and could never
    // produce the bound itself).
    delay += common::Duration(static_cast<common::Duration::rep>(
        rng.uniform_u64(0, static_cast<std::uint64_t>(jitter.count()))));
  }
  if (bandwidth_bytes_per_sec > 0.0) {
    const double seconds =
        static_cast<double>(size) / bandwidth_bytes_per_sec;
    delay += std::chrono::duration_cast<common::Duration>(
        std::chrono::duration<double>(seconds));
  }
  return delay;
}

LinkModel default_experiment_link() {
  LinkModel link;
  link.base_latency = std::chrono::microseconds(14'500);
  link.jitter = std::chrono::microseconds(1'000);
  link.bandwidth_bytes_per_sec = 0.0;
  link.loss_rate = 0.0;
  return link;
}

}  // namespace powai::netsim
