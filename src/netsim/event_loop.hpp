#pragma once
/// \file event_loop.hpp
/// Discrete-event simulation core. Events are (time, sequence, callback)
/// tuples executed in time order with FIFO tie-breaking, so simulations
/// are fully deterministic given the same inputs. The loop owns a
/// ManualClock that components read through the common::Clock interface —
/// the same server/verifier code runs unmodified under simulated time.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"

namespace powai::netsim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class EventLoop final {
 public:
  EventLoop() = default;
  explicit EventLoop(common::TimePoint start) : clock_(start) {}

  /// The simulated clock (pass to components expecting common::Clock).
  [[nodiscard]] const common::Clock& clock() const { return clock_; }
  [[nodiscard]] common::TimePoint now() const { return clock_.now(); }

  /// Schedules \p fn at absolute simulated time \p at (>= now, else
  /// throws std::invalid_argument). Returns a cancellation handle.
  EventId schedule_at(common::TimePoint at, std::function<void()> fn);

  /// Schedules \p fn after \p delay (>= 0).
  EventId schedule_in(common::Duration delay, std::function<void()> fn);

  /// Cancels a pending event; returns false if it already ran, was
  /// cancelled before, or never existed.
  bool cancel(EventId id);

  /// Runs events until the queue empties. Returns events executed.
  std::size_t run();

  /// Runs events with time <= \p deadline, then advances the clock to
  /// exactly \p deadline. Returns events executed.
  std::size_t run_until(common::TimePoint deadline);

  /// Executes only the next event (false if queue is empty).
  bool step();

  [[nodiscard]] std::size_t pending() const {
    return queue_.size() - cancelled_.size();
  }

 private:
  struct Event {
    common::TimePoint at;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO within identical timestamps
    }
  };

  /// Pops the next non-cancelled event, or returns false.
  bool pop_next(Event& out);

  common::ManualClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace powai::netsim
