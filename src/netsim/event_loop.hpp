#pragma once
/// \file event_loop.hpp
/// Discrete-event simulation core. Events are (time, sequence, callback)
/// tuples executed in time order with FIFO tie-breaking, so simulations
/// are fully deterministic given the same inputs. The loop owns a
/// ManualClock that components read through the common::Clock interface —
/// the same server/verifier code runs unmodified under simulated time.
///
/// Threading: every member is loop-thread-only except post() and
/// has_posted(), the cross-thread completion-injection pair the async
/// front end uses to route pool-thread results back onto the loop.

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"

namespace powai::netsim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class EventLoop final {
 public:
  EventLoop() = default;
  explicit EventLoop(common::TimePoint start) : clock_(start) {}

  /// The simulated clock (pass to components expecting common::Clock).
  [[nodiscard]] const common::Clock& clock() const { return clock_; }
  [[nodiscard]] common::TimePoint now() const { return clock_.now(); }

  /// Schedules \p fn at absolute simulated time \p at (>= now, else
  /// throws std::invalid_argument). Returns a cancellation handle.
  EventId schedule_at(common::TimePoint at, std::function<void()> fn);

  /// Schedules \p fn after \p delay (>= 0).
  EventId schedule_in(common::Duration delay, std::function<void()> fn);

  /// Cancels a pending event; returns false if it already ran, was
  /// cancelled before, or never existed.
  bool cancel(EventId id);

  /// Thread-safe: hands \p fn to the loop from any thread. Posted
  /// callbacks are folded into the timed queue at the loop's *current*
  /// simulated time the next time the loop thread executes (step/run/
  /// run_until/next_event_time), preserving FIFO order among posts.
  /// This is how pool threads inject completions without touching
  /// simulated time themselves.
  void post(std::function<void()> fn);

  /// Thread-safe: true while post()ed callbacks are waiting to be
  /// collected by the loop thread. Callbacks already folded into the
  /// timed queue count as pending(), not as posted.
  [[nodiscard]] bool has_posted() const;

  /// Earliest pending event time, or std::nullopt when the timed queue
  /// is empty (after folding in any posted callbacks). Loop thread only.
  [[nodiscard]] std::optional<common::TimePoint> next_event_time();

  /// Runs events until the queue empties. Returns events executed.
  std::size_t run();

  /// Runs events with time <= \p deadline, then advances the clock to
  /// exactly \p deadline. Returns events executed.
  std::size_t run_until(common::TimePoint deadline);

  /// Executes only the next event (false if queue is empty).
  bool step();

  [[nodiscard]] std::size_t pending() const {
    return queue_.size() - cancelled_.size();
  }

 private:
  struct Event {
    common::TimePoint at;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO within identical timestamps
    }
  };

  /// Pops the next non-cancelled event, or returns false.
  bool pop_next(Event& out);

  /// Moves post()ed callbacks into the timed queue at now (loop thread).
  void collect_posted();

  common::ManualClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;

  mutable std::mutex posted_mu_;           ///< guards posted_
  std::vector<std::function<void()>> posted_;
};

}  // namespace powai::netsim
