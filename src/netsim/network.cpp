#include "netsim/network.hpp"

#include <cassert>
#include <stdexcept>

namespace powai::netsim {

Network::Network(EventLoop& loop, common::Rng& rng)
    : loop_(&loop), rng_(&rng) {
  // References cannot be null in well-formed code, but a dangling or
  // reinterpret-cast binding can produce exactly this; fail fast.
  assert(loop_ != nullptr && rng_ != nullptr);
}

void Network::add_host(const std::string& name, MessageHandler handler) {
  if (!handler) throw std::invalid_argument("Network::add_host: empty handler");
  const auto [it, inserted] = hosts_.emplace(name, std::move(handler));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("Network::add_host: duplicate host '" + name +
                                "'");
  }
}

bool Network::has_host(const std::string& name) const {
  return hosts_.contains(name);
}

void Network::set_link(const std::string& from, const std::string& to,
                       LinkModel link) {
  link.validate();
  links_[{from, to}] = link;
}

bool Network::send(const std::string& from, const std::string& to,
                   common::Bytes payload) {
  if (!hosts_.contains(from)) {
    throw std::invalid_argument("Network::send: unknown source '" + from + "'");
  }
  const auto dest = hosts_.find(to);
  if (dest == hosts_.end()) {
    throw std::invalid_argument("Network::send: unknown destination '" + to +
                                "'");
  }

  const auto link_it = links_.find({from, to});
  const LinkModel& link =
      link_it != links_.end() ? link_it->second : default_link_;

  const auto delay = link.delay_for(payload.size(), *rng_);
  if (!delay) {
    ++dropped_;
    return false;
  }
  ++sent_;
  bytes_ += payload.size();

  // The handler reference stays valid: hosts_ is never mutated after
  // simulation start (add_host during run would be a design error we
  // accept as UB-free but unordered delivery).
  MessageHandler& handler = dest->second;
  loop_->schedule_in(*delay,
                     [&handler, from, payload = std::move(payload)]() {
                       handler(from, payload);
                     });
  return true;
}

}  // namespace powai::netsim
