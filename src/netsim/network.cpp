#include "netsim/network.hpp"

#include <cassert>
#include <stdexcept>

namespace powai::netsim {

namespace {
/// Stable 64-bit hash of a directed (from, to) pair for keying the fault
/// draw streams (FNV-1a; platform-independent on purpose).
std::uint64_t pair_hash(const std::string& from, const std::string& to) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // separator so ("ab","c") != ("a","bc")
    h *= 0x100000001b3ULL;
  };
  mix(from);
  mix(to);
  return h;
}
}  // namespace

Network::Network(EventLoop& loop, common::Rng& rng)
    : loop_(&loop), rng_(&rng) {
  // References cannot be null in well-formed code, but a dangling or
  // reinterpret-cast binding can produce exactly this; fail fast.
  assert(loop_ != nullptr && rng_ != nullptr);
}

void Network::add_host(const std::string& name, MessageHandler handler) {
  if (!handler) throw std::invalid_argument("Network::add_host: empty handler");
  const auto [it, inserted] = hosts_.emplace(name, std::move(handler));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("Network::add_host: duplicate host '" + name +
                                "'");
  }
}

void Network::add_host_group(const std::string& base_ip, std::uint64_t count,
                             GroupMessageHandler handler) {
  if (!handler) {
    throw std::invalid_argument("Network::add_host_group: empty handler");
  }
  if (count == 0) {
    throw std::invalid_argument("Network::add_host_group: count == 0");
  }
  const auto base = features::IpAddress::parse(base_ip);
  if (!base) {
    throw std::invalid_argument("Network::add_host_group: malformed base '" +
                                base_ip + "'");
  }
  const std::uint64_t room =
      (std::uint64_t{1} << 32) - static_cast<std::uint64_t>(base->value());
  if (count > room) {
    throw std::invalid_argument(
        "Network::add_host_group: range wraps past 255.255.255.255");
  }
  for (const HostGroup& g : groups_) {
    // Overlap iff each range starts before the other ends.
    if (base->value() < g.base + g.count &&
        g.base < static_cast<std::uint64_t>(base->value()) + count) {
      throw std::invalid_argument(
          "Network::add_host_group: range overlaps an existing group");
    }
  }
  groups_.push_back(
      HostGroup{base->value(), count, std::move(handler)});
}

const Network::HostGroup* Network::group_for(const std::string& name) const {
  if (groups_.empty()) return nullptr;
  const auto ip = features::IpAddress::parse(name);
  if (!ip) return nullptr;
  for (const HostGroup& g : groups_) {
    if (g.covers(*ip)) return &g;
  }
  return nullptr;
}

bool Network::has_host(const std::string& name) const {
  return hosts_.contains(name) || group_for(name) != nullptr;
}

void Network::set_link(const std::string& from, const std::string& to,
                       LinkModel link) {
  link.validate();
  links_[{from, to}] = link;
}

std::size_t Network::add_link_class(LinkModel link) {
  link.validate();
  link_classes_.push_back(link);
  return link_classes_.size() - 1;
}

void Network::set_link_class_resolver(LinkClassResolver resolver) {
  link_resolver_ = std::move(resolver);
}

void Network::set_default_link(LinkModel link) {
  link.validate();
  default_link_ = link;
}

bool Network::send(const std::string& from, const std::string& to,
                   common::Bytes payload) {
  if (!has_host(from)) {
    throw std::invalid_argument("Network::send: unknown source '" + from + "'");
  }
  // Destination: exact registrations shadow group members.
  const auto dest = hosts_.find(to);
  const HostGroup* dest_group =
      dest != hosts_.end() ? nullptr : group_for(to);
  if (dest == hosts_.end() && dest_group == nullptr) {
    throw std::invalid_argument("Network::send: unknown destination '" + to +
                                "'");
  }

  // Link resolution: explicit pair → class resolver → default.
  const LinkModel* link = &default_link_;
  if (const auto link_it = links_.find({from, to}); link_it != links_.end()) {
    link = &link_it->second;
  } else if (link_resolver_) {
    if (const auto cls = link_resolver_(from, to)) {
      link = &link_classes_.at(*cls);
    }
  }

  // Base link draws always happen (even when the fault overlay will drop
  // the message) so the shared Rng's draw sequence is identical with and
  // without an active fault window — removing a fault event from a plan
  // must not perturb unrelated deliveries.
  auto delay = link->delay_for(payload.size(), *rng_);
  if (!delay) {
    ++dropped_;
    return false;
  }

  if (fault_.active()) {
    // Per-pair, per-message derived stream: a pure function of
    // (fault seed, directed pair, pair message index). Cross-pair
    // interleaving — e.g. racy completion order across drain shards —
    // cannot permute what any one pair's messages experience. Counters
    // are keyed by the pair's hash, so a fault window over a
    // million-client population costs one integer per *active* pair,
    // not a string-pair map over the cross product.
    const std::uint64_t pair_key = pair_hash(from, to);
    const std::uint64_t seq = pair_seq_[pair_key]++;
    common::Rng fault_rng = common::stream_rng(fault_seed_ ^ pair_key, seq);
    if (fault_.extra_loss > 0.0 && fault_rng.bernoulli(fault_.extra_loss)) {
      ++dropped_;
      ++fault_dropped_;
      return false;
    }
    *delay += fault_.extra_latency;
    if (fault_.extra_jitter > common::Duration::zero()) {
      *delay += common::Duration(
          static_cast<common::Duration::rep>(fault_rng.uniform_u64(
              0, static_cast<std::uint64_t>(fault_.extra_jitter.count()))));
    }
  }

  ++sent_;
  bytes_ += payload.size();

  // The handler reference stays valid: hosts_/groups_ are never mutated
  // after simulation start (registration during a run would be a design
  // error we accept as UB-free but unordered delivery; groups_ is a
  // deque precisely so in-flight pointers survive it).
  if (dest != hosts_.end()) {
    MessageHandler& handler = dest->second;
    loop_->schedule_in(*delay,
                       [&handler, from, payload = std::move(payload)]() {
                         handler(from, payload);
                       });
  } else {
    const GroupMessageHandler& handler = dest_group->handler;
    loop_->schedule_in(
        *delay, [&handler, member = to, from,
                 payload = std::move(payload)]() {
          handler(member, from, payload);
        });
  }
  return true;
}

std::size_t Network::memory_bytes() const {
  std::size_t total = sizeof(Network);
  for (const auto& [name, handler] : hosts_) {
    total += sizeof(void*) * 4 + name.capacity() + sizeof(MessageHandler);
    (void)handler;
  }
  total += groups_.size() * sizeof(HostGroup);
  for (const auto& [pair, link] : links_) {
    total += sizeof(void*) * 4 + pair.first.capacity() +
             pair.second.capacity() + sizeof(LinkModel);
    (void)link;
  }
  total += link_classes_.capacity() * sizeof(LinkModel);
  total += pair_seq_.bucket_count() * sizeof(void*) +
           pair_seq_.size() * (2 * sizeof(std::uint64_t) + 2 * sizeof(void*));
  return total;
}

}  // namespace powai::netsim
