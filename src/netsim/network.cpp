#include "netsim/network.hpp"

#include <cassert>
#include <stdexcept>

namespace powai::netsim {

namespace {
/// Stable 64-bit hash of a directed (from, to) pair for keying the fault
/// draw streams (FNV-1a; platform-independent on purpose).
std::uint64_t pair_hash(const std::string& from, const std::string& to) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // separator so ("ab","c") != ("a","bc")
    h *= 0x100000001b3ULL;
  };
  mix(from);
  mix(to);
  return h;
}
}  // namespace

Network::Network(EventLoop& loop, common::Rng& rng)
    : loop_(&loop), rng_(&rng) {
  // References cannot be null in well-formed code, but a dangling or
  // reinterpret-cast binding can produce exactly this; fail fast.
  assert(loop_ != nullptr && rng_ != nullptr);
}

void Network::add_host(const std::string& name, MessageHandler handler) {
  if (!handler) throw std::invalid_argument("Network::add_host: empty handler");
  const auto [it, inserted] = hosts_.emplace(name, std::move(handler));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("Network::add_host: duplicate host '" + name +
                                "'");
  }
}

bool Network::has_host(const std::string& name) const {
  return hosts_.contains(name);
}

void Network::set_link(const std::string& from, const std::string& to,
                       LinkModel link) {
  link.validate();
  links_[{from, to}] = link;
}

void Network::set_default_link(LinkModel link) {
  link.validate();
  default_link_ = link;
}

bool Network::send(const std::string& from, const std::string& to,
                   common::Bytes payload) {
  if (!hosts_.contains(from)) {
    throw std::invalid_argument("Network::send: unknown source '" + from + "'");
  }
  const auto dest = hosts_.find(to);
  if (dest == hosts_.end()) {
    throw std::invalid_argument("Network::send: unknown destination '" + to +
                                "'");
  }

  const auto link_it = links_.find({from, to});
  const LinkModel& link =
      link_it != links_.end() ? link_it->second : default_link_;

  // Base link draws always happen (even when the fault overlay will drop
  // the message) so the shared Rng's draw sequence is identical with and
  // without an active fault window — removing a fault event from a plan
  // must not perturb unrelated deliveries.
  auto delay = link.delay_for(payload.size(), *rng_);
  if (!delay) {
    ++dropped_;
    return false;
  }

  if (fault_.active()) {
    // Per-pair, per-message derived stream: a pure function of
    // (fault seed, directed pair, pair message index). Cross-pair
    // interleaving — e.g. racy completion order across drain shards —
    // cannot permute what any one pair's messages experience.
    const std::uint64_t seq = pair_seq_[{from, to}]++;
    common::Rng fault_rng =
        common::stream_rng(fault_seed_ ^ pair_hash(from, to), seq);
    if (fault_.extra_loss > 0.0 && fault_rng.bernoulli(fault_.extra_loss)) {
      ++dropped_;
      ++fault_dropped_;
      return false;
    }
    *delay += fault_.extra_latency;
    if (fault_.extra_jitter > common::Duration::zero()) {
      *delay += common::Duration(
          static_cast<common::Duration::rep>(fault_rng.uniform_u64(
              0, static_cast<std::uint64_t>(fault_.extra_jitter.count()))));
    }
  }

  ++sent_;
  bytes_ += payload.size();

  // The handler reference stays valid: hosts_ is never mutated after
  // simulation start (add_host during run would be a design error we
  // accept as UB-free but unordered delivery).
  MessageHandler& handler = dest->second;
  loop_->schedule_in(*delay,
                     [&handler, from, payload = std::move(payload)]() {
                       handler(from, payload);
                     });
  return true;
}

}  // namespace powai::netsim
