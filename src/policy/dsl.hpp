#pragma once
/// \file dsl.hpp
/// The policy rule language. The paper positions the policy module as the
/// administrator's knob ("a network administrator may specify a policy
/// based on her specific security needs"); this DSL lets that policy be
/// expressed as text instead of code:
///
/// ```text
/// # calm-period policy
/// when score < 3:        difficulty = 2
/// when score in [3, 7):  difficulty = ceil(score) + 2
/// when score >= 7:       difficulty = ceil(pow(1.4, score))
/// default:               difficulty = 15
/// ```
///
/// Semantics: rules are evaluated top to bottom and the first matching
/// condition wins; the mandatory `default` rule catches everything else.
/// Difficulty expressions may reference `score` and use + - * /, unary
/// minus, parentheses, and the functions ceil, floor, round, sqrt, log2,
/// min, max, pow. Results are clamped to the supported difficulty band.
///
/// Parse errors throw DslError with line/column and a description.

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "policy/policy.hpp"

namespace powai::policy {

/// Error thrown on malformed policy text (never on evaluation: a parsed
/// program always evaluates).
class DslError final : public std::runtime_error {
 public:
  DslError(std::size_t line, std::size_t column, const std::string& message);

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

namespace dsl {

/// Arithmetic expression node (immutable after parse).
class Expr {
 public:
  virtual ~Expr() = default;
  /// Evaluates with `score` bound to \p score.
  [[nodiscard]] virtual double eval(double score) const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// A rule's guard: either a comparison (`score < 3`) or an interval test
/// (`score in [3, 7)`); the default rule has no condition.
class Condition {
 public:
  virtual ~Condition() = default;
  [[nodiscard]] virtual bool matches(double score) const = 0;
};

using ConditionPtr = std::unique_ptr<Condition>;

/// One `when`/`default` rule.
struct Rule final {
  ConditionPtr condition;  ///< null for the default rule
  ExprPtr difficulty;
};

/// A parsed program: ordered rules, last one the default.
struct Program final {
  std::vector<Rule> rules;

  /// First-match evaluation; always succeeds because the default rule is
  /// mandatory at parse time.
  [[nodiscard]] double eval(double score) const;
};

/// Parses policy text (throws DslError on malformed input).
[[nodiscard]] Program parse(std::string_view text);

}  // namespace dsl

/// IPolicy adapter over a parsed DSL program.
class DslPolicy final : public IPolicy {
 public:
  /// Parses \p source; throws DslError on malformed input.
  explicit DslPolicy(std::string_view source);

  [[nodiscard]] std::string_view name() const override { return "dsl"; }

  [[nodiscard]] Difficulty difficulty(double score,
                                      common::Rng& rng) const override;

  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const std::string& source() const { return source_; }

 private:
  std::string source_;
  dsl::Program program_;
};

}  // namespace powai::policy
