#pragma once
/// \file error_range_policy.hpp
/// Policy 3 of the paper (§III.B): error-range mapping. The AI model's
/// score carries an error ε, so the true reputation may be higher or
/// lower than reported. For a score sᵢ the policy computes dᵢ = ⌈sᵢ + 1⌉
/// and issues a difficulty drawn uniformly at random from the integer
/// interval [⌈dᵢ − ε⌉, ⌈dᵢ + ε⌉], spreading the assigned work across the
/// model's confidence interval.

#include "policy/policy.hpp"

namespace powai::policy {

class ErrorRangePolicy final : public IPolicy {
 public:
  /// \p epsilon >= 0 — the AI model's score error (DAbR's ε). Values are
  /// typically obtained from IReputationModel::error_epsilon().
  explicit ErrorRangePolicy(double epsilon);

  [[nodiscard]] std::string_view name() const override { return "error_range"; }

  [[nodiscard]] Difficulty difficulty(double score,
                                      common::Rng& rng) const override;

  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double epsilon() const { return epsilon_; }

  /// The inclusive integer interval the draw comes from (for tests and
  /// diagnostics): [⌈d − ε⌉, ⌈d + ε⌉] with d = ⌈score + 1⌉, both ends
  /// clamped to the supported band.
  [[nodiscard]] std::pair<Difficulty, Difficulty> interval(double score) const;

 private:
  double epsilon_;
};

}  // namespace powai::policy
