#include "policy/linear_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powai::policy {

LinearPolicy::LinearPolicy(Difficulty offset, double slope)
    : offset_(offset), slope_(slope) {
  if (slope <= 0.0) {
    throw std::invalid_argument("LinearPolicy: slope must be positive");
  }
}

Difficulty LinearPolicy::difficulty(double score, common::Rng& /*rng*/) const {
  const double s = std::clamp(score, 0.0, 10.0);
  return clamp_difficulty(std::ceil(slope_ * s) + static_cast<double>(offset_));
}

std::string LinearPolicy::describe() const {
  std::string out = "linear: d = ceil(";
  if (slope_ != 1.0) out += std::to_string(slope_) + " * ";
  out += "R) + " + std::to_string(offset_);
  return out;
}

}  // namespace powai::policy
