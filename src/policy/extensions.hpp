#pragma once
/// \file extensions.hpp
/// Extension policies beyond the three the paper evaluates. The paper
/// frames the policy module as the administrator's customization point
/// ("a network administrator may specify a policy based on her specific
/// security needs"); these are the obvious points in that design space
/// and feed the policy-ablation bench.

#include <utility>
#include <vector>

#include "policy/policy.hpp"

namespace powai::policy {

/// Piecewise-constant tiers: difficulty jumps at score thresholds.
/// Example: {{3, 2}, {7, 8}, {10, 15}} means R<=3 → 2, R<=7 → 8,
/// R<=10 → 15.
class StepPolicy final : public IPolicy {
 public:
  /// Tier list as (upper score bound, difficulty) pairs; bounds must be
  /// strictly increasing and the last bound must cover the score range
  /// (>= 10). Throws std::invalid_argument otherwise.
  explicit StepPolicy(std::vector<std::pair<double, Difficulty>> tiers);

  [[nodiscard]] std::string_view name() const override { return "step"; }
  [[nodiscard]] Difficulty difficulty(double score,
                                      common::Rng& rng) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<std::pair<double, Difficulty>> tiers_;
};

/// Geometric growth: d = ⌈d₀ · gᴿ⌉. With g ≈ 1.3 the work assigned to
/// the worst clients grows much faster than any linear mapping while
/// trusted clients stay near d₀.
class ExponentialPolicy final : public IPolicy {
 public:
  /// \p base d₀ >= 1; \p growth g > 1.
  explicit ExponentialPolicy(double base = 1.0, double growth = 1.3);

  [[nodiscard]] std::string_view name() const override { return "exponential"; }
  [[nodiscard]] Difficulty difficulty(double score,
                                      common::Rng& rng) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double base_;
  double growth_;
};

/// Targets a latency budget instead of a difficulty: the operator says
/// "a score-0 client should wait about L₀ ms and a score-10 client about
/// L₁ ms", and the policy inverts the expected-work model
/// (latency ≈ hash_time · 2^d) to pick d. This is the paper's "amount of
/// work inflicted by a puzzle is adaptive and can be tuned" property
/// expressed in the operator's natural unit.
class TargetLatencyPolicy final : public IPolicy {
 public:
  /// \p latency_at_0_ms / \p latency_at_10_ms: target solve latencies at
  /// the score extremes (log-interpolated between); both > 0,
  /// latency_at_10_ms >= latency_at_0_ms. \p hash_time_us: estimated
  /// per-hash cost of a typical client, > 0.
  TargetLatencyPolicy(double latency_at_0_ms, double latency_at_10_ms,
                      double hash_time_us);

  [[nodiscard]] std::string_view name() const override {
    return "target_latency";
  }
  [[nodiscard]] Difficulty difficulty(double score,
                                      common::Rng& rng) const override;
  [[nodiscard]] std::string describe() const override;

  /// The latency target (ms) for a given score (exposed for tests).
  [[nodiscard]] double target_latency_ms(double score) const;

 private:
  double latency_at_0_ms_;
  double latency_at_10_ms_;
  double hash_time_us_;
};

/// Decorator adding a load-dependent difficulty surcharge to any inner
/// policy: d' = d + ⌈extra · load⌉ with load ∈ [0, 1] supplied by the
/// server (e.g. queue depth or CPU). Under attack the whole difficulty
/// curve shifts up; in calm periods it relaxes back.
class AdaptiveLoadPolicy final : public IPolicy {
 public:
  /// \p max_extra: surcharge at load = 1.
  AdaptiveLoadPolicy(PolicyPtr inner, Difficulty max_extra);

  [[nodiscard]] std::string_view name() const override { return "adaptive_load"; }
  [[nodiscard]] Difficulty difficulty(double score,
                                      common::Rng& rng) const override;
  [[nodiscard]] std::string describe() const override;

  /// Updates the observed load; values are clamped to [0, 1].
  void set_load(double load);
  [[nodiscard]] double load() const { return load_; }

 private:
  PolicyPtr inner_;
  Difficulty max_extra_;
  double load_ = 0.0;
};

/// Decorator clamping an inner policy's output into [lo, hi].
class ClampPolicy final : public IPolicy {
 public:
  ClampPolicy(PolicyPtr inner, Difficulty lo, Difficulty hi);

  [[nodiscard]] std::string_view name() const override { return "clamp"; }
  [[nodiscard]] Difficulty difficulty(double score,
                                      common::Rng& rng) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  PolicyPtr inner_;
  Difficulty lo_;
  Difficulty hi_;
};

}  // namespace powai::policy
