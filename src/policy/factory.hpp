#pragma once
/// \file factory.hpp
/// Constructs policies from flat configuration — the entry point used by
/// example programs and the bench harness so experiments can switch
/// policies without recompiling.
///
/// Recognized `policy=` values and their keys:
///   linear          offset= (default 1), slope= (default 1.0)
///   policy1         (alias: linear offset=1)
///   policy2         (alias: linear offset=5)
///   error_range     epsilon= (default 1.5)   [the paper's Policy 3]
///   step            tiers= "3:2,7:8,10:15" (bound:difficulty pairs)
///   exponential     base= (default 1.0), growth= (default 1.3)
///   target_latency  l0_ms= (default 30), l1_ms= (default 900),
///                   hash_us= (default 0.5)
///   dsl             dsl_file is not supported offline; pass the program
///                   text via the `dsl=` key with ';' as line separator.

#include "common/config.hpp"
#include "policy/policy.hpp"

namespace powai::policy {

/// Builds a policy from configuration. Throws std::invalid_argument on an
/// unknown `policy=` value or malformed parameters.
[[nodiscard]] PolicyPtr make_policy(const common::Config& config);

}  // namespace powai::policy
