#include "policy/factory.hpp"

#include <stdexcept>
#include <string>

#include "common/strings.hpp"
#include "policy/dsl.hpp"
#include "policy/error_range_policy.hpp"
#include "policy/extensions.hpp"
#include "policy/linear_policy.hpp"

namespace powai::policy {

namespace {

std::vector<std::pair<double, Difficulty>> parse_tiers(std::string_view text) {
  std::vector<std::pair<double, Difficulty>> tiers;
  for (const auto part : common::split(text, ',')) {
    const auto cells = common::split(part, ':');
    if (cells.size() != 2) {
      throw std::invalid_argument("step policy: tier must be bound:difficulty");
    }
    const auto bound = common::parse_f64(cells[0]);
    const auto diff = common::parse_u64(cells[1]);
    if (!bound || !diff) {
      throw std::invalid_argument("step policy: malformed tier '" +
                                  std::string(part) + "'");
    }
    tiers.emplace_back(*bound, static_cast<Difficulty>(*diff));
  }
  return tiers;
}

}  // namespace

PolicyPtr make_policy(const common::Config& config) {
  const std::string kind = config.get_string("policy", "policy1");

  if (kind == "policy1") {
    return std::make_unique<LinearPolicy>(1);
  }
  if (kind == "policy2") {
    return std::make_unique<LinearPolicy>(5);
  }
  if (kind == "linear") {
    return std::make_unique<LinearPolicy>(
        static_cast<Difficulty>(config.get_u64("offset", 1)),
        config.get_f64("slope", 1.0));
  }
  if (kind == "error_range" || kind == "policy3") {
    return std::make_unique<ErrorRangePolicy>(config.get_f64("epsilon", 1.5));
  }
  if (kind == "step") {
    return std::make_unique<StepPolicy>(
        parse_tiers(config.get_string("tiers", "3:2,7:8,10:15")));
  }
  if (kind == "exponential") {
    return std::make_unique<ExponentialPolicy>(config.get_f64("base", 1.0),
                                               config.get_f64("growth", 1.3));
  }
  if (kind == "target_latency") {
    return std::make_unique<TargetLatencyPolicy>(
        config.get_f64("l0_ms", 30.0), config.get_f64("l1_ms", 900.0),
        config.get_f64("hash_us", 0.5));
  }
  if (kind == "dsl") {
    std::string program = config.require_string("dsl");
    // ';' doubles as a line separator so programs fit in one key=value.
    for (char& c : program) {
      if (c == ';') c = '\n';
    }
    return std::make_unique<DslPolicy>(program);
  }
  throw std::invalid_argument("make_policy: unknown policy '" + kind + "'");
}

}  // namespace powai::policy
