#pragma once
/// \file linear_policy.hpp
/// Policies 1 and 2 of the paper (§III.A): linear mappings from
/// reputation score to difficulty, d = ⌈slope · R⌉ + offset.
///
///   Policy 1: offset 1, slope 1 — R = 0 → d = 1 ... R = 10 → d = 11.
///   Policy 2: offset 5, slope 1 — R = 0 → d = 5 ... R = 10 → d = 15.
///
/// Policy 2 exists because Policy 1's latency "does not grow
/// significantly" — shifting the whole curve up makes the exponential
/// per-difficulty cost bite for high scores.

#include "policy/policy.hpp"

namespace powai::policy {

class LinearPolicy final : public IPolicy {
 public:
  /// \p offset added after the slope term; \p slope must be > 0.
  explicit LinearPolicy(Difficulty offset = 1, double slope = 1.0);

  /// The paper's Policy 1 (d = R + 1).
  [[nodiscard]] static LinearPolicy policy1() { return LinearPolicy(1); }

  /// The paper's Policy 2 (d = R + 5).
  [[nodiscard]] static LinearPolicy policy2() { return LinearPolicy(5); }

  [[nodiscard]] std::string_view name() const override { return "linear"; }

  [[nodiscard]] Difficulty difficulty(double score,
                                      common::Rng& rng) const override;

  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] Difficulty offset() const { return offset_; }
  [[nodiscard]] double slope() const { return slope_; }

 private:
  Difficulty offset_;
  double slope_;
};

}  // namespace powai::policy
