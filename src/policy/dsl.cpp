#include "policy/dsl.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>
#include <optional>
#include <utility>

namespace powai::policy {

DslError::DslError(std::size_t line, std::size_t column,
                   const std::string& message)
    : std::runtime_error("policy dsl: line " + std::to_string(line) +
                         ", column " + std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

namespace dsl {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokenKind {
  kKeywordWhen,
  kKeywordDefault,
  kKeywordScore,
  kKeywordDifficulty,
  kKeywordIn,
  kIdentifier,  // function names
  kNumber,
  kColon,
  kComma,
  kAssign,      // =
  kLess,        // <
  kLessEq,      // <=
  kGreater,     // >
  kGreaterEq,   // >=
  kEqualEqual,  // ==
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kEnd,
};

struct Token final {
  TokenKind kind;
  std::string text;
  double number = 0.0;
  std::size_t line = 1;
  std::size_t column = 1;
};

class Lexer final {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_whitespace_and_comments();
      if (pos_ >= text_.size()) break;
      tokens.push_back(next_token());
    }
    tokens.push_back(make(TokenKind::kEnd, ""));
    return tokens;
  }

 private:
  void skip_whitespace_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance();
      } else {
        break;
      }
    }
  }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  Token make(TokenKind kind, std::string text) const {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line_;
    t.column = column_;
    return t;
  }

  Token next_token() {
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      return lex_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      return lex_word();
    }
    Token t = make(TokenKind::kEnd, std::string(1, c));
    switch (c) {
      case ':': t.kind = TokenKind::kColon; break;
      case ',': t.kind = TokenKind::kComma; break;
      case '+': t.kind = TokenKind::kPlus; break;
      case '-': t.kind = TokenKind::kMinus; break;
      case '*': t.kind = TokenKind::kStar; break;
      case '/': t.kind = TokenKind::kSlash; break;
      case '(': t.kind = TokenKind::kLParen; break;
      case ')': t.kind = TokenKind::kRParen; break;
      case '[': t.kind = TokenKind::kLBracket; break;
      case ']': t.kind = TokenKind::kRBracket; break;
      case '=':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          advance();
          t.kind = TokenKind::kEqualEqual;
          t.text = "==";
        } else {
          t.kind = TokenKind::kAssign;
        }
        break;
      case '<':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          advance();
          t.kind = TokenKind::kLessEq;
          t.text = "<=";
        } else {
          t.kind = TokenKind::kLess;
        }
        break;
      case '>':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          advance();
          t.kind = TokenKind::kGreaterEq;
          t.text = ">=";
        } else {
          t.kind = TokenKind::kGreater;
        }
        break;
      default:
        throw DslError(line_, column_, "unexpected character '" +
                                           std::string(1, c) + "'");
    }
    advance();
    return t;
  }

  Token lex_number() {
    const std::size_t start = pos_;
    Token t = make(TokenKind::kNumber, "");
    bool seen_dot = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '.') {
        if (seen_dot) break;
        seen_dot = true;
        advance();
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        advance();
      } else {
        break;
      }
    }
    t.text = std::string(text_.substr(start, pos_ - start));
    if (t.text == ".") {
      throw DslError(t.line, t.column, "malformed number");
    }
    t.number = std::stod(t.text);
    return t;
  }

  Token lex_word() {
    const std::size_t start = pos_;
    Token t = make(TokenKind::kIdentifier, "");
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_')) {
      advance();
    }
    t.text = std::string(text_.substr(start, pos_ - start));
    if (t.text == "when") t.kind = TokenKind::kKeywordWhen;
    else if (t.text == "default") t.kind = TokenKind::kKeywordDefault;
    else if (t.text == "score") t.kind = TokenKind::kKeywordScore;
    else if (t.text == "difficulty") t.kind = TokenKind::kKeywordDifficulty;
    else if (t.text == "in") t.kind = TokenKind::kKeywordIn;
    return t;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

// ---------------------------------------------------------------------------
// AST nodes
// ---------------------------------------------------------------------------

class NumberExpr final : public Expr {
 public:
  explicit NumberExpr(double value) : value_(value) {}
  [[nodiscard]] double eval(double) const override { return value_; }

 private:
  double value_;
};

class ScoreExpr final : public Expr {
 public:
  [[nodiscard]] double eval(double score) const override { return score; }
};

class UnaryMinusExpr final : public Expr {
 public:
  explicit UnaryMinusExpr(ExprPtr inner) : inner_(std::move(inner)) {}
  [[nodiscard]] double eval(double score) const override {
    return -inner_->eval(score);
  }

 private:
  ExprPtr inner_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(char op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  [[nodiscard]] double eval(double score) const override {
    const double a = lhs_->eval(score);
    const double b = rhs_->eval(score);
    switch (op_) {
      case '+': return a + b;
      case '-': return a - b;
      case '*': return a * b;
      default:
        // Division by zero yields inf, which clamp_difficulty later maps
        // to the max difficulty — a safe, predictable failure mode.
        return a / b;
    }
  }

 private:
  char op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string fn, std::vector<ExprPtr> args)
      : fn_(std::move(fn)), args_(std::move(args)) {}
  [[nodiscard]] double eval(double score) const override {
    auto arg = [&](std::size_t i) { return args_[i]->eval(score); };
    if (fn_ == "ceil") return std::ceil(arg(0));
    if (fn_ == "floor") return std::floor(arg(0));
    if (fn_ == "round") return std::round(arg(0));
    if (fn_ == "sqrt") return std::sqrt(std::max(arg(0), 0.0));
    if (fn_ == "log2") return std::log2(std::max(arg(0), 1e-300));
    if (fn_ == "min") return std::min(arg(0), arg(1));
    if (fn_ == "max") return std::max(arg(0), arg(1));
    return std::pow(arg(0), arg(1));  // "pow" — the only remaining name
  }

 private:
  std::string fn_;
  std::vector<ExprPtr> args_;
};

class CompareCondition final : public Condition {
 public:
  CompareCondition(TokenKind op, double bound) : op_(op), bound_(bound) {}
  [[nodiscard]] bool matches(double score) const override {
    switch (op_) {
      case TokenKind::kLess: return score < bound_;
      case TokenKind::kLessEq: return score <= bound_;
      case TokenKind::kGreater: return score > bound_;
      case TokenKind::kGreaterEq: return score >= bound_;
      default: return score == bound_;  // kEqualEqual
    }
  }

 private:
  TokenKind op_;
  double bound_;
};

class IntervalCondition final : public Condition {
 public:
  IntervalCondition(double lo, bool lo_closed, double hi, bool hi_closed)
      : lo_(lo), lo_closed_(lo_closed), hi_(hi), hi_closed_(hi_closed) {}
  [[nodiscard]] bool matches(double score) const override {
    const bool above = lo_closed_ ? score >= lo_ : score > lo_;
    const bool below = hi_closed_ ? score <= hi_ : score < hi_;
    return above && below;
  }

 private:
  double lo_;
  bool lo_closed_;
  double hi_;
  bool hi_closed_;
};

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

/// Arity of the supported builtin functions.
std::optional<std::size_t> function_arity(std::string_view name) {
  if (name == "ceil" || name == "floor" || name == "round" ||
      name == "sqrt" || name == "log2") {
    return 1;
  }
  if (name == "min" || name == "max" || name == "pow") return 2;
  return std::nullopt;
}

class Parser final {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program run() {
    Program program;
    bool saw_default = false;
    while (peek().kind != TokenKind::kEnd) {
      if (saw_default) {
        throw error(peek(), "no rules allowed after the default rule");
      }
      if (peek().kind == TokenKind::kKeywordWhen) {
        program.rules.push_back(parse_when_rule());
      } else if (peek().kind == TokenKind::kKeywordDefault) {
        program.rules.push_back(parse_default_rule());
        saw_default = true;
      } else {
        throw error(peek(), "expected 'when' or 'default'");
      }
    }
    if (!saw_default) {
      throw error(peek(), "policy must end with a 'default' rule");
    }
    return program;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }

  Token eat(TokenKind kind, std::string_view what) {
    if (peek().kind != kind) {
      throw error(peek(), "expected " + std::string(what) + ", got '" +
                              peek().text + "'");
    }
    return tokens_[pos_++];
  }

  bool eat_if(TokenKind kind) {
    if (peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  static DslError error(const Token& at, const std::string& message) {
    return DslError(at.line, at.column, message);
  }

  Rule parse_when_rule() {
    eat(TokenKind::kKeywordWhen, "'when'");
    Rule rule;
    rule.condition = parse_condition();
    eat(TokenKind::kColon, "':'");
    rule.difficulty = parse_difficulty_assignment();
    return rule;
  }

  Rule parse_default_rule() {
    eat(TokenKind::kKeywordDefault, "'default'");
    eat(TokenKind::kColon, "':'");
    Rule rule;
    rule.difficulty = parse_difficulty_assignment();
    return rule;
  }

  ExprPtr parse_difficulty_assignment() {
    eat(TokenKind::kKeywordDifficulty, "'difficulty'");
    eat(TokenKind::kAssign, "'='");
    return parse_expr();
  }

  ConditionPtr parse_condition() {
    eat(TokenKind::kKeywordScore, "'score'");
    const Token op = tokens_[pos_++];
    switch (op.kind) {
      case TokenKind::kLess:
      case TokenKind::kLessEq:
      case TokenKind::kGreater:
      case TokenKind::kGreaterEq:
      case TokenKind::kEqualEqual: {
        const Token bound = eat(TokenKind::kNumber, "a number");
        return std::make_unique<CompareCondition>(op.kind, bound.number);
      }
      case TokenKind::kKeywordIn:
        return parse_interval();
      default:
        throw error(op, "expected a comparison operator or 'in'");
    }
  }

  ConditionPtr parse_interval() {
    bool lo_closed = false;
    if (eat_if(TokenKind::kLBracket)) {
      lo_closed = true;
    } else {
      eat(TokenKind::kLParen, "'[' or '('");
    }
    const Token lo = eat(TokenKind::kNumber, "a number");
    eat(TokenKind::kComma, "','");
    const Token hi = eat(TokenKind::kNumber, "a number");
    bool hi_closed = false;
    if (eat_if(TokenKind::kRBracket)) {
      hi_closed = true;
    } else {
      eat(TokenKind::kRParen, "']' or ')'");
    }
    if (!(lo.number <= hi.number)) {
      throw error(hi, "interval bounds out of order");
    }
    return std::make_unique<IntervalCondition>(lo.number, lo_closed, hi.number,
                                               hi_closed);
  }

  ExprPtr parse_expr() {
    ExprPtr lhs = parse_term();
    while (peek().kind == TokenKind::kPlus ||
           peek().kind == TokenKind::kMinus) {
      const char op = peek().kind == TokenKind::kPlus ? '+' : '-';
      ++pos_;
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parse_term());
    }
    return lhs;
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    while (peek().kind == TokenKind::kStar ||
           peek().kind == TokenKind::kSlash) {
      const char op = peek().kind == TokenKind::kStar ? '*' : '/';
      ++pos_;
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parse_factor());
    }
    return lhs;
  }

  ExprPtr parse_factor() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kNumber:
        ++pos_;
        return std::make_unique<NumberExpr>(t.number);
      case TokenKind::kKeywordScore:
        ++pos_;
        return std::make_unique<ScoreExpr>();
      case TokenKind::kMinus:
        ++pos_;
        return std::make_unique<UnaryMinusExpr>(parse_factor());
      case TokenKind::kLParen: {
        ++pos_;
        ExprPtr inner = parse_expr();
        eat(TokenKind::kRParen, "')'");
        return inner;
      }
      case TokenKind::kIdentifier:
        return parse_call();
      default:
        throw error(t, "expected a number, 'score', '(', '-', or a function");
    }
  }

  ExprPtr parse_call() {
    const Token fn = eat(TokenKind::kIdentifier, "a function name");
    const auto arity = function_arity(fn.text);
    if (!arity) {
      throw error(fn, "unknown function '" + fn.text + "'");
    }
    eat(TokenKind::kLParen, "'('");
    std::vector<ExprPtr> args;
    args.push_back(parse_expr());
    while (eat_if(TokenKind::kComma)) args.push_back(parse_expr());
    eat(TokenKind::kRParen, "')'");
    if (args.size() != *arity) {
      throw error(fn, "function '" + fn.text + "' expects " +
                          std::to_string(*arity) + " argument(s), got " +
                          std::to_string(args.size()));
    }
    return std::make_unique<CallExpr>(fn.text, std::move(args));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

double Program::eval(double score) const {
  for (const auto& rule : rules) {
    if (!rule.condition || rule.condition->matches(score)) {
      return rule.difficulty->eval(score);
    }
  }
  // Unreachable: the parser guarantees a trailing default rule.
  return static_cast<double>(kMinSupportedDifficulty);
}

Program parse(std::string_view text) {
  Lexer lexer(text);
  Parser parser(lexer.run());
  return parser.run();
}

}  // namespace dsl

DslPolicy::DslPolicy(std::string_view source)
    : source_(source), program_(dsl::parse(source)) {}

Difficulty DslPolicy::difficulty(double score, common::Rng& /*rng*/) const {
  const double s = std::clamp(score, 0.0, 10.0);
  return clamp_difficulty(program_.eval(s));
}

std::string DslPolicy::describe() const {
  return "dsl policy (" + std::to_string(program_.rules.size()) + " rules)";
}

}  // namespace powai::policy
