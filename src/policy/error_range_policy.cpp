#include "policy/error_range_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/table.hpp"

namespace powai::policy {

ErrorRangePolicy::ErrorRangePolicy(double epsilon) : epsilon_(epsilon) {
  if (!(epsilon >= 0.0) || !std::isfinite(epsilon)) {
    throw std::invalid_argument("ErrorRangePolicy: epsilon must be >= 0");
  }
}

std::pair<Difficulty, Difficulty> ErrorRangePolicy::interval(
    double score) const {
  const double s = std::clamp(score, 0.0, 10.0);
  const double d = std::ceil(s + 1.0);  // dᵢ = ⌈sᵢ + 1⌉ per the paper
  const Difficulty lo = clamp_difficulty(std::ceil(d - epsilon_));
  const Difficulty hi = clamp_difficulty(std::ceil(d + epsilon_));
  return {lo, hi};
}

Difficulty ErrorRangePolicy::difficulty(double score, common::Rng& rng) const {
  const auto [lo, hi] = interval(score);
  return static_cast<Difficulty>(rng.uniform_u64(lo, hi));
}

std::string ErrorRangePolicy::describe() const {
  return "error_range: d ~ U[ceil(ceil(R+1) - eps), ceil(ceil(R+1) + eps)], eps=" +
         common::fmt_f(epsilon_, 2);
}

}  // namespace powai::policy
