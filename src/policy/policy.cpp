#include "policy/policy.hpp"

#include <algorithm>
#include <cmath>

namespace powai::policy {

Difficulty clamp_difficulty(double d) {
  if (std::isnan(d)) return kMinSupportedDifficulty;
  const double clamped =
      std::clamp(d, static_cast<double>(kMinSupportedDifficulty),
                 static_cast<double>(kMaxSupportedDifficulty));
  return static_cast<Difficulty>(std::lround(clamped));
}

}  // namespace powai::policy
