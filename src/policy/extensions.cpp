#include "policy/extensions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/table.hpp"

namespace powai::policy {

// ---------------------------------------------------------------------------
// StepPolicy
// ---------------------------------------------------------------------------

StepPolicy::StepPolicy(std::vector<std::pair<double, Difficulty>> tiers)
    : tiers_(std::move(tiers)) {
  if (tiers_.empty()) throw std::invalid_argument("StepPolicy: no tiers");
  for (std::size_t i = 1; i < tiers_.size(); ++i) {
    if (!(tiers_[i - 1].first < tiers_[i].first)) {
      throw std::invalid_argument("StepPolicy: bounds must strictly increase");
    }
  }
  if (tiers_.back().first < 10.0) {
    throw std::invalid_argument("StepPolicy: last tier must cover score 10");
  }
}

Difficulty StepPolicy::difficulty(double score, common::Rng& /*rng*/) const {
  const double s = std::clamp(score, 0.0, 10.0);
  for (const auto& [bound, d] : tiers_) {
    if (s <= bound) return clamp_difficulty(d);
  }
  return clamp_difficulty(tiers_.back().second);  // unreachable by invariant
}

std::string StepPolicy::describe() const {
  std::string out = "step:";
  for (const auto& [bound, d] : tiers_) {
    out += " R<=" + common::fmt_f(bound, 1) + "->" + std::to_string(d);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ExponentialPolicy
// ---------------------------------------------------------------------------

ExponentialPolicy::ExponentialPolicy(double base, double growth)
    : base_(base), growth_(growth) {
  if (base < 1.0) throw std::invalid_argument("ExponentialPolicy: base < 1");
  if (growth <= 1.0) {
    throw std::invalid_argument("ExponentialPolicy: growth must exceed 1");
  }
}

Difficulty ExponentialPolicy::difficulty(double score,
                                         common::Rng& /*rng*/) const {
  const double s = std::clamp(score, 0.0, 10.0);
  return clamp_difficulty(std::ceil(base_ * std::pow(growth_, s)));
}

std::string ExponentialPolicy::describe() const {
  return "exponential: d = ceil(" + common::fmt_f(base_, 2) + " * " +
         common::fmt_f(growth_, 2) + "^R)";
}

// ---------------------------------------------------------------------------
// TargetLatencyPolicy
// ---------------------------------------------------------------------------

TargetLatencyPolicy::TargetLatencyPolicy(double latency_at_0_ms,
                                         double latency_at_10_ms,
                                         double hash_time_us)
    : latency_at_0_ms_(latency_at_0_ms),
      latency_at_10_ms_(latency_at_10_ms),
      hash_time_us_(hash_time_us) {
  if (!(latency_at_0_ms > 0.0) || !(latency_at_10_ms >= latency_at_0_ms)) {
    throw std::invalid_argument(
        "TargetLatencyPolicy: need 0 < latency_at_0 <= latency_at_10");
  }
  if (!(hash_time_us > 0.0)) {
    throw std::invalid_argument("TargetLatencyPolicy: hash_time_us <= 0");
  }
}

double TargetLatencyPolicy::target_latency_ms(double score) const {
  const double s = std::clamp(score, 0.0, 10.0) / 10.0;
  // Log-space interpolation: each score step multiplies the target by a
  // constant factor, matching the exponential cost of difficulty steps.
  return latency_at_0_ms_ *
         std::pow(latency_at_10_ms_ / latency_at_0_ms_, s);
}

Difficulty TargetLatencyPolicy::difficulty(double score,
                                           common::Rng& /*rng*/) const {
  const double target_us = target_latency_ms(score) * 1000.0;
  // Expected hashes for difficulty d is 2^d, so pick d = log2(target /
  // hash_time).
  const double d = std::log2(std::max(target_us / hash_time_us_, 1.0));
  return clamp_difficulty(std::round(d));
}

std::string TargetLatencyPolicy::describe() const {
  return "target_latency: " + common::fmt_f(latency_at_0_ms_, 0) + "ms..." +
         common::fmt_f(latency_at_10_ms_, 0) + "ms at " +
         common::fmt_f(hash_time_us_, 2) + "us/hash";
}

// ---------------------------------------------------------------------------
// AdaptiveLoadPolicy
// ---------------------------------------------------------------------------

AdaptiveLoadPolicy::AdaptiveLoadPolicy(PolicyPtr inner, Difficulty max_extra)
    : inner_(std::move(inner)), max_extra_(max_extra) {
  if (!inner_) throw std::invalid_argument("AdaptiveLoadPolicy: null inner");
}

void AdaptiveLoadPolicy::set_load(double load) {
  load_ = std::clamp(load, 0.0, 1.0);
}

Difficulty AdaptiveLoadPolicy::difficulty(double score,
                                          common::Rng& rng) const {
  const Difficulty base = inner_->difficulty(score, rng);
  const double extra = std::ceil(static_cast<double>(max_extra_) * load_);
  return clamp_difficulty(static_cast<double>(base) + extra);
}

std::string AdaptiveLoadPolicy::describe() const {
  return "adaptive_load(+" + std::to_string(max_extra_) +
         "@load=1) over [" + inner_->describe() + "]";
}

// ---------------------------------------------------------------------------
// ClampPolicy
// ---------------------------------------------------------------------------

ClampPolicy::ClampPolicy(PolicyPtr inner, Difficulty lo, Difficulty hi)
    : inner_(std::move(inner)), lo_(lo), hi_(hi) {
  if (!inner_) throw std::invalid_argument("ClampPolicy: null inner");
  if (lo > hi) throw std::invalid_argument("ClampPolicy: lo > hi");
}

Difficulty ClampPolicy::difficulty(double score, common::Rng& rng) const {
  return std::clamp(inner_->difficulty(score, rng), lo_, hi_);
}

std::string ClampPolicy::describe() const {
  return "clamp[" + std::to_string(lo_) + "," + std::to_string(hi_) +
         "] over [" + inner_->describe() + "]";
}

}  // namespace powai::policy
