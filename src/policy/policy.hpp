#pragma once
/// \file policy.hpp
/// The policy module (Fig. 1, step 3): a rule-based strategy mapping a
/// client's reputation score R ∈ [0, 10] to a puzzle difficulty d. The
/// paper evaluates three concrete policies (two linear mappings and an
/// error-range mapping); this interface also hosts the extension policies
/// and the rule-DSL policies.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/rng.hpp"

namespace powai::policy {

/// Puzzle difficulty: required leading zero bits of the solution hash.
using Difficulty = unsigned;

/// Hard ceiling any policy output is clamped to. 2^40 expected hashes is
/// already ~20 minutes at 1 GH/s; values beyond this are configuration
/// errors, not security.
inline constexpr Difficulty kMaxSupportedDifficulty = 40;

/// Lowest difficulty a policy may emit: every client pays *some* cost
/// (the paper's first property: "each client pays a cost for utilizing
/// the system").
inline constexpr Difficulty kMinSupportedDifficulty = 1;

/// Clamps a raw policy output into the supported band.
[[nodiscard]] Difficulty clamp_difficulty(double d);

/// Interface all policies implement.
///
/// `difficulty` takes the reputation score plus an Rng because some
/// policies are randomized (the paper's Policy 3 samples uniformly from
/// an ε-interval). Deterministic policies simply ignore the Rng.
/// Scores outside [0, 10] are clamped by callers of the models; policies
/// additionally tolerate (clamp) out-of-range inputs defensively.
class IPolicy {
 public:
  virtual ~IPolicy() = default;

  /// Short stable identifier ("linear", "error_range", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Maps a reputation score to puzzle difficulty.
  [[nodiscard]] virtual Difficulty difficulty(double score,
                                              common::Rng& rng) const = 0;

  /// One-line human description for operator tooling.
  [[nodiscard]] virtual std::string describe() const = 0;
};

using PolicyPtr = std::unique_ptr<IPolicy>;

}  // namespace powai::policy
