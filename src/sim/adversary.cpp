#include "sim/adversary.hpp"

#include <memory>

#include "features/synthetic.hpp"
#include "pow/solver.hpp"

namespace powai::sim {

namespace {

using framework::Challenge;
using framework::PowServer;
using framework::Request;
using framework::Response;
using framework::ServerConfig;
using framework::Submission;

/// Shared rig: a fresh server per strategy so replay caches and counters
/// do not leak between strategies.
struct Rig {
  common::ManualClock clock;
  std::unique_ptr<PowServer> server;
  pow::Solver solver;
  features::SyntheticTraceGenerator traffic;
  common::Rng rng;

  Rig(const reputation::IReputationModel& model, const policy::IPolicy& pol,
      std::uint64_t seed)
      : rng(seed) {
    ServerConfig cfg;
    cfg.master_secret = common::bytes_of("adversary-secret");
    server = std::make_unique<PowServer>(clock, model, pol, cfg);
  }

  Request request_from(const std::string& ip, bool malicious) {
    Request r;
    r.client_ip = ip;
    r.features = traffic.sample(malicious, rng);
    r.request_id = rng.uniform_u64(1, 1'000'000'000);
    return r;
  }

  /// Full honest round trip from \p ip; returns the response status and
  /// accumulates hash work.
  common::ErrorCode honest_round_trip(const std::string& ip, bool malicious,
                                      std::uint64_t& hashes,
                                      Submission* out = nullptr) {
    const Request req = request_from(ip, malicious);
    auto outcome = server->on_request(req);
    if (std::holds_alternative<Response>(outcome)) {
      return std::get<Response>(outcome).status;
    }
    const Challenge& challenge = std::get<Challenge>(outcome);
    const pow::SolveResult solved = solver.solve(challenge.puzzle);
    hashes += solved.attempts;
    Submission submission;
    submission.request_id = challenge.request_id;
    submission.puzzle = challenge.puzzle;
    submission.solution = solved.solution;
    if (out != nullptr) *out = submission;
    return server->on_submission(submission, ip).status;
  }
};

AdversaryReport run_replay(const reputation::IReputationModel& model,
                           const policy::IPolicy& pol,
                           const AdversaryConfig& config) {
  Rig rig(model, pol, config.seed);
  AdversaryReport report;
  report.strategy = "replay";
  Submission solved_once;
  // One honest solve...
  (void)rig.honest_round_trip(config.attacker_ip, true, report.hashes_spent,
                              &solved_once);
  // The first submission already redeemed the puzzle; replays must fail.
  for (std::uint64_t i = 0; i < config.attempts_per_strategy; ++i) {
    ++report.attempts;
    if (rig.server->on_submission(solved_once, config.attacker_ip).status ==
        common::ErrorCode::kOk) {
      ++report.served;
    }
  }
  report.note = "one solve, many submits -> replay cache";
  return report;
}

AdversaryReport run_forge(const reputation::IReputationModel& model,
                          const policy::IPolicy& pol,
                          const AdversaryConfig& config) {
  Rig rig(model, pol, config.seed);
  AdversaryReport report;
  report.strategy = "forge";
  for (std::uint64_t i = 0; i < config.attempts_per_strategy; ++i) {
    // Self-issued trivial puzzle with a fabricated MAC.
    pow::Puzzle forged;
    forged.puzzle_id = 1'000'000 + i;
    forged.seed = common::bytes_of("attacker-chosen-seed");
    forged.issued_at_ms = common::to_millis(rig.clock.now());
    forged.difficulty = 1;
    forged.client_binding = config.attacker_ip;
    const pow::SolveResult solved = rig.solver.solve(forged);
    report.hashes_spent += solved.attempts;
    Submission submission;
    submission.puzzle = forged;
    submission.solution = solved.solution;
    ++report.attempts;
    if (rig.server->on_submission(submission, config.attacker_ip).status ==
        common::ErrorCode::kOk) {
      ++report.served;
    }
  }
  report.note = "self-issued d=1 puzzles -> MAC check";
  return report;
}

AdversaryReport run_downgrade(const reputation::IReputationModel& model,
                              const policy::IPolicy& pol,
                              const AdversaryConfig& config) {
  Rig rig(model, pol, config.seed);
  AdversaryReport report;
  report.strategy = "downgrade";
  for (std::uint64_t i = 0; i < config.attempts_per_strategy; ++i) {
    const Request req = rig.request_from(config.attacker_ip, true);
    auto outcome = rig.server->on_request(req);
    if (!std::holds_alternative<Challenge>(outcome)) continue;
    Challenge challenge = std::get<Challenge>(std::move(outcome));
    challenge.puzzle.difficulty = 1;  // rewrite the assigned difficulty
    const pow::SolveResult solved = rig.solver.solve(challenge.puzzle);
    report.hashes_spent += solved.attempts;
    Submission submission;
    submission.request_id = challenge.request_id;
    submission.puzzle = challenge.puzzle;
    submission.solution = solved.solution;
    ++report.attempts;
    if (rig.server->on_submission(submission, config.attacker_ip).status ==
        common::ErrorCode::kOk) {
      ++report.served;
    }
  }
  report.note = "difficulty field rewritten to 1 -> MAC covers it";
  return report;
}

AdversaryReport run_steal(const reputation::IReputationModel& model,
                          const policy::IPolicy& pol,
                          const AdversaryConfig& config) {
  Rig rig(model, pol, config.seed);
  AdversaryReport report;
  report.strategy = "steal";
  for (std::uint64_t i = 0; i < config.attempts_per_strategy; ++i) {
    // The victim honestly solves its (cheap) puzzle but the attacker
    // intercepts the submission and presents it from its own address.
    const Request req = rig.request_from(config.victim_ip, false);
    auto outcome = rig.server->on_request(req);
    if (!std::holds_alternative<Challenge>(outcome)) continue;
    const Challenge& challenge = std::get<Challenge>(outcome);
    const pow::SolveResult solved = rig.solver.solve(challenge.puzzle);
    report.hashes_spent += solved.attempts;
    Submission submission;
    submission.request_id = challenge.request_id;
    submission.puzzle = challenge.puzzle;
    submission.solution = solved.solution;
    ++report.attempts;
    if (rig.server->on_submission(submission, config.attacker_ip).status ==
        common::ErrorCode::kOk) {
      ++report.served;
    }
  }
  report.note = "victim's solution from attacker IP -> client binding";
  return report;
}

AdversaryReport run_precompute(const reputation::IReputationModel& model,
                               const policy::IPolicy& pol,
                               const AdversaryConfig& config) {
  Rig rig(model, pol, config.seed);
  AdversaryReport report;
  report.strategy = "precompute";
  // Solve a batch of challenges now, bank them, submit after the ttl:
  // the time-shifting form of pre-computation the timestamp defeats
  // (guessing future seeds outright is hopeless against the DRBG).
  std::vector<Submission> banked;
  for (std::uint64_t i = 0; i < config.attempts_per_strategy; ++i) {
    const Request req = rig.request_from(config.attacker_ip, true);
    auto outcome = rig.server->on_request(req);
    if (!std::holds_alternative<Challenge>(outcome)) continue;
    const Challenge& challenge = std::get<Challenge>(outcome);
    const pow::SolveResult solved = rig.solver.solve(challenge.puzzle);
    report.hashes_spent += solved.attempts;
    Submission submission;
    submission.request_id = challenge.request_id;
    submission.puzzle = challenge.puzzle;
    submission.solution = solved.solution;
    banked.push_back(std::move(submission));
  }
  // Attack day: past the verification ttl.
  rig.clock.advance(rig.server->config().verifier.ttl +
                    std::chrono::seconds(1));
  for (const Submission& submission : banked) {
    ++report.attempts;
    if (rig.server->on_submission(submission, config.attacker_ip).status ==
        common::ErrorCode::kOk) {
      ++report.served;
    }
  }
  report.note = "solutions banked past the ttl -> timestamp expiry";
  return report;
}

AdversaryReport run_sybil(const reputation::IReputationModel& model,
                          const policy::IPolicy& pol,
                          const AdversaryConfig& config) {
  Rig rig(model, pol, config.seed);
  AdversaryReport report;
  report.strategy = "sybil";
  for (std::uint64_t i = 0; i < config.attempts_per_strategy; ++i) {
    // Fresh source address per request: defeats per-IP memory, but the
    // reputation score comes from traffic *features*, which still look
    // malicious — so every identity pays the full hard-puzzle price.
    const std::string ip = "203.0.1." + std::to_string(1 + (i % 250));
    ++report.attempts;
    if (rig.honest_round_trip(ip, true, report.hashes_spent) ==
        common::ErrorCode::kOk) {
      ++report.served;
    }
  }
  report.note = "IP rotation works only by paying full per-request work";
  return report;
}

}  // namespace

std::vector<AdversaryReport> run_adversaries(
    const AdversaryConfig& config, const reputation::IReputationModel& model,
    const policy::IPolicy& pol) {
  std::vector<AdversaryReport> reports;
  reports.push_back(run_replay(model, pol, config));
  reports.push_back(run_forge(model, pol, config));
  reports.push_back(run_downgrade(model, pol, config));
  reports.push_back(run_steal(model, pol, config));
  reports.push_back(run_precompute(model, pol, config));
  reports.push_back(run_sybil(model, pol, config));
  return reports;
}

common::Table adversary_table(const std::vector<AdversaryReport>& reports) {
  common::Table table(
      {"strategy", "attempts", "served", "success_rate", "hashes_spent",
       "defense"});
  for (const auto& r : reports) {
    table.add_row({r.strategy, std::to_string(r.attempts),
                   std::to_string(r.served),
                   common::fmt_f(r.success_rate(), 2),
                   std::to_string(r.hashes_spent), r.note});
  }
  return table;
}

}  // namespace powai::sim
