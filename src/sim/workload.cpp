#include "sim/workload.hpp"

#include <stdexcept>

namespace powai::sim {

std::vector<SimClient> make_population(const WorkloadConfig& config,
                                       common::Rng& rng) {
  if (config.benign_mean_interarrival_ms <= 0.0 ||
      config.attacker_mean_interarrival_ms <= 0.0) {
    throw std::invalid_argument("make_population: non-positive interarrival");
  }
  const features::SyntheticTraceGenerator gen(config.traffic);

  std::vector<SimClient> population;
  population.reserve(config.benign_clients + config.attackers);
  for (std::size_t i = 0; i < config.benign_clients; ++i) {
    SimClient c;
    c.ip = config.traffic.benign_subnet.at(i);
    c.malicious = false;
    c.features = gen.sample(false, rng);
    c.mean_interarrival_ms = config.benign_mean_interarrival_ms;
    population.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < config.attackers; ++i) {
    SimClient c;
    c.ip = config.traffic.malicious_subnet.at(i);
    c.malicious = true;
    c.features = gen.sample(true, rng);
    c.mean_interarrival_ms = config.attacker_mean_interarrival_ms;
    population.push_back(std::move(c));
  }
  return population;
}

features::Dataset make_training_set(const WorkloadConfig& config,
                                    std::size_t benign_rows,
                                    std::size_t malicious_rows,
                                    common::Rng& rng) {
  // Train on a *different* IP range than the live population (shifted
  // base) so no training row aliases a simulated client.
  features::SyntheticConfig cfg = config.traffic;
  const features::SyntheticTraceGenerator gen(cfg);
  return gen.generate(benign_rows, malicious_rows, rng);
}

}  // namespace powai::sim
