#include "sim/throttling.hpp"

#include <chrono>
#include <memory>

#include "framework/server.hpp"
#include "netsim/event_loop.hpp"
#include "pow/solver.hpp"

namespace powai::sim {

namespace {

using common::Duration;
using common::TimePoint;

Duration ms_to_duration(double ms) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// Single-core CPU with FIFO backlog, modelled by a busy-until watermark.
class CpuQueue final {
 public:
  /// Enqueues \p cost of work arriving at \p arrival; returns completion.
  TimePoint process(TimePoint arrival, Duration cost) {
    const TimePoint start = std::max(arrival, busy_until_);
    busy_until_ = start + cost;
    busy_total_ += cost;
    return busy_until_;
  }

  [[nodiscard]] Duration busy_total() const { return busy_total_; }

 private:
  TimePoint busy_until_{};
  Duration busy_total_{};
};

/// The whole simulation state; drives itself via EventLoop callbacks.
class ThrottlingSim final {
 public:
  ThrottlingSim(const ThrottlingConfig& config,
                const reputation::IReputationModel& model,
                const policy::IPolicy& pol)
      : config_(config),
        rng_(config.seed),
        loop_(),
        clients_(make_population(config.workload, rng_)),
        solver_cpu_(clients_.size()) {
    config_.latency.validate();
    framework::ServerConfig server_cfg;
    server_cfg.master_secret = common::bytes_of("throttling-secret");
    server_cfg.pow_enabled = config_.pow_enabled;
    // Verification TTL must cover queued solve time of flooding bots.
    server_cfg.verifier.ttl = std::chrono::seconds(3600);
    server_cfg.verifier.replay_capacity = 1 << 22;
    server_ = std::make_unique<framework::PowServer>(loop_.clock(), model, pol,
                                                     std::move(server_cfg));
  }

  ThrottlingReport run() {
    const TimePoint end = loop_.now() + std::chrono::duration_cast<Duration>(
                                            std::chrono::duration<double>(
                                                config_.duration_s));
    end_ = end;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      schedule_next_request(i, loop_.now());
    }
    loop_.run_until(end);

    ThrottlingReport report;
    report.benign = std::move(benign_);
    report.attacker = std::move(attacker_);
    report.benign.goodput_rps =
        static_cast<double>(report.benign.served) / config_.duration_s;
    report.attacker.goodput_rps =
        static_cast<double>(report.attacker.served) / config_.duration_s;
    if (benign_challenges_ > 0) {
      report.benign.mean_difficulty =
          benign_difficulty_sum_ / static_cast<double>(benign_challenges_);
    }
    if (attacker_challenges_ > 0) {
      report.attacker.mean_difficulty =
          attacker_difficulty_sum_ / static_cast<double>(attacker_challenges_);
    }
    // Work admitted just before the horizon can be scheduled past it, so
    // clamp: >= 1.0 simply means "saturated".
    report.server_utilization = std::min(
        1.0,
        std::chrono::duration<double>(server_cpu_.busy_total()).count() /
            config_.duration_s);
    return report;
  }

 private:
  ClassReport& report_for(std::size_t idx) {
    return clients_[idx].malicious ? attacker_ : benign_;
  }

  double one_leg_ms() {
    double ms = config_.latency.one_way_ms;
    if (config_.latency.jitter_ms > 0.0) {
      ms += rng_.uniform(0.0, config_.latency.jitter_ms);
    }
    return ms;
  }

  void schedule_next_request(std::size_t idx, TimePoint earliest) {
    const SimClient& client = clients_[idx];
    const Duration gap = ms_to_duration(
        rng_.exponential(1.0 / client.mean_interarrival_ms));
    const TimePoint at = std::max(earliest + gap, loop_.now());
    if (at >= end_) return;
    loop_.schedule_at(at, [this, idx] { send_request(idx); });
  }

  void send_request(std::size_t idx) {
    const SimClient& client = clients_[idx];
    ++report_for(idx).requests;
    const TimePoint sent_at = loop_.now();

    // Attackers are open loop: the next request goes out regardless of
    // this one's fate. Benign clients close the loop on response.
    if (client.malicious) schedule_next_request(idx, sent_at);

    // Leg 1: request to server.
    loop_.schedule_in(ms_to_duration(one_leg_ms()), [this, idx, sent_at] {
      request_arrives(idx, sent_at);
    });
  }

  void request_arrives(std::size_t idx, TimePoint sent_at) {
    const SimClient& client = clients_[idx];
    framework::Request request;
    request.client_ip = client.ip.to_string();
    request.features = client.features;
    request.request_id = ++next_request_id_;

    auto outcome = server_->on_request(request);

    if (std::holds_alternative<framework::Response>(outcome)) {
      // PoW disabled (or rejection): the request itself consumes service
      // CPU when served.
      const auto& response = std::get<framework::Response>(outcome);
      const bool served = response.status == common::ErrorCode::kOk;
      const TimePoint done =
          served ? server_cpu_.process(loop_.now(),
                                       ms_to_duration(config_.service_ms))
                 : loop_.now();
      const Duration back = done - loop_.now() + ms_to_duration(one_leg_ms());
      loop_.schedule_in(back, [this, idx, sent_at, served] {
        response_received(idx, sent_at, served);
      });
      return;
    }

    // Challenge path: issuing costs a little server CPU, then the
    // challenge travels back to the client.
    auto challenge = std::make_shared<framework::Challenge>(
        std::get<framework::Challenge>(std::move(outcome)));
    const unsigned d = challenge->puzzle.difficulty;
    if (clients_[idx].malicious) {
      attacker_difficulty_sum_ += d;
      ++attacker_challenges_;
    } else {
      benign_difficulty_sum_ += d;
      ++benign_challenges_;
    }
    const TimePoint issued =
        server_cpu_.process(loop_.now(), ms_to_duration(config_.issue_ms));
    const Duration back = issued - loop_.now() + ms_to_duration(one_leg_ms());
    loop_.schedule_in(back, [this, idx, sent_at, challenge] {
      challenge_received(idx, sent_at, challenge);
    });
  }

  void challenge_received(std::size_t idx, TimePoint sent_at,
                          std::shared_ptr<framework::Challenge> challenge) {
    // The client's single CPU solves puzzles sequentially: a flooding bot
    // with a backlog queues here — this is exactly the throttle.
    std::uint64_t attempts;
    std::uint64_t nonce = 0;
    bool have_real_solution = false;
    if (config_.real_hashing) {
      const pow::SolveResult solved = pow::Solver{}.solve(challenge->puzzle);
      attempts = solved.attempts;
      nonce = solved.solution.nonce;
      have_real_solution = solved.found;
    } else {
      attempts = sample_attempts(challenge->puzzle.difficulty, rng_);
    }
    const Duration solve_cost = ms_to_duration(
        static_cast<double>(attempts) * config_.latency.hash_cost_us / 1000.0);
    const TimePoint solved_at =
        solver_cpu_[idx].process(loop_.now(), solve_cost);

    const Duration until_submission_arrives =
        solved_at - loop_.now() + ms_to_duration(one_leg_ms());
    loop_.schedule_in(until_submission_arrives, [this, idx, sent_at, challenge,
                                                 nonce, have_real_solution] {
      submission_arrives(idx, sent_at, challenge, nonce, have_real_solution);
    });
  }

  void submission_arrives(std::size_t idx, TimePoint sent_at,
                          const std::shared_ptr<framework::Challenge>& challenge,
                          std::uint64_t nonce, bool have_real_solution) {
    bool served;
    if (config_.real_hashing) {
      framework::Submission submission;
      submission.request_id = challenge->request_id;
      submission.puzzle = challenge->puzzle;
      submission.solution = {challenge->puzzle.puzzle_id, nonce};
      const framework::Response response = server_->on_submission(
          submission, clients_[idx].ip.to_string());
      served = have_real_solution &&
               response.status == common::ErrorCode::kOk;
    } else {
      served = true;  // analytic mode: solution assumed correct
    }

    // Verification + resource service consume server CPU.
    const Duration cost = ms_to_duration(
        config_.verify_ms + (served ? config_.service_ms : 0.0));
    const TimePoint done = server_cpu_.process(loop_.now(), cost);
    const Duration back = done - loop_.now() + ms_to_duration(one_leg_ms());
    loop_.schedule_in(back, [this, idx, sent_at, served] {
      response_received(idx, sent_at, served);
    });
  }

  void response_received(std::size_t idx, TimePoint sent_at, bool served) {
    ClassReport& report = report_for(idx);
    if (served) {
      ++report.served;
      report.latency_ms.add(
          common::to_millis_f(loop_.now() - sent_at));
    }
    // Benign clients think, then ask again.
    if (!clients_[idx].malicious) schedule_next_request(idx, loop_.now());
  }

  ThrottlingConfig config_;
  common::Rng rng_;
  netsim::EventLoop loop_;
  std::vector<SimClient> clients_;
  std::vector<CpuQueue> solver_cpu_;  ///< one CPU per client
  CpuQueue server_cpu_;
  std::unique_ptr<framework::PowServer> server_;
  ClassReport benign_;
  ClassReport attacker_;
  double benign_difficulty_sum_ = 0.0;
  double attacker_difficulty_sum_ = 0.0;
  std::uint64_t benign_challenges_ = 0;
  std::uint64_t attacker_challenges_ = 0;
  std::uint64_t next_request_id_ = 0;
  TimePoint end_{};
};

}  // namespace

common::Table ThrottlingReport::to_table() const {
  common::Table table({"class", "requests", "served", "goodput_rps",
                       "median_latency_ms", "mean_difficulty"});
  auto row = [&](const char* name, const ClassReport& r) {
    table.add_row({name, std::to_string(r.requests), std::to_string(r.served),
                   common::fmt_f(r.goodput_rps, 2),
                   common::fmt_f(r.median_latency_ms(), 2),
                   common::fmt_f(r.mean_difficulty, 2)});
  };
  row("benign", benign);
  row("attacker", attacker);
  return table;
}

ThrottlingReport run_throttling(const ThrottlingConfig& config,
                                const reputation::IReputationModel& model,
                                const policy::IPolicy& pol) {
  ThrottlingSim sim(config, model, pol);
  return sim.run();
}

}  // namespace powai::sim
