#include "sim/fig2.hpp"

#include <stdexcept>

#include "common/clock.hpp"
#include "pow/generator.hpp"
#include "pow/solver.hpp"

namespace powai::sim {

common::Table Fig2Result::to_table() const {
  std::vector<std::string> header = {"reputation_score"};
  for (const auto& s : series) header.push_back(s.policy_name + "_median_ms");
  common::Table table(std::move(header));
  if (series.empty()) return table;
  for (std::size_t r = 0; r < series.front().median_ms.size(); ++r) {
    std::vector<std::string> row = {std::to_string(r)};
    for (const auto& s : series) {
      row.push_back(common::fmt_f(s.median_ms[r], 2));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Fig2Result run_fig2(const std::vector<const policy::IPolicy*>& policies,
                    const Fig2Config& config) {
  if (policies.empty()) {
    throw std::invalid_argument("run_fig2: no policies");
  }
  if (config.trials <= 0) {
    throw std::invalid_argument("run_fig2: trials must be positive");
  }
  config.latency.validate();

  common::Rng rng(config.seed);
  common::ManualClock clock;
  pow::PuzzleGenerator generator(clock, common::bytes_of("fig2-secret"));
  const pow::Solver solver;

  Fig2Result result;
  for (const policy::IPolicy* pol : policies) {
    if (pol == nullptr) throw std::invalid_argument("run_fig2: null policy");
    Fig2Series series;
    series.policy_name = std::string(pol->name());

    for (int score = 0; score <= 10; ++score) {
      common::Samples latencies;
      common::RunningStats difficulties;
      for (int trial = 0; trial < config.trials; ++trial) {
        const policy::Difficulty d =
            pol->difficulty(static_cast<double>(score), rng);
        difficulties.add(static_cast<double>(d));

        std::uint64_t attempts;
        if (config.use_real_solver) {
          const pow::Puzzle puzzle = generator.issue("198.51.100.7", d);
          const pow::SolveResult solved = solver.solve(puzzle);
          attempts = solved.attempts;
        } else {
          attempts = sample_attempts(d, rng);
        }
        latencies.add(config.latency.end_to_end_ms(attempts, rng));
      }
      series.median_ms.push_back(latencies.median());
      series.mean_ms.push_back(latencies.mean());
      series.p90_ms.push_back(latencies.quantile(0.9));
      series.mean_difficulty.push_back(difficulties.mean());
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

}  // namespace powai::sim
