#include "sim/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "crypto/drbg.hpp"

namespace powai::sim {

namespace {

constexpr std::string_view kDerivationKey = "powai.fault-plan.v1";

double millis_of(common::Duration d) { return common::to_millis_f(d); }

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkLossBurst: return "link_loss_burst";
    case FaultKind::kJitterBurst: return "jitter_burst";
    case FaultKind::kDrainStall: return "drain_stall";
    case FaultKind::kClockSkew: return "clock_skew";
    case FaultKind::kMalformedFlood: return "malformed_flood";
    case FaultKind::kSolverDesertion: return "solver_desertion";
    case FaultKind::kReplayFlood: return "replay_flood";
    case FaultKind::kSlowVerify: return "slow_verify";
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  for (const FaultKind kind : kAllFaultKinds) {
    if (fault_kind_name(kind) == name) return kind;
  }
  return std::nullopt;
}

std::string FaultEvent::describe() const {
  std::string out = "t=+" + common::fmt_f(millis_of(at) / 1000.0, 2) + "s " +
                    std::string(fault_kind_name(kind));
  switch (kind) {
    case FaultKind::kLinkLossBurst:
      out += " p=" + common::fmt_f(magnitude, 2) + " for " +
             common::fmt_f(millis_of(duration) / 1000.0, 2) + "s";
      break;
    case FaultKind::kJitterBurst:
      out += " +" + common::fmt_f(magnitude, 1) + "ms for " +
             common::fmt_f(millis_of(duration) / 1000.0, 2) + "s";
      break;
    case FaultKind::kDrainStall:
      out += " shard=" + std::to_string(target) + " " +
             common::fmt_f(magnitude, 1) + "ms x" + std::to_string(count) +
             " batches";
      break;
    case FaultKind::kClockSkew:
      out += " +" + common::fmt_f(magnitude / 1000.0, 1) + "s for " +
             common::fmt_f(millis_of(duration) / 1000.0, 2) + "s";
      break;
    case FaultKind::kMalformedFlood:
      out += " client=" + std::to_string(target) + " x" +
             std::to_string(count);
      break;
    case FaultKind::kSolverDesertion:
      out += " client=" + std::to_string(target) + " next " +
             std::to_string(count);
      break;
    case FaultKind::kReplayFlood:
      out += " client=" + std::to_string(target) + " x" +
             std::to_string(count);
      break;
    case FaultKind::kSlowVerify:
      out += " shard=" + std::to_string(target) + " " +
             common::fmt_f(magnitude, 1) + "ms x" + std::to_string(count) +
             " batches";
      break;
  }
  return out;
}

FaultPlan FaultPlan::derive(std::uint64_t seed, const FaultPlanConfig& cfg) {
  if (cfg.kinds.empty()) {
    throw std::invalid_argument("FaultPlan::derive: no fault kinds enabled");
  }
  if (cfg.min_events > cfg.max_events) {
    throw std::invalid_argument("FaultPlan::derive: min_events > max_events");
  }
  if (cfg.horizon <= common::Duration::zero() ||
      cfg.max_window <= common::Duration::zero()) {
    throw std::invalid_argument(
        "FaultPlan::derive: horizon and max_window must be positive");
  }

  // One DRBG family per seed; stream 0 sizes the schedule, stream 1+i is
  // event i. Each event reads only its own stream, so events are
  // independent functions of (seed, i) — shrinking keeps survivors
  // byte-identical.
  common::Bytes personalization(8);
  common::store_u64be(personalization.data(), seed);
  const crypto::DerivedDrbg family(common::bytes_of(kDerivationKey),
                                   personalization);

  const std::uint64_t span =
      static_cast<std::uint64_t>(cfg.max_events - cfg.min_events) + 1;
  const std::size_t n_events =
      cfg.min_events + static_cast<std::size_t>(family.next_u64(0) % span);

  FaultPlan plan;
  plan.seed = seed;
  plan.events.reserve(n_events);
  for (std::size_t i = 0; i < n_events; ++i) {
    common::Rng r(family.next_u64(1 + i));
    FaultEvent event;
    event.kind = cfg.kinds[r.uniform_u64(0, cfg.kinds.size() - 1)];
    event.at = common::Duration(r.uniform_u64(
        0, static_cast<std::uint64_t>(cfg.horizon.count()) - 1));
    event.duration = common::Duration(
        1 + r.uniform_u64(
                0, static_cast<std::uint64_t>(cfg.max_window.count()) - 1));
    switch (event.kind) {
      case FaultKind::kLinkLossBurst:
        event.magnitude = r.uniform(0.05, cfg.max_loss);
        break;
      case FaultKind::kJitterBurst:
        event.magnitude = r.uniform(0.5, millis_of(cfg.max_jitter));
        break;
      case FaultKind::kDrainStall:
        event.magnitude = r.uniform(0.5, millis_of(cfg.max_stall));
        event.count = static_cast<std::uint32_t>(
            r.uniform_u64(1, cfg.max_count));
        event.target = static_cast<std::uint32_t>(r.uniform_u64(0, 255));
        break;
      case FaultKind::kClockSkew:
        // At least one second; often far past the verifier ttl so both
        // "expired" and "issued in the future" paths get exercised.
        event.magnitude = r.uniform(1000.0, millis_of(cfg.max_skew));
        break;
      case FaultKind::kMalformedFlood:
      case FaultKind::kSolverDesertion:
      case FaultKind::kReplayFlood:
        event.count = static_cast<std::uint32_t>(
            r.uniform_u64(1, cfg.max_count));
        event.target = static_cast<std::uint32_t>(r.uniform_u64(0, 255));
        break;
      case FaultKind::kSlowVerify:
        event.magnitude = r.uniform(0.5, millis_of(cfg.max_verify_sleep));
        event.count = static_cast<std::uint32_t>(
            r.uniform_u64(1, cfg.max_count));
        event.target = static_cast<std::uint32_t>(r.uniform_u64(0, 255));
        break;
    }
    plan.events.push_back(event);
  }

  // Canonical order is activation time (stable, so equal times keep
  // derivation order). `kept` indices refer to this sorted order.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  plan.kept.resize(plan.events.size());
  for (std::size_t i = 0; i < plan.kept.size(); ++i) plan.kept[i] = i;
  plan.derived_events = plan.events.size();
  return plan;
}

FaultPlan FaultPlan::subset(const std::vector<std::size_t>& keep) const {
  FaultPlan out;
  out.seed = seed;
  out.derived_events = derived_events;
  out.events.reserve(keep.size());
  out.kept.reserve(keep.size());
  for (const std::size_t index : keep) {
    if (index >= events.size()) {
      throw std::out_of_range("FaultPlan::subset: index out of range");
    }
    out.events.push_back(events[index]);
    out.kept.push_back(kept[index]);
  }
  return out;
}

bool FaultPlan::is_full() const {
  if (kept.size() != derived_events) return false;
  for (std::size_t i = 0; i < kept.size(); ++i) {
    if (kept[i] != i) return false;
  }
  return true;
}

std::string FaultPlan::summary() const {
  std::string out = "fault plan seed=" + std::to_string(seed) + " (" +
                    std::to_string(events.size()) + " events";
  if (!is_full()) out += ", minimized keep=" + keep_spec();
  out += ")\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out += "  [" + std::to_string(kept[i]) + "] " + events[i].describe() +
           "\n";
  }
  return out;
}

std::string FaultPlan::keep_spec() const {
  std::string out;
  for (std::size_t i = 0; i < kept.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(kept[i]);
  }
  return out;
}

}  // namespace powai::sim
