#pragma once
/// \file load_harness.hpp
/// Closed-loop end-to-end load generator: N client threads drive the
/// full Fig. 1 exchange (request → challenge → solve → submit →
/// response) against one PowServer and report throughput plus
/// per-outcome counts. Unlike sim::ThrottlingExperiment, which models
/// time, this runs real threads against the real server — shard
/// contention, the atomic stats block, and solver cost all show up in
/// the numbers. It is the harness the concurrent issuance path is
/// measured with (bench/bench_server_load.cpp) and stress-tested with
/// (tests/test_concurrent_server.cpp).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "features/feature_vector.hpp"
#include "framework/server.hpp"

namespace powai::sim {

struct LoadHarnessConfig final {
  std::size_t client_threads = 4;
  std::size_t requests_per_client = 64;

  /// Solver threads per client; keep 1 when client_threads already
  /// covers the cores, or the solvers fight each other.
  unsigned solver_threads = 1;

  /// Client-side attempt budget per puzzle (0 = solve to completion).
  std::uint64_t solver_max_attempts = 0;

  std::string path = "/";
};

/// Aggregate outcome of one load run. Client-side tallies and the
/// server-side counter delta are reported separately so double counting
/// (the concurrency bug class this harness exists to catch) is visible.
struct LoadReport final {
  double wall_s = 0.0;
  std::uint64_t round_trips = 0;     ///< completed request→response loops
  std::uint64_t served = 0;          ///< responses with kOk
  std::uint64_t solve_timeouts = 0;  ///< client attempt budget exhausted
  std::uint64_t rate_limited = 0;
  std::uint64_t rejected_other = 0;  ///< any other terminal error
  std::uint64_t solve_attempts = 0;  ///< total hashes clients spent

  /// Server counters accumulated during this run only.
  framework::ServerStats server_delta;

  [[nodiscard]] double issued_per_s() const;
  [[nodiscard]] double served_per_s() const;
};

class LoadHarness final {
 public:
  /// \p server must outlive the harness. Throws std::invalid_argument on
  /// zero client_threads or requests_per_client.
  explicit LoadHarness(framework::PowServer& server,
                       LoadHarnessConfig config = {});

  /// Runs the closed loop: every client thread performs
  /// requests_per_client full round trips, all released together.
  /// Client i sends \p features[i % features.size()] from the source
  /// address load_client_ip(i), so per-IP state (rate limiter,
  /// reputation cache) is exercised per client. Throws on empty
  /// \p features.
  [[nodiscard]] LoadReport run(
      const std::vector<features::FeatureVector>& features);

 private:
  framework::PowServer* server_;
  LoadHarnessConfig config_;
};

/// Source address for client \p index ("10.a.b.c"; unique per index
/// below 2^24).
[[nodiscard]] std::string load_client_ip(std::size_t index);

}  // namespace powai::sim
