#pragma once
/// \file load_harness.hpp
/// Closed-loop end-to-end load generators, two flavors:
///
/// - LoadHarness: N real client threads call the PowServer entry points
///   directly (no wire) — shard contention, the atomic stats block, and
///   solver cost all show up in the numbers. Used by
///   bench/bench_server_load.cpp and tests/test_concurrent_server.cpp.
/// - run_wire_load: the same closed loop as *encoded bytes over the
///   simulated network*, through either the synchronous ServerEndpoint
///   path or the AsyncFrontEnd batch bridge. The two transports must
///   produce identical totals, which is the invariant
///   tests/test_async_front_end.cpp pins and bench/bench_wire_load.cpp
///   measures the cost of.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "features/feature_vector.hpp"
#include "framework/async_front_end.hpp"
#include "framework/client.hpp"
#include "framework/retry.hpp"
#include "framework/server.hpp"
#include "netsim/link.hpp"
#include "policy/policy.hpp"
#include "reputation/model.hpp"
#include "sim/population.hpp"

namespace powai::sim {

/// One request's client-visible fate: what puzzle it was assigned (if
/// any) and how the exchange ended. The unit of the determinism
/// contract — two runs of the same workload must produce *equal*
/// records per client, byte for byte (seeds included), regardless of
/// thread counts or drain shards.
struct IssueRecord final {
  std::uint64_t request_id = 0;
  bool challenged = false;     ///< a puzzle was assigned
  std::uint64_t puzzle_id = 0; ///< 0 when !challenged
  common::Bytes seed;          ///< empty when !challenged
  unsigned difficulty = 0;     ///< 0 when !challenged
  std::int64_t issued_at_ms = 0;
  common::ErrorCode outcome = common::ErrorCode::kOk;  ///< final response

  bool operator==(const IssueRecord&) const = default;
};

/// A client's full request history, in that client's send order.
using ClientHistory = std::vector<IssueRecord>;

/// Starting value for the history-fingerprint fold (FNV-1a offset
/// basis; an empty history fingerprints to exactly this).
inline constexpr std::uint64_t kFingerprintSeed = 0xcbf29ce484222325ULL;

/// Folds one finalized IssueRecord into a running 64-bit fingerprint
/// (FNV-1a over every field, seed bytes included). Fingerprints are the
/// scale-friendly form of the determinism contract: a 10^5-client
/// golden stores one u64 per client instead of full histories, yet any
/// field drift — ids, seeds, difficulties, outcomes, order — changes
/// the value.
[[nodiscard]] std::uint64_t fold_issue_record(std::uint64_t fingerprint,
                                              const IssueRecord& record);

/// Fingerprint of a whole history: fold_issue_record over each record
/// in order, from kFingerprintSeed. Matches WireLoadReport::
/// history_fingerprints for the same client by construction.
[[nodiscard]] std::uint64_t history_fingerprint(const ClientHistory& history);

/// Builds the IssueRecord for one completed in-process round trip —
/// the single definition both the harness and hand-rolled serial
/// drivers (tests, examples) must share, so the golden comparison can
/// never drift field-by-field from the capture.
[[nodiscard]] IssueRecord make_issue_record(const framework::RoundTrip& trip);

/// Wire-mode sibling: the (not yet finalized) record for a received
/// challenge; the outcome field is filled when the final response
/// arrives. Same single-definition rationale as the RoundTrip overload.
[[nodiscard]] IssueRecord make_issue_record(
    const framework::Challenge& challenge);

struct LoadHarnessConfig final {
  std::size_t client_threads = 4;
  std::size_t requests_per_client = 64;

  /// Solver threads per client; keep 1 when client_threads already
  /// covers the cores, or the solvers fight each other.
  unsigned solver_threads = 1;

  /// Client-side attempt budget per puzzle (0 = solve to completion).
  std::uint64_t solver_max_attempts = 0;

  /// Record per-client IssueRecord histories into LoadReport::histories
  /// (off by default).
  bool capture_history = false;

  std::string path = "/";
};

/// Aggregate outcome of one load run. Client-side tallies and the
/// server-side counter delta are reported separately so double counting
/// (the concurrency bug class this harness exists to catch) is visible.
struct LoadReport final {
  double wall_s = 0.0;
  std::uint64_t round_trips = 0;     ///< completed request→response loops
  std::uint64_t served = 0;          ///< responses with kOk
  std::uint64_t solve_timeouts = 0;  ///< client attempt budget exhausted
  std::uint64_t rate_limited = 0;
  std::uint64_t rejected_other = 0;  ///< any other terminal error
  std::uint64_t solve_attempts = 0;  ///< total hashes clients spent
  std::uint64_t clients = 0;         ///< client threads in this run

  /// PowServer::memory_bytes() sampled after the run — what the
  /// per-client server structures (rate limiter, reputation cache,
  /// replay cache) actually cost for this population.
  std::uint64_t server_memory_bytes = 0;

  /// Server counters accumulated during this run only.
  framework::ServerStats server_delta;

  /// Per-client histories (index = client thread), populated only when
  /// LoadHarnessConfig::capture_history is set.
  std::vector<ClientHistory> histories;

  [[nodiscard]] double issued_per_s() const;
  [[nodiscard]] double served_per_s() const;
  /// Aggregate client hashing throughput (solve_attempts / wall): the
  /// end-to-end view of the SHA-256 hot path — midstate + dispatch wins
  /// in the solver show up here directly.
  [[nodiscard]] double hashes_per_s() const;
  /// Server-side resident bytes per client (0 when clients == 0).
  [[nodiscard]] double server_bytes_per_client() const;
};

class LoadHarness final {
 public:
  /// \p server must outlive the harness. Throws std::invalid_argument on
  /// zero client_threads or requests_per_client.
  explicit LoadHarness(framework::PowServer& server,
                       LoadHarnessConfig config = {});

  /// Runs the closed loop: every client thread performs
  /// requests_per_client full round trips, all released together.
  /// Client i sends `features[i % features.size()]` from the source
  /// address load_client_ip(i), so per-IP state (rate limiter,
  /// reputation cache) is exercised per client. Throws on empty
  /// \p features.
  [[nodiscard]] LoadReport run(
      const std::vector<features::FeatureVector>& features);

 private:
  framework::PowServer* server_;
  LoadHarnessConfig config_;
};

/// Source address for client \p index ("10.a.b.c"; unique per index
/// below 2^24).
[[nodiscard]] std::string load_client_ip(std::size_t index);

// ---------------------------------------------------------------------------
// Wire mode
// ---------------------------------------------------------------------------

/// Wire-mode run shape. The default link is deterministic (fixed 15 ms,
/// no jitter, no loss) so a synchronous and an asynchronous run of the
/// same configuration produce identical totals; dial jitter/loss back in
/// for robustness experiments where exact matching is not the point.
struct WireLoadConfig final {
  std::size_t clients = 4;
  std::size_t requests_per_client = 8;

  /// false = synchronous ServerEndpoint (inline service on the loop
  /// thread); true = AsyncFrontEnd batch bridge (front_end.drain_shards
  /// drain threads over the source-partitioned queue). With
  /// front_end.start_paused set, the wire is first played out against
  /// the paused drain (a deterministic worst-case pile-up), then the
  /// backlog is drained.
  bool async = true;
  framework::AsyncFrontEndConfig front_end;

  /// Record per-client IssueRecord histories into
  /// WireLoadReport::histories (off by default).
  bool capture_history = false;

  /// Fold each client's finalized records into a 64-bit fingerprint
  /// (WireLoadReport::history_fingerprints) — O(1) memory per client,
  /// the form the 10^5-client determinism goldens use. Independent of
  /// capture_history; when both are set, history_fingerprint(
  /// histories[i]) == history_fingerprints[i].
  bool capture_fingerprints = false;

  /// Arrival pacing: when true, client i's n-th request is scheduled
  /// ClientPopulation::gap_before(i, n, now) after its previous exchange
  /// finished (think time) instead of firing back-to-back — the knob
  /// that turns the closed loop into a heavy-tailed open-ish load.
  /// Gaps and weights derive from population_seed, so paced runs keep
  /// the same determinism contract as unpaced ones.
  bool pace_arrivals = false;
  ArrivalConfig arrivals;

  /// Heavy-tailed per-client activity (see PopulationConfig);
  /// 0 = uniform. Only meaningful with pace_arrivals.
  double weight_alpha = 0.0;
  std::uint64_t population_seed = 1;

  /// Modelled per-hash client solve cost (see WireClient).
  double client_hash_cost_us = 38.0;

  /// Client retry/timeout/backoff (disabled by default). When enabled
  /// the pool stamps request deadlines, re-sends shed or lost exchanges
  /// with deterministic jittered backoff, and resolves exhausted
  /// attempts as kTimeout — the overload bench mode's client half.
  framework::RetryPolicy retry;

  netsim::LinkModel link{.base_latency = std::chrono::milliseconds(15),
                         .jitter = common::Duration::zero(),
                         .bandwidth_bytes_per_sec = 0.0,
                         .loss_rate = 0.0};
  std::uint64_t net_seed = 17;
  std::string path = "/";
  std::string server_host = "198.51.100.250";
};

/// Outcome of one wire-mode run. Client-side tallies (what responses
/// said) and the server-side counter delta are reported separately so
/// lost or double-counted messages are visible, exactly like LoadReport.
struct WireLoadReport final {
  std::uint64_t sent = 0;        ///< requests handed to the wire
  std::uint64_t answered = 0;    ///< final responses that arrived
  std::uint64_t served = 0;      ///< … with kOk
  std::uint64_t overloaded = 0;  ///< … with kUnavailable (backpressure)
  std::uint64_t rejected = 0;    ///< … with any other error
  std::uint64_t unanswered = 0;  ///< dropped on the wire (lossy links only)
  std::uint64_t events = 0;      ///< loop events executed
  common::Duration sim_elapsed{};  ///< simulated duration of the run
  double wall_s = 0.0;             ///< real time the run took
  std::uint64_t messages_sent = 0;  ///< wire messages (all four legs)
  std::uint64_t clients = 0;        ///< population size of this run

  /// Resident-memory accounting, sampled after the run: what each layer
  /// costs for this population (see docs/ARCHITECTURE.md, "Scale model
  /// & memory accounting").
  std::uint64_t server_memory_bytes = 0;   ///< PowServer::memory_bytes()
  std::uint64_t network_memory_bytes = 0;  ///< netsim::Network::memory_bytes()
  std::uint64_t client_memory_bytes = 0;   ///< pool slots + population keys

  framework::ServerStats server_delta;
  framework::FrontEndStats front_end;  ///< zeros in synchronous mode
  /// Drain-stall episodes the watchdog flagged (async mode with
  /// front_end.watchdog_stall > 0 only; wall-clock, diagnostics).
  std::uint64_t watchdog_stalls = 0;

  /// Per-client histories (index = client), populated only when
  /// WireLoadConfig::capture_history is set. Identical across sync,
  /// async, and any drain_shards/verify_threads setting by the
  /// determinism contract.
  std::vector<ClientHistory> histories;

  /// Per-client 64-bit history fingerprints (index = client), populated
  /// only when WireLoadConfig::capture_fingerprints is set. Same
  /// determinism contract as histories at a millionth the memory.
  std::vector<std::uint64_t> history_fingerprints;

  [[nodiscard]] double answered_per_wall_s() const {
    return wall_s > 0.0 ? static_cast<double>(answered) / wall_s : 0.0;
  }
  /// Server-side resident bytes per client (0 when clients == 0).
  [[nodiscard]] double server_bytes_per_client() const {
    return clients > 0 ? static_cast<double>(server_memory_bytes) /
                             static_cast<double>(clients)
                       : 0.0;
  }
  /// Client+network simulation bytes per client — the number that must
  /// stay O(1) for the harness itself to reach 10^6 clients.
  [[nodiscard]] double sim_bytes_per_client() const {
    return clients > 0 ? static_cast<double>(network_memory_bytes +
                                             client_memory_bytes) /
                             static_cast<double>(clients)
                       : 0.0;
  }
};

/// Runs the closed loop over the netsim transport: \p cfg.clients wire
/// clients each complete \p cfg.requests_per_client request→response
/// exchanges (client i sends `features[i % features.size()]` from
/// load_client_ip(i)), against a PowServer built from \p server_cfg
/// reading the simulated clock. Builds its own EventLoop/Network.
/// Throws std::invalid_argument on empty \p features or zero counts.
[[nodiscard]] WireLoadReport run_wire_load(
    const reputation::IReputationModel& model, const policy::IPolicy& policy,
    framework::ServerConfig server_cfg,
    const std::vector<features::FeatureVector>& features,
    WireLoadConfig cfg = {});

}  // namespace powai::sim
