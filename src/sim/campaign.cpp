#include "sim/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "features/synthetic.hpp"
#include "framework/protocol.hpp"
#include "framework/transport.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/network.hpp"
#include "pow/solver.hpp"

namespace powai::sim {

namespace {

constexpr const char* kServerHost = "198.51.100.10";
constexpr double kBenignHashCostUs = 38.0;

/// Overload-scenario constants shared between execute() (which arms the
/// knobs) and check_invariants() (which reasons about them). All pure
/// constants so a campaign stays a function of (model, policy, cfg, seed).
constexpr std::int64_t kOverloadWindowMs = 100;
constexpr auto kOverloadWatchdogStall = std::chrono::milliseconds(250);
constexpr std::uint64_t kMaxRecoveryWindows = 200;

common::Duration millis_dur(double ms) {
  return std::chrono::duration_cast<common::Duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// Scenario shaping: who the attackers are. Scenarios never touch the
/// fault schedule — only client behavior and overload-control knobs —
/// so a plan replays identically under every scenario.
struct ScenarioShape final {
  double attacker_hash_cost_us;     ///< solve-farm outsourcing = cheap
  common::Duration attacker_gap;    ///< think time between requests
  common::Duration benign_gap;
  common::Duration ramp;            ///< attacker i joins at i * ramp
  bool poison_features;             ///< alternate benign/malicious traffic
  bool auto_replay;                 ///< re-submit every redeemed proof
  std::uint32_t auto_replay_count;
  /// Overload scenario only: arm the full control loop — server-side
  /// deadlines + degradation ladder + drain watchdog, client-side
  /// retry/timeout/backoff — and send this many requests per configured
  /// request from each attacker (the flash crowd).
  bool overload = false;
  std::size_t attacker_request_factor = 1;
};

ScenarioShape shape_for(Scenario scenario) {
  using std::chrono::milliseconds;
  switch (scenario) {
    case Scenario::kBotnetRampUp:
      return {2.0,  milliseconds(10), milliseconds(200), milliseconds(800),
              false, false, 0};
    case Scenario::kReplayFlood:
      return {4.0,  milliseconds(40), milliseconds(200), milliseconds(0),
              false, true, 3};
    case Scenario::kReputationPoisoning:
      return {4.0,  milliseconds(60), milliseconds(200), milliseconds(0),
              true, false, 0};
    case Scenario::kSolveFarm:
      return {0.25, milliseconds(15), milliseconds(200), milliseconds(0),
              false, false, 0};
    case Scenario::kOverloadFlashCrowd:
      // Attackers hammer with tiny think time and a fat request budget;
      // every client retries with the deterministic policy built in
      // execute(). The interesting behavior is the server riding its
      // degradation ladder up under the crowd and back down after.
      return {2.0,  milliseconds(3),  milliseconds(200), milliseconds(0),
              false, false, 0, true, 8};
  }
  return {2.0, milliseconds(10), milliseconds(200), milliseconds(0), false,
          false, 0};
}

/// The deterministic client retry policy the overload scenario installs:
/// pure function of the campaign seed, so schedules replay bit-for-bit.
framework::RetryPolicy overload_retry_policy(std::uint64_t seed) {
  framework::RetryPolicy retry;
  retry.enabled = true;
  retry.timeout = std::chrono::seconds(2);  // >> worst sim RTT + jitter
  retry.max_attempts = 3;
  retry.backoff_base = std::chrono::milliseconds(50);
  retry.backoff_cap = std::chrono::seconds(1);
  retry.jitter_frac = 0.2;
  retry.jitter_seed = seed;
  retry.request_deadline = std::chrono::seconds(6);
  return retry;
}

std::string client_ip(std::size_t index, bool attacker) {
  // Matches the synthetic-trace subnets (10/8 benign, 203/8 malicious) so
  // populations are tellable apart in logs and repro artifacts.
  return std::string(attacker ? "203.0." : "10.0.") +
         std::to_string((index >> 8) & 0xff) + "." +
         std::to_string(index & 0xff);
}

/// Per-client ledger. Mutated on the loop thread only.
struct ClientTally final {
  std::uint64_t sent = 0;
  std::uint64_t answered = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deserted = 0;
  std::uint64_t timed_out = 0;  ///< retry budget exhausted client-side
  std::uint64_t challenges = 0;
  std::uint64_t wire_lost_request = 0;
  std::uint64_t wire_lost_submission = 0;
  std::uint64_t replays_sent = 0;
  std::uint64_t replay_answers = 0;
  std::uint64_t replays_served = 0;
  std::uint64_t malformed_sent = 0;
};

struct ClientSpec final {
  std::string ip;
  double hash_cost_us = kBenignHashCostUs;
  /// Cycled by request index (poisoning attackers alternate two vectors).
  std::vector<features::FeatureVector> features;
  std::size_t n_requests = 0;
  common::Duration gap{};
  common::Duration start_at{};
  bool auto_replay = false;
  std::uint32_t auto_replay_count = 0;
  /// Disabled by default; the overload scenario enables it for every
  /// client. All timers run on simulated time, so retry schedules are
  /// identical in sync and async runs.
  framework::RetryPolicy retry;
};

/// A protocol-speaking campaign participant: a closed request loop like
/// WireClient's, plus the misbehavior seams fault events steer (desert
/// challenges, replay redeemed proofs, flood undecodable bytes). Every
/// request's fate lands in exactly one tally bucket, which is what the
/// conservation invariant balances.
class CampaignClient final {
 public:
  CampaignClient(netsim::EventLoop& loop, netsim::Network& network,
                 ClientSpec spec)
      : loop_(&loop), network_(&network), spec_(std::move(spec)) {
    client_key_ = framework::retry_client_key(spec_.ip);
    network_->add_host(
        spec_.ip, [this](const std::string& from, common::BytesView payload) {
          (void)from;
          on_message(payload);
        });
  }

  CampaignClient(const CampaignClient&) = delete;
  CampaignClient& operator=(const CampaignClient&) = delete;

  void start() {
    loop_->schedule_in(spec_.start_at, [this] { send_next(); });
  }

  /// Abandon the next \p n challenges without submitting.
  void desert_next(std::uint32_t n) { desert_budget_ += n; }

  /// Re-submit the most recently redeemed proof \p n times (no-op until
  /// something has been served).
  void replay_last(std::uint32_t n) {
    if (!last_served_) return;
    const common::Bytes wire = last_served_->serialize();
    for (std::uint32_t i = 0; i < n; ++i) {
      ++tally_.replays_sent;
      (void)network_->send(spec_.ip, kServerHost, wire);
    }
  }

  /// Send \p n undecodable payloads (bogus type tag) at the server.
  void send_malformed(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      ++tally_.malformed_sent;
      common::Bytes junk = {0xff, static_cast<std::uint8_t>(i),
                            static_cast<std::uint8_t>(tally_.malformed_sent)};
      (void)network_->send(spec_.ip, kServerHost, std::move(junk));
    }
  }

  [[nodiscard]] const ClientTally& tally() const { return tally_; }

 private:
  /// Retry bookkeeping for one in-flight request (loop-thread-only).
  struct PendingReq final {
    std::uint32_t attempts = 1;
    netsim::EventId timer = 0;
    std::int64_t deadline_ms = 0;
  };

  framework::Request build_request(std::uint64_t request_id) const {
    framework::Request request;
    request.client_ip = spec_.ip;
    request.path = "/";
    // Features are a pure function of the request id, so a resend
    // reconstructs the identical payload.
    request.features = spec_.features[(request_id - 1) % spec_.features.size()];
    request.request_id = request_id;
    return request;
  }

  void send_next() {
    if (tally_.sent >= spec_.n_requests) return;
    framework::Request request = build_request(tally_.sent + 1);
    ++tally_.sent;
    if (spec_.retry.enabled &&
        spec_.retry.request_deadline > common::Duration::zero()) {
      request.deadline_ms =
          common::to_millis(loop_->now() + spec_.retry.request_deadline);
    }
    const bool sent =
        network_->send(spec_.ip, kServerHost, request.serialize());
    if (!sent && !spec_.retry.enabled) {
      ++tally_.wire_lost_request;  // lost at send; move on
      schedule_next();
      return;
    }
    PendingReq pending;
    pending.deadline_ms = request.deadline_ms;
    const auto [it, inserted] = pending_.emplace(request.request_id, pending);
    (void)it;
    (void)inserted;
    // With retries a lost send is not a tally bucket: the timer will
    // resend (or resolve kTimeout), so the request's fate is still
    // exactly one of answered / deserted / timed_out.
    if (spec_.retry.enabled) arm_timer(request.request_id, spec_.retry.timeout);
  }

  void schedule_next() {
    loop_->schedule_in(spec_.gap, [this] { send_next(); });
  }

  void arm_timer(std::uint64_t request_id, common::Duration in) {
    const auto it = pending_.find(request_id);
    if (it == pending_.end()) return;
    it->second.timer = loop_->schedule_in(
        in, [this, request_id] { on_timeout(request_id); });
  }

  void cancel_timer(PendingReq& pending) {
    if (pending.timer != 0) (void)loop_->cancel(pending.timer);
    pending.timer = 0;
  }

  void on_timeout(std::uint64_t request_id) {
    const auto it = pending_.find(request_id);
    if (it == pending_.end()) return;  // resolved in the meantime
    it->second.timer = 0;
    if (it->second.attempts >= spec_.retry.max_attempts) {
      // The synthetic client-side resolution: counts as answered so the
      // conservation ledger still partitions every request, plus its
      // own bucket for the exactly-once invariant.
      pending_.erase(it);
      ++tally_.answered;
      ++tally_.timed_out;
      submitted_.erase(request_id);
      schedule_next();
      return;
    }
    resend(request_id,
           framework::retry_backoff(spec_.retry, client_key_, request_id,
                                    it->second.attempts));
  }

  void resend(std::uint64_t request_id, common::Duration wait) {
    const auto it = pending_.find(request_id);
    if (it == pending_.end()) return;
    ++it->second.attempts;
    it->second.timer = loop_->schedule_in(wait, [this, request_id] {
      const auto entry = pending_.find(request_id);
      if (entry == pending_.end()) return;
      framework::Request request = build_request(request_id);
      request.deadline_ms = entry->second.deadline_ms;  // original deadline
      (void)network_->send(spec_.ip, kServerHost, request.serialize());
      arm_timer(request_id, spec_.retry.timeout);
    });
  }

  void on_message(common::BytesView payload) {
    const auto message = framework::decode(payload);
    if (!message) return;  // noise
    if (const auto* challenge =
            std::get_if<framework::Challenge>(&*message)) {
      on_challenge(*challenge);
    } else if (const auto* response =
                   std::get_if<framework::Response>(&*message)) {
      on_response(*response);
    }
  }

  void on_challenge(const framework::Challenge& challenge) {
    const auto it = pending_.find(challenge.request_id);
    if (it == pending_.end()) return;
    ++tally_.challenges;
    if (desert_budget_ > 0) {
      --desert_budget_;
      ++tally_.deserted;
      cancel_timer(it->second);
      pending_.erase(it);
      schedule_next();
      return;
    }
    // Really solve, but model the time it occupies (attempts × per-hash
    // cost on one sequential solver core) — same device model as
    // WireClient, so campaign latencies are hardware-independent.
    const pow::SolveResult solved = solver_.solve(challenge.puzzle);
    const auto solve_cost = std::chrono::duration_cast<common::Duration>(
        std::chrono::duration<double, std::micro>(
            static_cast<double>(solved.attempts) * spec_.hash_cost_us));
    const common::TimePoint begin =
        std::max(loop_->now(), solver_busy_until_);
    solver_busy_until_ = begin + solve_cost;

    framework::Submission submission;
    submission.request_id = challenge.request_id;
    submission.puzzle = challenge.puzzle;
    submission.solution = solved.solution;
    submission.deadline_ms = it->second.deadline_ms;  // deadline propagates
    const common::Duration delay = solver_busy_until_ - loop_->now();
    if (spec_.retry.enabled) {
      // Solving is local progress; the attempt clock restarts from the
      // submission's send instant (same rule as WireClient).
      cancel_timer(it->second);
      arm_timer(challenge.request_id, delay + spec_.retry.timeout);
    }
    loop_->schedule_in(delay,
                       [this, submission = std::move(submission)] {
                         submitted_.insert_or_assign(submission.request_id,
                                                     submission);
                         if (!network_->send(spec_.ip, kServerHost,
                                             submission.serialize()) &&
                             !spec_.retry.enabled) {
                           ++tally_.wire_lost_submission;  // request hangs
                         }
                       });
  }

  void on_response(const framework::Response& response) {
    const auto it = pending_.find(response.request_id);
    if (it == pending_.end()) {
      if (response.request_id == 0) return;  // malformed-flood NAK
      // A reply to a replayed (already settled) submission. A kOk here
      // means the server redeemed the same proof twice — the
      // single-redemption invariant's detector.
      ++tally_.replay_answers;
      if (response.status == common::ErrorCode::kOk) ++tally_.replays_served;
      return;
    }
    if (spec_.retry.enabled &&
        response.status == common::ErrorCode::kUnavailable &&
        it->second.attempts < spec_.retry.max_attempts) {
      // Shed by the server — retry internally, honouring its hint.
      cancel_timer(it->second);
      const auto backoff = framework::retry_backoff(
          spec_.retry, client_key_, response.request_id, it->second.attempts);
      const auto hinted = std::chrono::duration_cast<common::Duration>(
          std::chrono::milliseconds(response.retry_after_ms));
      resend(response.request_id, std::max(backoff, hinted));
      return;
    }
    cancel_timer(it->second);
    pending_.erase(it);
    ++tally_.answered;
    if (response.status == common::ErrorCode::kOk) {
      ++tally_.served;
      if (const auto sub = submitted_.find(response.request_id);
          sub != submitted_.end()) {
        last_served_ = sub->second;
      }
      if (spec_.auto_replay) replay_last(spec_.auto_replay_count);
    } else if (response.status == common::ErrorCode::kUnavailable) {
      ++tally_.overloaded;
    } else {
      ++tally_.rejected;
    }
    submitted_.erase(response.request_id);
    schedule_next();
  }

  netsim::EventLoop* loop_;
  netsim::Network* network_;
  ClientSpec spec_;
  pow::Solver solver_;
  ClientTally tally_;
  std::uint64_t client_key_ = 0;  ///< retry jitter stream key
  std::uint32_t desert_budget_ = 0;
  common::TimePoint solver_busy_until_{};
  std::unordered_map<std::uint64_t, PendingReq> pending_;
  std::unordered_map<std::uint64_t, framework::Submission> submitted_;
  std::optional<framework::Submission> last_served_;
};

/// One execution's raw output: the comparable tallies plus async-side
/// bookkeeping the invariant checkers need but the fingerprint excludes.
struct RunOutput final {
  CampaignTallies tallies;
  std::uint64_t unresolved = 0;  ///< sent - answered - deserted
  bool async = false;
  bool retry_enabled = false;    ///< scenario armed client retries
  bool ladder_enabled = false;   ///< scenario armed the degrade ladder
  std::uint64_t fe_accepted = 0;
  std::uint64_t fe_completed = 0;
  std::uint64_t fe_overflows = 0;
  std::uint64_t fe_requests = 0;
  std::uint64_t fe_submissions = 0;
  std::uint64_t fe_messages = 0;
  std::uint64_t fe_expired_dropped = 0;
  /// Wall-clock watchdog observations (async only; never fingerprinted).
  bool watchdog_armed = false;
  std::uint64_t watchdog_stalls = 0;
  /// Ladder cooldown after the run: windows polled until L0 (or the
  /// recovery bound, whichever came first) — deterministic.
  std::uint64_t recovery_windows = 0;
  int final_level = 0;
};

/// Pre-derives the per-client feature vectors. Streamed per client index
/// so the vectors are identical regardless of execution mode or order.
std::vector<std::vector<features::FeatureVector>> derive_features(
    const CampaignConfig& cfg, const ScenarioShape& shape) {
  const features::SyntheticTraceGenerator traffic;
  const std::size_t total = cfg.benign_clients + cfg.attackers;
  std::vector<std::vector<features::FeatureVector>> out(total);
  for (std::size_t i = 0; i < total; ++i) {
    const bool attacker = i >= cfg.benign_clients;
    common::Rng rng = common::stream_rng(cfg.seed, 0xfea70000ULL + i);
    if (attacker && shape.poison_features) {
      // Poisoning: look benign on even requests, flood on odd ones, so
      // the per-IP EWMA cache averages a half-clean history.
      out[i].push_back(traffic.sample(false, rng));
      out[i].push_back(traffic.sample(true, rng));
    } else {
      out[i].push_back(traffic.sample(attacker, rng));
    }
  }
  return out;
}

RunOutput execute(const reputation::IReputationModel& model,
                  const policy::IPolicy& policy, const CampaignConfig& cfg,
                  const FaultPlan& plan, bool async) {
  const ScenarioShape shape = shape_for(cfg.scenario);
  const std::size_t total = cfg.benign_clients + cfg.attackers;
  if (total == 0) {
    throw std::invalid_argument("run_campaign: no clients configured");
  }

  netsim::EventLoop loop;
  common::Rng net_rng(plan.seed);
  netsim::Network network(loop, net_rng);

  // Campaign base links are draw-free (no jitter, no loss): all
  // randomness in delivery comes from the fault overlay's per-pair
  // derived streams, so adding or removing fault events never perturbs
  // anything else — the property the shrinker relies on.
  netsim::LinkModel link;
  link.base_latency = std::chrono::milliseconds(15);
  link.jitter = common::Duration::zero();
  link.loss_rate = 0.0;
  network.set_default_link(link);
  network.set_fault_stream_seed(plan.seed ^ 0x666175'6c747321ULL);

  common::SkewClock skew_clock(loop.clock());
  framework::ServerConfig server_cfg;
  server_cfg.master_secret = common::bytes_of("powai.campaign.secret.v1");
  server_cfg.verify_threads = cfg.verify_threads;
  server_cfg.rate_limiter_enabled = true;
  server_cfg.rate_limiter.tokens_per_second = cfg.rate_tokens_per_second;
  server_cfg.rate_limiter.burst = cfg.rate_burst;
  if (shape.overload) {
    // Arm the server half of the overload-control loop: a default
    // request deadline (requests also stamp their own) and the
    // degradation ladder. The arrival-rate reference is sized so the
    // flash crowd rides the ladder well past L1 while the benign
    // baseline alone stays calm.
    server_cfg.default_deadline = std::chrono::seconds(8);
    server_cfg.degrade.enabled = true;
    server_cfg.degrade.window = std::chrono::milliseconds(kOverloadWindowMs);
    server_cfg.degrade.arrival_ref_per_s = 60.0;
    server_cfg.degrade.sojourn_ref_ms = 50.0;
    server_cfg.degrade.l1_difficulty_floor = 12;
    server_cfg.degrade.l1_ttl = std::chrono::seconds(5);
  }
  framework::PowServer server(skew_clock, model, policy,
                              std::move(server_cfg));

  std::unique_ptr<framework::AsyncFrontEnd> front_end;
  std::unique_ptr<framework::ServerEndpoint> endpoint;
  if (async) {
    framework::AsyncFrontEndConfig fe_cfg = cfg.front_end;
    // Paused until run_until_idle(): fault hooks install before any
    // batch can pop.
    fe_cfg.start_paused = true;
    // Overload scenario arms the drain watchdog (wall-clock observer;
    // never part of the fingerprint).
    if (shape.overload) fe_cfg.watchdog_stall = kOverloadWatchdogStall;
    front_end = std::make_unique<framework::AsyncFrontEnd>(
        loop, network, kServerHost, server, fe_cfg);
    endpoint = std::make_unique<framework::ServerEndpoint>(
        network, kServerHost, server, *front_end);
  } else {
    endpoint = std::make_unique<framework::ServerEndpoint>(
        network, kServerHost, server);
  }

  const auto features = derive_features(cfg, shape);
  std::vector<std::unique_ptr<CampaignClient>> clients;
  clients.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const bool attacker = i >= cfg.benign_clients;
    ClientSpec spec;
    spec.ip = client_ip(i, attacker);
    spec.hash_cost_us =
        attacker ? shape.attacker_hash_cost_us : kBenignHashCostUs;
    spec.features = features[i];
    spec.n_requests = cfg.requests_per_client *
                      (attacker ? shape.attacker_request_factor : 1);
    spec.gap = attacker ? shape.attacker_gap : shape.benign_gap;
    if (shape.overload) spec.retry = overload_retry_policy(cfg.seed);
    // Benign clients stagger lightly; attackers join on the scenario's
    // ramp (all at once when ramp is zero).
    spec.start_at = attacker
                        ? std::chrono::milliseconds(50) +
                              shape.ramp * static_cast<std::int64_t>(
                                               i - cfg.benign_clients)
                        : std::chrono::milliseconds(30) *
                              static_cast<std::int64_t>(i);
    spec.auto_replay = attacker && shape.auto_replay;
    spec.auto_replay_count = shape.auto_replay_count;
    clients.push_back(
        std::make_unique<CampaignClient>(loop, network, std::move(spec)));
  }

  // --- Schedule the fault plan -------------------------------------------
  // Overlapping link windows compose: losses combine as independent
  // probabilities, jitters and skews add. The shared `active` list is
  // loop-thread-only.
  const common::TimePoint start = loop.now();
  auto active = std::make_shared<std::vector<FaultEvent>>();
  netsim::Network* net = &network;
  auto apply_overlay = [net, active] {
    netsim::LinkFault combined;
    double pass = 1.0;
    for (const FaultEvent& e : *active) {
      if (e.kind == FaultKind::kLinkLossBurst) {
        pass *= 1.0 - e.magnitude;
      } else if (e.kind == FaultKind::kJitterBurst) {
        combined.extra_jitter += millis_dur(e.magnitude);
      }
    }
    combined.extra_loss = 1.0 - pass;
    net->set_fault(combined);
  };
  auto skew_sum = std::make_shared<common::Duration>(common::Duration::zero());
  common::SkewClock* skew = &skew_clock;

  struct Stall final {
    std::size_t shard;
    std::uint64_t first_batch;
    std::uint64_t batches;
    double ms;
  };
  std::vector<Stall> stalls;
  std::vector<Stall> verify_sleeps;  ///< kSlowVerify: first_batch = verify call
  const std::size_t shards = std::max<std::size_t>(1, cfg.front_end.drain_shards);

  for (const FaultEvent& event : plan.events) {
    switch (event.kind) {
      case FaultKind::kLinkLossBurst:
      case FaultKind::kJitterBurst:
        loop.schedule_at(start + event.at, [active, apply_overlay, event] {
          active->push_back(event);
          apply_overlay();
        });
        loop.schedule_at(start + event.at + event.duration,
                         [active, apply_overlay, event] {
                           const auto it = std::find(active->begin(),
                                                     active->end(), event);
                           if (it != active->end()) active->erase(it);
                           apply_overlay();
                         });
        break;
      case FaultKind::kClockSkew:
        loop.schedule_at(start + event.at, [skew, skew_sum, event] {
          *skew_sum += millis_dur(event.magnitude);
          skew->set_skew(*skew_sum);
        });
        loop.schedule_at(start + event.at + event.duration,
                         [skew, skew_sum, event] {
                           *skew_sum -= millis_dur(event.magnitude);
                           skew->set_skew(*skew_sum);
                         });
        break;
      case FaultKind::kDrainStall:
        // Wall-clock-only: stalls a shard's drain thread for a run of
        // batches. Sim time and totals must be unaffected — that is the
        // invariant under test.
        if (async) {
          stalls.push_back(Stall{event.target % shards,
                                 (event.target / 16) % 8, event.count,
                                 event.magnitude});
        }
        break;
      case FaultKind::kMalformedFlood:
        loop.schedule_at(start + event.at,
                         [&clients, total, event] {
                           clients[event.target % total]->send_malformed(
                               event.count);
                         });
        break;
      case FaultKind::kSolverDesertion:
        loop.schedule_at(start + event.at,
                         [&clients, total, event] {
                           clients[event.target % total]->desert_next(
                               event.count);
                         });
        break;
      case FaultKind::kReplayFlood:
        loop.schedule_at(start + event.at,
                         [&clients, total, event] {
                           clients[event.target % total]->replay_last(
                               event.count);
                         });
        break;
      case FaultKind::kSlowVerify:
        // Wall-clock-only like kDrainStall, but on the verification seam:
        // a run of a shard's submission batches sleeps before hitting the
        // verifier. Totals must be unaffected — only wall latency and the
        // watchdog's view of the shard move.
        if (async) {
          verify_sleeps.push_back(Stall{event.target % shards,
                                        (event.target / 16) % 8, event.count,
                                        event.magnitude});
        }
        break;
    }
  }
  if (front_end && (!stalls.empty() || !verify_sleeps.empty())) {
    framework::FrontEndFaultHooks hooks;
    if (!stalls.empty()) {
      hooks.before_batch = [stalls](std::size_t shard,
                                    std::uint64_t batch_index) {
        for (const Stall& s : stalls) {
          if (s.shard == shard && batch_index >= s.first_batch &&
              batch_index < s.first_batch + s.batches) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(s.ms));
          }
        }
      };
    }
    if (!verify_sleeps.empty()) {
      // before_verify reports (shard, batch size) but not a batch index;
      // each slot below is only ever touched by its own drain thread.
      auto verify_calls =
          std::make_shared<std::vector<std::uint64_t>>(shards, 0);
      hooks.before_verify = [verify_sleeps, verify_calls](
                                std::size_t shard, std::size_t submissions) {
        (void)submissions;
        const std::uint64_t index = (*verify_calls)[shard]++;
        for (const Stall& s : verify_sleeps) {
          if (s.shard == shard && index >= s.first_batch &&
              index < s.first_batch + s.batches) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(s.ms));
          }
        }
      };
    }
    front_end->set_fault_hooks(std::move(hooks));
  }

  for (auto& client : clients) client->start();
  if (async) {
    (void)front_end->run_until_idle();
  } else {
    (void)loop.run();
  }

  // --- Collect -----------------------------------------------------------
  RunOutput out;
  out.async = async;
  out.retry_enabled = shape.overload;
  out.ladder_enabled = shape.overload;
  out.tallies.server = server.stats();
  out.tallies.clients.reserve(total);
  for (const auto& client : clients) {
    const ClientTally& t = client->tally();
    ClientOutcome row;
    row.sent = t.sent;
    row.served = t.served;
    row.rejected = t.rejected;
    row.overloaded = t.overloaded;
    row.deserted = t.deserted;
    row.timed_out = t.timed_out;
    row.challenges = t.challenges;
    row.replays_served = t.replays_served;
    out.tallies.clients.push_back(row);

    out.tallies.requests_sent += t.sent;
    out.tallies.answered += t.answered;
    out.tallies.served += t.served;
    out.tallies.deserted += t.deserted;
    out.tallies.timed_out += t.timed_out;
    out.tallies.replays_sent += t.replays_sent;
    out.tallies.replays_served += t.replays_served;
    out.tallies.malformed_sent += t.malformed_sent;
    out.unresolved += t.sent - t.answered - t.deserted;
    out.tallies.hung +=
        t.sent - t.answered - t.deserted - t.wire_lost_request -
        t.wire_lost_submission;
  }
  out.tallies.wire_messages = network.messages_sent();
  out.tallies.wire_dropped = network.messages_dropped();
  out.tallies.fault_dropped = network.fault_dropped();
  out.tallies.sim_elapsed = loop.now() - start;
  // Ladder high-water marks go into the comparable tallies *before* the
  // recovery cooldown below — stepping back down adds transitions, and
  // the fingerprint pins the ride under load, not the cooldown.
  const framework::DegradeStats degrade = server.degrade_stats();
  out.tallies.degrade_max_level =
      static_cast<std::uint64_t>(degrade.max_level);
  out.tallies.degrade_transitions = degrade.transitions;
  if (front_end) {
    out.fe_accepted = front_end->accepted();
    out.fe_completed = front_end->completed();
    out.fe_overflows = front_end->overflows();
    const framework::FrontEndStats fe = front_end->stats();
    out.fe_requests = fe.requests;
    out.fe_submissions = fe.submissions;
    out.fe_messages = fe.messages;
    out.fe_expired_dropped = fe.expired_dropped;
    out.watchdog_armed = shape.overload;
    out.watchdog_stalls = front_end->watchdog_stats().stalls;
  }
  if (shape.overload) {
    // Post-run cooldown: fold empty windows forward until the ladder is
    // back at L0. Deterministic (pure ladder arithmetic), and bounded by
    // the hysteresis: at most levels x calm_windows folds plus EWMA
    // decay — kMaxRecoveryWindows is far above that. Start past the
    // plan's total forward skew: arrivals recorded under a skewed clock
    // advanced the ladder's epoch beyond end-of-run sim time, and polls
    // behind the current epoch fold nothing.
    std::int64_t poll_ms = server.now_ms();
    for (const FaultEvent& e : plan.events) {
      if (e.kind == FaultKind::kClockSkew) {
        poll_ms += static_cast<std::int64_t>(e.magnitude);
      }
    }
    while (server.degrade_level() > 0 &&
           out.recovery_windows < kMaxRecoveryWindows) {
      poll_ms += kOverloadWindowMs;
      ++out.recovery_windows;
      server.poll_degrade(poll_ms);
    }
    out.final_level = server.degrade_level();
  }
  return out;
}

bool plan_contains(const FaultPlan& plan, FaultKind kind) {
  return std::any_of(plan.events.begin(), plan.events.end(),
                     [kind](const FaultEvent& e) { return e.kind == kind; });
}

void check_invariants(const CampaignConfig& cfg, const FaultPlan& plan,
                      const RunOutput& run,
                      std::vector<InvariantViolation>& out) {
  const CampaignTallies& t = run.tallies;
  const framework::ServerStats& s = t.server;

  // Conservation: every unanswered, undeserted request must be explained
  // by a wire drop, and with lossless base links every drop is the fault
  // overlay's doing.
  if (run.unresolved > t.wire_dropped) {
    out.push_back(
        {"conservation",
         std::to_string(run.unresolved) + " unresolved requests but only " +
             std::to_string(t.wire_dropped) + " dropped messages"});
  }
  if (t.wire_dropped != t.fault_dropped) {
    out.push_back({"conservation",
                   "base links are lossless yet dropped=" +
                       std::to_string(t.wire_dropped) + " != fault_dropped=" +
                       std::to_string(t.fault_dropped)});
  }

  // Ledger: the server's request-side counters partition its requests,
  // servings never exceed issuance, and client-observed servings never
  // exceed the server's.
  if (s.requests != s.challenges_issued + s.served_without_pow +
                        s.rejected_rate_limited + s.rejected_malformed +
                        s.shed_deadline_requests + s.shed_degraded_requests) {
    out.push_back({"ledger",
                   "requests=" + std::to_string(s.requests) +
                       " != issued+no_pow+rate_limited+malformed+shed=" +
                       std::to_string(s.challenges_issued +
                                      s.served_without_pow +
                                      s.rejected_rate_limited +
                                      s.rejected_malformed +
                                      s.shed_deadline_requests +
                                      s.shed_degraded_requests)});
  }
  if (s.served > s.challenges_issued + s.served_without_pow) {
    out.push_back({"ledger", "served=" + std::to_string(s.served) +
                                 " exceeds challenges_issued=" +
                                 std::to_string(s.challenges_issued)});
  }
  if (t.served > s.served) {
    out.push_back({"ledger",
                   "clients observed served=" + std::to_string(t.served) +
                       " > server served=" + std::to_string(s.served)});
  }
  if (run.async) {
    if (run.fe_accepted != run.fe_completed) {
      out.push_back({"ledger",
                     "front end accepted=" + std::to_string(run.fe_accepted) +
                         " != completed=" + std::to_string(run.fe_completed) +
                         " after drain"});
    }
    if (run.fe_overflows != s.rejected_overload) {
      out.push_back(
          {"ledger", "queue overflows=" + std::to_string(run.fe_overflows) +
                         " != rejected_overload=" +
                         std::to_string(s.rejected_overload)});
    }
    if (run.fe_requests != s.requests) {
      out.push_back({"ledger",
                     "front end drained " + std::to_string(run.fe_requests) +
                         " requests but server counted " +
                         std::to_string(s.requests)});
    }
    const std::uint64_t submission_outcomes =
        (s.served - s.served_without_pow) + s.rejected_bad_solution +
        s.rejected_expired + s.rejected_replay + s.rejected_binding +
        s.shed_deadline_submissions + s.shed_degraded_submissions;
    if (run.fe_submissions != submission_outcomes) {
      out.push_back(
          {"ledger",
           "front end drained " + std::to_string(run.fe_submissions) +
               " submissions but outcomes sum to " +
               std::to_string(submission_outcomes)});
    }
    if (run.fe_messages !=
        run.fe_requests + run.fe_submissions + run.fe_expired_dropped) {
      out.push_back(
          {"ledger",
           "front end messages=" + std::to_string(run.fe_messages) +
               " != requests+submissions+expired_dropped=" +
               std::to_string(run.fe_requests + run.fe_submissions +
                              run.fe_expired_dropped)});
    }
  }

  // Single redemption: no replayed proof may ever be served again.
  if (t.replays_served != 0) {
    out.push_back({"single_redeem",
                   std::to_string(t.replays_served) +
                       " replayed submissions were served (cache must cap "
                       "redemption at once)"});
  }

  // Rate budget: no client may receive more challenges than its token
  // bucket could have granted. Forward clock skew refills buckets early,
  // so the bound credits the total scheduled skew.
  double skew_extra_s = 0.0;
  for (const FaultEvent& e : plan.events) {
    if (e.kind == FaultKind::kClockSkew) skew_extra_s += e.magnitude / 1000.0;
  }
  const double elapsed_s =
      std::chrono::duration<double>(t.sim_elapsed).count();
  const double budget = cfg.rate_burst +
                        cfg.rate_tokens_per_second * (elapsed_s + skew_extra_s) +
                        1.0;
  for (std::size_t i = 0; i < t.clients.size(); ++i) {
    if (static_cast<double>(t.clients[i].challenges) > budget) {
      out.push_back(
          {"rate_budget",
           "client " + std::to_string(i) + " received " +
               std::to_string(t.clients[i].challenges) +
               " challenges, budget " + std::to_string(budget)});
    }
  }

  // Exactly-once: client retry/timeout closes the liveness hole wire
  // loss opens — with retries armed nothing may end the run unresolved
  // (a request's fate is answered, deserted, or client-side kTimeout).
  if (run.retry_enabled && run.unresolved != 0) {
    out.push_back({"exactly_once",
                   std::to_string(run.unresolved) +
                       " requests left unresolved despite retry/timeout "
                       "(every request must resolve exactly once)"});
  }

  // Shed ledger: shed counters must be consistent with the ladder ride.
  if (!run.ladder_enabled &&
      (s.shed_degraded_requests + s.shed_degraded_submissions != 0 ||
       t.degrade_max_level != 0 || t.degrade_transitions != 0)) {
    out.push_back({"shed_ledger",
                   "ladder disabled yet degraded sheds/transitions nonzero"});
  }
  if (!run.retry_enabled &&
      s.shed_deadline_requests + s.shed_deadline_submissions != 0) {
    // Only the overload scenario stamps deadlines or sets a default.
    out.push_back({"shed_ledger",
                   "no deadlines configured yet deadline sheds nonzero"});
  }
  if (s.shed_queue_requests + s.shed_queue_submissions != 0) {
    // The simulator's pump freezes sim time while batches are in flight,
    // so a message can never expire *inside* the queue here; queue-pop
    // shedding is a wall-deployment path (unit-tested directly).
    out.push_back({"shed_ledger",
                   "queue-pop sheds in simulation (in-queue expiry is "
                   "structurally impossible under the frozen-clock pump)"});
  }
  if (t.degrade_max_level < 3 && s.shed_degraded_submissions != 0) {
    out.push_back({"shed_ledger",
                   "submission sheds without the ladder reaching L3"});
  }
  if (t.degrade_max_level < 2 && s.shed_degraded_requests != 0) {
    out.push_back({"shed_ledger",
                   "issuance sheds without the ladder reaching L2"});
  }

  // Recovery: once load stops, hysteresis bounds the walk back to L0.
  if (run.ladder_enabled && run.final_level != 0) {
    out.push_back({"degrade_recovery",
                   "ladder still at L" + std::to_string(run.final_level) +
                       " after " + std::to_string(run.recovery_windows) +
                       " cooldown windows"});
  }

  // Watchdog (one-sided): a single injected wall-clock sleep comfortably
  // past the stall deadline must be flagged. Only sound when the stalled
  // shard is guaranteed traffic from its first batch on, so the check is
  // scoped to single-shard runs and events targeting batch run 0;
  // derived plans (sleeps <= 8ms << 625ms) never arm it — hand-built
  // plans in the acceptance tests do.
  if (run.async && run.watchdog_armed && cfg.front_end.drain_shards <= 1 &&
      run.fe_messages > 0) {
    double worst_ms = 0.0;
    for (const FaultEvent& e : plan.events) {
      const bool executes =
          (e.kind == FaultKind::kDrainStall) ||
          (e.kind == FaultKind::kSlowVerify && run.fe_submissions > 0);
      if (executes && (e.target / 16) % 8 == 0) {
        worst_ms = std::max(worst_ms, e.magnitude);
      }
    }
    const double stall_ms =
        std::chrono::duration<double, std::milli>(kOverloadWatchdogStall)
            .count();
    if (worst_ms >= 2.5 * stall_ms && run.watchdog_stalls == 0) {
      out.push_back({"watchdog",
                     "injected " + std::to_string(worst_ms) +
                         "ms stall never flagged (deadline " +
                         std::to_string(stall_ms) + "ms)"});
    }
  }
}

}  // namespace

std::string_view scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::kBotnetRampUp: return "botnet_ramp_up";
    case Scenario::kReplayFlood: return "replay_flood";
    case Scenario::kReputationPoisoning: return "reputation_poisoning";
    case Scenario::kSolveFarm: return "solve_farm";
    case Scenario::kOverloadFlashCrowd: return "overload_flash_crowd";
  }
  return "unknown";
}

std::optional<Scenario> scenario_from_name(std::string_view name) {
  for (const Scenario scenario : kAllScenarios) {
    if (scenario_name(scenario) == name) return scenario;
  }
  return std::nullopt;
}

std::string CampaignTallies::fingerprint() const {
  std::string out;
  const auto add = [&out](const char* key, std::uint64_t value) {
    out += key;
    out += std::to_string(value);
  };
  add("req=", requests_sent);
  add(" ans=", answered);
  add(" served=", served);
  add(" deserted=", deserted);
  add(" timed_out=", timed_out);
  add(" hung=", hung);
  add(" replay_sent=", replays_sent);
  add(" replay_served=", replays_served);
  add(" malformed=", malformed_sent);
  add(" wire=", wire_messages);
  add("/", wire_dropped);
  add("/", fault_dropped);
  add(" sim_ns=", static_cast<std::uint64_t>(sim_elapsed.count()));
  add(" | srv req=", server.requests);
  add(" iss=", server.challenges_issued);
  add(" served=", server.served);
  add(" rl=", server.rejected_rate_limited);
  add(" bad=", server.rejected_bad_solution);
  add(" exp=", server.rejected_expired);
  add(" rep=", server.rejected_replay);
  add(" bind=", server.rejected_binding);
  add(" ovl=", server.rejected_overload);
  add(" shed_dl=", server.shed_deadline_requests);
  add("/", server.shed_deadline_submissions);
  add(" shed_q=", server.shed_queue_requests);
  add("/", server.shed_queue_submissions);
  add(" shed_deg=", server.shed_degraded_requests);
  add("/", server.shed_degraded_submissions);
  add(" deg=", degrade_max_level);
  add("/", degrade_transitions);
  add(" dsum=", server.difficulty_sum);
  out += " |";
  for (const ClientOutcome& c : clients) {
    add(" ", c.sent);
    add(":", c.served);
    add(":", c.rejected);
    add(":", c.overloaded);
    add(":", c.deserted);
    add(":", c.timed_out);
    add(":", c.challenges);
    add(":", c.replays_served);
  }
  return out;
}

CampaignResult run_campaign_with_plan(
    const reputation::IReputationModel& model, const policy::IPolicy& policy,
    const CampaignConfig& config, const FaultPlan& plan) {
  const auto t0 = std::chrono::steady_clock::now();
  CampaignResult result;
  result.plan = plan;

  const RunOutput primary = execute(model, policy, config, plan, true);
  result.tallies = primary.tallies;
  result.watchdog_stalls = primary.watchdog_stalls;
  result.recovery_windows = primary.recovery_windows;
  check_invariants(config, plan, primary, result.violations);

  if (config.check_sync_equivalence) {
    const RunOutput twin = execute(model, policy, config, plan, false);
    if (twin.tallies != primary.tallies) {
      result.violations.push_back(
          {"async_sync_divergence",
           "async: " + primary.tallies.fingerprint() +
               "\n  sync: " + twin.tallies.fingerprint()});
    }
  }

  if (config.fail_on_kind && plan_contains(plan, *config.fail_on_kind)) {
    result.violations.push_back(
        {"test_hook", "plan contains " +
                          std::string(fault_kind_name(*config.fail_on_kind))});
  }

  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

CampaignResult run_campaign(const reputation::IReputationModel& model,
                            const policy::IPolicy& policy,
                            const CampaignConfig& config) {
  return run_campaign_with_plan(model, policy, config,
                                FaultPlan::derive(config.seed, config.plan));
}

std::string ShrinkReport::replay_command(Scenario scenario) const {
  std::string cmd = "run_campaigns scenario=" +
                    std::string(scenario_name(scenario)) +
                    " seed=" + std::to_string(minimized.seed);
  if (!minimized.is_full()) cmd += " keep=" + minimized.keep_spec();
  return cmd;
}

ShrinkReport shrink_failing_plan(const reputation::IReputationModel& model,
                                 const policy::IPolicy& policy,
                                 const CampaignConfig& config,
                                 const CampaignResult& failure,
                                 std::size_t max_runs) {
  ShrinkReport report;
  report.minimized = failure.plan;
  report.result = failure;

  // ddmin-style greedy pass over the *schedule*: drop chunks (halves,
  // then smaller) and keep any candidate that still fails. The seed is
  // untouched, and surviving events are byte-identical under subsetting,
  // so every candidate run replays exactly.
  bool progress = true;
  while (progress && report.minimized.events.size() > 1 &&
         report.runs < max_runs) {
    progress = false;
    const std::size_t n = report.minimized.events.size();
    for (std::size_t chunk = n / 2; chunk >= 1 && !progress; chunk /= 2) {
      for (std::size_t begin = 0;
           begin + chunk <= report.minimized.events.size() && !progress;
           begin += chunk) {
        std::vector<std::size_t> keep;
        keep.reserve(report.minimized.events.size() - chunk);
        for (std::size_t i = 0; i < report.minimized.events.size(); ++i) {
          if (i < begin || i >= begin + chunk) keep.push_back(i);
        }
        if (keep.empty()) continue;
        const FaultPlan candidate = report.minimized.subset(keep);
        const CampaignResult attempt =
            run_campaign_with_plan(model, policy, config, candidate);
        ++report.runs;
        if (!attempt.passed()) {
          report.minimized = candidate;
          report.result = attempt;
          progress = true;
        }
        if (report.runs >= max_runs) break;
      }
    }
  }
  return report;
}

SweepOutcome run_campaign_sweep(const reputation::IReputationModel& model,
                                const policy::IPolicy& policy,
                                const CampaignConfig& config,
                                std::uint64_t seed0, std::size_t max_seeds,
                                double budget_s) {
  SweepOutcome outcome;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < max_seeds; ++i) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (outcome.campaigns > 0 && elapsed >= budget_s) break;
    CampaignConfig cfg = config;
    cfg.seed = seed0 + i;
    const CampaignResult result = run_campaign(model, policy, cfg);
    ++outcome.campaigns;
    outcome.last_seed = cfg.seed;
    const framework::ServerStats& s = result.tallies.server;
    outcome.shed_deadline +=
        s.shed_deadline_requests + s.shed_deadline_submissions;
    outcome.shed_queue += s.shed_queue_requests + s.shed_queue_submissions;
    outcome.shed_degraded +=
        s.shed_degraded_requests + s.shed_degraded_submissions;
    outcome.timed_out += result.tallies.timed_out;
    outcome.degrade_max_level =
        std::max(outcome.degrade_max_level, result.tallies.degrade_max_level);
    outcome.watchdog_stalls += result.watchdog_stalls;
    if (!result.passed()) {
      outcome.failing_seed = cfg.seed;
      outcome.failure =
          shrink_failing_plan(model, policy, cfg, result);
      break;
    }
  }
  return outcome;
}

}  // namespace powai::sim
