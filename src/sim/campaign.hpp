#pragma once
/// \file campaign.hpp
/// Deterministic adversarial campaigns: execute a seed-derived FaultPlan
/// against the full wire stack (netsim::Network + AsyncFrontEnd +
/// PowServer) while a population of benign clients and scenario-shaped
/// attackers runs the protocol, then check invariants that must survive
/// *any* fault schedule:
///
///   conservation   — every sent request's fate is accounted: answered +
///                    deserted + lost-on-send + hung, with hung bounded
///                    by wire drops (and exactly zero without loss);
///   ledger         — the server/front-end/queue counters balance
///                    (requests in == outcomes out, accepted ==
///                    completed, overflow NAKs == rejected_overload);
///   single-redeem  — a replayed, already-redeemed proof is never served
///                    again;
///   rate budget    — no client is issued more challenges than its
///                    token-bucket budget over the run;
///   async == sync  — the asynchronous transport produces bit-identical
///                    tallies to the synchronous shim under the same
///                    fault plan (drain stalls may change batching, never
///                    totals);
///   exactly-once   — with client retries enabled (overload scenario)
///                    every request resolves exactly once: answered,
///                    deserted, or client-side kTimeout — never hung;
///   shed ledger    — shed counters are consistent with the ladder ride
///                    (no degraded shedding below the level that sheds,
///                    none at all while the ladder is disabled) and the
///                    overload scenario's ladder returns to L0 within a
///                    bounded recovery window once load stops;
///   watchdog       — an injected wall-clock stall comfortably past the
///                    watchdog deadline must be flagged (one-sided:
///                    absence of injection asserts nothing).
///
/// A campaign is a pure function of (model, policy, config, seed): two
/// runs — on any machine, at any drain_shards / verify_threads setting —
/// produce identical fault schedules and identical tallies. Failures
/// therefore replay from one command line, and a failing schedule can be
/// shrunk by bisecting its event list (see shrink_failing_plan).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "framework/async_front_end.hpp"
#include "framework/server.hpp"
#include "policy/policy.hpp"
#include "reputation/model.hpp"
#include "sim/fault_plan.hpp"

namespace powai::sim {

/// Attack scenarios: who the attackers are and how they misbehave on top
/// of the scheduled fault events.
enum class Scenario : std::uint8_t {
  kBotnetRampUp = 0,         ///< attackers join staggered, then flood
  kReplayFlood = 1,          ///< attackers re-submit every redeemed proof
  kReputationPoisoning = 2,  ///< attackers alternate benign-looking and
                             ///< malicious traffic to poison the cache
  kSolveFarm = 3,            ///< attackers outsource solving (cheap hashes)
  kOverloadFlashCrowd = 4,   ///< flash crowd with the full overload-control
                             ///< loop armed: deadlines, degradation ladder,
                             ///< client retries, stall watchdog
};

inline constexpr std::array<Scenario, 5> kAllScenarios = {
    Scenario::kBotnetRampUp, Scenario::kReplayFlood,
    Scenario::kReputationPoisoning, Scenario::kSolveFarm,
    Scenario::kOverloadFlashCrowd};

[[nodiscard]] std::string_view scenario_name(Scenario scenario);
[[nodiscard]] std::optional<Scenario> scenario_from_name(
    std::string_view name);

struct CampaignConfig final {
  Scenario scenario = Scenario::kBotnetRampUp;
  std::uint64_t seed = 1;

  std::size_t benign_clients = 5;
  std::size_t attackers = 3;
  std::size_t requests_per_client = 5;

  /// Fault derivation knobs (the scenario may further shape behavior but
  /// never the schedule — the schedule is (seed, plan) only).
  FaultPlanConfig plan;

  /// Transport shape. Campaign invariants hold at any setting; capacity
  /// defaults are generous so backpressure NAKs stay a scheduled fault's
  /// doing, not an artifact of a tiny queue.
  framework::AsyncFrontEndConfig front_end{.queue_capacity = 1024,
                                           .max_batch = 16,
                                           .drain_shards = 2,
                                           .start_paused = false};
  std::size_t verify_threads = 2;

  /// Per-IP issuance budget the rate-budget invariant checks against.
  double rate_tokens_per_second = 40.0;
  double rate_burst = 30.0;

  /// Run the synchronous twin and require bit-identical tallies
  /// (disable only for speed in wide sweeps; the acceptance tests keep
  /// it on).
  bool check_sync_equivalence = true;

  /// Test hook for the minimizer: report a violation iff the *executed*
  /// plan contains an event of this kind. Lets tests verify end to end
  /// that shrinking converges to a minimal failing schedule without
  /// planting a real bug.
  std::optional<FaultKind> fail_on_kind;
};

/// One invariant breach. `invariant` is a stable identifier
/// ("conservation", "ledger", "single_redeem", "rate_budget",
/// "async_sync_divergence", "exactly_once", "shed_ledger",
/// "degrade_recovery", "watchdog", "test_hook"); detail is
/// human-readable.
struct InvariantViolation final {
  std::string invariant;
  std::string detail;
};

/// Per-client outcome row (index = campaign client index, benign first).
struct ClientOutcome final {
  std::uint64_t sent = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deserted = 0;
  std::uint64_t timed_out = 0;  ///< resolved by the client retry budget
  std::uint64_t challenges = 0;
  std::uint64_t replays_served = 0;

  bool operator==(const ClientOutcome&) const = default;
};

/// Everything that must be bit-identical across reruns, machines, and
/// execution shapes (drain shards, verify threads, sync vs async).
/// Wall-clock time and batching diagnostics are deliberately absent.
struct CampaignTallies final {
  framework::ServerStats server;
  std::vector<ClientOutcome> clients;
  std::uint64_t requests_sent = 0;
  std::uint64_t answered = 0;
  std::uint64_t served = 0;
  std::uint64_t deserted = 0;
  std::uint64_t timed_out = 0;  ///< resolved client-side after retry budget
  std::uint64_t hung = 0;  ///< no response by run end (lost in flight)
  std::uint64_t replays_sent = 0;
  std::uint64_t replays_served = 0;
  std::uint64_t malformed_sent = 0;
  std::uint64_t wire_messages = 0;
  std::uint64_t wire_dropped = 0;
  std::uint64_t fault_dropped = 0;
  /// Degradation-ladder ride (deterministic: windowed folds of sim-time
  /// signals — see degrade.hpp). Zero when the scenario leaves the
  /// ladder disabled.
  std::uint64_t degrade_max_level = 0;
  std::uint64_t degrade_transitions = 0;
  common::Duration sim_elapsed{};

  /// Canonical string form — the equality the bit-reproducibility and
  /// async==sync checks compare, and the line a repro artifact records.
  [[nodiscard]] std::string fingerprint() const;

  bool operator==(const CampaignTallies&) const = default;
};

struct CampaignResult final {
  FaultPlan plan;
  CampaignTallies tallies;
  std::vector<InvariantViolation> violations;
  double wall_s = 0.0;
  /// Overload-control observations from the primary (async) run: stall
  /// episodes the drain watchdog flagged (wall clock, diagnostics only)
  /// and ladder cooldown windows polled until L0 after the run.
  std::uint64_t watchdog_stalls = 0;
  std::uint64_t recovery_windows = 0;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

/// Derives the fault plan for config.seed and executes the campaign
/// (asynchronous transport, plus the synchronous twin when
/// check_sync_equivalence is set). The model must be fitted.
[[nodiscard]] CampaignResult run_campaign(
    const reputation::IReputationModel& model, const policy::IPolicy& policy,
    const CampaignConfig& config);

/// Same, but executes an explicit (possibly shrunken) plan instead of
/// deriving one from config.seed — the replay and minimization entry
/// point.
[[nodiscard]] CampaignResult run_campaign_with_plan(
    const reputation::IReputationModel& model, const policy::IPolicy& policy,
    const CampaignConfig& config, const FaultPlan& plan);

/// Minimization outcome: the smallest failing sub-plan found by
/// bisecting the *schedule* (the seed never changes, so every candidate
/// replays exactly).
struct ShrinkReport final {
  FaultPlan minimized;
  CampaignResult result;     ///< the failing run of `minimized`
  std::size_t runs = 0;      ///< campaign executions spent shrinking

  /// One-line replay invocation for the run_campaigns driver.
  [[nodiscard]] std::string replay_command(Scenario scenario) const;
};

/// Delta-minimizes a failing plan: repeatedly drops event chunks
/// (halves, then smaller) and keeps any candidate that still fails,
/// until 1-minimal or \p max_runs campaign executions are spent. The
/// result's event list is always a subset of the input's.
[[nodiscard]] ShrinkReport shrink_failing_plan(
    const reputation::IReputationModel& model, const policy::IPolicy& policy,
    const CampaignConfig& config, const CampaignResult& failure,
    std::size_t max_runs = 48);

/// Seed-sweep outcome (CI entry point): campaigns executed, the first
/// failure (if any) already minimized, and overload-control aggregates
/// for the sweep summary line.
struct SweepOutcome final {
  std::size_t campaigns = 0;
  std::uint64_t last_seed = 0;        ///< last seed executed
  std::optional<ShrinkReport> failure;
  std::optional<std::uint64_t> failing_seed;
  /// Summed per-stage shed counters across the sweep's campaigns.
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_queue = 0;
  std::uint64_t shed_degraded = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t degrade_max_level = 0;  ///< max over campaigns
  std::uint64_t watchdog_stalls = 0;    ///< summed stall episodes
};

/// Runs campaigns for seeds [seed0, seed0 + max_seeds) until the
/// wall-clock budget is exhausted or a campaign fails; a failure is
/// shrunk before returning.
[[nodiscard]] SweepOutcome run_campaign_sweep(
    const reputation::IReputationModel& model, const policy::IPolicy& policy,
    const CampaignConfig& config, std::uint64_t seed0, std::size_t max_seeds,
    double budget_s);

}  // namespace powai::sim
