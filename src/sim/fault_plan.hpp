#pragma once
/// \file fault_plan.hpp
/// Seed-derived fault schedules: the data half of the deterministic
/// adversarial-simulation layer (FoundationDB-style). A FaultPlan is a
/// small, sorted list of FaultEvents derived *purely* from one uint64
/// seed through crypto::DerivedDrbg — event i is a function of (seed, i)
/// and nothing else, so
///
///   - the same seed yields the same schedule on every machine, thread
///     count, and transport mode;
///   - removing events (shrinking a failing schedule) never changes the
///     events that remain — the property delta-minimization relies on.
///
/// Campaigns (see campaign.hpp) execute plans against the full
/// netsim + AsyncFrontEnd + PowServer stack and check invariants; the
/// run_campaigns driver sweeps seeds and minimizes failures.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

namespace powai::sim {

/// The fault taxonomy. Every kind maps onto one injection seam:
/// netsim (loss/jitter), the async front end (stall), the server's
/// clock (skew), or client behavior (floods/desertion/replay).
enum class FaultKind : std::uint8_t {
  kLinkLossBurst = 0,   ///< window of extra loss on every link
  kJitterBurst = 1,     ///< window of extra delivery jitter
  kDrainStall = 2,      ///< wall-clock stall of a drain shard's batches
  kClockSkew = 3,       ///< server clock jumps ahead for a window
  kMalformedFlood = 4,  ///< burst of undecodable wire bytes at the server
  kSolverDesertion = 5, ///< a client abandons its next challenges
  kReplayFlood = 6,     ///< a client re-submits an already-redeemed proof
  kSlowVerify = 7,      ///< wall-clock delay before a batch's verification
};

inline constexpr std::array<FaultKind, 8> kAllFaultKinds = {
    FaultKind::kLinkLossBurst,   FaultKind::kJitterBurst,
    FaultKind::kDrainStall,      FaultKind::kClockSkew,
    FaultKind::kMalformedFlood,  FaultKind::kSolverDesertion,
    FaultKind::kReplayFlood,     FaultKind::kSlowVerify,
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind kind);
[[nodiscard]] std::optional<FaultKind> fault_kind_from_name(
    std::string_view name);

/// One scheduled fault. Field meaning varies by kind (see describe()):
/// magnitude is a probability for loss bursts, milliseconds for
/// jitter/skew/stall; count sizes floods, desertions, replays, and
/// stalled-batch runs; target picks a client (mod population) or shard
/// (mod shard count).
struct FaultEvent final {
  FaultKind kind = FaultKind::kLinkLossBurst;
  common::Duration at{};        ///< activation offset from campaign start
  common::Duration duration{};  ///< window length (bursts and skew)
  double magnitude = 0.0;
  std::uint32_t count = 0;
  std::uint32_t target = 0;

  /// One-line human-readable form ("t=+2.0s loss burst p=0.42 for 1.5s").
  [[nodiscard]] std::string describe() const;

  bool operator==(const FaultEvent&) const = default;
};

/// Derivation knobs. Defaults shape schedules that finish inside a
/// CI-sized campaign while still crossing every defense path.
struct FaultPlanConfig final {
  std::size_t min_events = 3;
  std::size_t max_events = 10;
  /// Activation times are drawn from [0, horizon).
  common::Duration horizon = std::chrono::seconds(20);
  /// Burst/skew windows last (0, max_window].
  common::Duration max_window = std::chrono::seconds(5);
  double max_loss = 0.9;                                   ///< loss bursts
  common::Duration max_jitter = std::chrono::milliseconds(40);
  common::Duration max_skew = std::chrono::seconds(180);   ///< > verifier ttl
  common::Duration max_stall = std::chrono::milliseconds(8);  ///< wall clock
  /// kSlowVerify sleep ceiling (wall clock, like max_stall — totals
  /// must be unaffected; only batching shape and wall latency move).
  common::Duration max_verify_sleep = std::chrono::milliseconds(8);
  std::uint32_t max_count = 16;
  /// Kinds eligible for derivation (all by default). Scenarios narrow or
  /// re-weight this, e.g. a replay-flood campaign guarantees replays.
  std::vector<FaultKind> kinds{kAllFaultKinds.begin(), kAllFaultKinds.end()};
};

/// A derived (or shrunken) schedule. `kept` maps each event back to its
/// index in the originally derived plan, so a minimized repro is
/// expressible as "seed S, keep=i,j,k" — one replayable command line.
struct FaultPlan final {
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;  ///< sorted by activation time
  std::vector<std::size_t> kept;   ///< parallel: original indices
  /// Event count of the untouched derivation this plan descends from.
  /// Distinguishes "keeps the prefix {0,1} of 5 events" from "is the
  /// whole 2-event plan" — without it a prefix subset would replay as
  /// the full schedule.
  std::size_t derived_events = 0;

  /// Derives the schedule for \p seed: event count and every event field
  /// come from independent DerivedDrbg streams keyed by (seed, event
  /// index). Throws std::invalid_argument on an empty cfg.kinds or
  /// min_events > max_events.
  [[nodiscard]] static FaultPlan derive(std::uint64_t seed,
                                        const FaultPlanConfig& cfg = {});

  /// The sub-plan keeping only \p keep (indices into this->events, must
  /// be sorted and in range). Composes `kept` so the result still refers
  /// to the originally derived indices.
  [[nodiscard]] FaultPlan subset(const std::vector<std::size_t>& keep) const;

  /// True when this plan is the untouched derivation (kept == identity).
  [[nodiscard]] bool is_full() const;

  /// Multi-line human-readable schedule.
  [[nodiscard]] std::string summary() const;

  /// The `keep=` argument value for the replay command line ("2,5,7";
  /// empty string when the plan is full).
  [[nodiscard]] std::string keep_spec() const;

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace powai::sim
