#include "sim/latency_model.hpp"

#include <cmath>
#include <stdexcept>

namespace powai::sim {

void LatencyModel::validate() const {
  if (one_way_ms < 0.0 || jitter_ms < 0.0 || server_proc_ms < 0.0 ||
      hash_cost_us <= 0.0) {
    throw std::invalid_argument("LatencyModel: negative/zero parameters");
  }
}

double LatencyModel::end_to_end_ms(std::uint64_t attempts,
                                   common::Rng& rng) const {
  validate();
  double total = server_proc_ms +
                 static_cast<double>(attempts) * hash_cost_us / 1000.0;
  for (int leg = 0; leg < 4; ++leg) {
    total += one_way_ms;
    if (jitter_ms > 0.0) total += rng.uniform(0.0, jitter_ms);
  }
  return total;
}

double LatencyModel::end_to_end_ms_expected(double attempts) const {
  validate();
  // Expected jitter per leg is jitter/2.
  return 4.0 * (one_way_ms + jitter_ms / 2.0) + server_proc_ms +
         attempts * hash_cost_us / 1000.0;
}

std::uint64_t sample_attempts(unsigned difficulty, common::Rng& rng) {
  if (difficulty == 0) return 1;
  if (difficulty > 62) {
    throw std::invalid_argument("sample_attempts: difficulty > 62");
  }
  const double p = std::pow(2.0, -static_cast<double>(difficulty));
  // Inverse CDF of the geometric distribution: ceil(ln U / ln(1-p)).
  double u = rng.uniform01();
  while (u <= 0.0) u = rng.uniform01();
  const double draw = std::ceil(std::log(u) / std::log1p(-p));
  return draw < 1.0 ? 1 : static_cast<std::uint64_t>(draw);
}

}  // namespace powai::sim
