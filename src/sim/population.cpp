#include "sim/population.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/drbg.hpp"

namespace powai::sim {

namespace {
/// Stream ids under a client key (see derivation tree in the header).
constexpr std::uint64_t kWeightStream = 0;
constexpr std::uint64_t kGapStreamBase = 1;

/// Pareto(alpha) with scale chosen so the mean is \p mean:
/// xm = mean * (alpha - 1) / alpha, X = xm * U^(-1/alpha), U in (0, 1].
double pareto_with_mean(double mean, double alpha, double u01) {
  const double xm = mean * (alpha - 1.0) / alpha;
  const double u = 1.0 - u01;  // uniform01 is [0,1); flip to (0,1]
  return xm * std::pow(u, -1.0 / alpha);
}
}  // namespace

bool parse_arrival_process(const std::string& name, ArrivalProcess& out) {
  if (name == "poisson") {
    out = ArrivalProcess::kPoisson;
  } else if (name == "diurnal") {
    out = ArrivalProcess::kDiurnal;
  } else if (name == "pareto") {
    out = ArrivalProcess::kPareto;
  } else if (name == "flash") {
    out = ArrivalProcess::kFlashCrowd;
  } else {
    return false;
  }
  return true;
}

const char* arrival_process_name(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
    case ArrivalProcess::kPareto:
      return "pareto";
    case ArrivalProcess::kFlashCrowd:
      return "flash";
  }
  return "?";
}

void ArrivalConfig::validate() const {
  if (!(mean_interarrival_ms > 0.0)) {
    throw std::invalid_argument("ArrivalConfig: mean_interarrival_ms <= 0");
  }
  if (process == ArrivalProcess::kDiurnal) {
    if (!(diurnal_period_ms > 0.0)) {
      throw std::invalid_argument("ArrivalConfig: diurnal_period_ms <= 0");
    }
    if (!(diurnal_depth >= 0.0) || diurnal_depth >= 1.0) {
      // depth == 1 would zero the rate at the trough — an infinite gap.
      throw std::invalid_argument(
          "ArrivalConfig: diurnal_depth outside [0, 1)");
    }
  }
  if (process == ArrivalProcess::kPareto && !(pareto_alpha > 1.0)) {
    throw std::invalid_argument(
        "ArrivalConfig: pareto_alpha must exceed 1 (finite mean)");
  }
  if (process == ArrivalProcess::kFlashCrowd) {
    if (!(flash_factor >= 1.0)) {
      throw std::invalid_argument("ArrivalConfig: flash_factor < 1");
    }
    if (!(flash_at_ms >= 0.0)) {
      throw std::invalid_argument("ArrivalConfig: flash_at_ms < 0");
    }
  }
}

ClientPopulation::ClientPopulation(PopulationConfig config)
    : config_(std::move(config)) {
  if (config_.clients == 0) {
    throw std::invalid_argument("ClientPopulation: clients == 0");
  }
  config_.arrivals.validate();
  if (config_.weight_alpha != 0.0 && !(config_.weight_alpha > 1.0)) {
    throw std::invalid_argument(
        "ClientPopulation: weight_alpha must be 0 or > 1");
  }
  const auto base = features::IpAddress::parse(config_.base_ip);
  if (!base) {
    throw std::invalid_argument("ClientPopulation: malformed base_ip '" +
                                config_.base_ip + "'");
  }
  const std::uint64_t room =
      (std::uint64_t{1} << 32) - static_cast<std::uint64_t>(base->value());
  if (config_.clients > room) {
    throw std::invalid_argument(
        "ClientPopulation: range wraps past 255.255.255.255");
  }
  base_ = base->value();

  // The one O(n) pass: client keys off the DerivedDrbg family. Each key
  // is the first u64 of stream(i) — a pure function of (seed, i), so
  // the table's content does not depend on construction order and two
  // populations with the same config are identical.
  const std::uint64_t seed = config_.seed;
  const common::Bytes seed_bytes{
      static_cast<std::uint8_t>(seed >> 56),
      static_cast<std::uint8_t>(seed >> 48),
      static_cast<std::uint8_t>(seed >> 40),
      static_cast<std::uint8_t>(seed >> 32),
      static_cast<std::uint8_t>(seed >> 24),
      static_cast<std::uint8_t>(seed >> 16),
      static_cast<std::uint8_t>(seed >> 8),
      static_cast<std::uint8_t>(seed)};
  const crypto::DerivedDrbg family(seed_bytes,
                                   common::bytes_of("powai-population"));
  keys_.reserve(config_.clients);
  for (std::size_t i = 0; i < config_.clients; ++i) {
    keys_.push_back(family.next_u64(static_cast<std::uint64_t>(i)));
  }
}

std::string ClientPopulation::ip_of(std::size_t i) const {
  return address_of(i).to_string();
}

features::IpAddress ClientPopulation::address_of(std::size_t i) const {
  if (i >= keys_.size()) {
    throw std::out_of_range("ClientPopulation: client index out of range");
  }
  return features::IpAddress(base_ + static_cast<std::uint32_t>(i));
}

std::size_t ClientPopulation::index_of(features::IpAddress ip) const {
  if (ip.value() < base_) return npos;
  const std::uint64_t offset = ip.value() - base_;
  return offset < keys_.size() ? static_cast<std::size_t>(offset) : npos;
}

double ClientPopulation::weight_of(std::size_t i) const {
  if (config_.weight_alpha == 0.0) return 1.0;
  common::Rng rng = common::stream_rng(keys_.at(i), kWeightStream);
  return pareto_with_mean(1.0, config_.weight_alpha, rng.uniform01());
}

common::Duration ClientPopulation::gap_before(std::size_t i, std::uint64_t n,
                                              double now_ms) const {
  const ArrivalConfig& a = config_.arrivals;
  // One derived stream per (client, request ordinal): the draw is
  // reproducible regardless of when — or on which thread — the harness
  // asks for it.
  common::Rng rng = common::stream_rng(keys_.at(i), kGapStreamBase + n);
  const double mean_ms = a.mean_interarrival_ms / weight_of(i);

  double gap_ms = 0.0;
  switch (a.process) {
    case ArrivalProcess::kPoisson:
      gap_ms = rng.exponential(1.0) * mean_ms;
      break;
    case ArrivalProcess::kDiurnal: {
      // Rate-modulated exponential: the instantaneous rate at `now`
      // follows a sinusoidal day curve. (Gap-level approximation of an
      // inhomogeneous Poisson process — exact as gaps shrink relative
      // to the period, and deterministic per (i, n, now).)
      const double phase =
          2.0 * std::numbers::pi * (now_ms / a.diurnal_period_ms);
      const double rate_factor = 1.0 + a.diurnal_depth * std::sin(phase);
      gap_ms = rng.exponential(1.0) * mean_ms / rate_factor;
      break;
    }
    case ArrivalProcess::kPareto:
      gap_ms = pareto_with_mean(mean_ms, a.pareto_alpha, rng.uniform01());
      break;
    case ArrivalProcess::kFlashCrowd: {
      const double rate_factor = now_ms >= a.flash_at_ms ? a.flash_factor : 1.0;
      gap_ms = rng.exponential(1.0) * mean_ms / rate_factor;
      break;
    }
  }
  return common::Duration(
      static_cast<common::Duration::rep>(std::llround(gap_ms * 1e6)));
}

}  // namespace powai::sim
