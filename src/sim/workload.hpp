#pragma once
/// \file workload.hpp
/// Client populations for the attack simulations: each simulated client
/// owns an IP, a ground-truth class, a fixed attribute vector (what the
/// server-side observer would have measured for it), and request-arrival
/// behaviour.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "features/dataset.hpp"
#include "features/synthetic.hpp"

namespace powai::sim {

/// One simulated client.
struct SimClient final {
  features::IpAddress ip;
  bool malicious = false;
  features::FeatureVector features;

  /// Mean request inter-arrival time in milliseconds. Benign clients
  /// browse (seconds apart); attackers flood (as fast as the PoW allows,
  /// bounded below by this interval).
  double mean_interarrival_ms = 1000.0;
};

struct WorkloadConfig final {
  std::size_t benign_clients = 90;
  std::size_t attackers = 10;
  double benign_mean_interarrival_ms = 1000.0;
  double attacker_mean_interarrival_ms = 20.0;  ///< 50 req/s per bot
  features::SyntheticConfig traffic;            ///< feature distributions
};

/// Builds a population: benign clients then attackers, features sampled
/// from the synthetic profiles (same generator family the reputation
/// model is trained on).
[[nodiscard]] std::vector<SimClient> make_population(
    const WorkloadConfig& config, common::Rng& rng);

/// Labeled training data drawn from the same feature distributions —
/// what the deployment would have learned from its threat feed.
[[nodiscard]] features::Dataset make_training_set(
    const WorkloadConfig& config, std::size_t benign_rows,
    std::size_t malicious_rows, common::Rng& rng);

}  // namespace powai::sim
