#pragma once
/// \file adversary.hpp
/// Adversary strategies against the framework, each targeting one of the
/// defenses §II relies on:
///
///   replay       — solve once, resubmit many times (vs the replay cache)
///   forge        — self-issue easy puzzles (vs the issuer MAC)
///   downgrade    — rewrite the difficulty field (vs the MAC again)
///   steal        — submit a victim's solved puzzle from another IP
///                  (vs client binding)
///   precompute   — start solving from guessed seeds before requesting
///                  (vs DRBG seed unpredictability)
///   sybil        — rotate source IPs to dodge per-IP reputation memory
///                  (limits of IP-keyed scoring; partially mitigated)
///
/// Each strategy runs a fixed number of service attempts against a real
/// PowServer and reports how many were actually served. The experiment
/// regenerates the security table in EXPERIMENTS.md.

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "framework/server.hpp"
#include "policy/policy.hpp"
#include "reputation/model.hpp"

namespace powai::sim {

/// Outcome of one adversary strategy.
struct AdversaryReport final {
  std::string strategy;
  std::uint64_t attempts = 0;       ///< service attempts made
  std::uint64_t served = 0;         ///< times the resource was obtained
  std::uint64_t hashes_spent = 0;   ///< total solver work invested
  std::string note;                 ///< one-line interpretation

  [[nodiscard]] double success_rate() const {
    return attempts > 0
               ? static_cast<double>(served) / static_cast<double>(attempts)
               : 0.0;
  }
};

struct AdversaryConfig final {
  std::uint64_t attempts_per_strategy = 25;
  std::uint64_t seed = 99;
  /// Attacker source (inside the malicious block by default).
  std::string attacker_ip = "203.0.0.66";
  /// A benign victim whose solutions the "steal" strategy replays.
  std::string victim_ip = "10.0.0.5";
};

/// Runs every strategy against a fresh PowServer built from \p model and
/// \p pol (model must be fitted). Deterministic given the seed.
[[nodiscard]] std::vector<AdversaryReport> run_adversaries(
    const AdversaryConfig& config, const reputation::IReputationModel& model,
    const policy::IPolicy& pol);

/// Renders reports as a table.
[[nodiscard]] common::Table adversary_table(
    const std::vector<AdversaryReport>& reports);

}  // namespace powai::sim
