#pragma once
/// \file population.hpp
/// Million-client populations for the load harnesses. Where
/// workload.hpp's SimClient carries a full feature vector per client
/// (right for the 10^2-client attack experiments), a ClientPopulation
/// keeps exactly one 64-bit derived key per client — 8 bytes — and
/// computes everything else (address, activity weight, every
/// inter-arrival gap) as a pure function of that key on demand. That is
/// what lets `run_wire_load` model 10^5–10^6 clients without the
/// per-client-object footprint dominating the simulation.
///
/// Derivation tree (all deterministic in `seed`, order-independent):
///
///   DerivedDrbg(seed bytes, "powai-population")
///     └── stream(i).next_u64()            = client key k_i   (cached, 8 B)
///           ├── stream_rng(k_i, 0)        → activity weight draw
///           └── stream_rng(k_i, 1 + n)    → n-th inter-arrival draw
///
/// Because gap(i, n) depends only on (seed, i, n) — never on call order
/// or thread interleaving — histories derived from a population are
/// bit-identical across serial, pooled, and sharded runs, the same
/// contract the issuance path keeps (see framework/server.hpp).
///
/// Arrival processes (per client, rate scaled by its weight):
///   kPoisson     exponential gaps — the memoryless baseline
///   kDiurnal     exponential gaps with a sinusoidal rate curve
///   kPareto      Pareto(alpha) gaps — heavy-tailed bursts and lulls
///   kFlashCrowd  exponential gaps; rate steps up by flash_factor at
///                flash_at_ms (the stampede the PoW defense must absorb)

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "features/ip_address.hpp"

namespace powai::sim {

enum class ArrivalProcess : std::uint8_t {
  kPoisson,
  kDiurnal,
  kPareto,
  kFlashCrowd,
};

/// Names usable in configs/CLI (poisson, diurnal, pareto, flash);
/// returns false on an unknown name.
[[nodiscard]] bool parse_arrival_process(const std::string& name,
                                         ArrivalProcess& out);
[[nodiscard]] const char* arrival_process_name(ArrivalProcess p);

struct ArrivalConfig final {
  ArrivalProcess process = ArrivalProcess::kPoisson;

  /// Mean gap between one client's requests at weight 1.0 (the
  /// population mean when weights are uniform).
  double mean_interarrival_ms = 1000.0;

  /// kDiurnal: rate multiplied by 1 + depth * sin(2*pi * t / period).
  /// depth in [0, 1); period > 0.
  double diurnal_period_ms = 60'000.0;
  double diurnal_depth = 0.5;

  /// kPareto: shape of the gap distribution; > 1 so the mean exists
  /// (the scale is chosen to preserve mean_interarrival_ms).
  double pareto_alpha = 1.5;

  /// kFlashCrowd: at flash_at_ms the whole population's rate steps up
  /// by flash_factor (>= 1).
  double flash_at_ms = 10'000.0;
  double flash_factor = 10.0;

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

struct PopulationConfig final {
  std::size_t clients = 100'000;

  /// First client address; client i lives at base_ip + i (must leave
  /// room for `clients` addresses — Network::add_host_group enforces
  /// the same bound at attach time).
  std::string base_ip = "10.0.0.0";

  /// Root of the derivation tree (see file comment).
  std::uint64_t seed = 1;

  ArrivalConfig arrivals;

  /// Heavy-tailed per-client activity: weight_i ~ Pareto(weight_alpha)
  /// normalized to mean 1 when > 0 (a few hot clients, a long tail of
  /// quiet ones); 0 = every client at weight 1.0. Must be 0 or > 1.
  double weight_alpha = 0.0;
};

class ClientPopulation final {
 public:
  /// Materializes the per-client keys (8 bytes each — the only O(n)
  /// state). Throws std::invalid_argument on a malformed config.
  explicit ClientPopulation(PopulationConfig config);

  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] const PopulationConfig& config() const { return config_; }

  /// Client i's address: base_ip + i (dotted quad).
  [[nodiscard]] std::string ip_of(std::size_t i) const;
  [[nodiscard]] features::IpAddress address_of(std::size_t i) const;

  /// Inverse of ip_of: the index owning \p ip, or npos when outside the
  /// population's range. O(1) — how a shared wire handler recovers the
  /// client from a transport-level source address.
  [[nodiscard]] std::size_t index_of(features::IpAddress ip) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Client i's activity weight (>= 0, mean ~1). Pure function of
  /// (seed, i); O(1), no per-call state.
  [[nodiscard]] double weight_of(std::size_t i) const;

  /// Gap before client i's n-th request (n counts from 0), with the
  /// process evaluated at simulated time \p now_ms. Pure function of
  /// (seed, i, n, now_ms for the time-varying processes) — call-order
  /// and thread independent.
  [[nodiscard]] common::Duration gap_before(std::size_t i, std::uint64_t n,
                                            double now_ms) const;

  /// Resident footprint: the key table (the point: ~8 bytes/client).
  [[nodiscard]] std::size_t memory_bytes() const {
    return sizeof(ClientPopulation) + keys_.capacity() * sizeof(std::uint64_t);
  }

 private:
  PopulationConfig config_;
  std::uint32_t base_ = 0;          ///< parsed base_ip
  std::vector<std::uint64_t> keys_;  ///< per-client derived keys
};

}  // namespace powai::sim
