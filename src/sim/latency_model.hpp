#pragma once
/// \file latency_model.hpp
/// The calibrated end-to-end latency model used to reproduce Figure 2.
///
/// The paper measures wall-clock latency on a live testbed; we model the
/// same quantity as
///
///   latency = 4 legs of one-way network delay        (steps 1, 4, 5, 7)
///           + server processing                      (steps 2, 3, 6)
///           + attempts × per-hash cost               (step: solving)
///
/// Calibration anchors (EXPERIMENTS.md): the paper reports ~31 ms to
/// solve a 1-difficult puzzle, and its Figure 2 tops out near ~900 ms for
/// Policy 2 at reputation 10 (difficulty 15). Defaults below hit both:
/// 4 × 7.5 ms + 0.6 ms ≈ 31 ms fixed overhead, and 2^15·ln2 ≈ 22.7k
/// median attempts × 38 µs ≈ 863 ms on top for d = 15.

#include <cstdint>

#include "common/rng.hpp"

namespace powai::sim {

struct LatencyModel final {
  double one_way_ms = 7.5;       ///< client↔server propagation, per leg
  double jitter_ms = 0.6;        ///< uniform [0, j] extra per leg
  double server_proc_ms = 0.6;   ///< scoring + policy + issue + verify
  double hash_cost_us = 38.0;    ///< solver cost per SHA-256 attempt

  /// End-to-end latency for a round trip whose solve took \p attempts
  /// hashes. Randomness only enters through per-leg jitter.
  [[nodiscard]] double end_to_end_ms(std::uint64_t attempts,
                                     common::Rng& rng) const;

  /// Deterministic version (no jitter) for closed-form sanity checks.
  [[nodiscard]] double end_to_end_ms_expected(double attempts) const;

  /// Validates parameters (throws std::invalid_argument).
  void validate() const;
};

/// Samples a geometric attempts-to-solve count for difficulty \p d
/// (success probability 2^-d per attempt) via inverse-CDF. Matches the
/// distribution of the real solver's attempt counter without hashing.
[[nodiscard]] std::uint64_t sample_attempts(unsigned difficulty,
                                            common::Rng& rng);

}  // namespace powai::sim
