#pragma once
/// \file throttling.hpp
/// The headline experiment: does the AI-assisted PoW framework throttle
/// untrustworthy traffic while leaving benign clients usable? (Abstract:
/// "our approach effectively throttles untrustworthy trafﬁc".)
///
/// An event-driven simulation runs a mixed population against a single
/// server with finite CPU:
///   * benign clients: closed loop with think time (a browse pattern);
///   * attackers: open-loop flood at a fixed request rate, each bot
///     owning one CPU that must solve puzzles sequentially.
/// With PoW disabled the flood saturates the server and benign latency
/// explodes; with the framework enabled the reputation model hands
/// attackers hard puzzles, bounding their *service* load by their solve
/// rate.

#include <cstdint>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "policy/policy.hpp"
#include "reputation/model.hpp"
#include "sim/latency_model.hpp"
#include "sim/workload.hpp"

namespace powai::sim {

struct ThrottlingConfig final {
  WorkloadConfig workload;

  double duration_s = 30.0;    ///< simulated time
  double service_ms = 2.0;     ///< server CPU per served resource
  double issue_ms = 0.05;      ///< server CPU per challenge issued
  double verify_ms = 0.05;     ///< server CPU per verification
  LatencyModel latency;        ///< network + client hash cost

  bool pow_enabled = true;

  /// true = clients really hash (exact pipeline incl. verification);
  /// false = attempts sampled from the geometric distribution and
  /// verification assumed correct (fast; used by tests).
  bool real_hashing = true;

  std::uint64_t seed = 7;
};

/// Per-class outcome.
struct ClassReport final {
  std::uint64_t requests = 0;     ///< requests sent
  std::uint64_t served = 0;       ///< resources received
  common::Samples latency_ms;     ///< request→response, served only
  double goodput_rps = 0.0;       ///< served / duration
  double mean_difficulty = 0.0;   ///< over issued challenges

  [[nodiscard]] double median_latency_ms() const {
    return latency_ms.empty() ? 0.0 : latency_ms.median();
  }
};

struct ThrottlingReport final {
  ClassReport benign;
  ClassReport attacker;
  double server_utilization = 0.0;  ///< busy CPU / duration

  /// Two-row summary table (benign / attacker).
  [[nodiscard]] common::Table to_table() const;
};

/// Runs the simulation. \p model must be fitted; both references must
/// outlive the call.
[[nodiscard]] ThrottlingReport run_throttling(
    const ThrottlingConfig& config, const reputation::IReputationModel& model,
    const policy::IPolicy& pol);

}  // namespace powai::sim
