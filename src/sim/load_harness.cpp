#include "sim/load_harness.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "framework/client.hpp"

namespace powai::sim {

double LoadReport::issued_per_s() const {
  return wall_s > 0.0
             ? static_cast<double>(server_delta.challenges_issued) / wall_s
             : 0.0;
}

double LoadReport::served_per_s() const {
  return wall_s > 0.0 ? static_cast<double>(served) / wall_s : 0.0;
}

LoadHarness::LoadHarness(framework::PowServer& server, LoadHarnessConfig config)
    : server_(&server), config_(std::move(config)) {
  if (config_.client_threads == 0 || config_.requests_per_client == 0) {
    throw std::invalid_argument(
        "LoadHarness: client_threads and requests_per_client must be > 0");
  }
}

std::string load_client_ip(std::size_t index) {
  return "10." + std::to_string((index >> 16) & 0xff) + "." +
         std::to_string((index >> 8) & 0xff) + "." +
         std::to_string(index & 0xff);
}

LoadReport LoadHarness::run(
    const std::vector<features::FeatureVector>& features) {
  if (features.empty()) {
    throw std::invalid_argument("LoadHarness: features must be non-empty");
  }

  // Per-thread tallies; folded after the join so the client loop itself
  // shares nothing but the server.
  struct Tally {
    std::uint64_t round_trips = 0;
    std::uint64_t served = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t rate_limited = 0;
    std::uint64_t other = 0;
    std::uint64_t attempts = 0;
  };
  std::vector<Tally> tallies(config_.client_threads);

  const framework::ServerStats before = server_->stats();
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(config_.client_threads);
  for (std::size_t t = 0; t < config_.client_threads; ++t) {
    threads.emplace_back([this, t, &features, &tallies, &go] {
      framework::ClientConfig cc;
      cc.solver_threads = config_.solver_threads;
      cc.max_attempts = config_.solver_max_attempts;
      framework::PowClient client(load_client_ip(t), cc);
      const features::FeatureVector& fv = features[t % features.size()];
      Tally& tally = tallies[t];
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < config_.requests_per_client; ++i) {
        const framework::RoundTrip trip =
            client.run(*server_, config_.path, fv);
        ++tally.round_trips;
        tally.attempts += trip.attempts;
        if (trip.served) {
          ++tally.served;
        } else if (trip.response.status == common::ErrorCode::kTimeout) {
          ++tally.timeouts;
        } else if (trip.response.status == common::ErrorCode::kRateLimited) {
          ++tally.rate_limited;
        } else {
          ++tally.other;
        }
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  LoadReport report;
  report.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (const Tally& tally : tallies) {
    report.round_trips += tally.round_trips;
    report.served += tally.served;
    report.solve_timeouts += tally.timeouts;
    report.rate_limited += tally.rate_limited;
    report.rejected_other += tally.other;
    report.solve_attempts += tally.attempts;
  }
  report.server_delta = server_->stats() - before;
  return report;
}

}  // namespace powai::sim
