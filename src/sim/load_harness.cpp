#include "sim/load_harness.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>

#include "framework/client.hpp"
#include "framework/transport.hpp"
#include "netsim/network.hpp"

namespace powai::sim {

double LoadReport::issued_per_s() const {
  return wall_s > 0.0
             ? static_cast<double>(server_delta.challenges_issued) / wall_s
             : 0.0;
}

double LoadReport::served_per_s() const {
  return wall_s > 0.0 ? static_cast<double>(served) / wall_s : 0.0;
}

double LoadReport::hashes_per_s() const {
  return wall_s > 0.0 ? static_cast<double>(solve_attempts) / wall_s : 0.0;
}

double LoadReport::server_bytes_per_client() const {
  return clients > 0 ? static_cast<double>(server_memory_bytes) /
                           static_cast<double>(clients)
                     : 0.0;
}

namespace {
/// FNV-1a over a little-endian integer widened to 8 bytes.
std::uint64_t fold_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

std::uint64_t fold_issue_record(std::uint64_t fingerprint,
                                const IssueRecord& record) {
  std::uint64_t h = fold_u64(fingerprint, record.request_id);
  h = fold_u64(h, record.challenged ? 1 : 0);
  h = fold_u64(h, record.puzzle_id);
  h = fold_u64(h, record.difficulty);
  h = fold_u64(h, static_cast<std::uint64_t>(record.issued_at_ms));
  h = fold_u64(h, static_cast<std::uint64_t>(record.outcome));
  h = fold_u64(h, record.seed.size());
  for (const std::uint8_t byte : record.seed) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t history_fingerprint(const ClientHistory& history) {
  std::uint64_t h = kFingerprintSeed;
  for (const IssueRecord& record : history) h = fold_issue_record(h, record);
  return h;
}

LoadHarness::LoadHarness(framework::PowServer& server, LoadHarnessConfig config)
    : server_(&server), config_(std::move(config)) {
  if (config_.client_threads == 0 || config_.requests_per_client == 0) {
    throw std::invalid_argument(
        "LoadHarness: client_threads and requests_per_client must be > 0");
  }
}

IssueRecord make_issue_record(const framework::RoundTrip& trip) {
  IssueRecord record;
  record.request_id = trip.request_id;
  record.challenged = trip.challenged;
  if (trip.challenged) {
    record.puzzle_id = trip.puzzle.puzzle_id;
    record.seed = trip.puzzle.seed;
    record.difficulty = trip.puzzle.difficulty;
    record.issued_at_ms = trip.puzzle.issued_at_ms;
  }
  record.outcome = trip.response.status;
  return record;
}

IssueRecord make_issue_record(const framework::Challenge& challenge) {
  IssueRecord record;
  record.request_id = challenge.request_id;
  record.challenged = true;
  record.puzzle_id = challenge.puzzle.puzzle_id;
  record.seed = challenge.puzzle.seed;
  record.difficulty = challenge.puzzle.difficulty;
  record.issued_at_ms = challenge.puzzle.issued_at_ms;
  return record;
}

std::string load_client_ip(std::size_t index) {
  return "10." + std::to_string((index >> 16) & 0xff) + "." +
         std::to_string((index >> 8) & 0xff) + "." +
         std::to_string(index & 0xff);
}

LoadReport LoadHarness::run(
    const std::vector<features::FeatureVector>& features) {
  if (features.empty()) {
    throw std::invalid_argument("LoadHarness: features must be non-empty");
  }

  // Per-thread tallies; folded after the join so the client loop itself
  // shares nothing but the server.
  struct Tally {
    std::uint64_t round_trips = 0;
    std::uint64_t served = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t rate_limited = 0;
    std::uint64_t other = 0;
    std::uint64_t attempts = 0;
  };
  std::vector<Tally> tallies(config_.client_threads);
  std::vector<ClientHistory> histories(
      config_.capture_history ? config_.client_threads : 0);

  const framework::ServerStats before = server_->stats();
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(config_.client_threads);
  for (std::size_t t = 0; t < config_.client_threads; ++t) {
    threads.emplace_back([this, t, &features, &tallies, &histories, &go] {
      framework::ClientConfig cc;
      cc.solver_threads = config_.solver_threads;
      cc.max_attempts = config_.solver_max_attempts;
      framework::PowClient client(load_client_ip(t), cc);
      const features::FeatureVector& fv = features[t % features.size()];
      Tally& tally = tallies[t];
      if (config_.capture_history) {
        histories[t].reserve(config_.requests_per_client);
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < config_.requests_per_client; ++i) {
        const framework::RoundTrip trip =
            client.run(*server_, config_.path, fv);
        ++tally.round_trips;
        tally.attempts += trip.attempts;
        if (trip.served) {
          ++tally.served;
        } else if (trip.response.status == common::ErrorCode::kTimeout) {
          ++tally.timeouts;
        } else if (trip.response.status == common::ErrorCode::kRateLimited) {
          ++tally.rate_limited;
        } else {
          ++tally.other;
        }
        if (config_.capture_history) {
          // Each thread writes only its own slot; per-client order is
          // this client's send order by construction.
          histories[t].push_back(make_issue_record(trip));
        }
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  LoadReport report;
  report.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (const Tally& tally : tallies) {
    report.round_trips += tally.round_trips;
    report.served += tally.served;
    report.solve_timeouts += tally.timeouts;
    report.rate_limited += tally.rate_limited;
    report.rejected_other += tally.other;
    report.solve_attempts += tally.attempts;
  }
  report.clients = config_.client_threads;
  report.server_memory_bytes = server_->memory_bytes();
  report.server_delta = server_->stats() - before;
  report.histories = std::move(histories);
  return report;
}

// ---------------------------------------------------------------------------
// Wire mode
// ---------------------------------------------------------------------------

WireLoadReport run_wire_load(const reputation::IReputationModel& model,
                             const policy::IPolicy& policy,
                             framework::ServerConfig server_cfg,
                             const std::vector<features::FeatureVector>& features,
                             WireLoadConfig cfg) {
  if (features.empty()) {
    throw std::invalid_argument("run_wire_load: features must be non-empty");
  }
  if (cfg.clients == 0 || cfg.requests_per_client == 0) {
    throw std::invalid_argument(
        "run_wire_load: clients and requests_per_client must be > 0");
  }

  netsim::EventLoop loop;
  common::Rng net_rng(cfg.net_seed);
  netsim::Network network(loop, net_rng);
  network.set_default_link(cfg.link);

  framework::PowServer server(loop.clock(), model, policy,
                              std::move(server_cfg));

  // Both transports share one endpoint class; the front-end reference
  // flips it into async mode.
  std::unique_ptr<framework::AsyncFrontEnd> front_end;
  std::unique_ptr<framework::ServerEndpoint> endpoint;
  if (cfg.async) {
    front_end = std::make_unique<framework::AsyncFrontEnd>(
        loop, network, cfg.server_host, server, cfg.front_end);
    endpoint = std::make_unique<framework::ServerEndpoint>(
        network, cfg.server_host, server, *front_end);
  } else {
    endpoint = std::make_unique<framework::ServerEndpoint>(
        network, cfg.server_host, server);
  }

  WireLoadReport report;
  report.clients = cfg.clients;
  if (cfg.capture_history) report.histories.resize(cfg.clients);
  if (cfg.capture_fingerprints) {
    report.history_fingerprints.assign(cfg.clients, kFingerprintSeed);
  }

  // All clients ride one host-group registration + one slot table —
  // O(1) simulation state per client (the WireClient-per-client shape
  // tops out long before 10^5). Addresses are identical to the old
  // shape: load_client_ip(i) == 10.0.0.0 + i, so goldens carry over.
  framework::WireClientPool pool(loop, network, load_client_ip(0),
                                 cfg.clients, cfg.server_host,
                                 cfg.client_hash_cost_us);
  if (cfg.retry.enabled) {
    // Resends rebuild the identical payload from the request source, so
    // the retried request converges on the same puzzle id server-side.
    pool.set_retry_policy(
        cfg.retry, [&features, path = cfg.path](std::size_t client) {
          return std::make_pair(path, features[client % features.size()]);
        });
  }

  // Optional heavy-tailed think time between one client's exchanges.
  std::unique_ptr<ClientPopulation> population;
  if (cfg.pace_arrivals) {
    PopulationConfig pc;
    pc.clients = cfg.clients;
    pc.base_ip = load_client_ip(0);
    pc.seed = cfg.population_seed;
    pc.arrivals = cfg.arrivals;
    pc.weight_alpha = cfg.weight_alpha;
    population = std::make_unique<ClientPopulation>(std::move(pc));
  }

  // Per-client driver state. The pending record mirrors what
  // capture_history keeps in the history tail, so fingerprints fold the
  // exact records a history run would store — including a challenged
  // record left unanswered by a lossy link (folded at the end with its
  // default outcome, as the history path would record it).
  struct ClientState {
    std::size_t sent = 0;
    IssueRecord pending;
    bool has_pending = false;
  };
  std::vector<ClientState> clients(cfg.clients);

  if (cfg.capture_history || cfg.capture_fingerprints) {
    // Challenge and response handlers both run on the loop thread, so
    // the per-client state needs no synchronization. In the closed
    // loop a request's response always follows its own challenge, so
    // "does the last record carry my id" decides append vs finalize.
    pool.set_challenge_observer(
        [&report, &clients, &cfg](std::size_t ci,
                                  const framework::Challenge& challenge) {
          if (cfg.capture_history) {
            report.histories[ci].push_back(make_issue_record(challenge));
          }
          if (cfg.capture_fingerprints) {
            ClientState& state = clients[ci];
            if (state.has_pending) {
              report.history_fingerprints[ci] = fold_issue_record(
                  report.history_fingerprints[ci], state.pending);
            }
            state.pending = make_issue_record(challenge);
            state.has_pending = true;
          }
        });
  }

  const framework::ServerStats before = server.stats();
  const common::TimePoint sim_start = loop.now();

  // Closed loop: each response triggers the client's next request —
  // immediately, or after the population's think-time gap when paced. A
  // request dropped by a lossy link also moves on — otherwise one lost
  // message would stall that client forever.
  std::function<void(std::size_t)> kick = [&](std::size_t ci) {
    ClientState& state = clients[ci];
    while (state.sent < cfg.requests_per_client) {
      const std::uint64_t ordinal = state.sent++;
      if (population) {
        const double now_ms =
            common::to_millis_f(loop.now().time_since_epoch());
        loop.schedule_in(
            population->gap_before(ci, ordinal, now_ms), [&, ci] {
              ++report.sent;
              if (pool.send_request(ci, cfg.path,
                                    features[ci % features.size()]) == 0) {
                kick(ci);  // dropped by the link; move on
              }
            });
        return;  // the response (or drop) continues the loop
      }
      ++report.sent;
      const std::uint64_t id =
          pool.send_request(ci, cfg.path, features[ci % features.size()]);
      if (id != 0) return;  // in flight; the callback continues the loop
    }
  };

  pool.set_response_handler([&](std::size_t ci,
                                const framework::Response& response,
                                common::Duration) {
    ++report.answered;
    if (response.status == common::ErrorCode::kOk) {
      ++report.served;
    } else if (response.status == common::ErrorCode::kUnavailable) {
      ++report.overloaded;
    } else {
      ++report.rejected;
    }
    if (cfg.capture_history) {
      ClientHistory& history = report.histories[ci];
      if (!history.empty() && history.back().challenged &&
          history.back().request_id == response.request_id) {
        history.back().outcome = response.status;
      } else {
        IssueRecord record;
        record.request_id = response.request_id;
        record.outcome = response.status;
        history.push_back(std::move(record));
      }
    }
    if (cfg.capture_fingerprints) {
      ClientState& state = clients[ci];
      if (state.has_pending && state.pending.challenged &&
          state.pending.request_id == response.request_id) {
        state.pending.outcome = response.status;
      } else {
        if (state.has_pending) {
          report.history_fingerprints[ci] = fold_issue_record(
              report.history_fingerprints[ci], state.pending);
        }
        state.pending = IssueRecord{};
        state.pending.request_id = response.request_id;
        state.pending.outcome = response.status;
      }
      report.history_fingerprints[ci] =
          fold_issue_record(report.history_fingerprints[ci], state.pending);
      state.has_pending = false;
    }
    kick(ci);
  });

  for (std::size_t i = 0; i < cfg.clients; ++i) kick(i);

  const auto t0 = std::chrono::steady_clock::now();
  if (cfg.async && cfg.front_end.start_paused) {
    // Staged mode: play the wire against the paused drain first, so the
    // initial pile-up (and every overload total) is deterministic, then
    // drain the backlog.
    report.events = loop.run();
  }
  report.events += cfg.async ? front_end->run_until_idle() : loop.run();
  const auto t1 = std::chrono::steady_clock::now();

  report.wall_s = std::chrono::duration<double>(t1 - t0).count();
  report.sim_elapsed = loop.now() - sim_start;
  report.unanswered = report.sent - report.answered;
  report.messages_sent = network.messages_sent();
  report.server_delta = server.stats() - before;
  if (front_end) {
    report.front_end = front_end->stats();
    report.watchdog_stalls = front_end->watchdog_stats().stalls;
  }

  if (cfg.capture_fingerprints) {
    // Challenges whose response was lost stay pending; fold them with
    // their default outcome, exactly as the history path records them.
    for (std::size_t i = 0; i < cfg.clients; ++i) {
      if (clients[i].has_pending) {
        report.history_fingerprints[i] = fold_issue_record(
            report.history_fingerprints[i], clients[i].pending);
      }
    }
  }

  report.server_memory_bytes = server.memory_bytes();
  report.network_memory_bytes = network.memory_bytes();
  report.client_memory_bytes =
      pool.memory_bytes() +
      (population ? population->memory_bytes() : 0);
  return report;
}

}  // namespace powai::sim
