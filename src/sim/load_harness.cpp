#include "sim/load_harness.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>

#include "framework/client.hpp"
#include "framework/transport.hpp"
#include "netsim/network.hpp"

namespace powai::sim {

double LoadReport::issued_per_s() const {
  return wall_s > 0.0
             ? static_cast<double>(server_delta.challenges_issued) / wall_s
             : 0.0;
}

double LoadReport::served_per_s() const {
  return wall_s > 0.0 ? static_cast<double>(served) / wall_s : 0.0;
}

double LoadReport::hashes_per_s() const {
  return wall_s > 0.0 ? static_cast<double>(solve_attempts) / wall_s : 0.0;
}

LoadHarness::LoadHarness(framework::PowServer& server, LoadHarnessConfig config)
    : server_(&server), config_(std::move(config)) {
  if (config_.client_threads == 0 || config_.requests_per_client == 0) {
    throw std::invalid_argument(
        "LoadHarness: client_threads and requests_per_client must be > 0");
  }
}

IssueRecord make_issue_record(const framework::RoundTrip& trip) {
  IssueRecord record;
  record.request_id = trip.request_id;
  record.challenged = trip.challenged;
  if (trip.challenged) {
    record.puzzle_id = trip.puzzle.puzzle_id;
    record.seed = trip.puzzle.seed;
    record.difficulty = trip.puzzle.difficulty;
    record.issued_at_ms = trip.puzzle.issued_at_ms;
  }
  record.outcome = trip.response.status;
  return record;
}

IssueRecord make_issue_record(const framework::Challenge& challenge) {
  IssueRecord record;
  record.request_id = challenge.request_id;
  record.challenged = true;
  record.puzzle_id = challenge.puzzle.puzzle_id;
  record.seed = challenge.puzzle.seed;
  record.difficulty = challenge.puzzle.difficulty;
  record.issued_at_ms = challenge.puzzle.issued_at_ms;
  return record;
}

std::string load_client_ip(std::size_t index) {
  return "10." + std::to_string((index >> 16) & 0xff) + "." +
         std::to_string((index >> 8) & 0xff) + "." +
         std::to_string(index & 0xff);
}

LoadReport LoadHarness::run(
    const std::vector<features::FeatureVector>& features) {
  if (features.empty()) {
    throw std::invalid_argument("LoadHarness: features must be non-empty");
  }

  // Per-thread tallies; folded after the join so the client loop itself
  // shares nothing but the server.
  struct Tally {
    std::uint64_t round_trips = 0;
    std::uint64_t served = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t rate_limited = 0;
    std::uint64_t other = 0;
    std::uint64_t attempts = 0;
  };
  std::vector<Tally> tallies(config_.client_threads);
  std::vector<ClientHistory> histories(
      config_.capture_history ? config_.client_threads : 0);

  const framework::ServerStats before = server_->stats();
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(config_.client_threads);
  for (std::size_t t = 0; t < config_.client_threads; ++t) {
    threads.emplace_back([this, t, &features, &tallies, &histories, &go] {
      framework::ClientConfig cc;
      cc.solver_threads = config_.solver_threads;
      cc.max_attempts = config_.solver_max_attempts;
      framework::PowClient client(load_client_ip(t), cc);
      const features::FeatureVector& fv = features[t % features.size()];
      Tally& tally = tallies[t];
      if (config_.capture_history) {
        histories[t].reserve(config_.requests_per_client);
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < config_.requests_per_client; ++i) {
        const framework::RoundTrip trip =
            client.run(*server_, config_.path, fv);
        ++tally.round_trips;
        tally.attempts += trip.attempts;
        if (trip.served) {
          ++tally.served;
        } else if (trip.response.status == common::ErrorCode::kTimeout) {
          ++tally.timeouts;
        } else if (trip.response.status == common::ErrorCode::kRateLimited) {
          ++tally.rate_limited;
        } else {
          ++tally.other;
        }
        if (config_.capture_history) {
          // Each thread writes only its own slot; per-client order is
          // this client's send order by construction.
          histories[t].push_back(make_issue_record(trip));
        }
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  LoadReport report;
  report.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (const Tally& tally : tallies) {
    report.round_trips += tally.round_trips;
    report.served += tally.served;
    report.solve_timeouts += tally.timeouts;
    report.rate_limited += tally.rate_limited;
    report.rejected_other += tally.other;
    report.solve_attempts += tally.attempts;
  }
  report.server_delta = server_->stats() - before;
  report.histories = std::move(histories);
  return report;
}

// ---------------------------------------------------------------------------
// Wire mode
// ---------------------------------------------------------------------------

WireLoadReport run_wire_load(const reputation::IReputationModel& model,
                             const policy::IPolicy& policy,
                             framework::ServerConfig server_cfg,
                             const std::vector<features::FeatureVector>& features,
                             WireLoadConfig cfg) {
  if (features.empty()) {
    throw std::invalid_argument("run_wire_load: features must be non-empty");
  }
  if (cfg.clients == 0 || cfg.requests_per_client == 0) {
    throw std::invalid_argument(
        "run_wire_load: clients and requests_per_client must be > 0");
  }

  netsim::EventLoop loop;
  common::Rng net_rng(cfg.net_seed);
  netsim::Network network(loop, net_rng);
  network.set_default_link(cfg.link);

  framework::PowServer server(loop.clock(), model, policy,
                              std::move(server_cfg));

  // Both transports share one endpoint class; the front-end reference
  // flips it into async mode.
  std::unique_ptr<framework::AsyncFrontEnd> front_end;
  std::unique_ptr<framework::ServerEndpoint> endpoint;
  if (cfg.async) {
    front_end = std::make_unique<framework::AsyncFrontEnd>(
        loop, network, cfg.server_host, server, cfg.front_end);
    endpoint = std::make_unique<framework::ServerEndpoint>(
        network, cfg.server_host, server, *front_end);
  } else {
    endpoint = std::make_unique<framework::ServerEndpoint>(
        network, cfg.server_host, server);
  }

  WireLoadReport report;
  if (cfg.capture_history) report.histories.resize(cfg.clients);

  struct ClientState {
    std::unique_ptr<framework::WireClient> wire;
    std::size_t sent = 0;
  };
  std::vector<ClientState> clients(cfg.clients);
  for (std::size_t i = 0; i < cfg.clients; ++i) {
    clients[i].wire = std::make_unique<framework::WireClient>(
        loop, network, load_client_ip(i), cfg.server_host,
        cfg.client_hash_cost_us);
    if (cfg.capture_history) {
      // Challenge and response handlers both run on the loop thread, so
      // the per-client vector needs no synchronization. In the closed
      // loop a request's response always follows its own challenge, so
      // "does the last record carry my id" decides append vs finalize.
      clients[i].wire->set_challenge_observer(
          [&report, i](const framework::Challenge& challenge) {
            report.histories[i].push_back(make_issue_record(challenge));
          });
    }
  }
  const framework::ServerStats before = server.stats();
  const common::TimePoint sim_start = loop.now();

  // Closed loop: each response triggers the client's next request. A
  // request dropped by a lossy link also moves on — otherwise one lost
  // message would stall that client forever.
  std::function<void(std::size_t)> kick = [&](std::size_t ci) {
    ClientState& state = clients[ci];
    while (state.sent < cfg.requests_per_client) {
      ++state.sent;
      ++report.sent;
      const std::uint64_t id = state.wire->send_request(
          cfg.path, features[ci % features.size()],
          [&report, &kick, &cfg, ci](const framework::Response& response,
                                     common::Duration) {
            ++report.answered;
            if (response.status == common::ErrorCode::kOk) {
              ++report.served;
            } else if (response.status == common::ErrorCode::kUnavailable) {
              ++report.overloaded;
            } else {
              ++report.rejected;
            }
            if (cfg.capture_history) {
              ClientHistory& history = report.histories[ci];
              if (!history.empty() && history.back().challenged &&
                  history.back().request_id == response.request_id) {
                history.back().outcome = response.status;
              } else {
                IssueRecord record;
                record.request_id = response.request_id;
                record.outcome = response.status;
                history.push_back(std::move(record));
              }
            }
            kick(ci);
          });
      if (id != 0) return;  // in flight; the callback continues the loop
    }
  };
  for (std::size_t i = 0; i < cfg.clients; ++i) kick(i);

  const auto t0 = std::chrono::steady_clock::now();
  if (cfg.async && cfg.front_end.start_paused) {
    // Staged mode: play the wire against the paused drain first, so the
    // initial pile-up (and every overload total) is deterministic, then
    // drain the backlog.
    report.events = loop.run();
  }
  report.events += cfg.async ? front_end->run_until_idle() : loop.run();
  const auto t1 = std::chrono::steady_clock::now();

  report.wall_s = std::chrono::duration<double>(t1 - t0).count();
  report.sim_elapsed = loop.now() - sim_start;
  report.unanswered = report.sent - report.answered;
  report.messages_sent = network.messages_sent();
  report.server_delta = server.stats() - before;
  if (front_end) report.front_end = front_end->stats();
  return report;
}

}  // namespace powai::sim
