#pragma once
/// \file fig2.hpp
/// Reproduction of the paper's Figure 2: median end-to-end latency
/// against reputation score 0..10 for a set of policies, medians over a
/// configurable number of trials (the paper uses 30).
///
/// Each trial issues a real authenticated puzzle at the policy-assigned
/// difficulty, runs the real solver (actual SHA-256 search, giving the
/// true geometric attempt distribution), and converts the attempt count
/// to latency through the calibrated LatencyModel.

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "policy/policy.hpp"
#include "sim/latency_model.hpp"

namespace powai::sim {

struct Fig2Config final {
  int trials = 30;                  ///< per (policy, score) cell
  std::uint64_t seed = 2022;        ///< DSN 2022 — fixed for reproducibility
  LatencyModel latency;             ///< calibrated defaults
  bool use_real_solver = true;      ///< false = sample attempts analytically
};

/// One policy's latency series across scores 0..10.
struct Fig2Series final {
  std::string policy_name;
  std::vector<double> median_ms;   ///< index = reputation score
  std::vector<double> mean_ms;
  std::vector<double> p90_ms;
  std::vector<double> mean_difficulty;
};

struct Fig2Result final {
  std::vector<Fig2Series> series;

  /// Renders the figure as a table: one row per score, one column of
  /// medians per policy (the paper's plotted quantity).
  [[nodiscard]] common::Table to_table() const;
};

/// Runs the experiment for the given policies (non-owning pointers; all
/// must outlive the call). Throws std::invalid_argument on empty input
/// or non-positive trial count.
[[nodiscard]] Fig2Result run_fig2(
    const std::vector<const policy::IPolicy*>& policies,
    const Fig2Config& config = {});

}  // namespace powai::sim
