#pragma once
/// \file watchdog.hpp
/// Stall detection for the service path. A stalled drain thread or a
/// wedged verify pool is otherwise indistinguishable from slow load:
/// the queue is non-empty, nothing errors, nothing progresses. The
/// watchdog makes that state observable — registered sources (one per
/// drain shard; the verify pool works on the drain's call stack, so a
/// wedged verifier shows up as its drain source going quiet) heartbeat
/// on every unit of progress, and a monitor thread flags a stall when
/// the system is busy (non-empty queue) yet no source has beaten for
/// longer than `stall_after`.
///
/// Everything here runs on the *wall* clock (std::chrono::steady_clock):
/// the simulator freezes simulated time while work is in flight, so
/// sim-time can never see a stall — wall time is the only clock a hung
/// thread still moves against. Consequence: stall counts are
/// load-dependent diagnostics, never part of a deterministic
/// fingerprint. Campaign invariants use them one-sidedly (an injected
/// multi-second stall must flag; absence of injection asserts nothing).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"

namespace powai::framework {

struct WatchdogConfig final {
  /// Busy-without-progress duration that flags a stall.
  common::Duration stall_after = std::chrono::seconds(2);

  /// Monitor sampling period.
  common::Duration poll_every = std::chrono::milliseconds(50);
};

struct WatchdogStats final {
  std::uint64_t stalls = 0;       ///< distinct stall episodes flagged
  std::uint64_t polls = 0;        ///< monitor iterations (liveness check)
  std::uint64_t heartbeats = 0;   ///< total beats across sources
  bool stalled_now = false;       ///< currently inside a stall episode
};

class Watchdog final {
 public:
  explicit Watchdog(WatchdogConfig config = {});

  /// Stops the monitor (idempotent with stop()).
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a heartbeat source; returns its handle for beat().
  /// Call before start().
  std::size_t register_source(std::string name);

  /// One unit of progress on \p source. Lock-free; safe from any thread.
  void beat(std::size_t source);

  /// The busy predicate: true while the system owes work (e.g. the
  /// front end's queues are non-empty or in flight). Sampled by the
  /// monitor; must be safe to call from the monitor thread. Set before
  /// start().
  void set_busy_probe(std::function<bool()> probe);

  /// Starts the monitor thread. No-op when already running.
  void start();

  /// Stops and joins the monitor thread. Idempotent.
  void stop();

  /// One monitor iteration, synchronously (test seam — usable without
  /// start(), with stalls decided by the same wall-clock rule).
  void poll_once();

  [[nodiscard]] WatchdogStats stats() const;

  [[nodiscard]] const WatchdogConfig& config() const { return config_; }

 private:
  struct Source {
    std::string name;
    std::atomic<std::uint64_t> beats{0};
    std::uint64_t last_seen = 0;  ///< monitor-private
  };

  void monitor_loop();

  /// The poll body; returns immediately when no busy probe is set.
  void evaluate(std::chrono::steady_clock::time_point now);

  WatchdogConfig config_;
  std::vector<std::unique_ptr<Source>> sources_;
  std::function<bool()> busy_;

  mutable std::mutex mu_;  ///< guards monitor state + stop cv
  std::condition_variable cv_;
  bool running_ = false;
  bool stopping_ = false;
  std::chrono::steady_clock::time_point last_progress_{};
  bool stalled_now_ = false;
  std::uint64_t stalls_ = 0;
  std::uint64_t polls_ = 0;

  std::thread monitor_;  // last member: joined before the rest tears down
};

}  // namespace powai::framework
